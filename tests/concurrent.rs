//! Multi-threaded stress tests: snapshot-isolated reads racing
//! put-driven flushes and compactions.
//!
//! PR 1 fixed a race where `ElsmP2::get` dropped the store mutex between
//! trace capture and verification, letting a concurrent flush replace the
//! level commitments and fail honest reads with `HiddenLevel`. That fix
//! reintroduced a store-wide critical section; this PR replaces it with
//! epoch-versioned snapshots. These are the regression tests the original
//! fix never got: many reader threads race writers that continuously
//! drive flushes and compactions, and **no** read may ever report a
//! verification failure or a wrong/missing value.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options, ReadMode};
use elsm_repro::sgx_sim::Platform;

fn stress_options(read_mode: ReadMode) -> P2Options {
    P2Options {
        read_mode,
        // Tiny budgets so the writer drives many flushes and compactions.
        write_buffer_bytes: 4 * 1024,
        level1_max_bytes: 16 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        target_file_bytes: 16 * 1024,
        ..P2Options::default()
    }
}

/// ≥4 reader threads (gets) race a writer whose puts trigger flushes and
/// compactions. Every read must verify and return the stable value.
#[test]
fn readers_race_flushes_without_spurious_failures() {
    let store = ElsmP2::open(Platform::with_defaults(), stress_options(ReadMode::Mmap)).unwrap();
    const STABLE: u32 = 150;
    for i in 0..STABLE {
        store.put(format!("stable{i:04}").as_bytes(), format!("sv{i}").as_bytes()).unwrap();
    }
    store.db().flush().unwrap();

    let done = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Writer: churn enough inserts to force many flushes/compactions.
        let (st, dn) = (&store, &done);
        s.spawn(move || {
            for i in 0..2500u32 {
                let key = format!("churn{:05}", i % 400);
                st.put(key.as_bytes(), &[b'x'; 64]).unwrap();
            }
            dn.store(true, Ordering::SeqCst);
        });
        // Readers: stable keys must always verify with the right value.
        for t in 0..4u32 {
            let (st, dn, rd) = (&store, &done, &reads);
            s.spawn(move || {
                let mut i = 0u32;
                while !dn.load(Ordering::SeqCst) {
                    let n = (i * 13 + t * 31) % STABLE;
                    let key = format!("stable{n:04}");
                    match st.get(key.as_bytes()) {
                        Ok(Some(rec)) => {
                            assert_eq!(
                                rec.value(),
                                format!("sv{n}").as_bytes(),
                                "wrong value for {key} under concurrent flushes"
                            );
                        }
                        Ok(None) => panic!("{key} vanished during a flush/compaction install"),
                        Err(e) => panic!("spurious verification failure on {key}: {e}"),
                    }
                    rd.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
    });
    assert!(store.db().stats().flushes >= 3, "writer must have driven flushes");
    assert!(store.db().stats().compactions >= 1, "writer must have driven compactions");
    assert!(reads.load(Ordering::Relaxed) >= 100, "readers must have overlapped the churn");
}

/// Scan verification (range completeness against epoch-tagged digest
/// snapshots) under the same churn.
#[test]
fn scans_race_flushes_without_spurious_failures() {
    let store = ElsmP2::open(Platform::with_defaults(), stress_options(ReadMode::Mmap)).unwrap();
    const STABLE: u32 = 80;
    for i in 0..STABLE {
        store.put(format!("skey{i:04}").as_bytes(), format!("sv{i}").as_bytes()).unwrap();
    }
    store.db().flush().unwrap();

    let done = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    std::thread::scope(|s| {
        let (st, dn) = (&store, &done);
        s.spawn(move || {
            for i in 0..1200u32 {
                // Interleave churn keys *inside* the scanned key range so
                // installs change the very trees scans verify against.
                let key = format!("skey{:04}x{}", i % STABLE, i % 7);
                st.put(key.as_bytes(), &[b'y'; 48]).unwrap();
            }
            dn.store(true, Ordering::SeqCst);
        });
        for t in 0..4u32 {
            let (st, dn, sc) = (&store, &done, &scans);
            s.spawn(move || {
                let mut i = 0u32;
                while !dn.load(Ordering::SeqCst) {
                    let lo = (i * 7 + t * 11) % (STABLE - 10);
                    let from = format!("skey{lo:04}");
                    let to = format!("skey{:04}", lo + 9);
                    match st.scan(from.as_bytes(), to.as_bytes()) {
                        Ok(records) => {
                            // All 10 stable keys of the window must appear.
                            let stable_hits = records
                                .iter()
                                .filter(|r| r.key().len() == 8 && r.key().starts_with(b"skey"))
                                .count();
                            assert!(
                                stable_hits >= 10,
                                "scan [{from},{to}] lost stable keys: {stable_hits}"
                            );
                        }
                        Err(e) => panic!("spurious scan verification failure: {e}"),
                    }
                    sc.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
    });
    assert!(store.db().stats().flushes >= 2);
    assert!(scans.load(Ordering::Relaxed) >= 40, "scans must have overlapped the churn");
}

/// Deterministic interleaving: a reader pins a snapshot, a flush and a
/// compaction install on top of it, and the pinned trace still verifies
/// against its epoch's commitments (the exact †5.5.2 race, single-stepped).
#[test]
fn pinned_trace_verifies_across_installs() {
    let store = ElsmP2::open(Platform::with_defaults(), stress_options(ReadMode::Mmap)).unwrap();
    for i in 0..120u32 {
        store.put(format!("key{i:04}").as_bytes(), b"v1").unwrap();
    }
    store.db().flush().unwrap();
    // Capture a trace (detached — snapshot dropped afterwards).
    let trace = store.raw_get_trace(b"key0042").unwrap();
    let epoch_before = trace.epoch;
    // Drive an install storm over the same keys.
    for i in 0..120u32 {
        store.put(format!("key{i:04}").as_bytes(), b"v2").unwrap();
    }
    store.db().flush().unwrap();
    assert!(store.db().current_epoch() > epoch_before, "installs must have advanced the epoch");
    // The old trace still verifies against its epoch's commitments…
    store.verify_get_trace(b"key0042", &trace).expect("honest old-epoch trace must verify");
    // …and a fresh read sees the new value, verified against the new epoch.
    let rec = store.get(b"key0042").unwrap().expect("present");
    assert_eq!(rec.value(), b"v2");
}

/// Writes accepted *while a flush is merging* must survive a crash: the
/// manifest names both the pre-freeze WAL and the active WAL until the
/// merge installs, so recovery replays the acknowledged write even if the
/// process dies mid-flush. The "crash" is a filesystem snapshot captured
/// deterministically from inside the flush (listener hook), restored, and
/// recovered.
#[test]
fn mid_flush_writes_survive_crash_recovery() {
    use elsm_repro::lsm_store::{Db, Options, Record, StorageEnv, StoreListener};
    use elsm_repro::sim_disk::{FsSnapshot, SimDisk, SimFs};
    use std::sync::{Arc, Mutex, OnceLock};

    struct MidFlushWriter {
        db: OnceLock<Arc<Db>>,
        fs: Arc<SimFs>,
        snapshot: Mutex<Option<FsSnapshot>>,
        fired: AtomicBool,
    }
    impl StoreListener for MidFlushWriter {
        fn on_flush_record(&self, _: &Record) {
            // Fires during the flush's merge phase: the memtable is
            // frozen, the WAL has rotated, and no store lock is held.
            if self.fired.swap(true, Ordering::SeqCst) {
                return;
            }
            let db = self.db.get().expect("db registered");
            db.put(b"late-write", b"must-survive").unwrap();
            *self.snapshot.lock().unwrap() = Some(self.fs.snapshot());
        }
    }

    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let options = Options {
        write_buffer_bytes: 64 * 1024, // large: only the explicit flush runs
        ..Options::default()
    };
    let env = StorageEnv::new(platform, fs.clone(), options.env.clone(), None);
    let hook = Arc::new(MidFlushWriter {
        db: OnceLock::new(),
        fs: fs.clone(),
        snapshot: Mutex::new(None),
        fired: AtomicBool::new(false),
    });
    let db = Arc::new(Db::open(env.clone(), options.clone(), Some(hook.clone())).unwrap());
    hook.db.set(db.clone()).unwrap();
    for i in 0..100u32 {
        db.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
    }
    db.flush().unwrap();
    let snapshot = hook.snapshot.lock().unwrap().take().expect("snapshot captured mid-flush");
    drop(db);

    // "Crash" back to the mid-flush filesystem state and recover.
    fs.restore(&snapshot);
    let recovered = Db::open(env, options, None).unwrap();
    assert_eq!(
        &recovered.get(b"late-write").unwrap().expect("acknowledged mid-flush write lost").value[..],
        b"must-survive"
    );
    for i in 0..100u32 {
        let key = format!("key{i:04}");
        assert!(recovered.get(key.as_bytes()).unwrap().is_some(), "pre-freeze {key} lost");
    }
}

/// Epoch versioning must not weaken §5.5.2's detection guarantees: hiding
/// a level in a trace — old epoch or current — still fails verification,
/// and fabricated epochs are rejected outright.
#[test]
fn hidden_levels_still_detected_across_epochs() {
    use elsm_repro::elsm::{adversary, VerificationFailure};

    let store = ElsmP2::open(Platform::with_defaults(), stress_options(ReadMode::Mmap)).unwrap();
    for i in 0..120u32 {
        store.put(format!("key{i:04}").as_bytes(), b"v1").unwrap();
    }
    store.db().flush().unwrap();
    let old_trace = store.raw_get_trace(b"key0042").unwrap();
    // Concurrent-flush churn installs new versions on top.
    for i in 0..120u32 {
        store.put(format!("key{i:04}").as_bytes(), b"v2").unwrap();
    }
    store.db().flush().unwrap();
    // Hiding the hit level in the *old* trace fails against the old
    // epoch's commitment snapshot.
    let hit_level = old_trace
        .levels
        .iter()
        .find(|l| matches!(l.outcome, elsm_repro::lsm_store::LevelOutcome::Hit(_)))
        .expect("a hit level")
        .level;
    let mut hidden = old_trace.clone();
    adversary::hide_level(&mut hidden, hit_level);
    assert!(
        store.verify_get_trace(b"key0042", &hidden).is_err(),
        "hidden level in an old-epoch trace must be detected"
    );
    // Same attack on a current trace.
    let fresh = store.raw_get_trace(b"key0042").unwrap();
    let mut hidden_fresh = fresh.clone();
    adversary::hide_level(&mut hidden_fresh, fresh.levels[0].level);
    assert!(store.verify_get_trace(b"key0042", &hidden_fresh).is_err());
    // A fabricated epoch the enclave never published is rejected.
    let mut forged_epoch = fresh;
    forged_epoch.epoch += 1_000_000;
    match store.verify_get_trace(b"key0042", &forged_epoch) {
        Err(VerificationFailure::UnknownEpoch { .. }) => {}
        other => panic!("fabricated epoch must be rejected, got {other:?}"),
    }
}
