//! End-to-end causal request tracing across the whole stack: every
//! verified op on a sharded + replicated cluster mints exactly one trace
//! tree; trees are acyclic and physically well-nested; a cross-shard
//! scan's tree spans router → shards → replica verification with a
//! non-empty critical path; tracing charges zero virtual time even
//! through the replication wire; and the per-trace world partitions sum
//! exactly to the platform's [`time_split`] advance — the
//! partition-sum identity.
//!
//! [`time_split`]: elsm_repro::sgx_sim::Platform::time_split

use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
use elsm_repro::replica::{ReplicationGroup, ReplicationOptions};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::shard::{ShardedKv, ShardedOptions};
use elsm_repro::telemetry::trace::analyze;
use elsm_repro::telemetry::Telemetry;

fn instrumented_options(registry: &Telemetry) -> P2Options {
    P2Options { telemetry: registry.clone(), write_buffer_bytes: 8 << 20, ..P2Options::default() }
}

/// A small deterministic YCSB-style mixed phase (zipf-free: modular
/// skew): returns the number of verified ops performed.
fn mixed_phase(cluster: &impl AuthenticatedKv, keys: u32) -> usize {
    let mut ops = 0;
    for i in 0..keys {
        cluster.put(format!("user{i:06}").as_bytes(), &[0x5au8; 48]).unwrap();
        ops += 1;
    }
    for i in 0..keys {
        let key = format!("user{:06}", (i * 37) % keys);
        assert!(cluster.get(key.as_bytes()).unwrap().is_some());
        ops += 1;
    }
    for i in 0..keys / 8 {
        let from = format!("user{:06}", i * 8);
        let to = format!("user{:06}", i * 8 + 7);
        assert_eq!(cluster.scan(from.as_bytes(), to.as_bytes()).unwrap().len(), 8);
        ops += 1;
    }
    ops
}

/// The tracing property over a sharded + replicated run: every verified
/// op lands in exactly one trace tree, every span in exactly one tree,
/// all trees are acyclic, and a locally-nested child never outlasts its
/// causal parent's window. (Remote spans — replica replay — are exempt
/// from the window bound: they run on another platform's clock.)
#[test]
fn every_verified_op_lands_in_exactly_one_trace_tree() {
    let registry = Telemetry::new();
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::hash(2, instrumented_options(&registry)).with_replicas(1),
    )
    .unwrap();
    assert!(registry.trace_records().is_empty(), "opening the cluster mints no spans");

    let ops = mixed_phase(&cluster, 64);

    let records = registry.trace_records();
    assert_eq!(registry.dropped_spans(), 0, "ring must hold the whole run");
    let trees = analyze::build_trees(&records);
    assert_eq!(trees.len(), ops, "one trace tree per verified op");

    let spans_in_trees: usize = trees.iter().map(|t| t.spans.len()).sum();
    assert_eq!(spans_in_trees, records.len(), "every span lands in exactly one tree");

    for tree in &trees {
        assert!(tree.is_acyclic());
        assert_eq!(
            tree.spans.iter().filter(|s| s.is_root()).count(),
            1,
            "exactly one root per tree"
        );
        for span in &tree.spans {
            if span.is_root() || span.remote {
                continue;
            }
            let parent = tree
                .spans
                .iter()
                .find(|p| p.span_id == span.parent_span)
                .expect("local child's causal parent is in the same tree");
            assert!(
                span.charges.ns <= parent.charges.ns,
                "nested child ({}) cannot outlast its parent ({})",
                span.name,
                parent.name
            );
        }
    }
}

/// The acceptance tree: a cross-shard scan on a replicated cluster
/// produces ONE tree spanning the router root, at least two shards, and
/// replica verification spans — and its critical path renders non-empty.
#[test]
fn cross_shard_scan_tree_spans_router_shards_and_replicas() {
    let registry = Telemetry::new();
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::hash(2, instrumented_options(&registry)).with_replicas(2),
    )
    .unwrap();
    let keys: Vec<String> = (0..64).map(|i| format!("user{i:06}")).collect();
    for k in &keys {
        cluster.put(k.as_bytes(), b"value").unwrap();
    }
    let shards_hit: std::collections::BTreeSet<usize> =
        keys.iter().map(|k| cluster.shard_of(k.as_bytes())).collect();
    assert_eq!(shards_hit.len(), 2, "keys must span both shards");

    let before = registry.trace_records().len();
    let all = cluster.scan(b"user000000", b"user000063".as_ref()).unwrap();
    assert_eq!(all.len(), 64);

    // The scan minted exactly one new tree, and it is the scan's.
    let records = registry.trace_records();
    let new_spans = &records[before..];
    let trees = analyze::build_trees(new_spans);
    assert_eq!(trees.len(), 1, "one cross-shard scan, one trace tree");
    let tree = &trees[0];
    assert_eq!(tree.root().name, "router.op.scan");
    assert_eq!(tree.root().op_class, "scan");

    // The tree spans both shards' replica-verified reads plus the
    // router's stitch phase.
    for needle in ["shard0.", "shard1.", "replica", ".op.scan", "router.stitch"] {
        assert!(
            tree.spans.iter().any(|s| s.name.contains(needle)),
            "scan tree must contain a span matching `{needle}`; got: {:?}",
            tree.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    // Critical-path analysis renders a non-empty per-span breakdown.
    let path = tree.critical_path();
    assert!(!path.is_empty());
    assert_eq!(path[0].name, "router.op.scan");
    let rendered = analyze::render_critical_path(tree);
    assert!(rendered.lines().count() >= 2, "path descends below the router:\n{rendered}");
    assert!(rendered.contains("exclusive="));
}

/// The zero-virtual-overhead contract survives tracing through the
/// replication wire: an instrumented replicated group and a bare one
/// replay the same workload to identical primary/replica virtual clocks
/// and identical trusted state. (The wire envelope always carries the
/// fixed-width 16-byte trace context, traced or not, so per-byte channel
/// charges cannot differ.)
#[test]
fn tracing_charges_no_virtual_time_through_replication() {
    let run = |registry: Telemetry| {
        let platform = Platform::with_defaults();
        let group = ReplicationGroup::open(
            platform.clone(),
            instrumented_options(&registry),
            ReplicationOptions { replicas: 2, ..Default::default() },
        )
        .unwrap();
        mixed_phase(&group, 48);
        group.sync().unwrap();
        (
            platform.clock().now_ns(),
            group.replica_platform(0).clock().now_ns(),
            group.replica_platform(1).clock().now_ns(),
            group.primary_store().trusted().wal_digest(),
        )
    };
    let instrumented = run(Telemetry::new());
    let bare = run(Telemetry::default());
    assert_eq!(instrumented, bare, "bit-identical clocks and trusted state with tracing on");
}

/// The partition-sum identity, pinned exactly: with every platform charge
/// made inside a traced op (single store, single thread, write buffer too
/// large to flush), the summed top-level span charges — and equally the
/// summed per-trace partitions — reproduce the platform's
/// `time_split()` advance nanosecond for nanosecond, per world.
#[test]
fn per_trace_partitions_sum_exactly_to_the_platform_time_split() {
    let registry = Telemetry::new();
    let platform = Platform::with_defaults();
    let store = ElsmP2::open(platform.clone(), instrumented_options(&registry)).unwrap();

    let before = platform.time_split();
    for i in 0..32u32 {
        store.put(format!("key{i:04}").as_bytes(), &[0x11u8; 64]).unwrap();
    }
    for i in 0..32u32 {
        assert!(store.get(format!("key{i:04}").as_bytes()).unwrap().is_some());
    }
    assert_eq!(store.scan(b"key0000", b"key0031").unwrap().len(), 32);
    let delta = platform.time_split().delta(&before);
    assert!(delta.enclave_ns > 0 && delta.host_ns > 0 && delta.boundary_ns > 0);

    let records = registry.trace_records();
    assert_eq!(
        analyze::run_partition(&records),
        delta,
        "top-level span charges partition the clock advance exactly"
    );

    // Per-tree partitions tell the same story summed tree by tree.
    let trees = analyze::build_trees(&records);
    assert_eq!(trees.len(), 65, "32 puts + 32 gets + 1 scan");
    let mut summed = elsm_repro::sgx_sim::TimeSplit::default();
    for tree in &trees {
        let p = tree.partition();
        summed.enclave_ns += p.enclave_ns;
        summed.host_ns += p.host_ns;
        summed.boundary_ns += p.boundary_ns;
    }
    assert_eq!(summed, delta, "per-trace partitions sum to the same split");
}
