//! The replication subsystem, end to end: verified replica reads with
//! freshness tokens, the authenticated-channel adversary (tampering,
//! reordering, withholding), fork detection against an equivocating
//! primary, and the §5.6.1-fenced failover protocol — kill-primary
//! promotion with zero acknowledged-write loss, rolled-back candidates
//! rejected, resurrected old primaries fenced out.

use elsm_repro::elsm::replication::Announcement;
use elsm_repro::elsm::{AuthenticatedKv, ElsmError, P2Options, VerificationFailure};
use elsm_repro::replica::{ReplicationGroup, ReplicationOptions};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::shard::{ShardedKv, ShardedOptions};

fn small_store_options() -> P2Options {
    P2Options {
        write_buffer_bytes: 4 * 1024,
        level1_max_bytes: 16 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        ..P2Options::default()
    }
}

fn group(replicas: usize) -> ReplicationGroup {
    ReplicationGroup::open(
        Platform::with_defaults(),
        small_store_options(),
        ReplicationOptions { replicas, leader_check_interval: 1, ..Default::default() },
    )
    .unwrap()
}

fn verification(err: ElsmError) -> VerificationFailure {
    match err {
        ElsmError::Verification(v) => v,
        other => panic!("expected a verification failure, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Honest replication
// ---------------------------------------------------------------------------

#[test]
fn replicas_serve_verified_reads_from_replayed_state() {
    let g = group(2);
    for i in 0..300u32 {
        let key = format!("key{:04}", i % 150);
        g.put(key.as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    let keys: Vec<&[u8]> = [&b"key0000"[..], b"key0007"].to_vec();
    g.delete_batch(&keys).unwrap();
    g.flush().unwrap();

    // Every replica answers verified reads from its own replayed state,
    // fully fresh.
    for r in 0..2 {
        g.with_replica(r, |replica| {
            let (rec, token) = replica.get(b"key0003").unwrap();
            assert_eq!(rec.expect("present").value(), b"v153");
            assert_eq!(token.lag_epochs(), 0, "synced replica must be fresh");
            let (absent, _) = replica.get(b"key0000").unwrap();
            assert!(absent.is_none(), "replicated delete must hide the key");
            let (scanned, _) = replica.scan(b"key0000", b"key9999").unwrap();
            assert_eq!(scanned.len(), 148);
            assert!(scanned.windows(2).all(|w| w[0].key() < w[1].key()));
        });
    }

    // Replayed enclave state is bit-identical to the primary's: same WAL
    // digest, same level commitments, same epoch.
    let primary = g.primary_store();
    for r in 0..2 {
        let store = g.replica_store(r);
        assert_eq!(store.trusted().wal_digest(), primary.trusted().wal_digest());
        assert_eq!(store.trusted().commitments(), primary.trusted().commitments());
        assert_eq!(store.db().current_epoch(), primary.db().current_epoch());
    }

    // Group reads round-robin: both replica clocks advance, the
    // primary's does not.
    let before: Vec<u64> = (0..2).map(|r| g.replica_platform(r).clock().now_ns()).collect();
    let primary_before = primary.platform().clock().now_ns();
    for i in 0..20u32 {
        assert!(g.get(format!("key{:04}", 100 + i).as_bytes()).unwrap().is_some());
    }
    for (r, &t0) in before.iter().enumerate() {
        assert!(g.replica_platform(r).clock().now_ns() > t0, "replica {r} served no reads");
    }
    assert_eq!(
        primary.platform().clock().now_ns(),
        primary_before,
        "reads must not hit the primary"
    );
}

/// The compaction scheduler's replication contract: the primary ships
/// strategy-deterministic job descriptions, so even a tiered strategy
/// running 4-way parallel waves replays bit-identically on every replica
/// — same commitments, same WAL digest, same epoch sequence.
#[test]
fn parallel_tiered_compaction_replays_bit_identically() {
    use elsm_repro::lsm_store::{CompactionStrategyKind, TieredConfig};
    let options = P2Options {
        compaction_strategy: CompactionStrategyKind::Tiered(TieredConfig::default()),
        compaction_parallelism: 4,
        incremental_commitments: true,
        ..small_store_options()
    };
    let g = ReplicationGroup::open(
        Platform::with_defaults(),
        options,
        ReplicationOptions { replicas: 2, leader_check_interval: 1, ..Default::default() },
    )
    .unwrap();
    for i in 0..600u32 {
        let key = format!("key{:04}", i % 200);
        g.put(key.as_bytes(), format!("value-{i:06}").as_bytes()).unwrap();
    }
    g.flush().unwrap();
    let primary = g.primary_store();
    assert!(primary.db().stats().compactions > 0, "workload must drive compaction waves");
    for r in 0..2 {
        let store = g.replica_store(r);
        assert_eq!(store.trusted().commitments(), primary.trusted().commitments());
        assert_eq!(store.trusted().wal_digest(), primary.trusted().wal_digest());
        assert_eq!(store.db().current_epoch(), primary.db().current_epoch());
        g.with_replica(r, |replica| {
            let (rec, token) = replica.get(b"key0123").unwrap();
            assert_eq!(rec.expect("present").value(), b"value-000523");
            assert_eq!(token.lag_epochs(), 0);
        });
    }
}

// ---------------------------------------------------------------------------
// The transport adversary
// ---------------------------------------------------------------------------

#[test]
fn tampered_shipped_frame_detected() {
    let g = group(1);
    let primary = g.primary_store();
    for i in 0..10u32 {
        primary.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    // The host rewrites one byte of a queued shipment.
    g.with_replica(0, |r| r.channel().tamper(|q| q[4].payload[12] ^= 0x01));
    let err = g.with_replica(0, |r| r.sync().unwrap_err());
    assert!(matches!(verification(err), VerificationFailure::ChannelTampered { seq: 4 }));
    // Detection is sticky: the replica refuses service from then on.
    let err = g.with_replica(0, |r| r.get(b"k0").unwrap_err());
    assert!(matches!(verification(err), VerificationFailure::ChannelTampered { .. }));
}

#[test]
fn reordered_shipped_frames_detected() {
    let g = group(1);
    let primary = g.primary_store();
    for i in 0..6u32 {
        primary.put(format!("k{i}").as_bytes(), b"v").unwrap();
    }
    // Every envelope is individually authentic — just not in this order.
    g.with_replica(0, |r| r.channel().tamper(|q| q.swap(1, 3)));
    let err = g.with_replica(0, |r| r.sync().unwrap_err());
    assert!(matches!(verification(err), VerificationFailure::ChannelTampered { seq: 1 }));
}

#[test]
fn envelopes_cannot_splice_between_groups() {
    // Two independent groups have independent session keys: the host
    // cannot replay one group's (individually authentic) shipments into
    // another group's channel.
    let a = group(1);
    let b = group(1);
    a.primary_store().put(b"from-a", b"v").unwrap();
    let stolen = a
        .with_replica(0, |r| {
            let mut out = None;
            r.channel().tamper(|q| out = q.front().cloned());
            out
        })
        .expect("a shipped envelope");
    b.with_replica(0, |r| r.channel().tamper(|q| q.push_back(stolen)));
    let err = b.with_replica(0, |r| r.sync().unwrap_err());
    assert!(matches!(verification(err), VerificationFailure::ChannelTampered { .. }));
}

#[test]
fn withheld_stream_makes_reads_stale_beyond_the_bound() {
    let g = group(1);
    for i in 0..50u32 {
        g.put(format!("k{i:03}").as_bytes(), b"v0").unwrap();
    }
    g.flush().unwrap();
    g.with_replica(0, |r| assert_eq!(r.freshness().unwrap().lag_epochs(), 0));

    // The host now withholds the stream while the primary advances
    // through several more flush epochs.
    let primary = g.primary_store();
    for round in 0..4u32 {
        for i in 0..50u32 {
            primary.put(format!("k{i:03}").as_bytes(), format!("v{round}").as_bytes()).unwrap();
        }
        primary.db().flush().unwrap();
    }
    // A client relays the primary's (signed) newest announcement to the
    // replica out of band — withholding the stream cannot also hide the
    // staleness.
    let head = Announcement::sign(
        primary.platform(),
        primary.trusted(),
        0,
        primary.db().current_epoch(),
        g.session_key(),
    )
    .expect("current epoch announced");
    g.with_replica(0, |r| r.observe_announcement(&head).unwrap());
    let err = g.with_replica(0, |r| r.get(b"k003").unwrap_err());
    match verification(err) {
        VerificationFailure::ReplicaStale { lag_epochs, bound } => {
            assert!(lag_epochs > bound, "lag {lag_epochs} must exceed bound {bound}");
        }
        other => panic!("expected ReplicaStale, got {other:?}"),
    }
    // Delivering the stream again restores service.
    g.sync().unwrap();
    g.with_replica(0, |r| {
        let (rec, token) = r.get(b"k003").unwrap();
        assert_eq!(rec.expect("present").value(), b"v3");
        assert_eq!(token.lag_epochs(), 0);
    });
}

#[test]
fn forked_primary_detected_per_epoch() {
    let g = group(1);
    for i in 0..80u32 {
        g.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
    }
    g.flush().unwrap();
    // The primary's signing oracle announces a *different* commitment
    // digest for an epoch the replica replayed honestly — a split view.
    let primary = g.primary_store();
    let epoch = primary.db().current_epoch();
    let fork = Announcement::sign_digest(
        primary.platform(),
        0,
        epoch,
        elsm_repro::crypto::sha256(b"the view shown to someone else"),
        g.session_key(),
    );
    let err = g.with_replica(0, |r| r.observe_announcement(&fork).unwrap_err());
    assert!(
        matches!(verification(err), VerificationFailure::ForkedPrimary { epoch: e } if e == epoch)
    );
    // Sticky: the replica refuses service under a forked primary.
    let err = g.with_replica(0, |r| r.get(b"k001").unwrap_err());
    assert!(matches!(verification(err), VerificationFailure::ForkedPrimary { .. }));
}

#[test]
fn forged_announcement_in_stream_detected() {
    let g = group(1);
    g.put(b"k", b"v").unwrap();
    // The host injects a well-formed announcement it signed itself (it
    // has no session key, so any signature it produces is wrong).
    let mut forged = Announcement::sign_digest(
        g.primary_store().platform(),
        0,
        0,
        elsm_repro::crypto::sha256(b"junk"),
        g.session_key(),
    );
    forged.mac = elsm_repro::crypto::sha256(b"not the session key");
    let err = g.with_replica(0, |r| r.observe_announcement(&forged).unwrap_err());
    assert!(matches!(verification(err), VerificationFailure::ChannelTampered { .. }));
}

// ---------------------------------------------------------------------------
// Fenced failover
// ---------------------------------------------------------------------------

#[test]
fn kill_primary_failover_loses_no_acknowledged_write() {
    let g = group(2);
    for i in 0..100u32 {
        g.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    // 20 more writes are acknowledged by the primary but the replicas
    // never get to apply them before the crash — their frames are in the
    // channels, shipped under the primary's write lock before each ack.
    let primary = g.primary_store();
    for i in 100..120u32 {
        primary.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    let dead = g.kill_primary().expect("primary was alive");
    drop(dead);

    // Promotion drains the candidate's channel first: nothing is lost.
    g.promote(0).unwrap();
    for i in 0..120u32 {
        let key = format!("k{i:03}");
        let got = g.primary_store().get(key.as_bytes()).unwrap();
        assert_eq!(
            got.expect("acknowledged write lost in failover").value(),
            format!("v{i}").as_bytes(),
            "{key}"
        );
    }
    // The group keeps operating: writes through the new primary, reads
    // from the remaining replica (which catches up over its own channel).
    g.put(b"post-failover", b"works").unwrap();
    let (rec, token) = g.get_with_token(b"post-failover").unwrap();
    assert_eq!(rec.expect("present").value(), b"works");
    assert_eq!(token.expect("replica-served").lag_epochs(), 0);
    assert_eq!(g.replica_count(), 1);
}

#[test]
fn rolled_back_candidate_rejected_at_promotion() {
    let g = group(2);
    for i in 0..60u32 {
        g.put(format!("k{i:03}").as_bytes(), b"v1").unwrap();
    }
    // Replica 1's host discards its shipped stream (a rollback of the
    // replica's replicated state to before these writes).
    let primary = g.primary_store();
    for i in 0..40u32 {
        primary.put(format!("extra{i:03}").as_bytes(), b"v2").unwrap();
    }
    g.fence().unwrap();
    g.with_replica(1, |r| r.channel().tamper(|q| q.clear()));
    g.kill_primary();

    // The stale candidate's progress is behind the fenced progress.
    let err = g.promote(1).unwrap_err();
    assert!(matches!(verification(err), VerificationFailure::RolledBack));

    // The caught-up replica promotes fine — and because its progress
    // exactly matches the fenced progress, its dataset digest is checked
    // against the fenced digest too.
    g.promote(0).unwrap();
    assert_eq!(g.primary_store().get(b"extra039").unwrap().expect("present").value(), b"v2");
}

#[test]
fn resurrected_old_primary_is_fenced_out() {
    let g = group(2);
    for i in 0..30u32 {
        g.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
    }
    let old = g.kill_primary().expect("primary was alive");
    g.promote(0).unwrap();

    // The deposed primary resurrects and tries to serve writes again:
    // its next hardware check finds the moved generation.
    let err = old.put(b"rogue", b"write").unwrap_err();
    match verification(err) {
        VerificationFailure::FencedOut { generation, active } => {
            assert_eq!(generation, 1);
            assert_eq!(active, 2);
        }
        other => panic!("expected FencedOut, got {other:?}"),
    }
    assert!(old.ensure_leadership().is_err(), "deposed leadership must stay revoked");

    // Shipments it managed to push under its stale generation are
    // dropped by the surviving replica — counted, not applied, and the
    // replica keeps serving the live stream.
    old.store().put(b"rogue-direct", b"write").unwrap();
    g.put(b"legit", b"new-primary").unwrap();
    g.sync().unwrap();
    g.with_replica(0, |r| {
        assert!(r.fenced_drops() > 0, "stale-generation shipments must be dropped");
        let (rec, _) = r.get(b"legit").unwrap();
        assert_eq!(rec.expect("present").value(), b"new-primary");
        let (rogue, _) = r.get(b"rogue-direct").unwrap();
        assert!(rogue.is_none(), "a fenced primary's writes must not replicate");
    });
}

#[test]
fn racing_promotions_cannot_split_brain() {
    let g = group(2);
    for i in 0..20u32 {
        g.put(format!("k{i:02}").as_bytes(), b"v").unwrap();
    }
    g.kill_primary();
    g.promote(0).unwrap();
    // A second candidate promoting against the already-moved generation
    // loses the hardware CAS.
    let fenced = g.fencing().read();
    assert_eq!(fenced.generation, 2);
    let stale = g.fencing().advance(1, 999, elsm_repro::crypto::sha256(b"x"));
    assert!(stale.is_err(), "a promotion naming a stale generation must lose");
}

// ---------------------------------------------------------------------------
// Replication under the sharded router
// ---------------------------------------------------------------------------

#[test]
fn sharded_cluster_with_replicas_serves_verified_reads_round_robin() {
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::hash(2, small_store_options()).with_replicas(2),
    )
    .unwrap();
    for i in 0..200u32 {
        cluster.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    cluster.flush().unwrap();
    // Verified point reads and a totally ordered cross-shard scan, all
    // served by replicas.
    let before: Vec<Vec<u64>> = (0..2)
        .map(|s| {
            let group = cluster.replication_group(s).expect("replicated partition");
            (0..2).map(|r| group.replica_platform(r).clock().now_ns()).collect()
        })
        .collect();
    for i in 0..200u32 {
        let key = format!("key{i:04}");
        let got = cluster.get(key.as_bytes()).unwrap();
        assert_eq!(got.expect("present").value(), format!("v{i}").as_bytes(), "{key}");
    }
    let all = cluster.scan(b"key0000", b"key9999").unwrap();
    assert_eq!(all.len(), 200);
    assert!(all.windows(2).all(|w| w[0].key() < w[1].key()));
    for (s, shard_before) in before.iter().enumerate() {
        let group = cluster.replication_group(s).expect("replicated partition");
        for (r, &t0) in shard_before.iter().enumerate() {
            assert!(
                group.replica_platform(r).clock().now_ns() > t0,
                "shard {s} replica {r} served no reads"
            );
        }
    }
}
