//! The unified observability layer, end to end: registry counters agree
//! with the pinned one-ecall-per-batch / one-ecall-per-shard invariants,
//! spans attribute virtual time to the enclave world, verification
//! failures land on the root audit stream with shard context, both export
//! formats render an instrumented run, and — the overhead contract —
//! enabling telemetry charges zero *virtual* time, so an instrumented
//! store and a bare store replay the same workload to the identical clock
//! and the identical trusted state.

use std::collections::BTreeSet;

use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::shard::{ShardedKv, ShardedOptions};
use elsm_repro::telemetry::Telemetry;

fn instrumented_options(registry: &Telemetry) -> P2Options {
    P2Options { telemetry: registry.clone(), write_buffer_bytes: 1 << 20, ..P2Options::default() }
}

fn batch_items(n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n).map(|i| (format!("key{i:04}").into_bytes(), format!("val{i}").into_bytes())).collect()
}

fn as_refs(items: &[(Vec<u8>, Vec<u8>)]) -> Vec<(&[u8], &[u8])> {
    items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect()
}

/// The registry's commit counters move in lockstep with the platform's
/// ecall counter — the pinned group-commit invariant (one enclave
/// transition per batch, see `tests/group_commit.rs`) restated over
/// telemetry.
#[test]
fn commit_counters_agree_with_the_ecall_pin() {
    let registry = Telemetry::new();
    let platform = Platform::with_defaults();
    let store = ElsmP2::open(platform.clone(), instrumented_options(&registry)).unwrap();
    let items = batch_items(64);
    let refs = as_refs(&items);

    let ecalls0 = platform.stats().ecalls;
    let batches0 = registry.counter_value("commit.batches");
    let puts0 = registry.counter_value("db.puts");

    store.put_batch(&refs).unwrap();
    assert_eq!(platform.stats().ecalls - ecalls0, 1, "one transition for the whole batch");
    assert_eq!(registry.counter_value("commit.batches") - batches0, 1);
    assert_eq!(registry.counter_value("db.puts") - puts0, 64);
    assert_eq!(registry.counter_value("wal.frames"), platform.stats().ecalls - ecalls0);

    // Singleton writes: counters scale with ecalls, 1:1.
    let ecalls1 = platform.stats().ecalls;
    let batches1 = registry.counter_value("commit.batches");
    for (k, v) in &refs {
        store.put(k, v).unwrap();
    }
    assert_eq!(platform.stats().ecalls - ecalls1, 64, "one transition per singleton put");
    assert_eq!(registry.counter_value("commit.batches") - batches1, 64);
}

/// Per-shard scoped counters split a routed batch exactly like the
/// per-shard platforms' ecall counters do, and the router's own series
/// account for routed point reads and stitched scans.
#[test]
fn sharded_counters_split_like_ecalls() {
    let registry = Telemetry::new();
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::hash(3, instrumented_options(&registry)),
    )
    .unwrap();
    let items: Vec<(Vec<u8>, Vec<u8>)> =
        (0..60u32).map(|i| (format!("bk{i:03}").into_bytes(), vec![b'v'; 40])).collect();
    let refs = as_refs(&items);
    let shards_hit: BTreeSet<usize> = items.iter().map(|(k, _)| cluster.shard_of(k)).collect();
    assert!(shards_hit.len() > 1, "batch should span shards");

    let ecalls0: Vec<u64> = (0..3).map(|s| cluster.shard_platform(s).stats().ecalls).collect();
    let batches0: Vec<u64> =
        (0..3).map(|s| registry.counter_value(&format!("shard{s}.commit.batches"))).collect();
    cluster.put_batch(&refs).unwrap();
    for s in 0..3 {
        let ecall_delta = cluster.shard_platform(s).stats().ecalls - ecalls0[s];
        let batch_delta = registry.counter_value(&format!("shard{s}.commit.batches")) - batches0[s];
        assert_eq!(ecall_delta, u64::from(shards_hit.contains(&s)));
        assert_eq!(batch_delta, ecall_delta, "shard {s}: counter mirrors the ecall pin");
    }
    let puts: u64 = (0..3).map(|s| registry.counter_value(&format!("shard{s}.db.puts"))).sum();
    assert_eq!(puts, 60, "per-shard put counters partition the batch");

    // Routed reads and cross-shard scan stitching.
    let routed0 = registry.counter_value("router.routed_ops");
    for (k, _) in &items {
        assert!(cluster.get(k).unwrap().is_some());
    }
    assert!(registry.counter_value("router.routed_ops") - routed0 >= 60);

    let stitched0 = registry.counter_value("router.stitched_records");
    let segments0 = registry.counter_value("router.scan_segments");
    let all = cluster.scan(b"bk000", b"bk059").unwrap();
    assert_eq!(all.len(), 60);
    assert_eq!(registry.counter_value("router.stitched_records") - stitched0, 60);
    assert_eq!(
        registry.counter_value("router.scan_segments") - segments0,
        shards_hit.len() as u64,
        "one scan segment per shard holding data"
    );
}

/// Spans carry world attribution: the group-commit span runs inside the
/// enclave (enclave time, one ecall and a cross-boundary copy per batch),
/// and the attached platform reports the full enclave/host/boundary split
/// of its virtual clock.
#[test]
fn spans_attribute_virtual_time_to_the_enclave() {
    let registry = Telemetry::new();
    let platform = Platform::with_defaults();
    let store = ElsmP2::open(platform.clone(), instrumented_options(&registry)).unwrap();
    let items = batch_items(64);
    store.put_batch(&as_refs(&items)).unwrap();
    store.db().flush().unwrap();

    let snapshot = registry.snapshot();
    let (_, commit) = snapshot
        .spans
        .iter()
        .find(|(name, _)| name == "commit.group")
        .expect("commit span registered");
    assert!(commit.count >= 1);
    assert!(commit.enclave_ns > 0, "group commit runs inside the enclave");
    // The span opens *inside* the enclave transition — the ecall itself is
    // charged at the store's boundary, so the span's own crossing counters
    // stay zero while its time is pure enclave time.
    assert_eq!(commit.ecalls, 0, "no nested transitions inside a commit group");
    assert!(commit.total_ns >= commit.enclave_ns);

    let flush = snapshot.spans.iter().find(|(name, _)| name == "flush.merge");
    assert!(flush.is_some_and(|(_, s)| s.count >= 1), "flush phases traced");

    let p = snapshot.platforms.iter().find(|p| p.label == "platform").expect("platform attached");
    assert!(p.time.enclave_ns > 0 && p.time.host_ns > 0 && p.time.boundary_ns > 0);
    assert_eq!(
        p.time.enclave_ns + p.time.host_ns + p.time.boundary_ns,
        p.clock_ns,
        "world attribution partitions the virtual clock"
    );
    assert!(p.stats.ecalls >= commit.count, "at least one transition per commit group");
    assert!(p.stats.cross_copy_bytes > 0, "batches crossed the boundary");
}

/// A routing-layer verification failure raised under a scoped shard
/// registry still lands on the root audit stream — the stream is
/// deployment-wide even though metric names are per-node.
#[test]
fn verification_failures_land_on_the_root_audit_stream() {
    let registry = Telemetry::new();
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::hash(3, instrumented_options(&registry)),
    )
    .unwrap();
    cluster.put(b"audited", b"v").unwrap();
    let owner = cluster.shard_of(b"audited");
    let wrong = (owner + 1) % 3;

    assert_eq!(registry.audit_total(), 0);
    let err = cluster.trusted().check_owned(wrong, b"audited");
    assert!(err.is_err(), "router refuses the mis-claimed shard");
    assert_eq!(registry.audit_count("WrongShard"), 1);
    let event = &registry.audit_events()[0];
    assert_eq!(event.kind, "WrongShard");
    assert_eq!(event.component, "router");
    assert_eq!(event.shard, Some(owner as u32), "event names the true owner");
    assert!(registry.to_json().contains("\"kind\": \"WrongShard\""));
}

/// Both export formats render an instrumented run: the JSON document the
/// bench harness writes as `TELEMETRY.<figure>.json` and the Prometheus
/// text exposition.
#[test]
fn exports_render_an_instrumented_run() {
    let registry = Telemetry::new();
    let store = ElsmP2::open(Platform::with_defaults(), instrumented_options(&registry)).unwrap();
    let items = batch_items(32);
    store.put_batch(&as_refs(&items)).unwrap();
    for (k, _) in &items {
        assert!(store.get(k).unwrap().is_some());
    }

    let json = registry.to_json();
    for needle in
        ["\"db.puts\": 32", "\"db.gets\": 32", "\"commit.group\"", "\"platform\"", "\"audit\""]
    {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    let prom = registry.to_prometheus();
    assert!(prom.contains("elsm_db_puts_total 32"));
    assert!(prom.contains("elsm_span_enclave_ns{span=\"commit.group\"}"));
    assert!(prom.contains("elsm_platform_ecalls{platform=\"platform\"}"));
}

/// The overhead contract: instrumentation charges zero virtual time, so
/// the same workload on an instrumented store and a bare store ends at
/// the *identical* virtual clock and the identical trusted state. (Real
/// wall-clock overhead of the disabled registry is a few relaxed atomic
/// no-ops per op; the virtual-clock equality is the property the
/// simulation can pin exactly.)
#[test]
fn enabled_telemetry_charges_no_virtual_time() {
    let run = |registry: Telemetry| {
        let platform = Platform::with_defaults();
        let store = ElsmP2::open(
            platform.clone(),
            P2Options { telemetry: registry, write_buffer_bytes: 1 << 20, ..P2Options::default() },
        )
        .unwrap();
        let items = batch_items(64);
        store.put_batch(&as_refs(&items)).unwrap();
        for (k, _) in &items {
            assert!(store.get(k).unwrap().is_some());
        }
        (platform.clock().now_ns(), store.trusted().wal_digest())
    };
    let instrumented = run(Telemetry::new());
    let bare = run(Telemetry::default());
    assert_eq!(instrumented.0, bare.0, "identical virtual clock with telemetry on");
    assert_eq!(instrumented.1, bare.1, "identical trusted state with telemetry on");
}
