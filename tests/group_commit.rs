//! Group-commit write pipeline: batch atomicity across crashes, one
//! enclave transition per batch, and trusted-state equivalence between
//! batched and singleton writes.
//!
//! The crash test extends PR 2's mid-flush snapshot technique: a listener
//! hook fires *inside* the commit (after the WAL frame is appended, before
//! the writer is acknowledged), captures the simulated filesystem, and the
//! test then replays two crash variants from that instant — one with the
//! frame intact, one with its tail torn.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use elsm_repro::elsm::{AuthenticatedKv, ConfidentialStore, ElsmP2, P2Options};
use elsm_repro::lsm_store::{Db, Options, Record, StorageEnv, StoreListener, WriteBatch};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::sim_disk::{FsSnapshot, SimDisk, SimFs};

/// Captures an [`FsSnapshot`] from inside the first commit whose batch
/// holds at least `trigger` records.
struct MidCommitSnap {
    fs: std::sync::Arc<SimFs>,
    trigger: usize,
    snapshot: Mutex<Option<FsSnapshot>>,
}

impl StoreListener for MidCommitSnap {
    fn on_wal_append_batch(&self, records: &[Record]) {
        if records.len() >= self.trigger {
            let mut slot = self.snapshot.lock().unwrap();
            if slot.is_none() {
                // The batch's WAL frame is on the (simulated) disk; the
                // writer has not yet been acknowledged. This is the crash
                // instant.
                *slot = Some(self.fs.snapshot());
            }
        }
    }
}

fn active_wal(fs: &SimFs) -> String {
    fs.list().into_iter().filter(|n| n.starts_with("wal-")).max().expect("an active WAL")
}

#[test]
fn mid_group_commit_crash_applies_batch_whole_or_not_at_all() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let options = Options {
        write_buffer_bytes: 1 << 20, // no auto-flush: the WAL carries everything
        ..Options::default()
    };
    let env = StorageEnv::new(platform, fs.clone(), options.env.clone(), None);
    let hook = std::sync::Arc::new(MidCommitSnap {
        fs: fs.clone(),
        trigger: 8,
        snapshot: Mutex::new(None),
    });
    let db = Db::open(env.clone(), options.clone(), Some(hook.clone())).unwrap();

    // Acknowledged singleton writes before the batch: these must survive
    // every crash variant.
    for i in 0..20u32 {
        db.put(format!("pre{i:03}").as_bytes(), b"stable").unwrap();
    }
    let mut batch = WriteBatch::new();
    for i in 0..8u32 {
        batch.put(format!("batch{i}").into_bytes(), format!("bv{i}").into_bytes());
    }
    db.write_batch(batch).unwrap();
    let snapshot = hook.snapshot.lock().unwrap().take().expect("snapshot captured mid-commit");
    drop(db);

    // Crash variant 1: the frame reached the platter whole. Recovery must
    // apply the entire batch.
    fs.restore(&snapshot);
    {
        let db = Db::open(env.clone(), options.clone(), None).unwrap();
        for i in 0..8u32 {
            assert_eq!(
                &db.get(format!("batch{i}").as_bytes()).unwrap().expect("batch record").value[..],
                format!("bv{i}").as_bytes(),
                "intact frame must apply whole"
            );
        }
    }

    // Crash variant 2: the tail of the batch frame is torn (the last byte
    // never hit the disk — simulated by corrupting it). Recovery must
    // truncate the torn frame and apply *none* of the batch.
    fs.restore(&snapshot);
    let wal = fs.open(&active_wal(&fs)).unwrap();
    wal.corrupt(wal.len() - 1, 0x5a);
    let db = Db::open(env, options, None).unwrap();
    for i in 0..8u32 {
        assert!(
            db.get(format!("batch{i}").as_bytes()).unwrap().is_none(),
            "no record of a torn batch may be visible (partial application)"
        );
    }
    for i in 0..20u32 {
        let key = format!("pre{i:03}");
        assert_eq!(
            &db.get(key.as_bytes()).unwrap().expect("acknowledged pre-batch write lost").value[..],
            b"stable",
            "{key}"
        );
    }
    // The store keeps working past the truncated tail; timestamps resume
    // above every recovered record.
    let ts = db.put(b"post-crash", b"ok").unwrap();
    assert!(ts > 20, "timestamp counter must resume past recovered records");
    assert!(db.get(b"post-crash").unwrap().is_some());
}

#[test]
fn batched_puts_pay_one_ecall_and_produce_singleton_trusted_state() {
    let small = |platform: &std::sync::Arc<Platform>| {
        ElsmP2::open(
            platform.clone(),
            P2Options { write_buffer_bytes: 1 << 20, ..P2Options::default() },
        )
        .unwrap()
    };
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..64u32)
        .map(|i| (format!("key{i:04}").into_bytes(), format!("val{i}").into_bytes()))
        .collect();
    let refs: Vec<(&[u8], &[u8])> =
        items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();

    let p_single = Platform::with_defaults();
    let s_single = small(&p_single);
    let ecalls0 = p_single.stats().ecalls;
    for (k, v) in &refs {
        s_single.put(k, v).unwrap();
    }
    assert_eq!(p_single.stats().ecalls - ecalls0, 64, "one transition per singleton put");

    let p_batch = Platform::with_defaults();
    let s_batch = small(&p_batch);
    let ecalls0 = p_batch.stats().ecalls;
    let timestamps = s_batch.put_batch(&refs).unwrap();
    assert_eq!(p_batch.stats().ecalls - ecalls0, 1, "one transition for the whole batch");
    assert_eq!(timestamps.len(), 64);

    // The enclave's trusted state must be bit-for-bit identical: batching
    // amortizes costs, it never changes what the enclave commits to.
    assert_eq!(
        s_single.trusted().wal_digest(),
        s_batch.trusted().wal_digest(),
        "batched and singleton WAL digests must agree"
    );
    s_single.db().flush().unwrap();
    s_batch.db().flush().unwrap();
    assert_eq!(
        s_single.trusted().commitments(),
        s_batch.trusted().commitments(),
        "level commitments must agree after identical flushes"
    );
    for (k, _) in &refs {
        let a = s_single.get(k).unwrap().expect("present");
        let b = s_batch.get(k).unwrap().expect("present");
        assert_eq!(a, b, "verified answers must agree");
    }

    // And the batch is cheaper on the virtual clock.
    assert!(
        p_batch.clock().now_ns() < p_single.clock().now_ns(),
        "batch {} must be cheaper than singletons {}",
        p_batch.clock().now_ns(),
        p_single.clock().now_ns()
    );
}

#[test]
fn delete_batch_hides_keys_in_one_transition() {
    let platform = Platform::with_defaults();
    let store = ElsmP2::open(
        platform.clone(),
        P2Options { write_buffer_bytes: 1 << 20, ..P2Options::default() },
    )
    .unwrap();
    let keys: Vec<Vec<u8>> = (0..16u32).map(|i| format!("k{i:02}").into_bytes()).collect();
    let key_refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
    let items: Vec<(&[u8], &[u8])> = key_refs.iter().map(|k| (*k, b"v".as_slice())).collect();
    store.put_batch(&items).unwrap();
    let ecalls0 = platform.stats().ecalls;
    store.delete_batch(&key_refs[..8]).unwrap();
    assert_eq!(platform.stats().ecalls - ecalls0, 1);
    for (i, k) in key_refs.iter().enumerate() {
        let visible = store.get(k).unwrap().is_some();
        assert_eq!(visible, i >= 8, "tombstone batch must hide exactly its keys");
    }
}

#[test]
fn confidential_store_batches_under_encryption() {
    let store = ConfidentialStore::open(
        Platform::with_defaults(),
        P2Options { write_buffer_bytes: 4 * 1024, ..P2Options::default() },
        b"tenant master key",
    )
    .unwrap();
    let items: Vec<(Vec<u8>, Vec<u8>)> = (0..32u32)
        .map(|i| (format!("user{i:03}").into_bytes(), format!("balance={i}").into_bytes()))
        .collect();
    let refs: Vec<(&[u8], &[u8])> =
        items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    store.put_batch(&refs).unwrap();
    for (k, v) in &items {
        assert_eq!(store.get(k).unwrap().expect("present").value(), &v[..]);
    }
    // Ciphertext-only on disk, same as the singleton path.
    store.inner().db().flush().unwrap();
    for name in store.inner().fs().list() {
        let f = store.inner().fs().open(&name).unwrap();
        let bytes = f.peek(0, f.len()).unwrap();
        assert!(!bytes.windows(7).any(|w| w == b"balance"), "plaintext leaked into {name}");
    }
}

/// A lazy `WalSyncPolicy` must not lose acknowledged writes across a
/// *clean* shutdown: `ElsmP2::close` drains the enclave-side WAL buffer
/// before sealing, so reopening recovers every record the sealed WAL
/// digest covers.
#[test]
fn lazy_wal_sync_survives_clean_shutdown() {
    use elsm_repro::lsm_store::WalSyncPolicy;
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let options = P2Options {
        write_buffer_bytes: 1 << 20,
        wal_sync: WalSyncPolicy::EveryNBytes(1 << 20), // never reaches the threshold
        ..P2Options::default()
    };
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), options.clone(), None).unwrap();
        for i in 0..10u32 {
            store.put(format!("lazy{i}").as_bytes(), b"buffered").unwrap();
        }
        store.close().unwrap();
    }
    let reopened = ElsmP2::open_with(platform, fs, options, None).unwrap();
    for i in 0..10u32 {
        let key = format!("lazy{i}");
        assert_eq!(
            reopened
                .get(key.as_bytes())
                .unwrap()
                .unwrap_or_else(|| panic!("{key} lost across clean shutdown"))
                .value(),
            b"buffered"
        );
    }
}

/// Racing singleton writers coalesce into shared commit groups: with 8 OS
/// threads hammering puts, the WAL must end up with fewer frames than
/// records, while every record stays durable and verifiable.
#[test]
fn racing_writers_coalesce_and_stay_verifiable() {
    let store = ElsmP2::open(
        Platform::with_defaults(),
        P2Options { write_buffer_bytes: 1 << 20, ..P2Options::default() },
    )
    .unwrap();
    let writes = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..8u32 {
            let (st, wr) = (&store, &writes);
            s.spawn(move || {
                for i in 0..150u32 {
                    st.put(format!("t{t}-k{i:03}").as_bytes(), b"v").unwrap();
                    wr.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(writes.load(Ordering::Relaxed), 1200);
    for t in 0..8u32 {
        for i in (0..150u32).step_by(17) {
            let key = format!("t{t}-k{i:03}");
            assert!(
                store.get(key.as_bytes()).unwrap().is_some(),
                "verified read lost {key} after concurrent group commits"
            );
        }
    }
}
