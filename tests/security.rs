//! Cross-crate security tests: attacks mounted at the *storage* layer
//! (files, snapshots) rather than on in-memory traces — the adversary's
//! real vantage point (§3.3: "the adversary is the untrusted host").

use elsm_repro::elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options, VerificationFailure};
use elsm_repro::sgx_sim::{MonotonicCounter, Platform};
use elsm_repro::sim_disk::{SimDisk, SimFs};

fn opts() -> P2Options {
    P2Options {
        write_buffer_bytes: 4 * 1024,
        level1_max_bytes: 16 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        ..P2Options::default()
    }
}

fn loaded_store() -> ElsmP2 {
    let store = ElsmP2::open(Platform::with_defaults(), opts()).unwrap();
    for i in 0..400u32 {
        store.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    store.db().flush().unwrap();
    store
}

#[test]
fn every_sstable_byte_is_load_bearing() {
    // Corrupt several positions in one table; at least the covered reads
    // must fail verification, and no read may return wrong data silently.
    let store = loaded_store();
    let sst = store.fs().list().into_iter().filter(|n| n.ends_with(".sst")).max().expect("a table");
    let file = store.fs().open(&sst).unwrap();
    for offset in [50usize, 500, 1500] {
        if offset < file.len() {
            file.corrupt(offset, 0xa5);
        }
    }
    let mut failures = 0;
    let mut verification_failures = 0u64;
    for i in 0..400u32 {
        let key = format!("key{i:04}");
        match store.get(key.as_bytes()) {
            Ok(Some(rec)) => {
                // Any record that *does* verify must be the correct one.
                assert_eq!(rec.value(), format!("v{i}").as_bytes(), "silent corruption on {key}");
            }
            Ok(None) => panic!("{key} verified as absent — corruption hidden"),
            Err(e) => {
                if matches!(e, ElsmError::Verification(_)) {
                    verification_failures += 1;
                }
                failures += 1;
            }
        }
    }
    assert!(failures > 0, "tampering must be observable");
    // Every refused read also landed on the audit stream.
    assert!(verification_failures > 0);
    assert!(
        store.telemetry().audit_total() >= verification_failures,
        "each verification failure must be audited"
    );
}

#[test]
fn scans_refuse_corrupted_levels() {
    let store = loaded_store();
    let sst = store.fs().list().into_iter().find(|n| n.ends_with(".sst")).unwrap();
    store.fs().open(&sst).unwrap().corrupt(200, 0xff);
    // A wide scan must either fail verification or return fully correct
    // data (if the corrupt block wasn't touched) — never partial garbage.
    match store.scan(b"key0000", b"key0399") {
        Err(ElsmError::Verification(f)) => {
            assert!(store.telemetry().audit_count(f.kind()) >= 1, "refused scan must be audited");
        }
        Err(ElsmError::Io(_)) => {}
        Ok(records) => {
            for r in records {
                let i: u32 = std::str::from_utf8(&r.key()[3..]).unwrap().parse().unwrap();
                assert_eq!(r.value(), format!("v{i}").as_bytes());
            }
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn sealed_state_tamper_is_rejected_at_restart() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), opts(), None).unwrap();
        for i in 0..100 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        store.close().unwrap();
    }
    // Flip a bit in the sealed enclave state.
    fs.open("ENCLAVE_STATE").unwrap().corrupt(20, 0x01);
    // The refused open leaves no store to ask, so hand in the registry
    // explicitly: the recovery path must audit before it fails.
    let registry = elsm_repro::telemetry::Telemetry::new();
    let options = P2Options { telemetry: registry.clone(), ..opts() };
    match ElsmP2::open_with(platform, fs, options, None) {
        Err(ElsmError::Verification(VerificationFailure::SealBroken)) => {}
        other => panic!("tampered seal must be rejected, got {other:?}"),
    }
    assert_eq!(registry.audit_count("SealBroken"), 1, "rejected restart must be audited");
}

#[test]
fn counter_survives_what_files_do_not() {
    // The fundamental asymmetry behind §5.6.1: the host can roll files
    // back, but not the hardware counter.
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let counter = MonotonicCounter::new(platform.clone());
    let options = P2Options {
        rollback: Some(elsm_repro::elsm::RollbackOptions { counter_write_buffer: 1 }),
        ..opts()
    };
    let snapshot_before_any_data = fs.snapshot();
    {
        let store =
            ElsmP2::open_with(platform.clone(), fs.clone(), options.clone(), Some(counter.clone()))
                .unwrap();
        store.put(b"k", b"v").unwrap();
        store.close().unwrap();
    }
    // Roll back to the pristine filesystem (no manifest at all): the
    // enclave opens "fresh" — and a fresh open with a counter that has
    // advanced must be treated as suspicious by deployments; our API
    // surfaces it by the counter no longer matching a fresh dataset.
    fs.restore(&snapshot_before_any_data);
    let store = ElsmP2::open_with(platform, fs, options, Some(counter.clone())).unwrap();
    let fresh_digest = store.trusted().dataset_digest();
    assert!(
        !counter.verify_current(&fresh_digest),
        "a wiped store must not match the advanced counter epoch"
    );
}

#[test]
fn poisoned_store_refuses_service() {
    let store = loaded_store();
    store.trusted().poison();
    assert!(matches!(store.get(b"key0001"), Err(ElsmError::Poisoned)));
    assert!(matches!(store.put(b"x", b"y"), Err(ElsmError::Poisoned)));
    assert!(matches!(store.scan(b"a", b"z"), Err(ElsmError::Poisoned)));
}

fn vlog_opts(cache_bytes: usize) -> P2Options {
    P2Options {
        vlog: Some(elsm_repro::lsm_store::VlogConfig {
            value_threshold: 128,
            target_file_bytes: 64 * 1024,
            gc_garbage_ratio: 0.3,
            gc_enabled: false,
        }),
        verified_cache_bytes: cache_bytes,
        ..opts()
    }
}

/// Splices the byte range `[src, src + len)` of `file` over
/// `[dst, dst + len)` — the host-level "copy one entry over another"
/// attack, built from peeks and XOR corruptions.
fn splice(file: &elsm_repro::sim_disk::SimFile, src: usize, dst: usize, len: usize) {
    let from = file.peek(src, len).unwrap();
    let over = file.peek(dst, len).unwrap();
    for i in 0..len {
        let mask = from[i] ^ over[i];
        if mask != 0 {
            file.corrupt(dst + i, mask);
        }
    }
}

#[test]
fn swapped_vlog_entries_are_detected() {
    // The host copies one CRC-intact value-log entry over another: the
    // read must fail verification, never answer with the other key's
    // value.
    let store = ElsmP2::open(Platform::with_defaults(), vlog_opts(0)).unwrap();
    store.put(b"bigA", &[b'A'; 2048]).unwrap();
    store.put(b"bigB", &[b'B'; 2048]).unwrap();
    store.db().flush().unwrap();
    let name = store.fs().list().into_iter().find(|n| n.ends_with(".vlg")).expect("a value log");
    let file = store.fs().open(&name).unwrap();
    // Same key length, same value length: two identically-sized entries
    // back to back.
    assert_eq!(file.len() % 2, 0, "two equal-size entries expected");
    let half = file.len() / 2;
    splice(&file, 0, half, half);
    match store.get(b"bigB") {
        Err(ElsmError::Verification(VerificationFailure::VlogEntryTampered { .. })) => {}
        other => panic!("swapped vlog entry must be detected, got {other:?}"),
    }
    assert!(store.telemetry().audit_count("VlogEntryTampered") >= 1);
    // The untouched entry still verifies.
    assert_eq!(store.get(b"bigA").unwrap().expect("intact").value(), &[b'A'; 2048][..]);
}

#[test]
fn stale_vlog_entries_are_detected() {
    // Replay attack: after an overwrite, the host copies the *old* entry
    // (same key, older timestamp, valid CRC) over the new one. The MAC
    // committed in the pointer record binds the timestamp, so the stale
    // value must never be served.
    let store = ElsmP2::open(Platform::with_defaults(), vlog_opts(0)).unwrap();
    store.put(b"acct", &[b'1'; 2048]).unwrap();
    store.db().flush().unwrap();
    store.put(b"acct", &[b'2'; 2048]).unwrap();
    store.db().flush().unwrap();
    assert_eq!(store.get(b"acct").unwrap().expect("present").value(), &[b'2'; 2048][..]);
    let name = store.fs().list().into_iter().find(|n| n.ends_with(".vlg")).expect("a value log");
    let file = store.fs().open(&name).unwrap();
    assert_eq!(file.len() % 2, 0, "two equal-size entries expected");
    let half = file.len() / 2;
    splice(&file, 0, half, half);
    match store.get(b"acct") {
        Err(ElsmError::Verification(VerificationFailure::VlogEntryTampered { .. })) => {}
        other => panic!("stale vlog entry must be detected, got {other:?}"),
    }
    assert!(store.telemetry().audit_count("VlogEntryTampered") >= 1);
}

#[test]
fn poisoned_cache_entries_are_detected_not_served() {
    // An adversary with write access to the cache memory scribbles over a
    // cached value. The per-entry tag catches it: the poisoned entry is
    // discarded, counted, and the query falls back to the verified disk
    // path — the caller never sees wrong bytes.
    let store = ElsmP2::open(Platform::with_defaults(), vlog_opts(256 * 1024)).unwrap();
    store.put(b"hot", b"payload").unwrap();
    store.db().flush().unwrap();
    assert_eq!(store.get(b"hot").unwrap().expect("present").value(), b"payload");
    let before = store.cache_stats();
    store.get(b"hot").unwrap();
    assert!(store.cache_stats().record_hits > before.record_hits, "second read must hit");
    assert!(store.verified_cache().unwrap().corrupt_record(b"hot"), "entry present to poison");
    let rec = store.get(b"hot").unwrap().expect("fallback answer");
    assert_eq!(rec.value(), b"payload", "poisoned cache must not change answers");
    let stats = store.cache_stats();
    assert!(stats.tamper_detected >= 1, "tampering must be counted: {stats:?}");
    assert!(store.telemetry().audit_count("CacheTampered") >= 1, "tampering must be audited");
}

#[test]
fn cache_entries_from_other_epochs_are_never_served() {
    // Epoch replay: an entry re-tagged (validly) for a different epoch
    // must structurally miss — the cache only answers under an exact
    // match with the store's current commitment epoch.
    let store = ElsmP2::open(Platform::with_defaults(), vlog_opts(256 * 1024)).unwrap();
    store.put(b"k", b"v1").unwrap();
    store.db().flush().unwrap();
    assert_eq!(store.get(b"k").unwrap().expect("present").value(), b"v1");
    assert!(
        store.verified_cache().unwrap().force_record_epoch(b"k", 999_999),
        "entry present to re-tag"
    );
    let before = store.cache_stats();
    assert_eq!(store.get(b"k").unwrap().expect("present").value(), b"v1");
    let stats = store.cache_stats();
    assert_eq!(stats.record_hits, before.record_hits, "mis-epoch entry must not serve");
    assert!(stats.record_misses > before.record_misses);
    // A structural miss is not tampering: the audit stream stays silent.
    assert_eq!(store.telemetry().audit_count("CacheTampered"), 0);
}

#[test]
fn hidden_level_detected_with_separation_on() {
    // §5.5.2's level-hiding attack, mounted against a store whose values
    // live in the value log: pointer records participate in the level
    // commitments exactly like inline values, so the detection guarantee
    // is unchanged.
    use elsm_repro::elsm::adversary;
    use elsm_repro::lsm_store::LevelOutcome;
    let store = ElsmP2::open(Platform::with_defaults(), vlog_opts(0)).unwrap();
    for i in 0..40u32 {
        store.put(format!("key{i:04}").as_bytes(), &[i as u8; 1024]).unwrap();
    }
    store.db().flush().unwrap();
    let trace = store.raw_get_trace(b"key0007").unwrap();
    let hit_level = trace
        .levels
        .iter()
        .find(|l| matches!(l.outcome, LevelOutcome::Hit(_)))
        .expect("a hit level")
        .level;
    let mut hidden = trace.clone();
    adversary::hide_level(&mut hidden, hit_level);
    let failure = store
        .verify_get_trace(b"key0007", &hidden)
        .expect_err("hidden level must be detected with separation on");
    assert!(store.telemetry().audit_count(failure.kind()) >= 1, "detection must be audited");
    // The honest read still resolves the separated value.
    assert_eq!(store.get(b"key0007").unwrap().expect("present").value(), &[7u8; 1024][..]);
}

#[test]
fn wal_corruption_truncates_but_never_fabricates() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), opts(), None).unwrap();
        for i in 0..10 {
            store.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        store.close().unwrap();
    }
    // Corrupt the WAL tail.
    let wal = fs.list().into_iter().find(|n| n.starts_with("wal-")).unwrap();
    let f = fs.open(&wal).unwrap();
    if f.len() > 10 {
        f.corrupt(f.len() - 5, 0xff);
    }
    let store = ElsmP2::open_with(platform, fs, opts(), None).unwrap();
    // Recovered data is a prefix of what was written: values correct or
    // absent, never wrong.
    for i in 0..10 {
        if let Some(rec) = store.get(format!("k{i}").as_bytes()).unwrap() {
            assert_eq!(rec.value(), format!("v{i}").as_bytes());
        }
    }
}
