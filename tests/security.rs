//! Cross-crate security tests: attacks mounted at the *storage* layer
//! (files, snapshots) rather than on in-memory traces — the adversary's
//! real vantage point (§3.3: "the adversary is the untrusted host").

use elsm_repro::elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options, VerificationFailure};
use elsm_repro::sgx_sim::{MonotonicCounter, Platform};
use elsm_repro::sim_disk::{SimDisk, SimFs};

fn opts() -> P2Options {
    P2Options {
        write_buffer_bytes: 4 * 1024,
        level1_max_bytes: 16 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        ..P2Options::default()
    }
}

fn loaded_store() -> ElsmP2 {
    let store = ElsmP2::open(Platform::with_defaults(), opts()).unwrap();
    for i in 0..400u32 {
        store.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    store.db().flush().unwrap();
    store
}

#[test]
fn every_sstable_byte_is_load_bearing() {
    // Corrupt several positions in one table; at least the covered reads
    // must fail verification, and no read may return wrong data silently.
    let store = loaded_store();
    let sst = store.fs().list().into_iter().filter(|n| n.ends_with(".sst")).max().expect("a table");
    let file = store.fs().open(&sst).unwrap();
    for offset in [50usize, 500, 1500] {
        if offset < file.len() {
            file.corrupt(offset, 0xa5);
        }
    }
    let mut failures = 0;
    for i in 0..400u32 {
        let key = format!("key{i:04}");
        match store.get(key.as_bytes()) {
            Ok(Some(rec)) => {
                // Any record that *does* verify must be the correct one.
                assert_eq!(rec.value(), format!("v{i}").as_bytes(), "silent corruption on {key}");
            }
            Ok(None) => panic!("{key} verified as absent — corruption hidden"),
            Err(_) => failures += 1,
        }
    }
    assert!(failures > 0, "tampering must be observable");
}

#[test]
fn scans_refuse_corrupted_levels() {
    let store = loaded_store();
    let sst = store.fs().list().into_iter().find(|n| n.ends_with(".sst")).unwrap();
    store.fs().open(&sst).unwrap().corrupt(200, 0xff);
    // A wide scan must either fail verification or return fully correct
    // data (if the corrupt block wasn't touched) — never partial garbage.
    match store.scan(b"key0000", b"key0399") {
        Err(ElsmError::Verification(_)) | Err(ElsmError::Io(_)) => {}
        Ok(records) => {
            for r in records {
                let i: u32 = std::str::from_utf8(&r.key()[3..]).unwrap().parse().unwrap();
                assert_eq!(r.value(), format!("v{i}").as_bytes());
            }
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn sealed_state_tamper_is_rejected_at_restart() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), opts(), None).unwrap();
        for i in 0..100 {
            store.put(format!("k{i}").as_bytes(), b"v").unwrap();
        }
        store.close().unwrap();
    }
    // Flip a bit in the sealed enclave state.
    fs.open("ENCLAVE_STATE").unwrap().corrupt(20, 0x01);
    match ElsmP2::open_with(platform, fs, opts(), None) {
        Err(ElsmError::Verification(VerificationFailure::SealBroken)) => {}
        other => panic!("tampered seal must be rejected, got {other:?}"),
    }
}

#[test]
fn counter_survives_what_files_do_not() {
    // The fundamental asymmetry behind §5.6.1: the host can roll files
    // back, but not the hardware counter.
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let counter = MonotonicCounter::new(platform.clone());
    let options = P2Options {
        rollback: Some(elsm_repro::elsm::RollbackOptions { counter_write_buffer: 1 }),
        ..opts()
    };
    let snapshot_before_any_data = fs.snapshot();
    {
        let store =
            ElsmP2::open_with(platform.clone(), fs.clone(), options.clone(), Some(counter.clone()))
                .unwrap();
        store.put(b"k", b"v").unwrap();
        store.close().unwrap();
    }
    // Roll back to the pristine filesystem (no manifest at all): the
    // enclave opens "fresh" — and a fresh open with a counter that has
    // advanced must be treated as suspicious by deployments; our API
    // surfaces it by the counter no longer matching a fresh dataset.
    fs.restore(&snapshot_before_any_data);
    let store = ElsmP2::open_with(platform, fs, options, Some(counter.clone())).unwrap();
    let fresh_digest = store.trusted().dataset_digest();
    assert!(
        !counter.verify_current(&fresh_digest),
        "a wiped store must not match the advanced counter epoch"
    );
}

#[test]
fn poisoned_store_refuses_service() {
    let store = loaded_store();
    store.trusted().poison();
    assert!(matches!(store.get(b"key0001"), Err(ElsmError::Poisoned)));
    assert!(matches!(store.put(b"x", b"y"), Err(ElsmError::Poisoned)));
    assert!(matches!(store.scan(b"a", b"z"), Err(ElsmError::Poisoned)));
}

#[test]
fn wal_corruption_truncates_but_never_fabricates() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), opts(), None).unwrap();
        for i in 0..10 {
            store.put(format!("k{i}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        store.close().unwrap();
    }
    // Corrupt the WAL tail.
    let wal = fs.list().into_iter().find(|n| n.starts_with("wal-")).unwrap();
    let f = fs.open(&wal).unwrap();
    if f.len() > 10 {
        f.corrupt(f.len() - 5, 0xff);
    }
    let store = ElsmP2::open_with(platform, fs, opts(), None).unwrap();
    // Recovered data is a prefix of what was written: values correct or
    // absent, never wrong.
    for i in 0..10 {
        if let Some(rec) = store.get(format!("k{i}").as_bytes()).unwrap() {
            assert_eq!(rec.value(), format!("v{i}").as_bytes());
        }
    }
}
