//! Crash tests for the authenticated value log: a torn log tail must be
//! detected (never served as data), and a crash in the middle of a
//! value-log GC must leave the store whole — every key readable with its
//! latest value, as if the GC either completed or never started.
//!
//! Both use the fs-snapshot technique of `tests/group_commit.rs`: a
//! listener hook captures the simulated filesystem at the crash instant
//! and the test replays recovery from that image.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use elsm_repro::elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options, VerificationFailure};
use elsm_repro::lsm_store::{CompactionInfo, Db, Options, StorageEnv, StoreListener, VlogConfig};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::sim_disk::{FsSnapshot, SimDisk, SimFs};

fn vlog_config() -> VlogConfig {
    VlogConfig {
        value_threshold: 128,
        // Small files so overwritten entries land in *sealed* files — the
        // active file is never a GC victim.
        target_file_bytes: 4 * 1024,
        gc_garbage_ratio: 0.3,
        gc_enabled: false,
    }
}

fn p2_vlog_options() -> P2Options {
    P2Options {
        write_buffer_bytes: 8 * 1024,
        level1_max_bytes: 64 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        vlog: Some(vlog_config()),
        ..P2Options::default()
    }
}

/// A torn tail on the newest value-log file: reads of the torn entry must
/// fail verification — never come back absent or with fabricated bytes —
/// while untouched entries and new writes keep working.
#[test]
fn torn_vlog_tail_is_detected_never_fabricated() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let options = p2_vlog_options();
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), options.clone(), None).unwrap();
        for i in 0..8u32 {
            store.put(format!("key{i}").as_bytes(), &[i as u8; 1024]).unwrap();
        }
        store.db().flush().unwrap();
        store.close().unwrap();
    }
    // The crash: the last few bytes of the active value-log file never
    // made it to the platter intact.
    let vlg = fs.list().into_iter().filter(|n| n.ends_with(".vlg")).max().expect("a value log");
    let file = fs.open(&vlg).unwrap();
    file.corrupt(file.len() - 3, 0x5a);

    let store = ElsmP2::open_with(platform, fs, options, None).unwrap();
    let mut failures = 0;
    for i in 0..8u32 {
        let key = format!("key{i}");
        match store.get(key.as_bytes()) {
            Ok(Some(rec)) => {
                assert_eq!(rec.value(), &[i as u8; 1024][..], "silent corruption on {key}");
            }
            Ok(None) => panic!("{key} verified as absent — torn entry hidden"),
            Err(ElsmError::Verification(VerificationFailure::VlogEntryTampered { .. })) => {
                failures += 1;
            }
            Err(e) => panic!("unexpected error on {key}: {e}"),
        }
    }
    assert_eq!(failures, 1, "exactly the torn entry must fail verification");
    // The store keeps working: a fresh separated value round-trips.
    store.put(b"fresh", &[9u8; 1024]).unwrap();
    store.db().flush().unwrap();
    assert_eq!(store.get(b"fresh").unwrap().expect("fresh value").value(), &[9u8; 1024][..]);
}

/// Captures an [`FsSnapshot`] from inside a compaction merge once armed —
/// the GC's merge has run and rewritten entries sit in the active log
/// file, but the manifest still names the victim files. That is the
/// mid-GC crash instant.
struct MidGcSnap {
    fs: std::sync::Arc<SimFs>,
    armed: AtomicBool,
    snapshot: Mutex<Option<FsSnapshot>>,
}

impl StoreListener for MidGcSnap {
    fn on_compaction_end(&self, _info: &CompactionInfo) {
        if self.armed.load(Ordering::SeqCst) {
            let mut slot = self.snapshot.lock().unwrap();
            if slot.is_none() {
                *slot = Some(self.fs.snapshot());
            }
        }
    }
}

/// A crash in the middle of value-log GC is whole-or-nothing: recovery
/// from the mid-GC image serves every key's latest value, and a re-run of
/// the GC still converges.
#[test]
fn mid_vlog_gc_crash_recovers_whole_or_nothing() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let options = Options {
        write_buffer_bytes: 1 << 20, // explicit flushes only
        keep_old_versions: false,
        vlog: Some(vlog_config()),
        ..Options::default()
    };
    let env = StorageEnv::new(platform, fs.clone(), options.env.clone(), None);
    let hook = std::sync::Arc::new(MidGcSnap {
        fs: fs.clone(),
        armed: AtomicBool::new(false),
        snapshot: Mutex::new(None),
    });
    let db = Db::open(env.clone(), options.clone(), Some(hook.clone())).unwrap();
    for i in 0..20u32 {
        db.put(format!("k{i:02}").as_bytes(), &[i as u8; 600]).unwrap();
    }
    db.flush().unwrap();
    // Overwrites strand the first versions' log entries as garbage once
    // the old pointer records are compacted away.
    for i in 0..10u32 {
        db.put(format!("k{i:02}").as_bytes(), &[0xEE; 600]).unwrap();
    }
    db.flush().unwrap();
    db.compact_major().unwrap();
    let garbage = db.stats().vlog_garbage_bytes;
    assert!(garbage > 0, "superseded entries must be counted as garbage");

    hook.armed.store(true, Ordering::SeqCst);
    db.vlog_gc().unwrap();
    let snapshot = hook.snapshot.lock().unwrap().take().expect("snapshot captured mid-GC");
    assert!(db.stats().vlog_garbage_bytes < garbage, "completed GC reclaims garbage");
    drop(db);

    // Crash at the mid-GC instant: rewritten entries are in the active
    // file, the victims are still in the manifest. Recovery must serve
    // every key's latest value — the half-finished rewrite is invisible.
    fs.restore(&snapshot);
    let db = Db::open(env, options, None).unwrap();
    for i in 0..20u32 {
        let key = format!("k{i:02}");
        let expect: &[u8] = if i < 10 { &[0xEE; 600] } else { &[i as u8; 600] };
        let rec = db.get(key.as_bytes()).unwrap().unwrap_or_else(|| panic!("{key} lost mid-GC"));
        assert_eq!(&rec.value[..], expect, "{key} must resolve to its latest value");
    }
    // And the GC itself still converges after the crash.
    db.vlog_gc().unwrap();
    for i in 0..20u32 {
        let key = format!("k{i:02}");
        assert!(db.get(key.as_bytes()).unwrap().is_some(), "{key} lost by the re-run GC");
    }
}
