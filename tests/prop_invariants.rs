//! Property-based tests on the core data structures and protocol
//! invariants, spanning crates.

use elsm_repro::crypto::{AeadKey, DetKey, OpeKey};
use elsm_repro::merkle::tree::leaf_hash;
use elsm_repro::merkle::{
    chain_digest, prove_range, verify_range, LevelDigest, MerkleTree, RecordProof,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every leaf of every tree shape verifies; any single-bit index shift
    /// fails.
    #[test]
    fn merkle_audit_paths_sound(n in 1usize..80, probe in 0usize..80) {
        let leaves: Vec<_> = (0..n).map(|i| leaf_hash(format!("L{i}").as_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let i = probe % n;
        let path = tree.audit_path(i);
        prop_assert!(MerkleTree::verify(tree.root(), n, i, leaves[i], &path));
        if n > 1 {
            let j = (i + 1) % n;
            prop_assert!(!MerkleTree::verify(tree.root(), n, j, leaves[i], &path));
        }
    }

    /// Range proofs verify exactly for the proven window and reject any
    /// shifted or truncated presentation.
    #[test]
    fn range_proofs_sound(n in 1usize..60, a in 0usize..60, b in 0usize..60) {
        let (lo, hi) = (a.min(b) % n, b.max(a) % n);
        let (lo, hi) = (lo.min(hi), hi.max(lo));
        let leaves: Vec<_> = (0..n).map(|i| leaf_hash(format!("R{i}").as_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let proof = prove_range(&tree, lo, hi);
        prop_assert!(verify_range(tree.root(), n, lo, &leaves[lo..=hi], &proof));
        if lo > 0 {
            prop_assert!(!verify_range(tree.root(), n, lo - 1, &leaves[lo..=hi], &proof));
        }
        if hi > lo {
            prop_assert!(!verify_range(tree.root(), n, lo, &leaves[lo..hi], &proof));
        }
    }

    /// Chain digests are injective over version order and content
    /// (prefix-freedom of the record encoding is assumed by construction).
    #[test]
    fn chain_digest_orders_matter(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..20), 2..6)) {
        let d1 = chain_digest(&records);
        let mut reversed = records.clone();
        reversed.reverse();
        if records != reversed {
            prop_assert_ne!(d1, chain_digest(&reversed));
        }
    }

    /// Level digests: every version of every key proves against the
    /// commitment; a newest-claim on an older version never verifies.
    #[test]
    fn level_digest_proofs_sound(keys in prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..8),
        1usize..4,
        1..12,
    )) {
        let mut records = Vec::new();
        for (k, versions) in &keys {
            for v in 0..*versions {
                records.push((k.clone(), format!("val-{v}").into_bytes()));
            }
        }
        let digest = LevelDigest::from_records(
            3,
            records.iter().map(|(k, r)| (k.as_slice(), r.clone())),
        );
        let commitment = digest.commitment();
        prop_assert_eq!(digest.leaf_count(), keys.len());
        for (leaf, (_k, versions)) in keys.iter().enumerate() {
            for v in 0..(*versions).min(3) {
                let proof = digest.prove_version(leaf, v);
                let bytes = &digest.chain_records(leaf)[v];
                prop_assert_eq!(proof.verify(&commitment, bytes), Ok(()));
            }
        }
    }

    /// RecordProof serialization round-trips for arbitrary shapes.
    #[test]
    fn record_proof_codec_round_trips(
        level in 0u32..10,
        leaf_index in 0u64..1000,
        leaf_count in 1u64..1000,
        newer in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..4),
        path_len in 0usize..12,
    ) {
        use elsm_repro::merkle::ChainPosition;
        use elsm_repro::crypto::sha256;
        let chain = if newer.is_empty() {
            ChainPosition::Newest { older_digest: sha256(b"older") }
        } else {
            ChainPosition::Older { newer_records: newer, older_digest: sha256(b"older") }
        };
        let proof = RecordProof {
            level,
            leaf_index,
            leaf_count,
            chain,
            audit_path: (0..path_len).map(|i| sha256(&[i as u8])).collect(),
        };
        let encoded = proof.encode();
        let (decoded, used) = RecordProof::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, proof);
        prop_assert_eq!(used, encoded.len());
    }

    /// Deterministic encryption round-trips and is injective.
    #[test]
    fn det_round_trips(a in prop::collection::vec(any::<u8>(), 0..64),
                       b in prop::collection::vec(any::<u8>(), 0..64)) {
        let key = DetKey::derive(b"prop master");
        let ca = key.encrypt(&a);
        prop_assert_eq!(key.decrypt(&ca).unwrap(), a.clone());
        if a != b {
            prop_assert_ne!(ca, key.encrypt(&b));
        }
    }

    /// AEAD round-trips; any bit flip is rejected.
    #[test]
    fn aead_round_trips(pt in prop::collection::vec(any::<u8>(), 0..128),
                        aad in prop::collection::vec(any::<u8>(), 0..32),
                        flip in 0usize..160) {
        let key = AeadKey::derive(b"prop aead");
        let nonce = elsm_repro::crypto::aead::nonce_from_u64s(7, 7);
        let mut ct = key.seal(&nonce, &aad, &pt);
        prop_assert_eq!(key.open(&nonce, &aad, &ct).unwrap(), pt);
        let idx = flip % ct.len();
        ct[idx] ^= 1;
        prop_assert!(key.open(&nonce, &aad, &ct).is_err());
    }

    /// OPE preserves order on arbitrary pairs.
    #[test]
    fn ope_preserves_order(a in any::<u64>(), b in any::<u64>()) {
        let key = OpeKey::derive(b"prop ope");
        prop_assert_eq!(a.cmp(&b), key.encode(a).cmp(&key.encode(b)));
    }

    /// SHA-256 incremental == one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(data in prop::collection::vec(any::<u8>(), 0..512),
                                 cut in 0usize..512) {
        use elsm_repro::crypto::{sha256, Sha256};
        let cut = cut % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Write-path equivalence: any interleaving of singleton and batched
    /// writes over the same operation sequence yields identical verified
    /// reads, identical scan results, and identical level commitments —
    /// batching amortizes costs, it never changes what the enclave
    /// commits to.
    ///
    /// Each group of ops is applied to store A op-by-op and to store B as
    /// batches (split into maximal same-kind runs so put/delete order is
    /// preserved); a random subset of group boundaries also flushes both
    /// stores, driving identical flush/compaction schedules.
    #[test]
    fn batched_and_singleton_writes_agree(
        groups in prop::collection::vec(
            (
                prop::collection::vec(
                    (0u16..80, any::<u16>(), 0u8..8), // delete when the u8 is 0
                    1..10,
                ),
                0u8..2,  // apply this group as batches?
                0u8..10, // flush both stores afterwards when < 3?
            ),
            1..10,
        ),
    ) {
        use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
        use elsm_repro::sgx_sim::Platform;
        let open = || ElsmP2::open(
            Platform::with_defaults(),
            P2Options {
                // Large write buffer: flush points are the *explicit* ones
                // below, identical for both stores, so flush/compaction
                // schedules — and therefore level contents — match exactly.
                write_buffer_bytes: 1 << 20,
                level1_max_bytes: 8 * 1024,
                level_multiplier: 4,
                max_levels: 3,
                ..P2Options::default()
            },
        ).unwrap();
        let singles = open();
        let batched = open();
        for (ops, as_batch, flush_after) in &groups {
            let as_batch = *as_batch == 1;
            let flush_after = *flush_after < 3;
            // Store A: strictly op-by-op.
            for (keyno, val, delete_coin) in ops {
                let key = format!("k{keyno:03}").into_bytes();
                if *delete_coin == 0 {
                    singles.delete(&key).unwrap();
                } else {
                    singles.put(&key, format!("v{val}").as_bytes()).unwrap();
                }
            }
            // Store B: the same ops as maximal same-kind batch runs (or
            // op-by-op when the coin says so — interleavings of both call
            // styles must agree too).
            let encoded: Vec<(Vec<u8>, Vec<u8>, bool)> = ops
                .iter()
                .map(|(keyno, val, delete_coin)| (
                    format!("k{keyno:03}").into_bytes(),
                    format!("v{val}").into_bytes(),
                    *delete_coin == 0,
                ))
                .collect();
            if as_batch {
                let mut run = 0usize;
                while run < encoded.len() {
                    let kind = encoded[run].2;
                    let mut end = run;
                    while end < encoded.len() && encoded[end].2 == kind {
                        end += 1;
                    }
                    if kind {
                        let keys: Vec<&[u8]> =
                            encoded[run..end].iter().map(|(k, _, _)| k.as_slice()).collect();
                        batched.delete_batch(&keys).unwrap();
                    } else {
                        let items: Vec<(&[u8], &[u8])> = encoded[run..end]
                            .iter()
                            .map(|(k, v, _)| (k.as_slice(), v.as_slice()))
                            .collect();
                        batched.put_batch(&items).unwrap();
                    }
                    run = end;
                }
            } else {
                for (key, value, is_delete) in &encoded {
                    if *is_delete {
                        batched.delete(key).unwrap();
                    } else {
                        batched.put(key, value).unwrap();
                    }
                }
            }
            if flush_after {
                singles.db().flush().unwrap();
                batched.db().flush().unwrap();
            }
        }
        // Identical verified reads for every key ever touched.
        for keyno in 0u16..80 {
            let key = format!("k{keyno:03}").into_bytes();
            let a = singles.get(&key).unwrap();
            let b = batched.get(&key).unwrap();
            prop_assert_eq!(a, b, "verified GET diverged for k{:03}", keyno);
        }
        // Identical verified scan results over the full range.
        let scan_a = singles.scan(b"k000", b"k999").unwrap();
        let scan_b = batched.scan(b"k000", b"k999").unwrap();
        prop_assert_eq!(scan_a, scan_b, "verified SCAN diverged");
        // Identical enclave state: WAL digest and every level commitment.
        prop_assert_eq!(
            singles.trusted().wal_digest(),
            batched.trusted().wal_digest(),
            "WAL digests diverged"
        );
        prop_assert_eq!(
            singles.trusted().commitments(),
            batched.trusted().commitments(),
            "level commitments diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharding transparency: an arbitrary interleaving of singleton and
    /// batched writes applied to a hash-sharded cluster and to a single
    /// store yields identical verified GET answers (presence + value;
    /// timestamps are per-shard and deliberately not compared) and
    /// identical, totally key-ordered verified SCAN results — the
    /// partitioner changes who stores and proves a record, never what
    /// the client observes.
    #[test]
    fn sharded_cluster_matches_single_store_oracle(
        groups in prop::collection::vec(
            (
                prop::collection::vec(
                    (0u16..60, any::<u16>(), 0u8..8), // delete when the u8 is 0
                    1..8,
                ),
                0u8..2,  // apply this group as batches?
                0u8..10, // flush both systems afterwards when < 3?
            ),
            1..8,
        ),
    ) {
        use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
        use elsm_repro::sgx_sim::Platform;
        use elsm_repro::shard::{ShardedKv, ShardedOptions};
        let store_options = P2Options {
            write_buffer_bytes: 1 << 20,
            level1_max_bytes: 8 * 1024,
            level_multiplier: 4,
            max_levels: 3,
            ..P2Options::default()
        };
        let cluster = ShardedKv::open(
            Platform::with_defaults(),
            ShardedOptions::hash(3, store_options.clone()),
        ).unwrap();
        let oracle = ElsmP2::open(Platform::with_defaults(), store_options).unwrap();
        for (ops, as_batch, flush_after) in &groups {
            let encoded: Vec<(Vec<u8>, Vec<u8>, bool)> = ops
                .iter()
                .map(|(keyno, val, delete_coin)| (
                    format!("k{keyno:03}").into_bytes(),
                    format!("v{val}").into_bytes(),
                    *delete_coin == 0,
                ))
                .collect();
            if *as_batch == 1 {
                // Maximal same-kind runs, applied to both systems through
                // their batch entry points (the cluster splits each batch
                // per shard under the hood).
                let mut run = 0usize;
                while run < encoded.len() {
                    let kind = encoded[run].2;
                    let mut end = run;
                    while end < encoded.len() && encoded[end].2 == kind {
                        end += 1;
                    }
                    if kind {
                        let keys: Vec<&[u8]> =
                            encoded[run..end].iter().map(|(k, _, _)| k.as_slice()).collect();
                        cluster.delete_batch(&keys).unwrap();
                        oracle.delete_batch(&keys).unwrap();
                    } else {
                        let items: Vec<(&[u8], &[u8])> = encoded[run..end]
                            .iter()
                            .map(|(k, v, _)| (k.as_slice(), v.as_slice()))
                            .collect();
                        cluster.put_batch(&items).unwrap();
                        oracle.put_batch(&items).unwrap();
                    }
                    run = end;
                }
            } else {
                for (key, value, is_delete) in &encoded {
                    if *is_delete {
                        cluster.delete(key).unwrap();
                        oracle.delete(key).unwrap();
                    } else {
                        cluster.put(key, value).unwrap();
                        oracle.put(key, value).unwrap();
                    }
                }
            }
            if *flush_after < 3 {
                cluster.flush().unwrap();
                oracle.db().flush().unwrap();
            }
        }
        for keyno in 0u16..60 {
            let key = format!("k{keyno:03}").into_bytes();
            let a = cluster.get(&key).unwrap().map(|r| r.value().to_vec());
            let b = oracle.get(&key).unwrap().map(|r| r.value().to_vec());
            prop_assert_eq!(a, b, "verified GET diverged for k{:03}", keyno);
        }
        let scan_c = cluster.scan(b"k000", b"k999").unwrap();
        let scan_o = oracle.scan(b"k000", b"k999").unwrap();
        prop_assert!(
            scan_c.windows(2).all(|w| w[0].key() < w[1].key()),
            "stitched scan must be totally ordered"
        );
        prop_assert_eq!(scan_c.len(), scan_o.len(), "verified SCAN lengths diverged");
        for (c, o) in scan_c.iter().zip(&scan_o) {
            prop_assert_eq!((c.key(), c.value()), (o.key(), o.value()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Replication transparency: under arbitrary interleavings of
    /// singleton/batched writes, explicit flushes, delayed replication
    /// delivery (writes land on the primary, replicas sync only at
    /// random points) and at most one kill-primary/promote failover,
    /// verified reads and scans on the acting primary **and on every
    /// live replica** agree with a single unreplicated store fed the
    /// same operations — replication changes who answers, never what a
    /// verified answer says, and failover loses nothing acknowledged.
    #[test]
    fn replicated_group_matches_single_store_oracle(
        groups in prop::collection::vec(
            (
                prop::collection::vec(
                    (0u16..60, any::<u16>(), 0u8..8), // delete when the u8 is 0
                    1..8,
                ),
                0u8..2,  // apply this group of ops as batches?
                0u8..10, // flush afterwards when < 3
                0u8..10, // deliver (sync replicas) afterwards when < 5
            ),
            1..8,
        ),
        failover_after in 0u8..12, // group index; >= len means no failover
    ) {
        use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
        use elsm_repro::replica::{ReplicationGroup, ReplicationOptions};
        use elsm_repro::sgx_sim::Platform;
        let store_options = P2Options {
            write_buffer_bytes: 1 << 20,
            level1_max_bytes: 8 * 1024,
            level_multiplier: 4,
            max_levels: 3,
            ..P2Options::default()
        };
        let group = ReplicationGroup::open(
            Platform::with_defaults(),
            store_options.clone(),
            ReplicationOptions { replicas: 2, max_lag_epochs: u64::MAX, ..Default::default() },
        ).unwrap();
        let oracle = ElsmP2::open(Platform::with_defaults(), store_options).unwrap();
        let mut failed_over = false;
        for (step, (ops, as_batch, flush_after, deliver_after)) in groups.iter().enumerate() {
            // Writes go straight to the primary's store: acknowledged and
            // shipped, but applied by the replicas only at delivery
            // points — the replication lag the oracle must be blind to.
            let primary = group.primary_store();
            let encoded: Vec<(Vec<u8>, Vec<u8>, bool)> = ops
                .iter()
                .map(|(keyno, val, delete_coin)| (
                    format!("k{keyno:03}").into_bytes(),
                    format!("v{val}").into_bytes(),
                    *delete_coin == 0,
                ))
                .collect();
            if *as_batch == 1 {
                let mut run = 0usize;
                while run < encoded.len() {
                    let kind = encoded[run].2;
                    let mut end = run;
                    while end < encoded.len() && encoded[end].2 == kind {
                        end += 1;
                    }
                    if kind {
                        let keys: Vec<&[u8]> =
                            encoded[run..end].iter().map(|(k, _, _)| k.as_slice()).collect();
                        primary.delete_batch(&keys).unwrap();
                        oracle.delete_batch(&keys).unwrap();
                    } else {
                        let items: Vec<(&[u8], &[u8])> = encoded[run..end]
                            .iter()
                            .map(|(k, v, _)| (k.as_slice(), v.as_slice()))
                            .collect();
                        primary.put_batch(&items).unwrap();
                        oracle.put_batch(&items).unwrap();
                    }
                    run = end;
                }
            } else {
                for (key, value, is_delete) in &encoded {
                    if *is_delete {
                        primary.delete(key).unwrap();
                        oracle.delete(key).unwrap();
                    } else {
                        primary.put(key, value).unwrap();
                        oracle.put(key, value).unwrap();
                    }
                }
            }
            if *flush_after < 3 {
                primary.db().flush().unwrap();
                oracle.db().flush().unwrap();
            }
            if *deliver_after < 5 {
                group.sync().unwrap();
            }
            if !failed_over && step == failover_after as usize {
                // Kill the primary mid-stream (undelivered shipments
                // still queued) and promote replica 0: promotion drains
                // first, so nothing acknowledged is lost.
                group.kill_primary();
                group.promote(0).unwrap();
                failed_over = true;
            }
        }
        group.sync().unwrap();

        // Every live node — acting primary and all replicas — agrees
        // with the oracle on verified reads.
        for keyno in 0u16..60 {
            let key = format!("k{keyno:03}").into_bytes();
            let expect = oracle.get(&key).unwrap().map(|r| r.value().to_vec());
            let primary_got =
                group.primary_store().get(&key).unwrap().map(|r| r.value().to_vec());
            prop_assert_eq!(&primary_got, &expect, "primary diverged for k{:03}", keyno);
            for r in 0..group.replica_count() {
                let (got, token) = group.with_replica(r, |rep| rep.get(&key)).unwrap();
                prop_assert_eq!(
                    got.map(|rec| rec.value().to_vec()),
                    expect.clone(),
                    "replica {} diverged for k{:03}", r, keyno
                );
                prop_assert_eq!(token.lag_epochs(), 0, "fully delivered replica must be fresh");
            }
        }
        // And on verified scans, totally ordered.
        let expect: Vec<(Vec<u8>, Vec<u8>)> = oracle.scan(b"k000", b"k999").unwrap()
            .iter().map(|r| (r.key().to_vec(), r.value().to_vec())).collect();
        for r in 0..group.replica_count() {
            let (scanned, _) = group.with_replica(r, |rep| rep.scan(b"k000", b"k999")).unwrap();
            let got: Vec<(Vec<u8>, Vec<u8>)> =
                scanned.iter().map(|rec| (rec.key().to_vec(), rec.value().to_vec())).collect();
            prop_assert_eq!(&got, &expect, "replica {} scan diverged", r);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full store vs. a BTreeMap model under random operation
    /// sequences (smaller case count: each case builds a store).
    #[test]
    fn store_matches_model(ops in prop::collection::vec((0u8..3, 0u16..60, any::<u16>()), 1..120)) {
        use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
        use elsm_repro::sgx_sim::Platform;
        let store = ElsmP2::open(
            Platform::with_defaults(),
            P2Options {
                write_buffer_bytes: 2048,
                level1_max_bytes: 8 * 1024,
                level_multiplier: 4,
                max_levels: 3,
                ..P2Options::default()
            },
        ).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (op, keyno, val) in ops {
            let key = format!("k{keyno:03}").into_bytes();
            match op {
                0 => {
                    let value = format!("v{val}").into_bytes();
                    store.put(&key, &value).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    store.delete(&key).unwrap();
                    model.remove(&key);
                }
                _ => {
                    let got = store.get(&key).unwrap();
                    prop_assert_eq!(
                        got.map(|r| r.value().to_vec()),
                        model.get(&key).cloned()
                    );
                }
            }
        }
        for (k, v) in &model {
            let got = store.get(k).unwrap().unwrap();
            prop_assert_eq!(got.value(), &v[..]);
        }
    }
}
