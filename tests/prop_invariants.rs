//! Property-based tests on the core data structures and protocol
//! invariants, spanning crates.

use elsm_repro::crypto::{AeadKey, DetKey, OpeKey};
use elsm_repro::merkle::tree::leaf_hash;
use elsm_repro::merkle::{
    chain_digest, prove_range, verify_range, LevelDigest, MerkleTree, RecordProof,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every leaf of every tree shape verifies; any single-bit index shift
    /// fails.
    #[test]
    fn merkle_audit_paths_sound(n in 1usize..80, probe in 0usize..80) {
        let leaves: Vec<_> = (0..n).map(|i| leaf_hash(format!("L{i}").as_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let i = probe % n;
        let path = tree.audit_path(i);
        prop_assert!(MerkleTree::verify(tree.root(), n, i, leaves[i], &path));
        if n > 1 {
            let j = (i + 1) % n;
            prop_assert!(!MerkleTree::verify(tree.root(), n, j, leaves[i], &path));
        }
    }

    /// Range proofs verify exactly for the proven window and reject any
    /// shifted or truncated presentation.
    #[test]
    fn range_proofs_sound(n in 1usize..60, a in 0usize..60, b in 0usize..60) {
        let (lo, hi) = (a.min(b) % n, b.max(a) % n);
        let (lo, hi) = (lo.min(hi), hi.max(lo));
        let leaves: Vec<_> = (0..n).map(|i| leaf_hash(format!("R{i}").as_bytes())).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let proof = prove_range(&tree, lo, hi);
        prop_assert!(verify_range(tree.root(), n, lo, &leaves[lo..=hi], &proof));
        if lo > 0 {
            prop_assert!(!verify_range(tree.root(), n, lo - 1, &leaves[lo..=hi], &proof));
        }
        if hi > lo {
            prop_assert!(!verify_range(tree.root(), n, lo, &leaves[lo..hi], &proof));
        }
    }

    /// Chain digests are injective over version order and content
    /// (prefix-freedom of the record encoding is assumed by construction).
    #[test]
    fn chain_digest_orders_matter(records in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 1..20), 2..6)) {
        let d1 = chain_digest(&records);
        let mut reversed = records.clone();
        reversed.reverse();
        if records != reversed {
            prop_assert_ne!(d1, chain_digest(&reversed));
        }
    }

    /// Level digests: every version of every key proves against the
    /// commitment; a newest-claim on an older version never verifies.
    #[test]
    fn level_digest_proofs_sound(keys in prop::collection::btree_map(
        prop::collection::vec(any::<u8>(), 1..8),
        1usize..4,
        1..12,
    )) {
        let mut records = Vec::new();
        for (k, versions) in &keys {
            for v in 0..*versions {
                records.push((k.clone(), format!("val-{v}").into_bytes()));
            }
        }
        let digest = LevelDigest::from_records(
            3,
            records.iter().map(|(k, r)| (k.as_slice(), r.clone())),
        );
        let commitment = digest.commitment();
        prop_assert_eq!(digest.leaf_count(), keys.len());
        for (leaf, (_k, versions)) in keys.iter().enumerate() {
            for v in 0..(*versions).min(3) {
                let proof = digest.prove_version(leaf, v);
                let bytes = &digest.chain_records(leaf)[v];
                prop_assert_eq!(proof.verify(&commitment, bytes), Ok(()));
            }
        }
    }

    /// RecordProof serialization round-trips for arbitrary shapes.
    #[test]
    fn record_proof_codec_round_trips(
        level in 0u32..10,
        leaf_index in 0u64..1000,
        leaf_count in 1u64..1000,
        newer in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..4),
        path_len in 0usize..12,
    ) {
        use elsm_repro::merkle::ChainPosition;
        use elsm_repro::crypto::sha256;
        let chain = if newer.is_empty() {
            ChainPosition::Newest { older_digest: sha256(b"older") }
        } else {
            ChainPosition::Older { newer_records: newer, older_digest: sha256(b"older") }
        };
        let proof = RecordProof {
            level,
            leaf_index,
            leaf_count,
            chain,
            audit_path: (0..path_len).map(|i| sha256(&[i as u8])).collect(),
        };
        let encoded = proof.encode();
        let (decoded, used) = RecordProof::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, proof);
        prop_assert_eq!(used, encoded.len());
    }

    /// Deterministic encryption round-trips and is injective.
    #[test]
    fn det_round_trips(a in prop::collection::vec(any::<u8>(), 0..64),
                       b in prop::collection::vec(any::<u8>(), 0..64)) {
        let key = DetKey::derive(b"prop master");
        let ca = key.encrypt(&a);
        prop_assert_eq!(key.decrypt(&ca).unwrap(), a.clone());
        if a != b {
            prop_assert_ne!(ca, key.encrypt(&b));
        }
    }

    /// AEAD round-trips; any bit flip is rejected.
    #[test]
    fn aead_round_trips(pt in prop::collection::vec(any::<u8>(), 0..128),
                        aad in prop::collection::vec(any::<u8>(), 0..32),
                        flip in 0usize..160) {
        let key = AeadKey::derive(b"prop aead");
        let nonce = elsm_repro::crypto::aead::nonce_from_u64s(7, 7);
        let mut ct = key.seal(&nonce, &aad, &pt);
        prop_assert_eq!(key.open(&nonce, &aad, &ct).unwrap(), pt);
        let idx = flip % ct.len();
        ct[idx] ^= 1;
        prop_assert!(key.open(&nonce, &aad, &ct).is_err());
    }

    /// OPE preserves order on arbitrary pairs.
    #[test]
    fn ope_preserves_order(a in any::<u64>(), b in any::<u64>()) {
        let key = OpeKey::derive(b"prop ope");
        prop_assert_eq!(a.cmp(&b), key.encode(a).cmp(&key.encode(b)));
    }

    /// SHA-256 incremental == one-shot for arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(data in prop::collection::vec(any::<u8>(), 0..512),
                                 cut in 0usize..512) {
        use elsm_repro::crypto::{sha256, Sha256};
        let cut = cut % (data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full store vs. a BTreeMap model under random operation
    /// sequences (smaller case count: each case builds a store).
    #[test]
    fn store_matches_model(ops in prop::collection::vec((0u8..3, 0u16..60, any::<u16>()), 1..120)) {
        use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
        use elsm_repro::sgx_sim::Platform;
        let store = ElsmP2::open(
            Platform::with_defaults(),
            P2Options {
                write_buffer_bytes: 2048,
                level1_max_bytes: 8 * 1024,
                level_multiplier: 4,
                max_levels: 3,
                ..P2Options::default()
            },
        ).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (op, keyno, val) in ops {
            let key = format!("k{keyno:03}").into_bytes();
            match op {
                0 => {
                    let value = format!("v{val}").into_bytes();
                    store.put(&key, &value).unwrap();
                    model.insert(key, value);
                }
                1 => {
                    store.delete(&key).unwrap();
                    model.remove(&key);
                }
                _ => {
                    let got = store.get(&key).unwrap();
                    prop_assert_eq!(
                        got.map(|r| r.value().to_vec()),
                        model.get(&key).cloned()
                    );
                }
            }
        }
        for (k, v) in &model {
            let got = store.get(k).unwrap().unwrap();
            prop_assert_eq!(got.value(), &v[..]);
        }
    }
}
