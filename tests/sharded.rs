//! The sharded cluster layer, end to end: routed verified operations,
//! cross-shard scan stitching, per-shard batch splitting, the WrongShard
//! adversary class, crash recovery with shard-bound sealed state, and a
//! multi-threaded stress pass.

use std::collections::BTreeMap;
use std::sync::Arc;

use elsm_repro::elsm::{adversary, AuthenticatedKv, ElsmError, P2Options, VerificationFailure};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::shard::{ShardedKv, ShardedOptions};

fn small_store_options() -> P2Options {
    P2Options {
        write_buffer_bytes: 4 * 1024,
        level1_max_bytes: 16 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        ..P2Options::default()
    }
}

fn hash_cluster(shards: usize) -> ShardedKv {
    ShardedKv::open(Platform::with_defaults(), ShardedOptions::hash(shards, small_store_options()))
        .unwrap()
}

/// A key owned by `shard` in `cluster` (probed; partitioning is
/// deterministic).
fn key_owned_by(cluster: &ShardedKv, shard: usize) -> Vec<u8> {
    (0..10_000u32)
        .map(|i| format!("probe{i:05}").into_bytes())
        .find(|k| cluster.shard_of(k) == shard)
        .expect("every shard owns some probe key")
}

#[test]
fn hash_cluster_end_to_end() {
    let cluster = hash_cluster(4);
    let mut model = BTreeMap::new();
    for i in 0..400u32 {
        let key = format!("key{:04}", i % 200).into_bytes();
        let value = format!("value-{i}").into_bytes();
        cluster.put(&key, &value).unwrap();
        model.insert(key, value);
    }
    for i in (0..200u32).step_by(9) {
        let key = format!("key{i:04}").into_bytes();
        cluster.delete(&key).unwrap();
        model.remove(&key);
    }
    cluster.flush().unwrap();
    // Every shard actually holds data (keys spread).
    for s in 0..4 {
        assert!(
            !cluster.shard(s).scan(b"key0000", b"key9999").unwrap().is_empty(),
            "shard {s} got no keys"
        );
    }
    // Verified point reads, present and absent.
    for (key, value) in &model {
        let got = cluster.get(key).unwrap().expect("present key");
        assert_eq!(got.value(), &value[..]);
    }
    assert!(cluster.get(b"key0000").unwrap().is_none(), "deleted key stays dead");
    assert!(cluster.get(b"never-written").unwrap().is_none());
    // Verified cross-shard scan: complete and totally ordered.
    let all = cluster.scan(b"key0000", b"key9999").unwrap();
    assert_eq!(all.len(), model.len());
    for (rec, (key, value)) in all.iter().zip(&model) {
        assert_eq!((rec.key(), rec.value()), (&key[..], &value[..]));
    }
    assert!(all.windows(2).all(|w| w[0].key() < w[1].key()));
}

#[test]
fn range_cluster_scans_concatenate() {
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::range(
            vec![b"key0100".to_vec(), b"key0200".to_vec()],
            small_store_options(),
        ),
    )
    .unwrap();
    for i in 0..300u32 {
        cluster.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    cluster.flush().unwrap();
    // Locality: each shard stores exactly its contiguous span.
    assert_eq!(cluster.shard(0).scan(b"key0000", b"key9999").unwrap().len(), 100);
    assert_eq!(cluster.shard(1).scan(b"key0000", b"key9999").unwrap().len(), 100);
    assert_eq!(cluster.shard(2).scan(b"key0000", b"key9999").unwrap().len(), 100);
    // A scan spanning both boundaries stitches adjacent shard spans.
    let mid = cluster.scan(b"key0050", b"key0249").unwrap();
    assert_eq!(mid.len(), 200);
    assert!(mid.windows(2).all(|w| w[0].key() < w[1].key()));
    assert_eq!(mid[0].key(), b"key0050");
    assert_eq!(mid[199].key(), b"key0249");
    // A scan inside one shard touches only that shard.
    let inner = cluster.scan(b"key0110", b"key0120").unwrap();
    assert_eq!(inner.len(), 11);
}

#[test]
fn batched_writes_split_one_ecall_per_shard() {
    let cluster = hash_cluster(3);
    let items: Vec<(Vec<u8>, Vec<u8>)> =
        (0..60u32).map(|i| (format!("bk{i:03}").into_bytes(), vec![b'v'; 40])).collect();
    let refs: Vec<(&[u8], &[u8])> =
        items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
    let shards_hit: std::collections::BTreeSet<usize> =
        items.iter().map(|(k, _)| cluster.shard_of(k)).collect();
    assert!(shards_hit.len() > 1, "batch should span shards");
    let before: Vec<u64> = (0..3).map(|s| cluster.shard_platform(s).stats().ecalls).collect();
    let timestamps = cluster.put_batch(&refs).unwrap();
    let after: Vec<u64> = (0..3).map(|s| cluster.shard_platform(s).stats().ecalls).collect();
    for s in 0..3 {
        let expected = u64::from(shards_hit.contains(&s));
        assert_eq!(after[s] - before[s], expected, "shard {s}: one ECall per touched shard");
    }
    // Timestamps scatter back into batch order and reads verify.
    assert_eq!(timestamps.len(), items.len());
    for (key, _) in &items {
        assert!(cluster.get(key).unwrap().is_some());
    }
    // Batched deletes split the same way.
    let keys: Vec<&[u8]> = items.iter().map(|(k, _)| k.as_slice()).collect();
    cluster.delete_batch(&keys).unwrap();
    for (key, _) in &items {
        assert!(cluster.get(key).unwrap().is_none());
    }
}

// ---------------------------------------------------------------------------
// Adversary: the WrongShard attack class
// ---------------------------------------------------------------------------

#[test]
fn rerouted_get_detected() {
    let cluster = hash_cluster(3);
    for i in 0..150u32 {
        cluster.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
    }
    cluster.flush().unwrap();
    let key = key_owned_by(&cluster, 0);
    cluster.put(&key, b"owned-by-0").unwrap();
    let owner = cluster.shard_of(&key);
    assert_eq!(owner, 0);
    // Honest routing verifies.
    let honest = cluster.shard(owner).raw_get_trace(&key).unwrap();
    cluster.trusted().verify_routed_get(&key, owner, &honest).unwrap();
    // The host reroutes the query to shard 1, which honestly — and
    // verifiably, against its own commitments! — answers "absent". The
    // only thing that catches the suppression is the shard binding.
    let rerouted = cluster.shard(1).raw_get_trace(&key).unwrap();
    cluster.shard(1).verify_get_trace(&key, &rerouted).unwrap(); // verifies in shard 1's domain...
    let err = cluster.trusted().verify_routed_get(&key, 1, &rerouted).unwrap_err();
    assert_eq!(err, VerificationFailure::WrongShard { expected: 0, got: 1 });
}

#[test]
fn hidden_level_inside_a_shard_detected_through_the_router() {
    let cluster = hash_cluster(3);
    for i in 0..400u32 {
        cluster.put(format!("key{:04}", i % 200).as_bytes(), b"v").unwrap();
    }
    cluster.flush().unwrap();
    let key = (0..200u32)
        .map(|i| format!("key{i:04}").into_bytes())
        .find(|k| {
            let owner = cluster.shard_of(k);
            let trace = cluster.shard(owner).raw_get_trace(k).unwrap();
            trace.memtable.is_none() && trace.result.is_some()
        })
        .expect("a key answered from disk");
    let owner = cluster.shard_of(&key);
    let mut trace = cluster.shard(owner).raw_get_trace(&key).unwrap();
    let hit_level = trace
        .levels
        .iter()
        .find_map(|l| {
            matches!(l.outcome, elsm_repro::lsm_store::LevelOutcome::Hit(_)).then_some(l.level)
        })
        .expect("a hit level");
    adversary::hide_level(&mut trace, hit_level);
    let err = cluster.trusted().verify_routed_get(&key, owner, &trace).unwrap_err();
    assert!(matches!(err, VerificationFailure::HiddenLevel { .. }), "got {err:?}");
}

#[test]
fn smuggled_scan_records_detected() {
    let cluster = hash_cluster(3);
    for i in 0..200u32 {
        cluster.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
    }
    cluster.flush().unwrap();
    // Shard 1's honest scan segment, presented as shard 0's answer: every
    // record in it is owned by shard 1, so the stitcher rejects the swap.
    let trace = cluster.shard(1).raw_scan_trace(b"key0000", b"key9999").unwrap();
    assert!(!trace.merged.is_empty());
    cluster.verify_routed_scan(b"key0000", b"key9999", 1, &trace).unwrap();
    let err = cluster.verify_routed_scan(b"key0000", b"key9999", 0, &trace).unwrap_err();
    assert!(matches!(err, VerificationFailure::WrongShard { got: 0, .. }), "got {err:?}");
    // Ownership checking is per record, not per segment.
    let foreign = key_owned_by(&cluster, 2);
    let err = cluster.trusted().check_owned(0, &foreign).unwrap_err();
    assert!(matches!(err, VerificationFailure::WrongShard { expected: 2, got: 0 }));
}

// ---------------------------------------------------------------------------
// Crash recovery with shard-bound sealed state
// ---------------------------------------------------------------------------

fn reopenable_cluster() -> (ShardedOptions, ShardedKv) {
    let options = ShardedOptions::hash(2, small_store_options());
    let cluster = ShardedKv::open(Platform::with_defaults(), options.clone()).unwrap();
    for i in 0..150u32 {
        cluster.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
    }
    cluster.close().unwrap();
    (options, cluster)
}

#[test]
fn cluster_restart_verifies() {
    let (options, cluster) = reopenable_cluster();
    let filesystems = (0..2).map(|s| cluster.shard(s).fs().clone()).collect();
    let reopened = ShardedKv::open_with(Platform::with_defaults(), filesystems, options).unwrap();
    for i in (0..150u32).step_by(7) {
        let key = format!("key{i:04}");
        assert_eq!(
            reopened.get(key.as_bytes()).unwrap().unwrap().value(),
            format!("v{i}").as_bytes(),
            "{key} lost or unverifiable after cluster restart"
        );
    }
    assert_eq!(reopened.scan(b"key0000", b"key9999").unwrap().len(), 150);
}

#[test]
fn swapped_shard_state_detected_at_restart() {
    let (options, cluster) = reopenable_cluster();
    // The host swaps the two shards' entire on-disk state — sealed
    // enclave state included, so every file is authentic, just for the
    // other shard's domain.
    let swapped = vec![cluster.shard(1).fs().clone(), cluster.shard(0).fs().clone()];
    let result = ShardedKv::open_with(Platform::with_defaults(), swapped, options);
    assert!(
        matches!(
            result,
            Err(ElsmError::Verification(VerificationFailure::WrongShard { expected: 0, got: 1 }))
        ),
        "swapped per-shard state must fail recovery: {result:?}"
    );
}

#[test]
fn sharded_state_rejected_by_unsharded_store() {
    use elsm_repro::elsm::ElsmP2;
    let (_, cluster) = reopenable_cluster();
    let fs = cluster.shard(0).fs().clone();
    let result = ElsmP2::open_with(Platform::with_defaults(), fs, small_store_options(), None);
    assert!(
        matches!(result, Err(ElsmError::Verification(VerificationFailure::WrongShard { .. }))),
        "a shard's state must not open as a standalone store: {result:?}"
    );
}

// ---------------------------------------------------------------------------
// Per-partition compaction schedulers
// ---------------------------------------------------------------------------

/// Every shard runs its own compaction scheduler: with a tiered strategy
/// and a parallel wave executor configured cluster-wide, each partition
/// independently accumulates debt, compacts, and stays verified — and a
/// cross-shard scan over the compacted cluster is still the complete,
/// totally ordered result.
#[test]
fn per_shard_compaction_schedulers_run_independently() {
    let store = P2Options {
        compaction_strategy: elsm_repro::lsm_store::CompactionStrategyKind::Tiered(
            elsm_repro::lsm_store::TieredConfig::default(),
        ),
        compaction_parallelism: 4,
        incremental_commitments: true,
        ..small_store_options()
    };
    let cluster =
        ShardedKv::open(Platform::with_defaults(), ShardedOptions::hash(3, store)).unwrap();
    let mut model = BTreeMap::new();
    for i in 0..900u32 {
        let key = format!("key{:04}", i % 300).into_bytes();
        let value = format!("value-{i:06}").into_bytes();
        cluster.put(&key, &value).unwrap();
        model.insert(key, value);
    }
    for i in (0..300u32).step_by(7) {
        let key = format!("key{i:04}").into_bytes();
        cluster.delete(&key).unwrap();
        model.remove(&key);
    }
    cluster.flush().unwrap();
    // At least two partitions compacted on their own schedulers, and
    // flushing drained each shard's debt gauge.
    let compacted = (0..3)
        .filter(|&s| {
            let stats = cluster.shard(s).db().stats();
            assert_eq!(stats.pending_compaction_jobs, 0, "shard {s} left jobs pending");
            stats.compactions > 0
        })
        .count();
    assert!(compacted >= 2, "only {compacted} of 3 shards compacted");
    // Verified reads against the oracle, routed per key.
    for (key, value) in &model {
        assert_eq!(cluster.get(key).unwrap().expect("present key").value(), &value[..]);
    }
    assert!(cluster.get(b"key0007").unwrap().is_none(), "deleted key stays dead");
    // Verified cross-shard scan: stitched from three independently
    // compacted partitions, still complete and totally ordered.
    let all = cluster.scan(b"key0000", b"key9999").unwrap();
    assert_eq!(all.len(), model.len());
    for (rec, (key, value)) in all.iter().zip(&model) {
        assert_eq!((rec.key(), rec.value()), (&key[..], &value[..]));
    }
}

// ---------------------------------------------------------------------------
// Stress: real threads racing across shards
// ---------------------------------------------------------------------------

#[test]
fn parallel_clients_across_shards_stay_verified() {
    let cluster = Arc::new(hash_cluster(4));
    for i in 0..200u32 {
        cluster.put(format!("key{i:04}").as_bytes(), b"seed").unwrap();
    }
    let threads: Vec<_> = (0..4)
        .map(|tid: u32| {
            let cluster = cluster.clone();
            std::thread::spawn(move || {
                for round in 0..60u32 {
                    let i = (tid * 60 + round) % 200;
                    let key = format!("key{i:04}");
                    cluster.put(key.as_bytes(), format!("t{tid}r{round}").as_bytes()).unwrap();
                    assert!(cluster.get(key.as_bytes()).unwrap().is_some());
                    if round % 16 == 0 {
                        let scanned = cluster.scan(b"key0000", b"key9999").unwrap();
                        assert!(scanned.windows(2).all(|w| w[0].key() < w[1].key()));
                    }
                    if round % 25 == 0 {
                        cluster.flush().unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let all = cluster.scan(b"key0000", b"key9999").unwrap();
    assert_eq!(all.len(), 200, "writes under contention must all survive, verified");
}

/// The base store's key-value-separation and verified-cache knobs flow
/// through the shard layer unchanged: every shard separates its large
/// values into its own authenticated value log and serves hot verified
/// reads from its own epoch-tagged cache.
#[test]
fn vlog_and_cache_flow_through_every_shard() {
    let options = P2Options {
        vlog: Some(elsm_repro::lsm_store::VlogConfig {
            value_threshold: 128,
            target_file_bytes: 64 * 1024,
            gc_garbage_ratio: 0.3,
            gc_enabled: false,
        }),
        verified_cache_bytes: 256 * 1024,
        ..small_store_options()
    };
    let cluster =
        ShardedKv::open(Platform::with_defaults(), ShardedOptions::hash(3, options)).unwrap();
    for i in 0..60u32 {
        cluster.put(format!("key{i:04}").as_bytes(), &[i as u8; 1024]).unwrap();
    }
    cluster.flush().unwrap();
    for s in 0..3 {
        assert!(
            cluster.shard(s).db().stats().vlog_bytes > 1024,
            "shard {s} must hold separated values in its own log"
        );
    }
    // Verified reads resolve through each shard's log, and a re-read of
    // the same key hits that shard's cache.
    for i in (0..60u32).step_by(7) {
        let key = format!("key{i:04}");
        assert_eq!(
            cluster.get(key.as_bytes()).unwrap().expect("present").value(),
            &[i as u8; 1024][..]
        );
    }
    let hits_before: u64 = (0..3).map(|s| cluster.shard(s).cache_stats().record_hits).sum();
    for i in (0..60u32).step_by(7) {
        let key = format!("key{i:04}");
        assert_eq!(
            cluster.get(key.as_bytes()).unwrap().expect("present").value(),
            &[i as u8; 1024][..]
        );
    }
    let hits_after: u64 = (0..3).map(|s| cluster.shard(s).cache_stats().record_hits).sum();
    assert!(hits_after > hits_before, "re-reads must hit the per-shard verified caches");
}
