//! Cross-crate workload integration: the YCSB harness driving every
//! system under test, verifying measured behaviour (not just liveness).

use elsm_repro::baselines::{EleosOptions, EleosStore, UnsecuredLsm, UnsecuredOptions};
use elsm_repro::elsm::{AuthenticatedKv, ElsmP1, ElsmP2, P1Options, P2Options};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::sim_disk::{SimDisk, SimFs};
use elsm_repro::ycsb::{load_phase, run_phase, KvDriver, Workload};

struct P2Driver(ElsmP2);
impl KvDriver for P2Driver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).unwrap();
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).unwrap().is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).unwrap().len()
    }
}

struct P1Driver(ElsmP1);
impl KvDriver for P1Driver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).unwrap();
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).unwrap().is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).unwrap().len()
    }
}

fn p2() -> (P2Driver, std::sync::Arc<Platform>) {
    let platform = Platform::with_defaults();
    let store = ElsmP2::open(
        platform.clone(),
        P2Options { write_buffer_bytes: 8 * 1024, ..P2Options::default() },
    )
    .unwrap();
    (P2Driver(store), platform)
}

#[test]
fn every_standard_workload_runs_verified_on_p2() {
    for w in
        [Workload::a(), Workload::b(), Workload::c(), Workload::d(), Workload::e(), Workload::f()]
    {
        let (driver, platform) = p2();
        load_phase(&driver, 300, w.value_len);
        let report = run_phase(&driver, &platform, &w, 300, 600, 42);
        assert_eq!(report.ops, 600, "workload {}", w.workload_name());
        assert!(
            report.read_hit_rate > 0.95,
            "workload {}: {}",
            w.workload_name(),
            report.read_hit_rate
        );
        assert!(report.overall.mean_us > 0.0);
    }
}

trait Named {
    fn workload_name(&self) -> &str;
}
impl Named for Workload {
    fn workload_name(&self) -> &str {
        &self.name
    }
}

#[test]
fn p2_reads_beat_p1_beyond_the_epc() {
    // The paper's core claim, as a test: with a dataset well beyond the
    // EPC, eLSM-P2's verified reads are faster than eLSM-P1's paged reads.
    let cost = sgx_sim::CostModel::paper_defaults().with_epc_bytes(32 * 4096);
    let records = 3000u64; // ~350 KB data vs 128 KB EPC

    let p2_lat = {
        let platform = Platform::new(cost.clone());
        let store = ElsmP2::open(
            platform.clone(),
            P2Options { write_buffer_bytes: 8 * 1024, ..P2Options::default() },
        )
        .unwrap();
        let driver = P2Driver(store);
        load_phase(&driver, records, 100);
        driver.0.db().flush().unwrap();
        run_phase(&driver, &platform, &Workload::read_ratio(100), records, 1000, 7).overall.mean_us
    };
    let p1_lat = {
        let platform = Platform::new(cost);
        let store = ElsmP1::open(
            platform.clone(),
            P1Options {
                write_buffer_bytes: 8 * 1024,
                buffer_bytes: 512 * 1024, // in-enclave buffer ≫ EPC
                ..P1Options::default()
            },
        )
        .unwrap();
        let driver = P1Driver(store);
        load_phase(&driver, records, 100);
        driver.0.db().flush().unwrap();
        run_phase(&driver, &platform, &Workload::read_ratio(100), records, 1000, 7).overall.mean_us
    };
    assert!(p2_lat < p1_lat, "P2 must beat P1 beyond the EPC: {p2_lat:.1}µs vs {p1_lat:.1}µs");
}

#[test]
fn unsecured_is_fastest_p1_pays_paging_p2_pays_proofs() {
    // Figure 5a's ordering at mixed workloads, as an executable assertion.
    let records = 2000u64;
    let run_unsec = || {
        let platform = Platform::with_defaults();
        let store = UnsecuredLsm::open(
            platform.clone(),
            UnsecuredOptions { write_buffer_bytes: 8 * 1024, ..UnsecuredOptions::default() },
        )
        .unwrap();
        struct D(UnsecuredLsm);
        impl KvDriver for D {
            fn put(&self, k: &[u8], v: &[u8]) {
                self.0.put(k, v).unwrap();
            }
            fn get(&self, k: &[u8]) -> bool {
                self.0.get(k).unwrap().is_some()
            }
            fn scan(&self, a: &[u8], b: &[u8]) -> usize {
                self.0.scan(a, b).unwrap().len()
            }
        }
        let d = D(store);
        load_phase(&d, records, 100);
        run_phase(&d, &platform, &Workload::read_ratio(70), records, 800, 3).overall.mean_us
    };
    let (p2_driver, p2_platform) = p2();
    load_phase(&p2_driver, records, 100);
    let p2 = run_phase(&p2_driver, &p2_platform, &Workload::read_ratio(70), records, 800, 3)
        .overall
        .mean_us;
    let unsec = run_unsec();
    assert!(unsec < p2, "unsecured must be fastest: {unsec:.1} vs p2 {p2:.1}");
}

#[test]
fn eleos_capacity_cap_matches_paper() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let store = EleosStore::new(
        platform,
        fs,
        EleosOptions { capacity_limit_bytes: 50_000, ..EleosOptions::default() },
    );
    let mut capped = false;
    for i in 0..1000u32 {
        if store.put(format!("key{i:05}").into_bytes(), vec![0u8; 100]).is_err() {
            capped = true;
            break;
        }
    }
    assert!(capped, "Eleos must stop scaling at its limit (the paper's 1 GB)");
}
