//! Cross-crate integration: the full eLSM-P2 stack against a reference
//! model, across flushes, compactions and restarts.

use std::collections::BTreeMap;

use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options, ReadMode};
use elsm_repro::sgx_sim::Platform;
use elsm_repro::sim_disk::{SimDisk, SimFs};

fn small_options(read_mode: ReadMode) -> P2Options {
    P2Options {
        read_mode,
        write_buffer_bytes: 4 * 1024,
        level1_max_bytes: 16 * 1024,
        level_multiplier: 4,
        max_levels: 4,
        target_file_bytes: 16 * 1024,
        ..P2Options::default()
    }
}

/// Mixed workload mirrored into a BTreeMap; every read verified.
fn model_check(read_mode: ReadMode) {
    let store = ElsmP2::open(Platform::with_defaults(), small_options(read_mode)).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut state = 0x5eed_u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 16
    };
    for op in 0..3000u64 {
        let k = format!("key{:03}", rng() % 150).into_bytes();
        match rng() % 10 {
            0..=5 => {
                let v = format!("v{op}").into_bytes();
                store.put(&k, &v).unwrap();
                model.insert(k, v);
            }
            6 => {
                store.delete(&k).unwrap();
                model.remove(&k);
            }
            _ => {
                let got = store.get(&k).unwrap();
                assert_eq!(
                    got.as_ref().map(|r| r.value().to_vec()),
                    model.get(&k).cloned(),
                    "divergence at op {op} on {:?}",
                    String::from_utf8_lossy(&k)
                );
            }
        }
    }
    // Full sweep at the end, plus a verified scan comparison.
    for (k, v) in &model {
        assert_eq!(store.get(k).unwrap().unwrap().value(), &v[..]);
    }
    let scanned = store.scan(b"key000", b"key999").unwrap();
    assert_eq!(scanned.len(), model.len(), "scan must see exactly the model's keys");
    for (rec, (k, v)) in scanned.iter().zip(model.iter()) {
        assert_eq!((rec.key(), rec.value()), (&k[..], &v[..]));
    }
}

#[test]
fn model_check_mmap() {
    model_check(ReadMode::Mmap);
}

#[test]
fn model_check_buffer() {
    model_check(ReadMode::Buffer);
}

#[test]
fn restart_preserves_and_verifies_everything() {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    let options = small_options(ReadMode::Mmap);
    let mut expected = BTreeMap::new();
    {
        let store = ElsmP2::open_with(platform.clone(), fs.clone(), options.clone(), None).unwrap();
        for i in 0..600u32 {
            let k = format!("key{:03}", i % 200);
            let v = format!("gen{i}");
            store.put(k.as_bytes(), v.as_bytes()).unwrap();
            expected.insert(k, v);
        }
        store.close().unwrap();
    }
    let store = ElsmP2::open_with(platform, fs, options, None).unwrap();
    for (k, v) in &expected {
        assert_eq!(
            store.get(k.as_bytes()).unwrap().unwrap().value(),
            v.as_bytes(),
            "{k} lost across restart"
        );
    }
    // And the store keeps working after recovery.
    store.put(b"post-restart", b"yes").unwrap();
    assert!(store.get(b"post-restart").unwrap().is_some());
}

#[test]
fn early_stop_means_fresh_writes_check_fewer_levels() {
    let store = ElsmP2::open(Platform::with_defaults(), small_options(ReadMode::Mmap)).unwrap();
    for i in 0..1500u32 {
        store.put(format!("key{:04}", i % 500).as_bytes(), b"old").unwrap();
    }
    store.db().flush().unwrap();
    // A fresh overwrite lands in upper levels; its GET must early-stop.
    store.put(b"key0001", b"fresh").unwrap();
    store.db().flush().unwrap();
    let fresh = store.get(b"key0001").unwrap().unwrap();
    // A never-overwritten key sits at the bottom.
    let deep = store.get(b"key0499").unwrap().unwrap();
    assert!(
        fresh.levels_checked() <= deep.levels_checked(),
        "early stop: fresh {} vs deep {}",
        fresh.levels_checked(),
        deep.levels_checked()
    );
}

#[test]
fn paper_example_figure3() {
    // Reconstruct the paper's running example: keys A,T,Y,Z with the
    // timestamps of Figure 3a, then the GET(Z) of §5.3.
    let store = ElsmP2::open(
        Platform::with_defaults(),
        P2Options { compaction_enabled: false, ..small_options(ReadMode::Mmap) },
    )
    .unwrap();
    for (k, v) in [("T", "0"), ("Z", "1"), ("A", "2"), ("Y", "3"), ("T", "4")] {
        store.put(k.as_bytes(), v.as_bytes()).unwrap();
    }
    store.db().flush().unwrap();
    for (k, v) in [("Z", "6"), ("Z", "7")] {
        store.put(k.as_bytes(), v.as_bytes()).unwrap();
    }
    store.db().flush().unwrap();
    store.put(b"A", b"9").unwrap();
    store.db().flush().unwrap();
    // GET(Z) must return ⟨Z,7⟩ — the freshest — with verification.
    let z = store.get(b"Z").unwrap().unwrap();
    assert_eq!(z.value(), b"7");
    // And GET of an absent key between A and T verifies non-membership.
    assert!(store.get(b"B").unwrap().is_none());
}

#[test]
fn concurrent_clients_verify_under_compaction() {
    // §5.5.2: concurrent reads/writes synchronized with compaction via the
    // mutex-guarded commitments — every thread's reads must verify even
    // while flushes/compactions replace roots underneath.
    use std::sync::Arc;
    let store =
        Arc::new(ElsmP2::open(Platform::with_defaults(), small_options(ReadMode::Mmap)).unwrap());
    std::thread::scope(|s| {
        for t in 0..4 {
            let store = store.clone();
            s.spawn(move || {
                for i in 0..300u32 {
                    let key = format!("t{t}-key{i:04}");
                    store.put(key.as_bytes(), b"v").unwrap();
                    // Immediate verified read-back.
                    assert!(store.get(key.as_bytes()).unwrap().is_some(), "{key}");
                }
            });
        }
    });
    // Post-hoc verified sweep across everything all threads wrote.
    for t in 0..4 {
        for i in (0..300u32).step_by(23) {
            let key = format!("t{t}-key{i:04}");
            assert!(store.get(key.as_bytes()).unwrap().is_some(), "{key}");
        }
    }
    assert!(store.db().stats().flushes > 0, "compactions ran during the test");
}
