//! # elsm-repro
//!
//! Facade crate for the reproduction of *Authenticated Key-Value Stores with
//! Hardware Enclaves* (Tang et al., MIDDLEWARE 2021). It re-exports every
//! subsystem so examples and integration tests can use a single dependency.
//!
//! See the workspace [README](https://example.com/elsm-repro) and DESIGN.md
//! for the system inventory; the interesting entry points are:
//!
//! * [`elsm`] — the paper's contribution: eLSM-P1 and eLSM-P2 stores,
//! * [`shard`] — the sharded cluster layer: partitioner, per-shard
//!   enclaves, verified cross-shard router,
//! * [`replica`] — verified primary/replica replication: authenticated
//!   WAL shipping, deterministic replay, fenced failover,
//! * [`lsm_store`] — the LevelDB-class LSM engine substrate,
//! * [`merkle`] — the Merkle-forest authenticated data structures,
//! * [`sgx_sim`] — the SGX enclave simulator with its cost model,
//! * [`telemetry`] — unified metrics, enclave-attributed tracing and
//!   the security audit stream,
//! * [`ycsb`] — the YCSB-style workload harness,
//! * [`ct_log`] — the §5.7 certificate-transparency case study.
//!
//! # Examples
//!
//! ```
//! use elsm_repro::elsm::{AuthenticatedKv, ElsmP2, P2Options};
//! use elsm_repro::sgx_sim::Platform;
//!
//! # fn main() -> Result<(), elsm_repro::elsm::ElsmError> {
//! let store = ElsmP2::open(Platform::with_defaults(), P2Options::default())?;
//! store.put(b"k", b"v")?;
//! let rec = store.get(b"k")?.expect("present");
//! assert_eq!(rec.value(), b"v");
//! # Ok(())
//! # }
//! ```

pub use ct_log;
pub use elsm;
pub use elsm_baselines as baselines;
pub use elsm_crypto as crypto;
pub use elsm_replica as replica;
pub use elsm_shard as shard;
pub use lsm_store;
pub use merkle;
pub use sgx_sim;
pub use sim_disk;
pub use telemetry;
pub use ycsb;
