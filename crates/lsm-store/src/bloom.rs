//! Bloom filters over SSTable keys.
//!
//! LevelDB attaches a Bloom filter to each table so negative lookups skip
//! the data blocks entirely. In eLSM the filters are metadata kept *inside*
//! the enclave (§5.3, "meta-data authenticity"), so they are also a source
//! of EPC traffic under memory pressure — the reader models that by
//! touching the probed byte offsets.

use crate::encoding::{get_fixed_u32, put_fixed_u32};

/// Double-hashing Bloom filter (Kirsch–Mitzenmacher), as in LevelDB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    k: u32,
}

/// Fast non-cryptographic 64-bit hash (FNV-1a variant with avalanche).
fn base_hash(data: &[u8], seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Final avalanche (xorshift-multiply).
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h
}

impl BloomFilter {
    /// Builds a filter over `keys` with `bits_per_key` bits per key.
    pub fn from_keys<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        // k = bits_per_key * ln2, clamped as LevelDB does.
        let k = ((bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let nbits = (keys.len() * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let h1 = base_hash(key.as_ref(), 0);
            let h2 = base_hash(key.as_ref(), 0x9e37_79b9);
            for i in 0..k {
                let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % nbits as u64) as usize;
                bits[bit / 8] |= 1 << (bit % 8);
            }
        }
        BloomFilter { bits, k }
    }

    /// Tests membership. False positives possible, false negatives not.
    /// Returns the byte offsets probed so the caller can model memory
    /// touches of the in-enclave filter.
    pub fn probe(&self, key: &[u8]) -> (bool, Vec<usize>) {
        let nbits = self.bits.len() * 8;
        let h1 = base_hash(key, 0);
        let h2 = base_hash(key, 0x9e37_79b9);
        let mut offsets = Vec::with_capacity(self.k as usize);
        let mut hit = true;
        for i in 0..self.k {
            let bit = (h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % nbits as u64) as usize;
            offsets.push(bit / 8);
            if self.bits[bit / 8] & (1 << (bit % 8)) == 0 {
                hit = false;
                break;
            }
        }
        (hit, offsets)
    }

    /// Convenience wrapper discarding probe offsets.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        self.probe(key).0
    }

    /// Size of the bit array in bytes.
    pub fn byte_len(&self) -> usize {
        self.bits.len()
    }

    /// Serializes the filter.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bits.len() + 8);
        put_fixed_u32(&mut out, self.k);
        put_fixed_u32(&mut out, self.bits.len() as u32);
        out.extend_from_slice(&self.bits);
        out
    }

    /// Parses a filter serialized by [`BloomFilter::encode`].
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let k = get_fixed_u32(buf, 0)?;
        let len = get_fixed_u32(buf, 4)? as usize;
        let bits = buf.get(8..8 + len)?.to_vec();
        if k == 0 || k > 30 {
            return None;
        }
        Some(BloomFilter { bits, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("user{i:06}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(1000);
        let f = BloomFilter::from_keys(&ks, 10);
        for k in &ks {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let ks = keys(1000);
        let f = BloomFilter::from_keys(&ks, 10);
        let mut fp = 0;
        let trials = 10_000;
        for i in 0..trials {
            let probe = format!("absent{i:06}");
            if f.may_contain(probe.as_bytes()) {
                fp += 1;
            }
        }
        // 10 bits/key gives ~1% theoretical FPR; allow generous slack.
        assert!(fp < trials / 20, "false positive rate too high: {fp}/{trials}");
    }

    #[test]
    fn empty_filter_rejects() {
        let f = BloomFilter::from_keys::<&[u8]>(&[], 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn encode_decode_round_trip() {
        let ks = keys(100);
        let f = BloomFilter::from_keys(&ks, 8);
        let g = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(f, g);
        for k in &ks {
            assert!(g.may_contain(k));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[]).is_none());
        assert!(BloomFilter::decode(&[0, 0, 0, 0, 255, 255, 255, 255]).is_none());
    }

    #[test]
    fn probe_reports_offsets() {
        let ks = keys(10);
        let f = BloomFilter::from_keys(&ks, 10);
        let (hit, offsets) = f.probe(ks[0].as_slice());
        assert!(hit);
        assert!(!offsets.is_empty());
        assert!(offsets.iter().all(|&o| o < f.byte_len()));
    }
}
