//! RocksDB-style event callbacks.
//!
//! The paper's key implementation claim (§5.5.3) is that eLSM can be built
//! as an *add-on* over an unmodified LSM store using only its callback
//! interface. This module is that interface, modelled on RocksDB's:
//!
//! * [`StoreListener::on_compaction_input`] ↔ the `Filter()` event of the
//!   compaction filter API — fires for every record the compaction reads,
//!   tagged with its source level/file so the listener can rebuild input
//!   Merkle trees (Figure 4, `auth_filter`);
//! * [`StoreListener::transform_output`] ↔ `OnTableFileCreated()` — lets
//!   the listener rewrite output records (embed proofs) before they hit
//!   disk (Figure 4, `auth_onTableFileCreated`);
//! * [`StoreListener::on_compaction_end`] ↔ `OnCompactionCompleted()` —
//!   where eLSM checks input roots and installs the output root;
//! * [`StoreListener::on_flush_record`] ↔ the pluggable-MemTable iterator
//!   hook used for authenticated flush (§5.5.3 item 3);
//! * [`StoreListener::on_wal_append`] ↔ the WAL write hook used for the
//!   in-enclave WAL digest (§5.3, step w1).

use std::fmt;

use bytes::Bytes;

use crate::compaction::{CompactionJob, VlogGcJob};
use crate::record::Record;
use crate::vlog::MAC_BYTES;

/// Identifies where a compaction input record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordSource {
    /// Source level (0 = the memtable being flushed).
    pub level: usize,
    /// Source SSTable file number (0 for the memtable).
    pub file_no: u64,
}

/// Keep or drop a record during compaction (compaction-filter decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// Keep the record in the output.
    Keep,
    /// Drop it (e.g., application-level TTL expiry).
    Drop,
}

/// Summary of a finished compaction, passed to
/// [`StoreListener::on_compaction_end`] (merge complete, output staged)
/// and [`StoreListener::on_compaction_install`] (output becoming
/// visible).
#[derive(Debug, Clone)]
pub struct CompactionInfo {
    /// Input levels, ascending (`[0]` for a memtable flush). A parallel
    /// wave's concurrent jobs never share a level, so a listener may key
    /// per-job scratch state by these.
    pub input_levels: Vec<usize>,
    /// Output level.
    pub output_level: usize,
    /// Records read from inputs.
    pub input_records: u64,
    /// Records written to the output run.
    pub output_records: u64,
    /// Output file numbers, in key order.
    pub output_files: Vec<u64>,
}

/// Observer/extension interface of the vanilla store.
///
/// All methods have no-op defaults, so a listener implements only what it
/// needs. The store invokes these callbacks *inside the enclave* when the
/// environment runs in enclave mode (the listener is part of the trusted
/// code, exactly like RocksDB callbacks run inside the Speicher/eLSM
/// enclave).
pub trait StoreListener: Send + Sync {
    /// A record was read from a compaction input (Figure 4's `Filter`).
    fn on_compaction_input(&self, source: RecordSource, record: &Record) {
        let _ = (source, record);
    }

    /// Decide whether an output record survives. Runs after the store's own
    /// version/tombstone logic.
    fn filter_output(&self, record: &Record) -> FilterDecision {
        let _ = record;
        FilterDecision::Keep
    }

    /// The full output run is assembled; the listener may rewrite values
    /// (embed proofs) before the files are written
    /// (Figure 4's `onTableFileCreated`).
    fn transform_output(&self, output_level: usize, records: Vec<Record>) -> Vec<Record> {
        let _ = output_level;
        records
    }

    /// Like [`StoreListener::transform_output`], with per-record change
    /// tags: `unchanged[i]` is true when output record `i`'s whole key
    /// chain came from a single input run with no version dropped or
    /// filtered — its authenticated leaf is bit-identical to the input's,
    /// so an incremental listener can reuse the stored digest instead of
    /// rehashing (the amortized integrity-metadata maintenance the TEE-KV
    /// survey names as the enclave-LSM cost lever). The default ignores
    /// the tags and forwards to `transform_output`.
    fn transform_output_tagged(
        &self,
        output_level: usize,
        records: Vec<Record>,
        unchanged: &[bool],
    ) -> Vec<Record> {
        let _ = unchanged;
        self.transform_output(output_level, records)
    }

    /// A compaction merge finished; its output run is written but **not
    /// yet visible**. Runs on the merging thread (a scheduler worker for
    /// parallel jobs), so expensive verification/digest work here
    /// overlaps with other jobs. Keyed state should be staged per
    /// `info.output_level` and applied in
    /// [`StoreListener::on_compaction_install`].
    fn on_compaction_end(&self, info: &CompactionInfo) {
        let _ = info;
    }

    /// The compaction's output version is about to install (fires under
    /// the store's write lock, immediately before the matching
    /// [`StoreListener::on_version_install`]). Installs of a parallel
    /// wave arrive in deterministic job order; this is where a listener
    /// commits state staged by `on_compaction_end` — e.g. eLSM folds the
    /// level-commitment delta into its trusted state.
    fn on_compaction_install(&self, info: &CompactionInfo) {
        let _ = info;
    }

    /// A record is being flushed from the memtable (pluggable-MemTable
    /// iterator hook).
    fn on_flush_record(&self, record: &Record) {
        let _ = record;
    }

    /// A record was appended to the write-ahead log.
    fn on_wal_append(&self, record: &Record) {
        let _ = record;
    }

    /// One commit group's records were appended to the write-ahead log as
    /// a single atomic frame. The committer serializes groups, so calls
    /// arrive in commit order and the listener may maintain order-sensitive
    /// state (eLSM folds the records into its WAL hash chain here) with a
    /// single lock acquisition and one amortized cost charge per group.
    ///
    /// The default forwards record by record to
    /// [`StoreListener::on_wal_append`].
    fn on_wal_append_batch(&self, records: &[Record]) {
        for record in records {
            self.on_wal_append(record);
        }
    }

    /// A new [`Version`](crate::version::Version) with the given epoch is
    /// about to become visible to readers. Fired *before* the swap, under
    /// the store's write lock, so a listener can publish state keyed by
    /// `epoch` (eLSM snapshots its level commitments here) with the
    /// guarantee that no reader observes the epoch first.
    fn on_version_install(&self, epoch: u64) {
        let _ = epoch;
    }

    /// The set of epochs still live after an install (every other
    /// published version has drained — no reader holds it — and was
    /// retired). A listener may prune state it published for epochs not
    /// in the set.
    fn on_versions_retired(&self, live_epochs: &[u64]) {
        let _ = live_epochs;
    }

    /// MAC authenticating one value-log entry. Called at flush time (and
    /// on GC rewrite verification) for each record whose value moves to
    /// the value log; the returned bytes are embedded in the pointer
    /// record, so the Merkle commitment over the pointer transitively
    /// covers the out-of-line value. The default (vanilla store) is an
    /// all-zero MAC — only the per-entry CRC protects the log.
    ///
    /// Must be a **deterministic** function of the record (replicas replay
    /// the same flushes and must produce bit-identical pointer records,
    /// hence bit-identical level commitments).
    fn vlog_mac(&self, record: &Record) -> [u8; MAC_BYTES] {
        let _ = record;
        [0u8; MAC_BYTES]
    }

    /// Wraps encoded pointer bytes into the form the listener stores as a
    /// record value (eLSM wraps them in its plain value envelope so
    /// pointer records share the level's canonical-record format). The
    /// default stores them bare.
    fn wrap_vlog_pointer(&self, pointer: Vec<u8>) -> Bytes {
        Bytes::from(pointer)
    }

    /// Inverse of [`StoreListener::wrap_vlog_pointer`]: recovers the
    /// encoded pointer bytes from a `VlogPut` record's stored value.
    /// `None` means the stored value does not parse (tampering).
    fn unwrap_vlog_pointer(&self, stored: &[u8]) -> Option<Bytes> {
        Some(Bytes::copy_from_slice(stored))
    }
}

/// One replication-relevant event of the write/maintenance path.
///
/// A [`ReplicationSink`] registered on a [`Db`](crate::db::Db) observes
/// these **in stream order**: replaying the same events against a second
/// store opened with the same options reproduces the first store's state
/// exactly — byte-identical WAL frames, the same memtable content at every
/// point, and (because `Flush`/`Compact` mark where maintenance ran) the
/// same version/epoch sequence and level contents. That determinism is
/// what lets a replica cross-check its own level commitments against the
/// primary's announcements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationEvent<'a> {
    /// One committed WAL batch frame (the crash-atomicity unit — a replica
    /// applies it whole via
    /// [`Db::apply_replicated_batch`](crate::db::Db::apply_replicated_batch)).
    Frame {
        /// The frame's records, timestamps already assigned.
        records: &'a [Record],
    },
    /// The memtable froze and is being flushed: a version boundary. A
    /// replica replays this as its own
    /// [`Db::flush`](crate::db::Db::flush) — the flush decision must
    /// come from the primary, never from the replica's own thresholds,
    /// or group-commit timing would desynchronize the two epoch
    /// sequences.
    Flush,
    /// A compaction job's output installed. Fired for **every** installed
    /// job — scheduler waves and explicit compactions alike — in install
    /// order, carrying the strategy-deterministic job description so a
    /// replica replays the exact same merge
    /// ([`Db::apply_compaction_job`](crate::db::Db::apply_compaction_job))
    /// instead of re-running its own selection. Flush replay therefore
    /// must **not** chase compaction
    /// ([`Db::apply_replicated_flush`](crate::db::Db::apply_replicated_flush)).
    Compact {
        /// The job that ran (input levels, output level, purge flag).
        job: &'a CompactionJob,
    },
    /// A version with this epoch was just installed; the listener's
    /// epoch-tagged state (eLSM's commitment snapshot) exists. Replicas
    /// use this to cross-check their replayed state per epoch.
    Install {
        /// The installed version's epoch.
        epoch: u64,
    },
    /// A value-log garbage collection installed: the carried merge job ran
    /// with the named victim files' live entries rewritten to the active
    /// log file, and the victims were deleted afterwards. A replica
    /// replays it via
    /// [`Db::apply_vlog_gc`](crate::db::Db::apply_vlog_gc) — like
    /// [`ReplicationEvent::Compact`], the decision (victim set and job)
    /// comes from the primary so both logs evolve identically.
    VlogGc {
        /// The GC description (merge job + victim file numbers).
        gc: &'a VlogGcJob,
    },
}

/// Observer of the replication event stream (the WAL-shipping seam).
///
/// Registered after open via
/// [`Db::set_replication_sink`](crate::db::Db::set_replication_sink).
/// `Frame`, `Flush` and `Install` events fire under the store's write
/// lock, so the callback sees them in exactly the order a replay must
/// apply them; keep the work done here small (enqueue and return).
pub trait ReplicationSink: Send + Sync {
    /// One event of the stream, in order.
    fn on_event(&self, event: ReplicationEvent<'_>);
}

/// A listener that does nothing (the vanilla, unsecured configuration).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopListener;

impl StoreListener for NoopListener {}

impl fmt::Debug for dyn StoreListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dyn StoreListener")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counting {
        inputs: AtomicU64,
        flushes: AtomicU64,
        wal: AtomicU64,
    }

    impl StoreListener for Counting {
        fn on_compaction_input(&self, _: RecordSource, _: &Record) {
            self.inputs.fetch_add(1, Ordering::Relaxed);
        }
        fn on_flush_record(&self, _: &Record) {
            self.flushes.fetch_add(1, Ordering::Relaxed);
        }
        fn on_wal_append(&self, _: &Record) {
            self.wal.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn defaults_are_noops() {
        let l = NoopListener;
        let r = Record::put(b"k".as_slice(), b"v".as_slice(), 1);
        assert_eq!(l.filter_output(&r), FilterDecision::Keep);
        let out = l.transform_output(1, vec![r.clone()]);
        assert_eq!(out, vec![r]);
    }

    #[test]
    fn custom_listener_observes() {
        let l = Counting::default();
        let r = Record::put(b"k".as_slice(), b"v".as_slice(), 1);
        l.on_compaction_input(RecordSource { level: 1, file_no: 3 }, &r);
        l.on_flush_record(&r);
        l.on_wal_append(&r);
        assert_eq!(l.inputs.load(Ordering::Relaxed), 1);
        assert_eq!(l.flushes.load(Ordering::Relaxed), 1);
        assert_eq!(l.wal.load(Ordering::Relaxed), 1);
    }
}
