//! The key-value store: memtable + WAL + leveled runs + compaction.
//!
//! Implements the paper's storage model (§2, §5.3):
//!
//! * writes go to the WAL (outside the enclave) and the memtable (inside),
//! * a full memtable flushes by merging into level 1,
//! * `COMPACTION(Li, Li+1)` merges two whole adjacent levels when `Li`
//!   exceeds its size budget (geometric level targets),
//! * point reads search memtable then levels in order with **early stop**,
//! * range reads visit every level (§5.4),
//! * deletes are tombstones, purged at the bottom level.
//!
//! # Compaction scheduler
//!
//! Which merges run is delegated to a pluggable
//! [`CompactionStrategy`](crate::compaction::CompactionStrategy)
//! (leveled — the paper's model — or size-tiered). After each flush the
//! scheduler repeatedly asks the strategy for a **wave**: a set of jobs
//! over pairwise-disjoint level sets. Wave jobs merge concurrently on
//! scoped worker threads (each under its own
//! [`SerialClass::compaction_slot`] so simulated merge time overlaps
//! across clients), then install sequentially in deterministic job order
//! — each install a brief write-lock epoch swap, so readers stay
//! lock-free and group commit keeps flowing while merges run. The
//! maintenance mutex now covers only job selection, the memtable freeze
//! and installs, not merge IO.
//!
//! # Concurrency model
//!
//! The store is built for concurrent readers. On-disk state is an
//! immutable, epoch-tagged [`Version`] (copy-on-write, LevelDB-style)
//! swapped atomically on every flush/compaction install:
//!
//! * **reads** briefly take the shared side of the write lock to probe the
//!   memtable and clone the current `Arc<Version>`, then do all Bloom,
//!   index and block IO — and any caller-supplied verification — with no
//!   store lock held;
//! * **writes** take the write lock only for the WAL append + memtable
//!   insert;
//! * **flush/compaction** (serialized by a maintenance mutex) do their
//!   merge IO against a pinned version and re-enter the write lock only to
//!   freeze the memtable and to install the successor version.
//!
//! Retired versions are garbage-collected as readers drain; the listener
//! learns of installs and retirements
//! ([`StoreListener::on_version_install`] /
//! [`StoreListener::on_versions_retired`]), which is how eLSM keeps
//! epoch-tagged commitment snapshots for trace verification without a
//! store-wide mutex (the §5.5.2 guarantee, without §5.5.2's lock).
//!
//! # Write pipeline
//!
//! All writes — singleton puts included — flow through a LevelDB-style
//! **group commit**: a writer enqueues its [`WriteBatch`] and the first
//! writer to find no leader active becomes the leader, drains the queue
//! (up to [`Options::max_group_commit_bytes`]), and commits the whole
//! group under one write-lock acquisition: timestamps assigned in arrival
//! order, one WAL frame appended per batch (the frame is the crash
//! atomicity unit), every record installed in the memtable. Followers
//! sleep on a condvar until the leader publishes their timestamps. The
//! per-commit fixed costs (operation bookkeeping, host exits for the WAL,
//! the listener's trusted-state fold) are paid once per group instead of
//! once per record — the ecall/ocall amortization the eLSM paper names as
//! the dominant enclave tax on writes.
//!
//! All observable events fire on the configured [`StoreListener`], which is
//! how the `elsm` crate adds authentication without modifying this crate.
//! Listener hooks must not write back into the same store from the WAL
//! hooks: they run on the commit leader.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use sgx_sim::{EnclaveRegion, SerialClass};
use sim_disk::FsError;

use crate::batch::{BatchOp, WriteBatch};
use crate::compaction::{CompactionDebt, CompactionJob, CompactionStrategy, LevelsView, VlogGcJob};
use crate::encoding::{get_fixed_u64, get_varint_u64, put_fixed_u64, put_varint_u64};
use crate::env::StorageEnv;
use crate::events::{
    CompactionInfo, FilterDecision, RecordSource, ReplicationEvent, ReplicationSink, StoreListener,
};
use crate::memtable::MemTable;
use crate::merge::{KWayMerge, MergeInput};
use crate::options::{Options, WalSyncPolicy};
use crate::record::{Record, Timestamp, ValueKind};
use crate::sstable::{NeighborPolicy, TableBuilder, TableGet, TableReader};
use crate::version::{GetTrace, LevelOutcome, LevelRange, LevelSearch, Run, ScanTrace, Version};
use crate::vlog::{decode_pointer, encode_pointer, parse_vlog_name, vlog_name, Vlog};
use crate::wal::{recover, WalWriter};

const MANIFEST: &str = "MANIFEST";

/// Cumulative operation counters.
///
/// Expressed over the store's telemetry registry (`db.*` counters under
/// the options' [`telemetry::Telemetry`] scope), so the snapshot a test
/// asserts on and the counters a telemetry export reports are *the same
/// atomics* — there is no second bookkeeping path to drift from.
#[derive(Debug, Clone)]
pub struct DbStats {
    puts: telemetry::Counter,
    deletes: telemetry::Counter,
    gets: telemetry::Counter,
    scans: telemetry::Counter,
    flushes: telemetry::Counter,
    compactions: telemetry::Counter,
    compaction_input_records: telemetry::Counter,
    compaction_output_records: telemetry::Counter,
}

impl DbStats {
    fn new(tel: &telemetry::Telemetry) -> Self {
        DbStats {
            puts: tel.counter("db.puts"),
            deletes: tel.counter("db.deletes"),
            gets: tel.counter("db.gets"),
            scans: tel.counter("db.scans"),
            flushes: tel.counter("db.flushes"),
            compactions: tel.counter("db.compactions"),
            compaction_input_records: tel.counter("db.compaction_input_records"),
            compaction_output_records: tel.counter("db.compaction_output_records"),
        }
    }
}

impl Default for DbStats {
    fn default() -> Self {
        DbStats::new(&telemetry::Telemetry::disabled())
    }
}

/// Spans, histograms and gauges instrumenting the store's hot paths.
/// Registered once at open; hot-path use is handle clones and atomics.
#[derive(Debug)]
struct StoreMetrics {
    /// One activation per committed group (leader-side work: WAL frames,
    /// group sync, memtable inserts, trusted fold).
    commit_group: telemetry::SpanHandle,
    /// Batches committed through the group pipeline.
    commit_batches: telemetry::Counter,
    /// Coalescing quality: batches riding each group.
    batches_per_group: telemetry::Histogram,
    /// Records riding each group.
    records_per_group: telemetry::Histogram,
    /// WAL frames appended (one per batch).
    wal_frames: telemetry::Counter,
    /// Encoded WAL bytes appended.
    wal_bytes: telemetry::Counter,
    /// Host pushes of buffered WAL frames.
    wal_syncs: telemetry::Counter,
    /// Flush phase 1: freeze + WAL rotation + install (write lock).
    flush_freeze: telemetry::SpanHandle,
    /// Flush phase 2: separation + merge to the target level (no lock).
    flush_merge: telemetry::SpanHandle,
    /// Flush phase 3: successor install + manifest (write lock).
    flush_install: telemetry::SpanHandle,
    /// Compaction waves executed (each wave = one strategy pick).
    compaction_waves: telemetry::Counter,
    /// One activation per compaction job merge (worker-thread side).
    compaction_merge: telemetry::SpanHandle,
    /// One activation per job install (write-lock side).
    compaction_install: telemetry::SpanHandle,
    /// One activation per value-log GC pass that found victims.
    vlog_gc: telemetry::SpanHandle,
    /// Instantaneous compaction debt (bytes over per-level budgets).
    debt_bytes: telemetry::Gauge,
    /// Jobs the strategy would schedule right now.
    pending_jobs: telemetry::Gauge,
    /// Bytes in live value-log files.
    vlog_bytes: telemetry::Gauge,
    /// Of those, bytes belonging to dropped pointer records.
    vlog_garbage_bytes: telemetry::Gauge,
}

impl StoreMetrics {
    fn new(tel: &telemetry::Telemetry) -> Self {
        StoreMetrics {
            commit_group: tel.span("commit.group"),
            commit_batches: tel.counter("commit.batches"),
            batches_per_group: tel.histogram("commit.batches_per_group"),
            records_per_group: tel.histogram("commit.records_per_group"),
            wal_frames: tel.counter("wal.frames"),
            wal_bytes: tel.counter("wal.appended_bytes"),
            wal_syncs: tel.counter("wal.syncs"),
            flush_freeze: tel.span("flush.freeze"),
            flush_merge: tel.span("flush.merge"),
            flush_install: tel.span("flush.install"),
            compaction_waves: tel.counter("compaction.waves"),
            compaction_merge: tel.span("compaction.merge"),
            compaction_install: tel.span("compaction.install"),
            vlog_gc: tel.span("vlog.gc"),
            debt_bytes: tel.gauge("compaction.debt_bytes"),
            pending_jobs: tel.gauge("compaction.pending_jobs"),
            vlog_bytes: tel.gauge("vlog.bytes"),
            vlog_garbage_bytes: tel.gauge("vlog.garbage_bytes"),
        }
    }
}

/// Snapshot of [`DbStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct DbStatsSnapshot {
    pub puts: u64,
    pub deletes: u64,
    pub gets: u64,
    pub scans: u64,
    pub flushes: u64,
    pub compactions: u64,
    pub compaction_input_records: u64,
    pub compaction_output_records: u64,
    /// Instantaneous compaction debt: total bytes over per-level budgets
    /// (see [`Db::compaction_debt`] for the per-level breakdown).
    pub debt_bytes: u64,
    /// Jobs the strategy would schedule right now.
    pub pending_compaction_jobs: u64,
    /// Bytes stored in live value-log files (0 when separation is off).
    pub vlog_bytes: u64,
    /// Of those, bytes belonging to dropped pointer records (GC fodder).
    pub vlog_garbage_bytes: u64,
    /// Block-cache hits of the storage environment (0 without a cache).
    pub block_cache_hits: u64,
    /// Block-cache misses of the storage environment.
    pub block_cache_misses: u64,
}

/// The mutable write side: everything the write lock protects.
struct DbInner {
    memtable: MemTable,
    wal: WalWriter,
    /// Oldest WAL the manifest still names (differs from `wal_no` only
    /// while a flush is merging the frozen memtable).
    wal_lo: u64,
    /// The active WAL receiving new appends.
    wal_no: u64,
    /// The version visible to new readers.
    current: Arc<Version>,
    /// Published versions not yet known to have drained (newest included).
    live: Vec<Arc<Version>>,
}

/// One finished merge: the output run (None when everything was purged)
/// plus the listener-facing summary.
struct MergeOutput {
    run: Option<Arc<Run>>,
    info: CompactionInfo,
}

/// One writer's batch waiting for a group-commit leader.
struct PendingBatch {
    seq: u64,
    ops: Vec<BatchOp>,
}

/// The group-commit queue (leader/follower, LevelDB-style).
#[derive(Default)]
struct CommitQueue {
    next_seq: u64,
    pending: VecDeque<PendingBatch>,
    /// Timestamps of committed batches not yet picked up by their
    /// writers, plus the trace context of the group-commit span that
    /// served them (so follower traces can link the shared commit).
    done: HashMap<u64, (Vec<Timestamp>, telemetry::TraceContext)>,
    leader_active: bool,
}

struct Committer {
    queue: StdMutex<CommitQueue>,
    cv: Condvar,
}

impl Committer {
    fn new() -> Self {
        Committer { queue: StdMutex::new(CommitQueue::default()), cv: Condvar::new() }
    }
}

/// A LevelDB-class LSM key-value store over the simulated platform.
///
/// # Examples
///
/// ```
/// use lsm_store::{Db, Options};
/// use sgx_sim::Platform;
/// use sim_disk::{SimDisk, SimFs};
///
/// # fn main() -> Result<(), sim_disk::FsError> {
/// let platform = Platform::with_defaults();
/// let fs = SimFs::new(SimDisk::new(platform.clone()));
/// let env = lsm_store::StorageEnv::new(platform, fs, lsm_store::EnvConfig::default(), None);
/// let db = Db::open(env, Options::default(), None)?;
/// db.put(b"k", b"v")?;
/// assert_eq!(&db.get(b"k")?.unwrap().value[..], b"v");
/// # Ok(())
/// # }
/// ```
pub struct Db {
    env: Arc<StorageEnv>,
    options: Options,
    listener: Arc<dyn StoreListener>,
    inner: RwLock<DbInner>,
    /// Serializes maintenance passes: memtable freeze, wave selection and
    /// installs. Merge IO itself runs outside the store's write lock (and,
    /// for parallel waves, on worker threads).
    maint: Mutex<()>,
    /// Next SSTable file number; concurrent merge jobs allocate lock-free.
    file_no: AtomicU64,
    /// The configured compaction strategy (from [`Options::compaction`]).
    strategy: Box<dyn CompactionStrategy>,
    /// Point reads search levels bottom-up when runs stack upward
    /// (compaction off, or a stacked strategy such as size-tiered).
    stacked_reads: bool,
    commit: Committer,
    ts: AtomicU64,
    memtable_region: Option<EnclaveRegion>,
    stats: DbStats,
    metrics: StoreMetrics,
    /// Replication event sink, if one is attached (see
    /// [`Db::set_replication_sink`]).
    repl: RwLock<Option<Arc<dyn ReplicationSink>>>,
    /// The value log (key-value separation). Present when
    /// [`Options::vlog`] is set, or when a recovered manifest names log
    /// files (so pointer records stay readable after separation is turned
    /// off). New separation happens only while [`Options::vlog`] is set.
    vlog: Option<Arc<Vlog>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Db(ts={}, levels={})", self.ts.load(Ordering::Relaxed), self.options.max_levels)
    }
}

impl Db {
    /// Opens (or recovers) a store in the environment's filesystem.
    ///
    /// If a manifest exists, levels and the WAL are recovered; otherwise a
    /// fresh store is initialized.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO or corruption errors.
    pub fn open(
        env: Arc<StorageEnv>,
        options: Options,
        listener: Option<Arc<dyn StoreListener>>,
    ) -> Result<Self, FsError> {
        let listener = listener.unwrap_or_else(|| Arc::new(crate::events::NoopListener));
        let memtable_region = env
            .config()
            .in_enclave
            .then(|| env.platform().enclave_alloc(options.write_buffer_bytes * 2));
        let recovering = env.fs().open(MANIFEST).is_ok();
        let (inner, next_file_no, last_ts, vlog_manifest) = if recovering {
            Self::recover_parts(&env, &options)?
        } else {
            let wal_file = env.fs().create(&wal_name(1))?;
            let current = Arc::new(Version::empty(options.max_levels));
            (
                DbInner {
                    memtable: MemTable::new(),
                    wal: WalWriter::new(env.clone(), wal_file, options.wal_sync),
                    wal_lo: 1,
                    wal_no: 1,
                    live: vec![current.clone()],
                    current,
                },
                1,
                0,
                (1, Vec::new()),
            )
        };
        let (vlog_next_no, vlog_files) = vlog_manifest;
        // Keep the log readable even when separation was turned off, as
        // long as the manifest still names files (levels may hold pointer
        // records into them).
        let vlog = if options.vlog.is_some() || !vlog_files.is_empty() {
            let config = options.vlog.unwrap_or_default();
            Some(Arc::new(Vlog::recover(env.clone(), config, vlog_next_no, &vlog_files)?))
        } else {
            None
        };
        // Publish epoch 0 to the listener before any reader exists, so
        // every epoch a trace can name has listener-side state.
        listener.on_version_install(inner.current.epoch());
        let strategy = options.compaction.strategy();
        let stacked_reads = !options.compaction_enabled || strategy.stacked();
        let db = Db {
            env,
            listener,
            inner: RwLock::new(inner),
            maint: Mutex::new(()),
            file_no: AtomicU64::new(next_file_no),
            strategy,
            stacked_reads,
            commit: Committer::new(),
            ts: AtomicU64::new(last_ts),
            memtable_region,
            stats: DbStats::new(&options.telemetry),
            metrics: StoreMetrics::new(&options.telemetry),
            repl: RwLock::new(None),
            vlog,
            options,
        };
        if !recovering {
            let _maint = db.maint.lock();
            db.write_manifest()?;
        }
        Ok(db)
    }

    #[allow(clippy::type_complexity)]
    fn recover_parts(
        env: &Arc<StorageEnv>,
        options: &Options,
    ) -> Result<(DbInner, u64, u64, (u64, Vec<(u64, u64, u64)>)), FsError> {
        let manifest = env.fs().open(MANIFEST)?;
        let bytes = env.host_call(|| manifest.read_at(0, manifest.len()))?;
        let corrupt =
            || FsError::OutOfBounds { name: MANIFEST.to_string(), requested_end: 0, len: 0 };
        let next_file_no = get_fixed_u64(&bytes, 0).ok_or_else(corrupt)?;
        let last_ts = get_fixed_u64(&bytes, 8).ok_or_else(corrupt)?;
        let wal_lo = get_fixed_u64(&bytes, 16).ok_or_else(corrupt)?;
        let wal_no = get_fixed_u64(&bytes, 24).ok_or_else(corrupt)?;
        let mut pos = 32usize;
        let (nlevels, n) = get_varint_u64(&bytes[pos..]).ok_or_else(corrupt)?;
        pos += n;
        let mut levels: Vec<Option<Arc<Run>>> =
            (0..=options.max_levels.max(nlevels as usize)).map(|_| None).collect();
        let mut named = HashSet::new();
        for slot in levels.iter_mut().take(nlevels as usize + 1).skip(1) {
            let (nfiles, n) = get_varint_u64(&bytes[pos..]).ok_or_else(corrupt)?;
            pos += n;
            if nfiles == 0 {
                continue;
            }
            let mut tables = Vec::new();
            for _ in 0..nfiles {
                let (file_no, n) = get_varint_u64(&bytes[pos..]).ok_or_else(corrupt)?;
                pos += n;
                named.insert(file_no);
                let file = env.fs().open(&table_name(file_no))?;
                tables.push(Arc::new(TableReader::open(env.clone(), file, file_no)?));
            }
            *slot = Some(Arc::new(Run::new(tables)));
        }
        // The value-log section follows the levels. Older manifests (no
        // section) decode as an empty log.
        let (vlog_next_no, vlog_files) = match crate::vlog::decode_manifest_section(&bytes[pos..]) {
            Some((next_no, files, _)) => (next_no, files),
            None => (1, Vec::new()),
        };
        // A crash between writing a merge's output files and the manifest
        // that names them leaves orphaned SSTables. Remove them: they hold
        // only data still reachable through the manifest's inputs, and
        // leaving them would collide with reused file numbers (the
        // recovered `next_file_no` predates the orphans).
        let named_vlogs: HashSet<u64> = vlog_files.iter().map(|&(no, _, _)| no).collect();
        for name in env.fs().list() {
            if let Some(no) = parse_table_name(&name) {
                if !named.contains(&no) {
                    let _ = env.fs().delete(&name);
                }
            }
            // Likewise for value-log files the manifest never learned of:
            // no durable pointer record can name them (pointers reach the
            // levels only via SSTables the same manifest would name), so
            // they hold only garbage from a crash mid-flush or mid-GC.
            if let Some(no) = parse_vlog_name(&name) {
                if !named_vlogs.contains(&no) {
                    let _ = env.fs().delete(&name);
                }
            }
        }
        // Replay every WAL the manifest names, oldest first (a crash
        // mid-flush leaves both the pre-freeze log and the active log
        // live; appends are strictly ordered across the rotation).
        let mut max_ts = last_ts;
        let mut memtable = MemTable::new();
        for no in wal_lo..=wal_no {
            let Ok(file) = env.fs().open(&wal_name(no)) else { continue };
            for r in recover(env, &file)? {
                max_ts = max_ts.max(r.ts);
                memtable.insert(r);
            }
        }
        let wal_file = match env.fs().open(&wal_name(wal_no)) {
            Ok(f) => f,
            Err(_) => env.fs().create(&wal_name(wal_no))?,
        };
        // Orphaned logs outside the manifest's range (e.g. a rotation the
        // manifest never learned of) hold no acknowledged data; remove
        // them so their numbers can be reused.
        for name in env.fs().list() {
            if let Some(no) = parse_wal_name(&name) {
                if !(wal_lo..=wal_no).contains(&no) {
                    let _ = env.fs().delete(&name);
                }
            }
        }
        let current = Arc::new(Version::new(0, None, levels));
        Ok((
            DbInner {
                memtable,
                wal: WalWriter::new(env.clone(), wal_file, options.wal_sync),
                wal_lo,
                wal_no,
                live: vec![current.clone()],
                current,
            },
            next_file_no,
            max_ts,
            (vlog_next_no, vlog_files),
        ))
    }

    /// The storage environment.
    pub fn env(&self) -> &Arc<StorageEnv> {
        &self.env
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Operation counters plus instantaneous compaction-debt gauges.
    ///
    /// The counter values are read back from the telemetry registry the
    /// store was opened with (the registry *is* the bookkeeping); the
    /// instantaneous gauges are recomputed and mirrored into the registry
    /// as `compaction.*`/`vlog.*` gauges.
    pub fn stats(&self) -> DbStatsSnapshot {
        let debt = self.compaction_debt();
        let (vlog_bytes, vlog_garbage_bytes) =
            self.vlog.as_ref().map_or((0, 0), |vlog| vlog.stats());
        let (block_cache_hits, block_cache_misses) = self.env.cache_stats().unwrap_or((0, 0));
        self.metrics.debt_bytes.set(debt.total_over_bytes);
        self.metrics.pending_jobs.set(debt.pending_jobs as u64);
        self.metrics.vlog_bytes.set(vlog_bytes);
        self.metrics.vlog_garbage_bytes.set(vlog_garbage_bytes);
        DbStatsSnapshot {
            puts: self.stats.puts.value(),
            deletes: self.stats.deletes.value(),
            gets: self.stats.gets.value(),
            scans: self.stats.scans.value(),
            flushes: self.stats.flushes.value(),
            compactions: self.stats.compactions.value(),
            compaction_input_records: self.stats.compaction_input_records.value(),
            compaction_output_records: self.stats.compaction_output_records.value(),
            debt_bytes: debt.total_over_bytes,
            pending_compaction_jobs: debt.pending_jobs as u64,
            vlog_bytes,
            vlog_garbage_bytes,
            block_cache_hits,
            block_cache_misses,
        }
    }

    /// The value log, when key-value separation is (or was) enabled.
    pub fn vlog(&self) -> Option<&Arc<Vlog>> {
        self.vlog.as_ref()
    }

    /// How far behind compaction currently is: per-level bytes over the
    /// geometric size budgets, plus the number of jobs the strategy would
    /// schedule against the current version. Lock-free (reads one version
    /// snapshot); a figure harness can poll it mid-workload.
    pub fn compaction_debt(&self) -> CompactionDebt {
        let version = self.current_version();
        let view = LevelsView::from_version(&version);
        let mut per_level = vec![0u64];
        for level in 1..view.len() {
            let budget = self.options.level_target_bytes(level.min(self.options.max_levels).max(1));
            per_level.push(view.bytes(level).unwrap_or(0).saturating_sub(budget));
        }
        let pending_jobs = if self.options.compaction_enabled {
            self.strategy.pick_jobs(&view, &self.options).len()
        } else {
            0
        };
        CompactionDebt {
            total_over_bytes: per_level.iter().sum(),
            per_level_over_bytes: per_level,
            pending_jobs,
        }
    }

    /// Latest assigned timestamp.
    pub fn latest_ts(&self) -> Timestamp {
        self.ts.load(Ordering::SeqCst)
    }

    /// Attaches the sink that observes this store's replication event
    /// stream ([`ReplicationEvent`]): committed WAL frames, flush and
    /// compaction-job markers, and version installs, in stream order.
    /// One sink at a time; registering replaces any previous one.
    pub fn set_replication_sink(&self, sink: Arc<dyn ReplicationSink>) {
        *self.repl.write() = Some(sink);
    }

    /// Fires one replication event at the attached sink, if any.
    fn emit(&self, event: ReplicationEvent<'_>) {
        if let Some(sink) = self.repl.read().as_ref() {
            sink.on_event(event);
        }
    }

    /// The currently visible version snapshot. Readers may hold it
    /// arbitrarily long; its epoch stays verifiable until the snapshot
    /// drops.
    pub fn current_version(&self) -> Arc<Version> {
        self.inner.read().current.clone()
    }

    /// Epoch of the currently visible version.
    pub fn current_epoch(&self) -> u64 {
        self.inner.read().current.epoch()
    }

    /// Every record of one on-disk level, in internal-key order. Used by
    /// recovery paths that must rebuild derived structures (e.g. eLSM's
    /// untrusted digest store after a restart).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn level_record_dump(&self, level: usize) -> Result<Vec<Record>, FsError> {
        let version = self.current_version();
        let Some(run) = version.level(level) else {
            return Ok(Vec::new());
        };
        Ok(run.iter_records().collect())
    }

    /// Bytes stored at each level (index 0 = memtable approximation,
    /// including a frozen memtable mid-flush).
    pub fn level_bytes(&self) -> Vec<u64> {
        let (mem, version) = {
            let inner = self.inner.read();
            (inner.memtable.approximate_bytes() as u64, inner.current.clone())
        };
        let imm = version.imm().map_or(0, |m| m.approximate_bytes() as u64);
        let mut out = vec![mem + imm];
        for level in 1..version.levels().len() {
            out.push(version.level(level).map_or(0, |r| r.total_bytes()));
        }
        out
    }

    /// Record count at each level (index 0 = memtable, including a frozen
    /// memtable mid-flush).
    pub fn level_records(&self) -> Vec<u64> {
        let (mem, version) = {
            let inner = self.inner.read();
            (inner.memtable.len() as u64, inner.current.clone())
        };
        let imm = version.imm().map_or(0, |m| m.len() as u64);
        let mut out = vec![mem + imm];
        for level in 1..version.levels().len() {
            out.push(version.level(level).map_or(0, |r| r.total_records()));
        }
        out
    }

    // ----- write path -----------------------------------------------------

    /// Inserts a key-value record; returns its timestamp (Equation 1:
    /// `ts = PUT(k, v)`). Routed through the group-commit pipeline as a
    /// batch of one, so racing singleton writers coalesce into one commit.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if flushing or compaction IO fails.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, FsError> {
        let mut batch = WriteBatch::with_capacity(1);
        batch.put(Bytes::copy_from_slice(key), Bytes::copy_from_slice(value));
        Ok(self.write_batch(batch)?[0])
    }

    /// Deletes a key by writing a tombstone; returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if flushing or compaction IO fails.
    pub fn delete(&self, key: &[u8]) -> Result<Timestamp, FsError> {
        let mut batch = WriteBatch::with_capacity(1);
        batch.delete(Bytes::copy_from_slice(key));
        Ok(self.write_batch(batch)?[0])
    }

    /// Applies a [`WriteBatch`] atomically; returns one timestamp per
    /// operation, in batch order.
    ///
    /// Concurrent writers' batches are coalesced by a leader (LevelDB-style
    /// group commit): the whole group pays one write-lock acquisition, one
    /// fixed bookkeeping charge, and one WAL host exit per batch — while
    /// each batch stays its own atomic WAL frame, so a crash either
    /// persists a batch whole or drops it whole.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if the flush this write triggers fails; the
    /// batch itself is already committed at that point.
    ///
    /// # Panics
    ///
    /// Panics if the batch's encoded WAL frame would exceed the format's
    /// 32-bit length field (≈4 GiB) — split giant ingests into multiple
    /// batches.
    pub fn write_batch(&self, batch: WriteBatch) -> Result<Vec<Timestamp>, FsError> {
        // The WAL frame's length field is 32-bit: a batch whose encoded
        // payload could overflow it must fail here, on its own writer's
        // thread, not as a panic on whichever leader commits the group
        // (18 bytes/record bounds the encoding overhead).
        assert!(
            batch.payload_bytes() + 18 * batch.len() < u32::MAX as usize,
            "write batch too large for one WAL frame ({} payload bytes); split it",
            batch.payload_bytes()
        );
        let ops = batch.into_ops();
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        for op in &ops {
            match op.kind {
                ValueKind::Put | ValueKind::VlogPut => self.stats.puts.inc(),
                ValueKind::Delete => self.stats.deletes.inc(),
            };
        }
        let mut q = self.commit.queue.lock().expect("commit queue poisoned");
        let seq = q.next_seq;
        q.next_seq += 1;
        q.pending.push_back(PendingBatch { seq, ops });
        loop {
            // A previous leader may have committed us while we waited.
            if let Some((ts, commit_ctx)) = q.done.remove(&seq) {
                // One group commit served many writers: this follower's
                // request tree records a span *link* to the shared commit
                // span rather than claiming it as a child.
                telemetry::trace::link_current(commit_ctx);
                return Ok(ts);
            }
            if q.leader_active {
                q = self.commit.cv.wait(q).expect("commit queue poisoned");
                continue;
            }
            // Become the leader: drain waiting batches in arrival order up
            // to the group byte budget.
            q.leader_active = true;
            let mut group = Vec::new();
            let mut group_bytes = 0usize;
            while let Some(front) = q.pending.front() {
                let bytes: usize = front.ops.iter().map(|o| o.key.len() + o.value.len() + 24).sum();
                if !group.is_empty() && group_bytes + bytes > self.options.max_group_commit_bytes {
                    break;
                }
                group_bytes += bytes;
                group.push(q.pending.pop_front().expect("front checked"));
            }
            drop(q);
            let (results, commit_ctx, flush_needed) = self.commit_group(&group);
            q = self.commit.queue.lock().expect("commit queue poisoned");
            for (p, ts) in group.iter().zip(results) {
                q.done.insert(p.seq, (ts, commit_ctx));
            }
            q.leader_active = false;
            self.commit.cv.notify_all();
            let mine = q.done.remove(&seq);
            if let Some((ts, _ctx)) = mine {
                // The leader's own trace already encloses the commit span
                // as a nested child; no link needed.
                drop(q);
                // Only the leader chases the flush its group triggered;
                // followers are already unblocked.
                if flush_needed {
                    self.flush_if_over()?;
                }
                return Ok(ts);
            }
            // Our batch did not fit this group's budget: loop and commit it
            // in the next group (we are first in the queue now).
        }
    }

    /// Commits a drained group: timestamps in arrival order, one WAL frame
    /// per batch, every record installed in the memtable — all under a
    /// single write-lock acquisition. Runs only on the group-commit leader.
    fn commit_group(
        &self,
        group: &[PendingBatch],
    ) -> (Vec<Vec<Timestamp>>, telemetry::TraceContext, bool) {
        // The commit span nests under the leader's request trace (it runs
        // on the leader's thread); its context is handed back through the
        // done map so followers can link it, and it is the innermost
        // active span when frames are shipped below — the wire envelope
        // carries it to replicas.
        let trace = self.options.telemetry.trace_op("commit.group", "commit");
        let trace_ctx = trace.ctx();
        let _span = self.metrics.commit_group.start();
        let total_ops: usize = group.iter().map(|p| p.ops.len()).sum();
        self.metrics.commit_batches.add(group.len() as u64);
        self.metrics.batches_per_group.observe(group.len() as u64);
        self.metrics.records_per_group.observe(total_ops as u64);
        let mut all_records: Vec<Record> = Vec::with_capacity(total_ops);
        let mut results = Vec::with_capacity(group.len());
        let flush_needed = {
            let _serial = self.env.platform().serial_section(SerialClass::StoreWrite);
            // Fixed commit bookkeeping is paid once per group, not per op.
            self.env.platform().charge_op_base();
            let mut inner = self.inner.write();
            for p in group {
                // Timestamps are assigned under the write lock, so
                // timestamp order equals commit order even across racing
                // writers, and a batch's records are always contiguous.
                let frame_start = all_records.len();
                let mut timestamps = Vec::with_capacity(p.ops.len());
                for op in &p.ops {
                    let ts = self.ts.fetch_add(1, Ordering::SeqCst) + 1;
                    timestamps.push(ts);
                    all_records.push(Record {
                        key: op.key.clone(),
                        value: op.value.clone(),
                        ts,
                        kind: op.kind,
                    });
                }
                let frame_bytes = inner.wal.append_batch(&all_records[frame_start..]);
                self.metrics.wal_frames.inc();
                self.metrics.wal_bytes.add(frame_bytes as u64);
                // Ship the frame while the write lock still orders the
                // stream: a concurrent flush can then never slip its
                // marker between a committed frame and its shipment.
                self.emit(ReplicationEvent::Frame { records: &all_records[frame_start..] });
                results.push(timestamps);
            }
            if self.options.wal_sync == WalSyncPolicy::EveryBatch {
                // One host exit carries the whole group's frames.
                if inner.wal.sync() > 0 {
                    self.metrics.wal_syncs.inc();
                }
            }
            for record in &all_records {
                // Model the in-enclave memtable write: touch the insertion
                // point.
                if let Some(region) = &self.memtable_region {
                    let off = inner.memtable.approximate_bytes() % region.len().max(1);
                    let len =
                        record.approximate_size().min(region.len() - off.min(region.len())).max(1);
                    self.env.platform().enclave_touch(region, off.min(region.len() - len), len);
                }
                inner.memtable.insert(record.clone());
            }
            inner.memtable.approximate_bytes() >= self.options.write_buffer_bytes
        };
        // Outside the write lock — leader exclusivity still keeps commit
        // order — the listener folds the group into its order-sensitive
        // trusted state (eLSM's WAL digest), once per group.
        self.listener.on_wal_append_batch(&all_records);
        (results, trace_ctx, flush_needed)
    }

    /// Pushes any WAL frames still buffered under a lazy
    /// [`WalSyncPolicy`] out to the host. Part of every clean-shutdown
    /// path: without it, `EveryNBytes` could lose acknowledged writes
    /// across a *graceful* close, not just a crash.
    pub fn sync_wal(&self) {
        let _serial = self.env.platform().serial_section(SerialClass::StoreWrite);
        self.inner.write().wal.sync();
    }

    /// Applies one replicated WAL batch frame: records shipped from a
    /// primary, **timestamps already assigned** by the primary's enclave.
    ///
    /// This is the replica half of the replication seam. The records are
    /// appended to this store's own WAL as one atomic frame, inserted
    /// into the memtable, and folded through the listener exactly as a
    /// local commit would be — so a replica that replays the primary's
    /// event stream ends up with the same memtable content, the same WAL
    /// digest, and (after replaying the primary's `Flush`/`Compact`
    /// markers) the same level contents and epochs. The timestamp
    /// allocator advances past the frame's timestamps, keeping a later
    /// promotion's own writes strictly newer.
    ///
    /// Deliberately does **not** trigger a flush: version boundaries come
    /// from the primary's [`ReplicationEvent::Flush`] markers (replayed as
    /// [`Db::flush`]), never from this store's own thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn apply_replicated_batch(&self, records: &[Record]) -> Result<(), FsError> {
        if records.is_empty() {
            return Ok(());
        }
        for record in records {
            match record.kind {
                ValueKind::Put | ValueKind::VlogPut => self.stats.puts.inc(),
                ValueKind::Delete => self.stats.deletes.inc(),
            };
        }
        {
            let _serial = self.env.platform().serial_section(SerialClass::StoreWrite);
            self.env.platform().charge_op_base();
            let mut inner = self.inner.write();
            let max_ts = records.iter().map(|r| r.ts).max().unwrap_or(0);
            self.ts.fetch_max(max_ts, Ordering::SeqCst);
            let frame_bytes = inner.wal.append_batch(records);
            self.metrics.wal_frames.inc();
            self.metrics.wal_bytes.add(frame_bytes as u64);
            if self.options.wal_sync == WalSyncPolicy::EveryBatch && inner.wal.sync() > 0 {
                self.metrics.wal_syncs.inc();
            }
            for record in records {
                if let Some(region) = &self.memtable_region {
                    let off = inner.memtable.approximate_bytes() % region.len().max(1);
                    let len =
                        record.approximate_size().min(region.len() - off.min(region.len())).max(1);
                    self.env.platform().enclave_touch(region, off.min(region.len() - len), len);
                }
                inner.memtable.insert(record.clone());
            }
            // Chained replication: a replica can itself feed replicas.
            self.emit(ReplicationEvent::Frame { records });
        }
        self.listener.on_wal_append_batch(records);
        Ok(())
    }

    /// Forces a memtable flush (to the strategy's target level), then lets
    /// the scheduler run any compaction waves the flush made due.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn flush(&self) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        self.flush_inner(0, true)
    }

    /// Flush triggered by a full memtable: once the maintenance lock is
    /// ours, flush only if the memtable is still over the write-buffer
    /// budget (another writer may have flushed it meanwhile).
    fn flush_if_over(&self) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        self.flush_inner(self.options.write_buffer_bytes, true)
    }

    /// Replays a primary's [`ReplicationEvent::Flush`] marker: flushes the
    /// memtable exactly as [`Db::flush`] would, but does **not** chase
    /// compaction waves afterward — the primary ships every job it ran as
    /// its own [`ReplicationEvent::Compact`] marker, and a replica that
    /// re-selected jobs locally could diverge (double-compact) from the
    /// primary's epoch sequence.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn apply_replicated_flush(&self) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        self.flush_inner(0, false)
    }

    // ----- read path ------------------------------------------------------

    /// Point query at the latest timestamp; tombstones read as absent.
    ///
    /// This is the unauthenticated fast path: definite Bloom misses return
    /// without index/block IO, and misses resolve no bounding neighbors
    /// ([`NeighborPolicy::Skip`]).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>, FsError> {
        let ts_q = Timestamp::MAX >> 1;
        let (mem_hit, version) = self.read_view(key, ts_q);
        let trace = self.get_on_version(&version, mem_hit, key, ts_q, NeighborPolicy::Skip)?;
        match trace.result.filter(|r| r.kind.is_value()) {
            Some(r) => self.resolve_vlog_record(r).map(Some),
            None => Ok(None),
        }
    }

    /// Replaces a pointer record's value with the bytes it points at in
    /// the value log; non-pointer records pass through. The unauthenticated
    /// counterpart of eLSM's MAC-checked resolution: a pointer that does
    /// not resolve (missing file, CRC mismatch, key/ts mismatch) is disk
    /// corruption and surfaces as an IO error, never as silent garbage or
    /// a silent miss.
    fn resolve_vlog_record(&self, record: Record) -> Result<Record, FsError> {
        if record.kind != ValueKind::VlogPut {
            return Ok(record);
        }
        let corrupt = |name: String| FsError::OutOfBounds { name, requested_end: 0, len: 0 };
        let vlog = self.vlog.as_ref().ok_or_else(|| corrupt("no value log".to_string()))?;
        let entry = self
            .listener
            .unwrap_vlog_pointer(&record.value)
            .and_then(|ptr_bytes| decode_pointer(&ptr_bytes))
            .map(|(ptr, _mac)| vlog.read(ptr).map(|e| (ptr, e)))
            .transpose()?
            .and_then(|(ptr, entry)| entry.map(|e| (ptr, e)));
        match entry {
            Some((_, e)) if e.key == record.key && e.ts == record.ts => Ok(Record {
                key: record.key,
                value: Bytes::from(e.value),
                ts: record.ts,
                kind: ValueKind::Put,
            }),
            Some((ptr, _)) => Err(corrupt(vlog_name(ptr.file_no))),
            None => Err(corrupt("vlog pointer".to_string())),
        }
    }

    /// Point query returning the full per-level trace (the middleware
    /// interface eLSM builds proofs from). Search stops at the first level
    /// with a record for the key — the paper's early stop.
    ///
    /// The trace is collected against an immutable [`Version`] snapshot;
    /// no store lock is held during level IO. [`GetTrace::epoch`] names
    /// the snapshot so verifiers check against the matching commitments.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn get_with_trace(&self, key: &[u8], ts_q: Timestamp) -> Result<GetTrace, FsError> {
        let (mem_hit, version) = self.read_view(key, ts_q);
        self.get_on_version(&version, mem_hit, key, ts_q, NeighborPolicy::Required)
    }

    /// Like [`Db::get_with_trace`], but runs `check` on the trace while the
    /// version snapshot is still pinned. Pinning guarantees the trace's
    /// epoch has not been retired, so `check` can verify against the
    /// epoch's published commitments even while concurrent
    /// flushes/compactions install new versions — the §5.5.2
    /// read/compaction synchronization, without holding any store lock
    /// across block IO or verification.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors; `check`'s verdict is returned
    /// alongside the trace.
    pub fn get_with_trace_sync<T>(
        &self,
        key: &[u8],
        ts_q: Timestamp,
        check: impl FnOnce(&GetTrace) -> T,
    ) -> Result<(GetTrace, T), FsError> {
        let (mem_hit, version) = self.read_view(key, ts_q);
        let trace = self.get_on_version(&version, mem_hit, key, ts_q, NeighborPolicy::Required)?;
        let verdict = check(&trace);
        drop(version); // the epoch may drain only after verification
        Ok((trace, verdict))
    }

    /// Probes the live memtable and pins the current version: the only
    /// part of a read that takes (the shared side of) the store lock.
    fn read_view(&self, key: &[u8], ts_q: Timestamp) -> (Option<Record>, Arc<Version>) {
        self.stats.gets.inc();
        self.env.platform().charge_op_base();
        // Model the in-enclave memtable probe.
        if let Some(region) = &self.memtable_region {
            let h = fxhash(key) as usize;
            let len = region.len().max(2);
            self.env.platform().enclave_touch(region, h % (len / 2), 32.min(len / 2));
        }
        let inner = self.inner.read();
        (inner.memtable.get(key, ts_q), inner.current.clone())
    }

    /// Searches a pinned version: frozen memtable first (trusted memory),
    /// then the levels in freshness order with early stop. No lock held.
    fn get_on_version(
        &self,
        version: &Version,
        mem_hit: Option<Record>,
        key: &[u8],
        ts_q: Timestamp,
        neighbors: NeighborPolicy,
    ) -> Result<GetTrace, FsError> {
        let epoch = version.epoch();
        let from_memtable = mem_hit.or_else(|| version.imm().and_then(|imm| imm.get(key, ts_q)));
        if let Some(r) = from_memtable {
            return Ok(GetTrace {
                epoch,
                memtable: Some(r.clone()),
                levels: Vec::new(),
                result: Some(r),
            });
        }
        let mut levels = Vec::new();
        let mut result = None;
        // Under leveled compaction, lower levels are fresher (Lemma 5.4).
        // In stacked layouts — compaction off, or a stacked strategy like
        // size-tiered — runs stack upward as they flush, so the freshest
        // run has the highest index and search order reverses.
        let order: Vec<usize> = if self.stacked_reads {
            (1..version.levels().len()).rev().collect()
        } else {
            (1..version.levels().len()).collect()
        };
        for level in order {
            match version.level(level) {
                None => levels.push(LevelSearch { level, outcome: LevelOutcome::Empty }),
                Some(run) => match run.get(key, ts_q, neighbors)? {
                    TableGet::Hit(r) => {
                        levels.push(LevelSearch { level, outcome: LevelOutcome::Hit(r.clone()) });
                        result = Some(r);
                        break; // early stop (§5.3)
                    }
                    TableGet::Miss { left, right } => {
                        levels.push(LevelSearch {
                            level,
                            outcome: LevelOutcome::Miss { left, right },
                        });
                    }
                },
            }
        }
        Ok(GetTrace { epoch, memtable: None, levels, result })
    }

    /// Range query at the latest timestamp (Equation 1's SCAN).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        let ts_q = Timestamp::MAX >> 1;
        let (mem, version) = self.scan_view(from, to);
        let trace = self.scan_on_version(&version, mem, from, to, ts_q, NeighborPolicy::Skip)?;
        trace.merged.into_iter().map(|r| self.resolve_vlog_record(r)).collect()
    }

    /// Range query with the full per-level trace. Unlike GET, every level
    /// is visited (§5.4). Collected against a pinned version with no store
    /// lock held.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn scan_with_trace(
        &self,
        from: &[u8],
        to: &[u8],
        ts_q: Timestamp,
    ) -> Result<ScanTrace, FsError> {
        let (mem, version) = self.scan_view(from, to);
        self.scan_on_version(&version, mem, from, to, ts_q, NeighborPolicy::Required)
    }

    /// Like [`Db::scan_with_trace`], but runs `check` while the version
    /// snapshot is pinned — the scan counterpart of
    /// [`Db::get_with_trace_sync`].
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors; `check`'s verdict is returned
    /// alongside the trace.
    pub fn scan_with_trace_sync<T>(
        &self,
        from: &[u8],
        to: &[u8],
        ts_q: Timestamp,
        check: impl FnOnce(&ScanTrace) -> T,
    ) -> Result<(ScanTrace, T), FsError> {
        let (mem, version) = self.scan_view(from, to);
        let trace =
            self.scan_on_version(&version, mem, from, to, ts_q, NeighborPolicy::Required)?;
        let verdict = check(&trace);
        drop(version);
        Ok((trace, verdict))
    }

    fn scan_view(&self, from: &[u8], to: &[u8]) -> (Vec<Record>, Arc<Version>) {
        self.stats.scans.inc();
        self.env.platform().charge_op_base();
        let inner = self.inner.read();
        (inner.memtable.range_records(from, to), inner.current.clone())
    }

    fn scan_on_version(
        &self,
        version: &Version,
        mut memtable: Vec<Record>,
        from: &[u8],
        to: &[u8],
        ts_q: Timestamp,
        neighbors: NeighborPolicy,
    ) -> Result<ScanTrace, FsError> {
        if let Some(imm) = version.imm() {
            memtable.extend(imm.range_records(from, to));
        }
        memtable.retain(|r| r.ts <= ts_q);
        let mut levels = Vec::new();
        for level in 1..version.levels().len() {
            match version.level(level) {
                None => levels.push(LevelRange {
                    level,
                    empty: true,
                    records: Vec::new(),
                    left: None,
                    right: None,
                }),
                Some(run) => {
                    let (left, right) = if neighbors == NeighborPolicy::Required {
                        (run.neighbor_below(from, ts_q)?, run.neighbor_above(to, ts_q)?)
                    } else {
                        (None, None)
                    };
                    levels.push(LevelRange {
                        level,
                        empty: false,
                        records: run.range(from, to)?,
                        left,
                        right,
                    });
                }
            }
        }
        // Merge: newest visible version per key, tombstones hide.
        let mut all: Vec<&Record> = memtable
            .iter()
            .chain(levels.iter().flat_map(|l| l.records.iter()))
            .filter(|r| r.ts <= ts_q)
            .collect();
        all.sort_by(|a, b| a.key.cmp(&b.key).then(b.ts.cmp(&a.ts)));
        let mut merged = Vec::new();
        let mut last_key: Option<&[u8]> = None;
        for r in all {
            if last_key == Some(&r.key[..]) {
                continue;
            }
            last_key = Some(&r.key[..]);
            if r.kind.is_value() {
                merged.push(r.clone());
            }
        }
        Ok(ScanTrace { epoch: version.epoch(), memtable, levels, merged })
    }

    // ----- flush & compaction ----------------------------------------------

    /// Installs `next` as the current version: the listener publishes the
    /// epoch first (so no reader can observe an epoch without its
    /// commitments), then the pointer swaps, then drained versions retire.
    fn install_locked(&self, inner: &mut DbInner, next: Arc<Version>) {
        self.listener.on_version_install(next.epoch());
        // After the listener published: the epoch's commitment snapshot
        // exists, so a replica receiving this event can cross-check.
        self.emit(ReplicationEvent::Install { epoch: next.epoch() });
        inner.current = next.clone();
        inner.live.push(next);
        let newest = inner.current.epoch();
        // A version has drained when only the live list itself holds it.
        // Keep a small floor of recent epochs for detached-trace flows.
        inner.live.retain(|v| {
            v.epoch() == newest
                || Arc::strong_count(v) > 1
                || newest - v.epoch() < self.options.retired_epoch_floor
        });
        let live_epochs: Vec<u64> = inner.live.iter().map(|v| v.epoch()).collect();
        self.listener.on_versions_retired(&live_epochs);
    }

    /// Key-value separation (flush-time): records whose stored value
    /// reaches the configured threshold move their bytes to the value log
    /// and become pointer records ([`ValueKind::VlogPut`]). The log is
    /// synced before returning, so by the time any SSTable (and later the
    /// manifest) names a pointer, its entry is durable.
    fn separate_large_values(&self, records: &mut [Record]) -> Result<(), FsError> {
        let Some(config) = self.options.vlog else {
            return Ok(());
        };
        let Some(vlog) = &self.vlog else {
            return Ok(());
        };
        let mut moved = false;
        for record in records.iter_mut() {
            if record.kind != ValueKind::Put || record.value.len() < config.value_threshold {
                continue;
            }
            let mac = self.listener.vlog_mac(record);
            let ptr = vlog.append(&record.key, record.ts, &record.value)?;
            record.value = self.listener.wrap_vlog_pointer(encode_pointer(ptr, &mac));
            record.kind = ValueKind::VlogPut;
            moved = true;
        }
        if moved {
            vlog.sync();
        }
        Ok(())
    }

    fn flush_inner(&self, min_bytes: usize, chase: bool) -> Result<(), FsError> {
        // Phase 1 (write lock): freeze the memtable into the version as an
        // immutable snapshot, rotate the WAL, and publish — readers keep
        // finding the frozen records in trusted memory while the merge
        // writes them to their level.
        let (imm, base, old_wal) = {
            let _span = self.metrics.flush_freeze.start();
            let _serial = self.env.platform().serial_section(SerialClass::StoreWrite);
            let mut inner = self.inner.write();
            if inner.memtable.is_empty() || inner.memtable.approximate_bytes() < min_bytes {
                return Ok(());
            }
            let new_wal_no = inner.wal_no + 1;
            let wal_file = self.env.fs().create(&wal_name(new_wal_no))?;
            // The flush decision is the primary's alone: replicas replay
            // this marker instead of watching their own thresholds, which
            // pins both stores' version boundaries to the same point in
            // the frame stream. Emitted after the fallible WAL creation,
            // so an IO error here aborts the flush on both sides alike.
            self.emit(ReplicationEvent::Flush);
            self.stats.flushes.inc();
            // Any frames still buffered under a lazy sync policy must reach
            // the host before the log rotates out from under them.
            inner.wal.sync();
            let imm = Arc::new(std::mem::replace(&mut inner.memtable, MemTable::new()));
            let old_wal = wal_name(inner.wal_no);
            inner.wal = WalWriter::new(self.env.clone(), wal_file, self.options.wal_sync);
            inner.wal_no = new_wal_no;
            let next =
                Arc::new(inner.current.with_imm(inner.current.epoch() + 1, Some(imm.clone())));
            self.install_locked(&mut inner, next);
            // Crash safety: before any writer can append to the new WAL
            // (i.e. before this lock releases), the manifest must name
            // both logs — otherwise acknowledged writes that land in the
            // new WAL while the merge runs would be lost on recovery.
            self.write_manifest_with(inner.wal_lo, inner.wal_no, &inner.current)?;
            (imm, inner.current.clone(), old_wal)
        };

        // Phase 2 (no store lock): merge the frozen records into the
        // strategy's target level. Key-value separation happens here —
        // before the listener observes the records — so levels, proofs and
        // commitments all cover pointer records, while the WAL and the
        // memtable (whose replay must restore values without the log)
        // always carry the full values.
        let merge_span = self.metrics.flush_merge.start();
        let mut mem_records: Vec<Record> = imm.iter_records().collect();
        self.separate_large_values(&mut mem_records)?;
        for r in &mem_records {
            self.listener.on_flush_record(r);
        }
        let mut inputs = vec![MergeInput {
            source: RecordSource { level: 0, file_no: 0 },
            iter: Box::new(mem_records.into_iter()),
        }];
        let mut input_levels = vec![0];
        let (target, merge_existing) = if self.options.compaction_enabled {
            let plan = self.strategy.flush_plan(&LevelsView::from_version(&base), &self.options);
            (plan.target, plan.merge_existing)
        } else {
            // Compaction off: stack the run at the first empty level —
            // write amplification 1, read cost grows with run count
            // (Figure 7b's wo-compaction mode).
            let mut i = 1;
            while i < base.levels().len() && base.level(i).is_some() {
                i += 1;
            }
            (i, false)
        };
        if merge_existing && base.level(target).is_some() {
            push_run_inputs(&mut inputs, base.level(target).map(|r| r.as_ref()), target);
            input_levels.push(target);
        }
        // A flush may purge tombstones only when it *merges into* the
        // bottom level (leveled, tiny stores). A stacked flush run — no
        // matter its slot index — is the newest data with older runs
        // below, so purging there would resurrect shadowed versions.
        let purge =
            self.options.compaction_enabled && merge_existing && target >= self.options.max_levels;
        let out = self.merge_to_run(inputs, input_levels, target, purge, &[])?;
        drop(merge_span);

        // Phase 3 (write lock): install the successor version with the
        // frozen memtable absorbed into its level.
        let install_span = self.metrics.flush_install.start();
        let mut replaced = Vec::new();
        {
            let _serial = self.env.platform().serial_section(SerialClass::StoreWrite);
            let mut inner = self.inner.write();
            let mut levels = inner.current.levels().to_vec();
            while levels.len() <= target {
                levels.push(None);
            }
            if let Some(old) = levels[target].take() {
                replaced.push(old);
            }
            levels[target] = out.run.clone();
            let next = Arc::new(Version::new(inner.current.epoch() + 1, None, levels));
            self.listener.on_compaction_install(&out.info);
            self.install_locked(&mut inner, next);
            inner.wal_lo = inner.wal_no;
        }
        self.write_manifest()?;
        // Only after the manifest stopped naming them may replaced runs
        // and the old WAL disappear — a crash landing between install and
        // manifest must still recover the pre-flush state whole.
        for run in &replaced {
            self.retire_run(run);
        }
        let _ = self.env.fs().delete(&old_wal);
        drop(install_span);
        if self.options.telemetry.is_enabled() {
            // Refresh the registry's debt gauges at every version boundary
            // so a telemetry snapshot is current even if nobody polls
            // [`Db::stats`].
            let debt = self.compaction_debt();
            self.metrics.debt_bytes.set(debt.total_over_bytes);
            self.metrics.pending_jobs.set(debt.pending_jobs as u64);
            if let Some(vlog) = &self.vlog {
                let (bytes, garbage) = vlog.stats();
                self.metrics.vlog_bytes.set(bytes);
                self.metrics.vlog_garbage_bytes.set(garbage);
            }
        }
        if chase && self.options.compaction_enabled {
            self.run_waves()?;
        }
        if chase && self.options.vlog.is_some_and(|c| c.gc_enabled) {
            self.vlog_gc_locked()?;
        }
        Ok(())
    }

    /// Runs compaction waves until the strategy reports no due work: each
    /// wave is a set of jobs over disjoint level sets, merged concurrently
    /// (per [`crate::compaction::CompactionConfig::parallelism`]) and
    /// installed in deterministic job order. Caller holds the maintenance
    /// mutex.
    fn run_waves(&self) -> Result<(), FsError> {
        // Bounded defensively: every wave from a sane strategy strictly
        // shrinks debt, so the cap only guards a pathological plugin.
        for _ in 0..256 {
            let base = self.current_version();
            let jobs = self.strategy.pick_jobs(&LevelsView::from_version(&base), &self.options);
            if jobs.is_empty() {
                return Ok(());
            }
            self.metrics.compaction_waves.inc();
            self.execute_jobs(&base, &jobs, self.options.compaction.parallelism.max(1))?;
        }
        Ok(())
    }

    /// Merges one wave of jobs against `base` and installs the outputs.
    ///
    /// With `parallelism > 1` each job's merge runs on its own scoped
    /// worker thread under a dedicated [`SerialClass::compaction_slot`]:
    /// worker threads start with an empty serial-class mask (thread-local),
    /// so their merge time lands in the slot horizons — overlapping with
    /// the write path and with each other in the simulated timeline —
    /// instead of extending the caller's Maintenance section. Installs are
    /// sequential in job order regardless of parallelism, so the epoch
    /// sequence (and every listener/replication observation) is
    /// deterministic.
    fn execute_jobs(
        &self,
        base: &Arc<Version>,
        jobs: &[CompactionJob],
        parallelism: usize,
    ) -> Result<(), FsError> {
        self.execute_jobs_inner(base, jobs, parallelism, None)
    }

    /// [`Db::execute_jobs`], optionally in value-log-GC mode: `gc` names
    /// victim files whose live entries every merge rewrites, the install
    /// emits [`ReplicationEvent::VlogGc`] instead of per-job `Compact`
    /// markers, and the victims are deleted once the rewrite is durable.
    fn execute_jobs_inner(
        &self,
        base: &Arc<Version>,
        jobs: &[CompactionJob],
        parallelism: usize,
        gc: Option<&VlogGcJob>,
    ) -> Result<(), FsError> {
        let rewrite: &[u64] = gc.map_or(&[], |gc| &gc.rewrite_files);
        let outputs: Vec<Result<MergeOutput, FsError>> = if parallelism <= 1 {
            jobs.iter().map(|job| self.run_merge_job(base, job, rewrite)).collect()
        } else {
            let slots = parallelism.min(4);
            std::thread::scope(|s| {
                let handles: Vec<_> = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, job)| {
                        s.spawn(move || {
                            let _slot = self
                                .env
                                .platform()
                                .serial_section(SerialClass::compaction_slot(i % slots));
                            self.run_merge_job(base, job, rewrite)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("compaction worker panicked")).collect()
            })
        };
        for (job, out) in jobs.iter().zip(outputs) {
            let out = out?;
            let _install_span = self.metrics.compaction_install.start();
            let mut replaced: Vec<Arc<Run>> = Vec::new();
            {
                let _serial = self.env.platform().serial_section(SerialClass::StoreWrite);
                let mut inner = self.inner.write();
                let mut levels = inner.current.levels().to_vec();
                while levels.len() <= job.output_level {
                    levels.push(None);
                }
                for &level in &job.input_levels {
                    if level != job.output_level {
                        if let Some(old) = levels[level].take() {
                            replaced.push(old);
                        }
                    }
                }
                if let Some(old) = levels[job.output_level].take() {
                    replaced.push(old);
                }
                levels[job.output_level] = out.run.clone();
                let imm = inner.current.imm().cloned();
                let next = Arc::new(Version::new(inner.current.epoch() + 1, imm, levels));
                // Under the write lock, in job order: the listener commits
                // its staged digest state, the replication stream learns
                // the exact job, then the epoch swaps — so a replica
                // replaying the stream reproduces this install verbatim.
                self.listener.on_compaction_install(&out.info);
                match gc {
                    Some(gc) => self.emit(ReplicationEvent::VlogGc { gc }),
                    None => self.emit(ReplicationEvent::Compact { job }),
                }
                self.install_locked(&mut inner, next);
            }
            self.stats.compactions.inc();
            self.write_manifest()?;
            // Retire-after-manifest: a crash before this point recovers
            // the pre- or post-compaction manifest, both of whose inputs
            // still exist on disk.
            for run in &replaced {
                self.retire_run(run);
            }
        }
        // GC epilogue: every pointer into a victim file has been rewritten
        // and the manifest that names the rewritten tables (and drops the
        // victims from its value-log section) is durable — the victims can
        // go. Pinned old versions keep reading them through their retained
        // handles; a crash right here merely redoes the deletions.
        if let (Some(gc), Some(vlog)) = (gc, &self.vlog) {
            for &no in &gc.rewrite_files {
                vlog.remove_file(no);
            }
            self.write_manifest()?;
        }
        Ok(())
    }

    /// Merges one job's input runs into an output run (no store state is
    /// touched — safe to run concurrently with other jobs of a wave).
    /// `rewrite` names value-log files whose pointer records must be
    /// re-homed to the active log file (GC mode; empty otherwise).
    fn run_merge_job(
        &self,
        base: &Version,
        job: &CompactionJob,
        rewrite: &[u64],
    ) -> Result<MergeOutput, FsError> {
        let _span = self.metrics.compaction_merge.start();
        let mut inputs = Vec::new();
        for &level in &job.input_levels {
            push_run_inputs(&mut inputs, base.level(level).map(|r| r.as_ref()), level);
        }
        self.merge_to_run(inputs, job.input_levels.clone(), job.output_level, job.purge, rewrite)
    }

    /// Replays one job from a primary's [`ReplicationEvent::Compact`]
    /// marker: executes exactly the shipped job (inline, no worker
    /// threads), installing the same level edit and epoch bump the
    /// primary did. A no-op when every input level is empty — mirroring
    /// how the primary never schedules such a job.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn apply_compaction_job(&self, job: &CompactionJob) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        let base = self.current_version();
        if job.input_levels.iter().all(|&l| base.level(l).is_none()) {
            return Ok(());
        }
        self.execute_jobs(&base, std::slice::from_ref(job), 1)
    }

    /// Compacts level `i` into level `i+1` (the paper's
    /// `COMPACTION(Li, Li+1)`), expressed as a single explicit job.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn compact(&self, level: usize) -> Result<(), FsError> {
        assert!(level >= 1 && level < self.options.max_levels, "invalid compaction level");
        let job = CompactionJob {
            input_levels: vec![level, level + 1],
            output_level: level + 1,
            purge: level + 1 >= self.options.max_levels,
        };
        self.apply_compaction_job(&job)
    }

    /// Runs the strategy's **major** compaction: one job folding every
    /// populated level into a single run with tombstones purged (the
    /// tombstone-collecting full pass; wave scheduling is the minor
    /// counterpart). A no-op when fewer than two levels are populated.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn compact_major(&self) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        let base = self.current_version();
        let Some(job) = self.strategy.major_job(&LevelsView::from_version(&base), &self.options)
        else {
            return Ok(());
        };
        self.execute_jobs(&base, std::slice::from_ref(&job), 1)
    }

    /// Value-log garbage collection: deletes fully-dead log files
    /// outright, then — if any non-active file's garbage fraction reaches
    /// [`crate::options::VlogConfig::gc_garbage_ratio`] — runs one merge
    /// over the populated levels with the victims' live entries rewritten
    /// to the active file, and deletes the victims once the rewrite is
    /// durable. A no-op without a value log or without due victims.
    /// Runs automatically after flush-chased compaction when
    /// [`crate::options::VlogConfig::gc_enabled`] is set.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn vlog_gc(&self) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        self.vlog_gc_locked()
    }

    /// [`Db::vlog_gc`] body; caller holds the maintenance mutex.
    fn vlog_gc_locked(&self) -> Result<(), FsError> {
        let Some(vlog) = &self.vlog else {
            return Ok(());
        };
        // Files every byte of which is garbage need no rewrite, but they
        // still ride in the victim set so replicas replaying the shipped
        // job drop them too — removing them only locally would leave the
        // follower's log strictly larger than the primary's.
        let mut victims = vlog.fully_dead();
        victims.extend(vlog.victims());
        if victims.is_empty() {
            return Ok(());
        }
        let _span = self.metrics.vlog_gc.start();
        let base = self.current_version();
        let view = LevelsView::from_version(&base);
        // Any merge that visits every pointer record works; the strategy's
        // major job does, and a single populated level degenerates to a
        // self-merge of that level.
        let job = match self.strategy.major_job(&view, &self.options) {
            Some(job) => job,
            None => match view.non_empty().first() {
                Some(&level) => {
                    CompactionJob { input_levels: vec![level], output_level: level, purge: false }
                }
                // No levels: no live pointer can exist, so every victim is
                // fully dead. Ship a degenerate (empty-input) job so the
                // replica's [`Db::apply_vlog_gc`] takes its deletion-only
                // path.
                None => CompactionJob { input_levels: Vec::new(), output_level: 0, purge: false },
            },
        };
        let gc = VlogGcJob { job, rewrite_files: victims };
        if gc.job.input_levels.is_empty() {
            for &no in &gc.rewrite_files {
                vlog.remove_file(no);
            }
            self.write_manifest()?;
            self.emit(ReplicationEvent::VlogGc { gc: &gc });
            return Ok(());
        }
        self.execute_jobs_inner(&base, std::slice::from_ref(&gc.job), 1, Some(&gc))
    }

    /// Replays a value-log GC from a primary's
    /// [`ReplicationEvent::VlogGc`] marker: runs exactly the shipped merge
    /// with the shipped victim set, then drops the victims — mirroring
    /// [`Db::apply_compaction_job`]. The victim choice is the primary's
    /// alone; a replica deciding locally could rewrite entries in a
    /// different order and diverge from the primary's commitments.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn apply_vlog_gc(&self, gc: &VlogGcJob) -> Result<(), FsError> {
        let _maint = self.maint.lock();
        let _serial = self.env.platform().serial_section(SerialClass::Maintenance);
        let base = self.current_version();
        if gc.job.input_levels.iter().all(|&l| base.level(l).is_none()) {
            // Degenerate shipped job (nothing to merge here): still honor
            // the victim deletions so both logs' file sets match.
            if let Some(vlog) = &self.vlog {
                for &no in &gc.rewrite_files {
                    vlog.remove_file(no);
                }
                self.write_manifest()?;
            }
            return Ok(());
        }
        self.execute_jobs_inner(&base, std::slice::from_ref(&gc.job), 1, Some(gc))
    }

    /// Merges sorted inputs into one output run, chunked into files. Pure
    /// with respect to store state (only the lock-free file-number
    /// allocator advances), so wave jobs run it concurrently.
    /// Tells the value log that a dropped pointer record's entry bytes are
    /// now garbage (GC victim accounting). Non-pointer records are free.
    fn note_vlog_drop(&self, record: &Record) {
        if record.kind != ValueKind::VlogPut {
            return;
        }
        if let (Some(vlog), Some((ptr, _))) = (
            &self.vlog,
            self.listener.unwrap_vlog_pointer(&record.value).and_then(|b| decode_pointer(&b)),
        ) {
            vlog.note_garbage(ptr.file_no, ptr.len);
        }
    }

    fn merge_to_run(
        &self,
        inputs: Vec<MergeInput>,
        input_levels: Vec<usize>,
        output_level: usize,
        purge: bool,
        rewrite: &[u64],
    ) -> Result<MergeOutput, FsError> {
        // Tombstones may only be purged when a merge observes every live
        // version of its keys (bottom level, or a major pass over all
        // populated levels); stacked (no-compaction) runs must keep them.
        let allow_purge = purge && self.options.purge_tombstones_at_bottom;
        let mut output: Vec<Record> = Vec::new();
        // `unchanged[i]`: output record i's whole key chain came from one
        // input *run* with nothing dropped — its authenticated leaf is
        // bit-identical to the input's (see
        // [`StoreListener::transform_output_tagged`]). Tags are assigned
        // when a key's chain completes, so a late drop flips the whole
        // chain to changed.
        let mut unchanged: Vec<bool> = Vec::new();
        let mut key_source: Option<usize> = None;
        let mut key_clean = true;
        let mut input_count = 0u64;
        let mut cur_key: Option<Bytes> = None;
        let mut drop_rest = false;
        let mut seen_version = false;
        for (source, record) in KWayMerge::new(inputs) {
            input_count += 1;
            if source.level != 0 {
                self.listener.on_compaction_input(source, &record);
            }
            let same_key = cur_key.as_ref() == Some(&record.key);
            if !same_key {
                // Seal the previous key's tags (memtable records are new
                // material: never "unchanged").
                let clean = key_clean && key_source.is_some_and(|l| l != 0);
                unchanged.resize(output.len(), clean);
                cur_key = Some(record.key.clone());
                drop_rest = false;
                seen_version = false;
                key_source = Some(source.level);
                key_clean = true;
            } else if key_source != Some(source.level) {
                key_clean = false; // chain spans input runs
            }
            if drop_rest {
                key_clean = false;
                self.note_vlog_drop(&record);
                continue;
            }
            if allow_purge && record.kind == ValueKind::Delete && !seen_version {
                // Newest surviving version is a tombstone at the bottom:
                // the key disappears entirely (§5.4).
                drop_rest = true;
                key_clean = false;
                continue;
            }
            if seen_version && !self.options.keep_old_versions {
                key_clean = false;
                self.note_vlog_drop(&record);
                continue;
            }
            seen_version = true;
            if self.listener.filter_output(&record) == FilterDecision::Drop {
                key_clean = false;
                self.note_vlog_drop(&record);
                continue;
            }
            output.push(record);
        }
        let clean = key_clean && key_source.is_some_and(|l| l != 0);
        unchanged.resize(output.len(), clean);
        // GC mode: re-home surviving pointer records out of the victim
        // files before the listener transforms the output — the rewritten
        // pointer value must be what gets hashed into the new leaf. The
        // MAC is carried over verbatim: it binds key‖ts‖payload, not the
        // entry's location.
        if !rewrite.is_empty() {
            let victims: HashSet<u64> = rewrite.iter().copied().collect();
            let mut moved = false;
            for (record, tag) in output.iter_mut().zip(unchanged.iter_mut()) {
                if record.kind != ValueKind::VlogPut {
                    continue;
                }
                let Some(vlog) = &self.vlog else { continue };
                let Some((ptr, mac)) = self
                    .listener
                    .unwrap_vlog_pointer(&record.value)
                    .and_then(|bytes| decode_pointer(&bytes))
                else {
                    continue;
                };
                if !victims.contains(&ptr.file_no) {
                    continue;
                }
                let entry = vlog.read(ptr)?.ok_or_else(|| FsError::OutOfBounds {
                    name: vlog_name(ptr.file_no),
                    requested_end: (ptr.offset + ptr.len) as usize,
                    len: 0,
                })?;
                let new_ptr = vlog.append(&entry.key, entry.ts, &entry.value)?;
                vlog.note_garbage(ptr.file_no, ptr.len);
                record.value = self.listener.wrap_vlog_pointer(encode_pointer(new_ptr, &mac));
                *tag = false;
                moved = true;
            }
            if moved {
                if let Some(vlog) = &self.vlog {
                    vlog.sync();
                }
            }
        }
        self.stats.compaction_input_records.add(input_count);
        let output = self.listener.transform_output_tagged(output_level, output, &unchanged);
        self.stats.compaction_output_records.add(output.len() as u64);

        // Write the output run, chunked into files.
        let mut output_files = Vec::new();
        let mut tables = Vec::new();
        let mut idx = 0usize;
        while idx < output.len() {
            let file_no = self.file_no.fetch_add(1, Ordering::SeqCst);
            let file = self.env.fs().create(&table_name(file_no))?;
            let mut builder = TableBuilder::new(
                self.env.clone(),
                file.clone(),
                file_no,
                self.options.table.clone(),
            );
            let mut bytes = 0u64;
            while idx < output.len() {
                let r = &output[idx];
                // Never split versions of one key across files (chains stay
                // within one file's leaf).
                let key_boundary = builder.count() > 0 && output[idx - 1].key != r.key;
                if bytes >= self.options.target_file_bytes && key_boundary {
                    break;
                }
                builder.add(r);
                bytes += r.approximate_size() as u64;
                idx += 1;
            }
            let meta = builder.finish();
            output_files.push(meta.file_no);
            tables.push(Arc::new(TableReader::open(self.env.clone(), file, file_no)?));
        }

        let info = CompactionInfo {
            input_levels,
            output_level,
            input_records: input_count,
            output_records: output.len() as u64,
            output_files,
        };
        self.listener.on_compaction_end(&info);
        let run = (!tables.is_empty()).then(|| Arc::new(Run::new(tables)));
        Ok(MergeOutput { run, info })
    }

    fn retire_run(&self, run: &Run) {
        run.close();
        for t in run.tables() {
            let _ = self.env.fs().delete(&table_name(t.meta().file_no));
        }
    }

    // ----- manifest ---------------------------------------------------------

    /// Callers hold the maintenance mutex (manifest writes must not race).
    fn write_manifest(&self) -> Result<(), FsError> {
        let (wal_lo, wal_no, version) = {
            let inner = self.inner.read();
            (inner.wal_lo, inner.wal_no, inner.current.clone())
        };
        self.write_manifest_with(wal_lo, wal_no, &version)
    }

    fn write_manifest_with(
        &self,
        wal_lo: u64,
        wal_hi: u64,
        version: &Version,
    ) -> Result<(), FsError> {
        let mut bytes = Vec::new();
        put_fixed_u64(&mut bytes, self.file_no.load(Ordering::SeqCst));
        put_fixed_u64(&mut bytes, self.ts.load(Ordering::SeqCst));
        put_fixed_u64(&mut bytes, wal_lo);
        put_fixed_u64(&mut bytes, wal_hi);
        put_varint_u64(&mut bytes, (version.levels().len() - 1) as u64);
        for level in 1..version.levels().len() {
            match version.level(level) {
                None => put_varint_u64(&mut bytes, 0),
                Some(run) => {
                    put_varint_u64(&mut bytes, run.tables().len() as u64);
                    for t in run.tables() {
                        put_varint_u64(&mut bytes, t.meta().file_no);
                    }
                }
            }
        }
        crate::vlog::encode_manifest_section(self.vlog.as_deref(), &mut bytes);
        let _ = self.env.fs().delete(MANIFEST);
        let file = self.env.fs().create(MANIFEST)?;
        self.env.append(&file, &bytes);
        Ok(())
    }
}

fn push_run_inputs(inputs: &mut Vec<MergeInput>, run: Option<&Run>, level: usize) {
    if let Some(run) = run {
        for t in run.tables() {
            let records: Vec<Record> = t.iter().collect();
            inputs.push(MergeInput {
                source: RecordSource { level, file_no: t.meta().file_no },
                iter: Box::new(records.into_iter()),
            });
        }
    }
}

fn table_name(file_no: u64) -> String {
    format!("{file_no:06}.sst")
}

fn parse_table_name(name: &str) -> Option<u64> {
    name.strip_suffix(".sst")?.parse().ok()
}

fn wal_name(wal_no: u64) -> String {
    format!("wal-{wal_no:06}.log")
}

fn parse_wal_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

fn fxhash(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    use sgx_sim::Platform;
    use sim_disk::{SimDisk, SimFs};

    fn open_db(options: Options) -> Arc<Db> {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        Arc::new(Db::open(env, options, None).unwrap())
    }

    fn small_options() -> Options {
        Options {
            write_buffer_bytes: 4 * 1024,
            target_file_bytes: 8 * 1024,
            level1_max_bytes: 16 * 1024,
            level_multiplier: 4,
            max_levels: 4,
            ..Options::default()
        }
    }

    #[test]
    fn put_get_round_trip() {
        let db = open_db(small_options());
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(&db.get(b"alpha").unwrap().unwrap().value[..], b"1");
        assert_eq!(&db.get(b"beta").unwrap().unwrap().value[..], b"2");
        assert!(db.get(b"gamma").unwrap().is_none());
    }

    #[test]
    fn overwrites_return_newest() {
        let db = open_db(small_options());
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(&db.get(b"k").unwrap().unwrap().value[..], b"v2");
    }

    #[test]
    fn timestamps_are_unique_and_monotone() {
        let db = open_db(small_options());
        let t1 = db.put(b"a", b"1").unwrap();
        let t2 = db.put(b"b", b"2").unwrap();
        let t3 = db.delete(b"a").unwrap();
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn delete_hides_key() {
        let db = open_db(small_options());
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        assert!(db.get(b"k").unwrap().is_none());
    }

    #[test]
    fn flush_moves_data_to_level1_and_reads_still_work() {
        let db = open_db(small_options());
        for i in 0..100 {
            db.put(format!("key{i:04}").as_bytes(), format!("val{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        let lb = db.level_bytes();
        assert_eq!(lb[0], 0, "memtable empty after flush");
        assert!(lb[1] > 0 || lb[2] > 0, "data must be on disk");
        for i in (0..100).step_by(7) {
            let key = format!("key{i:04}");
            assert_eq!(
                &db.get(key.as_bytes()).unwrap().unwrap().value[..],
                format!("val{i}").as_bytes(),
                "{key}"
            );
        }
    }

    #[test]
    fn many_writes_trigger_flushes_and_compactions() {
        let db = open_db(small_options());
        for i in 0..2000u32 {
            let key = format!("key{:05}", i % 500);
            db.put(key.as_bytes(), &[b'x'; 40]).unwrap();
        }
        let s = db.stats();
        assert!(s.flushes > 0, "expected flushes");
        assert!(s.compactions > 0, "expected compactions");
        // All keys still readable with the newest value.
        for i in 0..500u32 {
            let key = format!("key{i:05}");
            assert!(db.get(key.as_bytes()).unwrap().is_some(), "missing {key}");
        }
    }

    #[test]
    fn get_trace_early_stops() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        for i in 0..200 {
            db.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        // New write of k0000 stays in the memtable.
        db.put(b"k0000", b"new").unwrap();
        let trace = db.get_with_trace(b"k0000", Timestamp::MAX >> 1).unwrap();
        assert!(trace.memtable.is_some(), "memtable hit must not search levels");
        assert!(trace.levels.is_empty());

        let trace = db.get_with_trace(b"k0001", Timestamp::MAX >> 1).unwrap();
        assert!(trace.memtable.is_none());
        assert!(matches!(trace.levels.last().unwrap().outcome, LevelOutcome::Hit(_)));
    }

    #[test]
    fn get_trace_miss_has_neighbors() {
        let db = open_db(small_options());
        db.put(b"b", b"1").unwrap();
        db.put(b"d", b"2").unwrap();
        db.flush().unwrap();
        let trace = db.get_with_trace(b"c", Timestamp::MAX >> 1).unwrap();
        let hit_level = trace
            .levels
            .iter()
            .find(|l| !matches!(l.outcome, LevelOutcome::Empty))
            .expect("one searched level");
        match &hit_level.outcome {
            LevelOutcome::Miss { left, right } => {
                assert_eq!(&left.as_ref().unwrap().key[..], b"b");
                assert_eq!(&right.as_ref().unwrap().key[..], b"d");
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn plain_get_miss_skips_neighbor_io() {
        let db = open_db(small_options());
        db.put(b"b", b"1").unwrap();
        db.put(b"d", b"2").unwrap();
        db.flush().unwrap();
        // A definite Bloom miss on the plain path must not read any block:
        // disk traffic stays flat (the Bloom filter and index live in
        // enclave metadata, not on disk).
        let before = db.env().platform().stats().disk_bytes;
        assert!(db.get(b"zzz-definitely-absent").unwrap().is_none());
        let after = db.env().platform().stats().disk_bytes;
        assert_eq!(after, before, "bloom-filtered plain get must do no block IO");
    }

    #[test]
    fn epochs_advance_on_flush_and_compaction() {
        let db = open_db(small_options());
        let e0 = db.current_epoch();
        db.put(b"k", b"v").unwrap();
        db.flush().unwrap();
        let e1 = db.current_epoch();
        assert!(e1 >= e0 + 2, "freeze + install must advance the epoch twice: {e0} -> {e1}");
        let trace = db.get_with_trace(b"k", Timestamp::MAX >> 1).unwrap();
        assert_eq!(trace.epoch, db.current_epoch());
    }

    #[test]
    fn pinned_snapshot_survives_later_installs() {
        let db = open_db(small_options());
        for i in 0..50 {
            db.put(format!("key{i:04}").as_bytes(), b"v1").unwrap();
        }
        db.flush().unwrap();
        let snapshot = db.current_version();
        // Overwrite everything and flush/compact repeatedly.
        for round in 0..4 {
            for i in 0..50 {
                db.put(format!("key{i:04}").as_bytes(), format!("v{round}").as_bytes()).unwrap();
            }
            db.flush().unwrap();
        }
        assert!(db.current_epoch() > snapshot.epoch());
        // The pinned snapshot still reads the old state, including from
        // runs whose files have since been unlinked.
        let trace = db
            .get_on_version(&snapshot, None, b"key0007", Timestamp::MAX >> 1, NeighborPolicy::Skip)
            .unwrap();
        assert_eq!(&trace.result.unwrap().value[..], b"v1");
        assert_eq!(trace.epoch, snapshot.epoch());
    }

    #[test]
    fn scan_merges_levels_and_memtable() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        db.put(b"a", b"old").unwrap();
        db.put(b"c", b"1").unwrap();
        db.flush().unwrap();
        db.put(b"a", b"new").unwrap();
        db.put(b"b", b"2").unwrap();
        let got = db.scan(b"a", b"c").unwrap();
        let pairs: Vec<(&[u8], &[u8])> = got.iter().map(|r| (&r.key[..], &r.value[..])).collect();
        assert_eq!(
            pairs,
            vec![
                (b"a".as_slice(), b"new".as_slice()),
                (b"b".as_slice(), b"2".as_slice()),
                (b"c".as_slice(), b"1".as_slice())
            ]
        );
    }

    #[test]
    fn scan_hides_deleted_keys() {
        let db = open_db(small_options());
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.delete(b"a").unwrap();
        let got = db.scan(b"a", b"z").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].key[..], b"b");
    }

    #[test]
    fn tombstones_purged_at_bottom_level() {
        let mut opts = small_options();
        opts.max_levels = 2;
        let db = open_db(opts);
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        db.flush().unwrap();
        db.compact(1).unwrap();
        assert!(db.get(b"k").unwrap().is_none());
        // At the bottom level the key is physically gone.
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 0, "tombstone and value purged: {recs:?}");
    }

    #[test]
    fn old_versions_retained_by_default() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        db.flush().unwrap();
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 2, "both versions kept: {recs:?}");
    }

    #[test]
    fn old_versions_dropped_when_configured() {
        let db = open_db(Options {
            keep_old_versions: false,
            compaction_enabled: false,
            ..small_options()
        });
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        db.flush().unwrap();
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 1, "only newest kept: {recs:?}");
        assert_eq!(&db.get(b"k").unwrap().unwrap().value[..], b"v2");
    }

    #[test]
    fn recovery_from_manifest_and_wal() {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let env = StorageEnv::new(platform.clone(), fs.clone(), options.env.clone(), None);
        {
            let db = Db::open(env.clone(), options.clone(), None).unwrap();
            for i in 0..300 {
                db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            // Some data flushed, some still in WAL/memtable.
        }
        // "Power cycle": reopen from the same filesystem.
        let db2 = Db::open(env, options, None).unwrap();
        for i in 0..300 {
            let key = format!("key{i:04}");
            assert_eq!(
                &db2.get(key.as_bytes()).unwrap().unwrap().value[..],
                format!("v{i}").as_bytes(),
                "lost {key} across restart"
            );
        }
        // Timestamps must continue past the recovered maximum.
        let t = db2.put(b"post", b"restart").unwrap();
        assert!(t > 300);
    }

    #[test]
    fn listener_sees_flush_and_compaction_events() {
        use std::sync::atomic::AtomicU64;
        #[derive(Default)]
        struct Spy {
            wal: AtomicU64,
            flush: AtomicU64,
            inputs: AtomicU64,
            ends: AtomicU64,
            installs: AtomicU64,
        }
        impl StoreListener for Spy {
            fn on_wal_append(&self, _: &Record) {
                self.wal.fetch_add(1, Ordering::Relaxed);
            }
            fn on_flush_record(&self, _: &Record) {
                self.flush.fetch_add(1, Ordering::Relaxed);
            }
            fn on_compaction_input(&self, _: RecordSource, _: &Record) {
                self.inputs.fetch_add(1, Ordering::Relaxed);
            }
            fn on_compaction_end(&self, _: &CompactionInfo) {
                self.ends.fetch_add(1, Ordering::Relaxed);
            }
            fn on_version_install(&self, _: u64) {
                self.installs.fetch_add(1, Ordering::Relaxed);
            }
        }
        let spy = Arc::new(Spy::default());
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        let db = Db::open(env, options, Some(spy.clone())).unwrap();
        for i in 0..400 {
            db.put(format!("key{i:05}").as_bytes(), &[b'x'; 30]).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(spy.wal.load(Ordering::Relaxed), 400);
        assert!(spy.flush.load(Ordering::Relaxed) >= 400);
        assert!(spy.ends.load(Ordering::Relaxed) >= 1);
        assert!(spy.installs.load(Ordering::Relaxed) >= 2, "freeze + merge installs");
    }

    #[test]
    fn transform_output_rewrites_values() {
        struct Embed;
        impl StoreListener for Embed {
            fn transform_output(&self, _: usize, records: Vec<Record>) -> Vec<Record> {
                records
                    .into_iter()
                    .map(|mut r| {
                        let mut v = r.value.to_vec();
                        v.extend_from_slice(b"+proof");
                        r.value = Bytes::from(v);
                        r
                    })
                    .collect()
            }
        }
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        let db = Db::open(env, options, Some(Arc::new(Embed))).unwrap();
        db.put(b"k", b"v").unwrap();
        db.flush().unwrap();
        assert_eq!(&db.get(b"k").unwrap().unwrap().value[..], b"v+proof");
    }

    #[test]
    fn write_batch_round_trips_with_consecutive_timestamps() {
        let db = open_db(small_options());
        db.put(b"before", b"x").unwrap();
        let mut batch = WriteBatch::new();
        for i in 0..10 {
            batch.put(format!("b{i:02}").into_bytes(), format!("v{i}").into_bytes());
        }
        batch.delete(b"b03".as_slice());
        let ts = db.write_batch(batch).unwrap();
        assert_eq!(ts.len(), 11);
        for w in ts.windows(2) {
            assert_eq!(w[1], w[0] + 1, "a batch's timestamps are contiguous");
        }
        for i in 0..10 {
            let got = db.get(format!("b{i:02}").as_bytes()).unwrap();
            if i == 3 {
                assert!(got.is_none(), "tombstone in the same batch wins");
            } else {
                assert_eq!(&got.unwrap().value[..], format!("v{i}").as_bytes());
            }
        }
    }

    #[test]
    fn empty_write_batch_is_a_noop() {
        let db = open_db(small_options());
        assert!(db.write_batch(WriteBatch::new()).unwrap().is_empty());
        assert_eq!(db.stats().puts, 0);
    }

    #[test]
    fn batch_commit_pays_one_host_exit() {
        let db = open_db(small_options());
        let ocalls0 = db.env().platform().stats().ocalls;
        let mut batch = WriteBatch::new();
        for i in 0..16 {
            batch.put(format!("k{i:02}").into_bytes(), b"v".as_slice());
        }
        db.write_batch(batch).unwrap();
        let ocalls = db.env().platform().stats().ocalls - ocalls0;
        assert_eq!(ocalls, 1, "one WAL exit per batch, not per record");
    }

    #[test]
    fn racing_writers_coalesce_into_groups() {
        // With many threads hammering singleton puts, followers must ride
        // leaders' commits: fewer op-base charges than records would imply
        // is not directly observable, but correctness under the committer
        // is — every write must land exactly once, timestamps unique.
        let db = open_db(Options { write_buffer_bytes: 1 << 20, ..small_options() });
        std::thread::scope(|s| {
            for t in 0..8 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..100 {
                        let mut batch = WriteBatch::new();
                        batch.put(format!("t{t}-k{i:03}").into_bytes(), b"v".as_slice());
                        batch.put(format!("t{t}-k{i:03}-b").into_bytes(), b"w".as_slice());
                        db.write_batch(batch).unwrap();
                    }
                });
            }
        });
        assert_eq!(db.stats().puts, 1600);
        let mut seen = std::collections::HashSet::new();
        for t in 0..8 {
            for i in 0..100 {
                let r = db.get(format!("t{t}-k{i:03}").as_bytes()).unwrap().unwrap();
                assert!(seen.insert(r.ts), "timestamps must be unique");
            }
        }
        // Group commit must have coalesced at least some racing batches
        // into shared WAL frames... which recovery can count: replaying the
        // log yields every record regardless of grouping.
        let total: u64 = db.level_records().iter().sum::<u64>();
        assert_eq!(total, 1600, "no record lost or duplicated: {total}");
    }

    #[test]
    fn lazy_wal_sync_still_recovers_after_rotation() {
        // EveryNBytes buffers frames in enclave memory; a flush-triggered
        // rotation must force them out so recovery never loses a frozen
        // memtable's records.
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = Options { wal_sync: WalSyncPolicy::EveryNBytes(1 << 20), ..small_options() };
        let env = StorageEnv::new(platform, fs.clone(), options.env.clone(), None);
        {
            let db = Db::open(env.clone(), options.clone(), None).unwrap();
            for i in 0..40 {
                db.put(format!("key{i:03}").as_bytes(), b"v").unwrap();
            }
            db.flush().unwrap();
        }
        let db2 = Db::open(env, options, None).unwrap();
        for i in 0..40 {
            let key = format!("key{i:03}");
            assert!(db2.get(key.as_bytes()).unwrap().is_some(), "lost {key}");
        }
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let db = open_db(small_options());
        std::thread::scope(|s| {
            for t in 0..4 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..200 {
                        let key = format!("t{t}-key{i:04}");
                        db.put(key.as_bytes(), b"v").unwrap();
                        assert!(db.get(key.as_bytes()).unwrap().is_some());
                    }
                });
            }
        });
        for t in 0..4 {
            for i in (0..200).step_by(13) {
                let key = format!("t{t}-key{i:04}");
                assert!(db.get(key.as_bytes()).unwrap().is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn concurrent_readers_race_flushes_without_losing_data() {
        let db = open_db(small_options());
        for i in 0..200 {
            db.put(format!("key{i:04}").as_bytes(), b"stable").unwrap();
        }
        db.flush().unwrap();
        std::thread::scope(|s| {
            // One writer churning flushes and compactions over other keys.
            let dbw = &db;
            s.spawn(move || {
                for i in 0..1500u32 {
                    dbw.put(format!("churn{:05}", i % 300).as_bytes(), &[b'x'; 60]).unwrap();
                }
            });
            // Readers: the stable keys must never disappear mid-install.
            for t in 0..4 {
                let dbr = &db;
                s.spawn(move || {
                    for i in 0..400u32 {
                        let k = format!("key{:04}", (i * 7 + t * 13) % 200);
                        let r = dbr.get(k.as_bytes()).unwrap();
                        assert!(r.is_some(), "reader lost {k} during flush/compaction");
                    }
                });
            }
        });
        assert!(db.stats().flushes > 0);
    }

    #[test]
    fn snapshot_reads_see_history() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        let t1 = db.put(b"k", b"v1").unwrap();
        let t2 = db.put(b"k", b"v2").unwrap();
        let tr1 = db.get_with_trace(b"k", t1).unwrap();
        assert_eq!(&tr1.result.unwrap().value[..], b"v1");
        let tr2 = db.get_with_trace(b"k", t2).unwrap();
        assert_eq!(&tr2.result.unwrap().value[..], b"v2");
    }

    /// Listener capturing the live-epoch set after every install.
    #[derive(Default)]
    struct LiveEpochProbe {
        live: Mutex<Vec<u64>>,
    }

    impl StoreListener for LiveEpochProbe {
        fn on_versions_retired(&self, live_epochs: &[u64]) {
            *self.live.lock() = live_epochs.to_vec();
        }
    }

    fn open_db_with_listener(options: Options, listener: Arc<dyn StoreListener>) -> Arc<Db> {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        Arc::new(Db::open(env, options, Some(listener)).unwrap())
    }

    #[test]
    fn retired_epoch_floor_pins_drain_behavior() {
        // With no reader pinning anything, drained versions survive
        // exactly until they fall `retired_epoch_floor` epochs behind.
        let run = |floor: u64| {
            let probe = Arc::new(LiveEpochProbe::default());
            let db = open_db_with_listener(
                Options {
                    retired_epoch_floor: floor,
                    compaction_enabled: false,
                    ..small_options()
                },
                probe.clone(),
            );
            for round in 0..6 {
                for i in 0..40 {
                    db.put(format!("key{round}-{i:03}").as_bytes(), &[b'x'; 40]).unwrap();
                }
                db.flush().unwrap();
            }
            let live = probe.live.lock().clone();
            let newest = *live.iter().max().unwrap();
            (live.len(), newest)
        };
        let (live0, newest0) = run(0);
        // Captured at the final flush's phase-3 install: the flush still
        // pins its phase-1 version, so exactly that version plus the
        // newest survive — every *drained* version retired immediately.
        assert_eq!(live0, 2, "floor 0 must retire every drained version immediately");
        let (live8, newest8) = run(8);
        assert_eq!(newest0, newest8, "same workload, same epoch sequence");
        assert_eq!(
            live8,
            8.min(newest8 + 1) as usize,
            "floor 8 must keep the 8 newest epochs verifiable"
        );
    }

    /// One recorded replication event (frames and jobs owned).
    enum ReplayEvent {
        Frame(Vec<Record>),
        Flush,
        Compact(CompactionJob),
        VlogGc(VlogGcJob),
        Install,
    }

    /// Replication sink recording the event stream.
    #[derive(Default)]
    struct StreamProbe {
        events: Mutex<Vec<ReplayEvent>>,
    }

    impl ReplicationSink for StreamProbe {
        fn on_event(&self, event: ReplicationEvent<'_>) {
            let entry = match event {
                ReplicationEvent::Frame { records } => ReplayEvent::Frame(records.to_vec()),
                ReplicationEvent::Flush => ReplayEvent::Flush,
                ReplicationEvent::Compact { job } => ReplayEvent::Compact(job.clone()),
                ReplicationEvent::VlogGc { gc } => ReplayEvent::VlogGc(gc.clone()),
                ReplicationEvent::Install { .. } => ReplayEvent::Install,
            };
            self.events.lock().push(entry);
        }
    }

    #[test]
    fn replication_stream_replays_to_an_identical_store() {
        let probe = Arc::new(StreamProbe::default());
        let primary = open_db(small_options());
        primary.set_replication_sink(probe.clone());
        for i in 0..300u32 {
            let key = format!("key{:04}", i % 120);
            primary.put(key.as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        primary.delete(b"key0003").unwrap();
        primary.flush().unwrap();
        primary.put(b"tail", b"after-flush").unwrap();

        // Replay the recorded stream against a second store: flush
        // decisions and compaction jobs come from the markers, never from
        // the replica's own thresholds or strategy.
        let replica = open_db(small_options());
        for event in probe.events.lock().iter() {
            match event {
                ReplayEvent::Frame(records) => replica.apply_replicated_batch(records).unwrap(),
                ReplayEvent::Flush => replica.apply_replicated_flush().unwrap(),
                ReplayEvent::Compact(job) => replica.apply_compaction_job(job).unwrap(),
                ReplayEvent::VlogGc(gc) => replica.apply_vlog_gc(gc).unwrap(),
                ReplayEvent::Install => {}
            }
        }
        assert_eq!(replica.current_epoch(), primary.current_epoch(), "epoch sequences diverged");
        assert_eq!(replica.level_records(), primary.level_records(), "level shapes diverged");
        assert_eq!(replica.latest_ts(), primary.latest_ts(), "timestamp allocators diverged");
        for i in 0..120u32 {
            let key = format!("key{i:04}");
            let a = primary.get(key.as_bytes()).unwrap();
            let b = replica.get(key.as_bytes()).unwrap();
            assert_eq!(a, b, "{key} diverged");
        }
        assert_eq!(&replica.get(b"tail").unwrap().unwrap().value[..], b"after-flush");
    }

    use crate::compaction::{CompactionConfig, CompactionStrategyKind, TieredConfig};

    fn tiered_options(parallelism: usize) -> Options {
        Options {
            compaction: CompactionConfig {
                strategy: CompactionStrategyKind::Tiered(TieredConfig::default()),
                parallelism,
            },
            ..small_options()
        }
    }

    #[test]
    fn tiered_strategy_stacks_and_merges() {
        let db = open_db(tiered_options(1));
        for i in 0..3000u32 {
            db.put(format!("key{:05}", i % 600).as_bytes(), &[b'x'; 40]).unwrap();
        }
        let s = db.stats();
        assert!(s.flushes > 0, "expected flushes: {s:?}");
        assert!(s.compactions > 0, "tiered merges must have run: {s:?}");
        for i in 0..600u32 {
            let key = format!("key{i:05}");
            assert!(db.get(key.as_bytes()).unwrap().is_some(), "missing {key}");
        }
        // Freshness order: a stacked layout must still serve the newest
        // version (higher slots are fresher; reads search top-down).
        db.put(b"key00001", b"newest").unwrap();
        db.flush().unwrap();
        assert_eq!(&db.get(b"key00001").unwrap().unwrap().value[..], b"newest");
    }

    #[test]
    fn parallel_waves_match_serial_execution() {
        // Parallelism moves merge work onto worker threads but installs
        // stay in deterministic job order: epochs, level shapes, and every
        // read must be bit-identical to the serial scheduler's.
        let run = |parallelism: usize| {
            let db = open_db(tiered_options(parallelism));
            for i in 0..2500u32 {
                db.put(format!("key{:05}", i % 500).as_bytes(), &[b'y'; 40]).unwrap();
            }
            db.flush().unwrap();
            let reads: Vec<_> = (0..500u32)
                .map(|i| {
                    db.get(format!("key{i:05}").as_bytes())
                        .unwrap()
                        .map(|r| (r.value.clone(), r.ts))
                })
                .collect();
            (db.current_epoch(), db.level_records(), reads)
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial.0, parallel.0, "epoch sequences must not depend on parallelism");
        assert_eq!(serial.1, parallel.1, "level shapes must not depend on parallelism");
        assert_eq!(serial.2, parallel.2, "reads must not depend on parallelism");
    }

    /// Filesystem-snapshotting listener: captures the on-disk state at the
    /// two riskiest instants of a compaction job — merge done but not
    /// installed, and mid-install (listener committed, manifest not yet
    /// written) — together with how many puts had been issued.
    struct CrashProbe {
        fs: Arc<SimFs>,
        issued: Arc<AtomicU64>,
        at_end: Mutex<Option<(sim_disk::FsSnapshot, u64)>>,
        at_install: Mutex<Option<(sim_disk::FsSnapshot, u64)>>,
    }

    impl StoreListener for CrashProbe {
        fn on_compaction_end(&self, info: &CompactionInfo) {
            if info.input_levels != [0] {
                *self.at_end.lock() =
                    Some((self.fs.snapshot(), self.issued.load(Ordering::SeqCst)));
            }
        }
        fn on_compaction_install(&self, info: &CompactionInfo) {
            if info.input_levels != [0] {
                *self.at_install.lock() =
                    Some((self.fs.snapshot(), self.issued.load(Ordering::SeqCst)));
            }
        }
    }

    #[test]
    fn crash_mid_compaction_recovers_consistent_state() {
        // An acknowledged put is already in a manifest-named WAL before
        // any compaction of the same flush cycle runs, so a crash at
        // either captured instant must recover every put issued by then:
        // the store lands on the consistent pre-compaction version (the
        // manifest still names the input runs; orphaned output files are
        // swept) and loses nothing.
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let issued = Arc::new(AtomicU64::new(0));
        let probe = Arc::new(CrashProbe {
            fs: fs.clone(),
            issued: issued.clone(),
            at_end: Mutex::new(None),
            at_install: Mutex::new(None),
        });
        let env = StorageEnv::new(platform.clone(), fs.clone(), options.env.clone(), None);
        let db = Db::open(env, options.clone(), Some(probe.clone())).unwrap();
        let puts: Vec<(String, String)> =
            (0..1800u32).map(|i| (format!("key{:05}", i % 400), format!("v{i}"))).collect();
        for (i, (key, val)) in puts.iter().enumerate() {
            // Counted *before* the put: when a compaction inside this
            // put's flush chase snapshots the fs, the put itself is
            // already committed (WAL frame written before the chase).
            issued.store(i as u64 + 1, Ordering::SeqCst);
            db.put(key.as_bytes(), val.as_bytes()).unwrap();
        }
        drop(db);
        let snaps: Vec<(sim_disk::FsSnapshot, u64)> = [
            probe.at_end.lock().take().expect("a compaction job must have run"),
            probe.at_install.lock().take().expect("a compaction job must have installed"),
        ]
        .into_iter()
        .collect();
        for (snap, n) in snaps {
            fs.restore(&snap);
            let env = StorageEnv::new(platform.clone(), fs.clone(), options.env.clone(), None);
            let db2 = Db::open(env, options.clone(), None).unwrap();
            let mut expected = HashMap::new();
            for (key, val) in &puts[..n as usize] {
                expected.insert(key.clone(), val.clone());
            }
            for (key, val) in &expected {
                let got = db2.get(key.as_bytes()).unwrap();
                assert_eq!(
                    got.as_ref().map(|r| &r.value[..]),
                    Some(val.as_bytes()),
                    "acked write to {key} lost across crash at put {n}"
                );
            }
            // The recovered store keeps working: writes, flushes, waves.
            db2.put(b"post-crash", b"ok").unwrap();
            db2.flush().unwrap();
            assert!(db2.get(b"post-crash").unwrap().is_some());
        }
    }

    #[test]
    fn compaction_stress_concurrent_writers_and_readers() {
        // CI's compaction stress: tiered strategy, 4-way parallel waves,
        // racing writers and readers, then a major pass — nothing lost.
        let db = open_db(tiered_options(4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..600u32 {
                        db.put(format!("t{t}-key{:04}", i % 150).as_bytes(), &[b'z'; 50]).unwrap();
                    }
                });
            }
            let dbr = &db;
            s.spawn(move || {
                for i in 0..800u32 {
                    let _ = dbr.get(format!("t{}-key{:04}", i % 4, (i * 7) % 150).as_bytes());
                    if i % 100 == 0 {
                        let _ = dbr.scan(b"t0", b"t3~");
                    }
                }
            });
        });
        let s = db.stats();
        assert!(s.compactions > 0, "stress must exercise the scheduler: {s:?}");
        for t in 0..4 {
            for i in 0..150u32 {
                let key = format!("t{t}-key{i:04}");
                assert!(db.get(key.as_bytes()).unwrap().is_some(), "missing {key}");
            }
        }
        // Tombstone-aware major pass: folds all populated runs into one.
        db.compact_major().unwrap();
        let recs = db.level_records();
        assert!(
            recs.iter().filter(|&&n| n > 0).count() <= 2,
            "major pass must fold runs (memtable + one run at most): {recs:?}"
        );
        for t in 0..4 {
            assert!(db.get(format!("t{t}-key0000").as_bytes()).unwrap().is_some());
        }
    }

    #[test]
    fn compaction_debt_reports_backlog() {
        // Bottom-level overflow is un-schedulable debt under leveled
        // compaction (no level below to merge into): the gauge must
        // report it while pending_jobs stays drained.
        let db = open_db(Options {
            level1_max_bytes: 1024,
            level_multiplier: 2,
            max_levels: 2,
            ..small_options()
        });
        for i in 0..1500u32 {
            db.put(format!("key{:05}", i % 300).as_bytes(), &[b'x'; 40]).unwrap();
        }
        db.flush().unwrap();
        let debt = db.compaction_debt();
        assert!(debt.total_over_bytes > 0, "bottom level must be over budget: {debt:?}");
        assert_eq!(debt.pending_jobs, 0, "scheduler drains every schedulable job: {debt:?}");
        assert_eq!(debt.per_level_over_bytes.iter().sum::<u64>(), debt.total_over_bytes);
        let snap = db.stats();
        assert_eq!(snap.debt_bytes, debt.total_over_bytes, "stats gauge mirrors debt");
        assert_eq!(snap.pending_compaction_jobs, 0);
    }

    #[test]
    fn major_compaction_purges_tombstones() {
        let db = open_db(Options { keep_old_versions: false, ..tiered_options(1) });
        for i in 0..50u32 {
            db.put(format!("k{i:03}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        for i in 0..50u32 {
            db.delete(format!("k{i:03}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        db.compact_major().unwrap();
        assert!(db.get(b"k007").unwrap().is_none());
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 0, "values and tombstones physically gone: {recs:?}");
    }

    fn vlog_options() -> Options {
        Options {
            keep_old_versions: false,
            vlog: Some(crate::options::VlogConfig {
                value_threshold: 128,
                target_file_bytes: 4 * 1024,
                gc_garbage_ratio: 0.3,
                gc_enabled: false,
            }),
            ..small_options()
        }
    }

    #[test]
    fn large_values_separate_into_the_value_log_at_flush() {
        let db = open_db(vlog_options());
        db.put(b"small", b"inline").unwrap();
        db.put(b"big", &[7u8; 1000]).unwrap();
        db.flush().unwrap();
        // On-disk record for `big` is a pointer, not the payload.
        let level = (1..db.level_bytes().len())
            .find(|&l| !db.level_record_dump(l).unwrap().is_empty())
            .unwrap();
        let dump = db.level_record_dump(level).unwrap();
        let big = dump.iter().find(|r| &r.key[..] == b"big").unwrap();
        assert_eq!(big.kind, ValueKind::VlogPut);
        assert_eq!(big.value.len(), crate::vlog::POINTER_BYTES);
        let small = dump.iter().find(|r| &r.key[..] == b"small").unwrap();
        assert_eq!(small.kind, ValueKind::Put);
        // Reads resolve through the vlog transparently.
        assert_eq!(&db.get(b"big").unwrap().unwrap().value[..], &[7u8; 1000][..]);
        assert_eq!(&db.get(b"small").unwrap().unwrap().value[..], b"inline");
        let scanned = db.scan(b"a", b"z").unwrap();
        assert_eq!(scanned.len(), 2);
        assert_eq!(scanned[0].value.len(), 1000);
        let s = db.stats();
        assert!(s.vlog_bytes > 1000, "vlog holds the payload: {}", s.vlog_bytes);
        assert_eq!(s.vlog_garbage_bytes, 0);
    }

    #[test]
    fn vlog_survives_restart_and_gc_rewrites_live_entries() {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = vlog_options();
        let env = StorageEnv::new(platform.clone(), fs.clone(), options.env.clone(), None);
        {
            let db = Db::open(env.clone(), options.clone(), None).unwrap();
            for i in 0..20u32 {
                db.put(format!("k{i:02}").as_bytes(), &[i as u8; 600]).unwrap();
            }
            db.flush().unwrap();
        }
        let db = Db::open(env.clone(), options.clone(), None).unwrap();
        for i in 0..20u32 {
            let got = db.get(format!("k{i:02}").as_bytes()).unwrap().unwrap();
            assert_eq!(&got.value[..], &[i as u8; 600][..], "k{i:02} across restart");
        }
        // Overwrite half the keys: old vlog entries become garbage once
        // compaction drops the superseded versions.
        for i in 0..10u32 {
            db.put(format!("k{i:02}").as_bytes(), &[0xEE; 600]).unwrap();
        }
        db.flush().unwrap();
        db.compact_major().unwrap();
        let before = db.stats();
        assert!(before.vlog_garbage_bytes > 0, "superseded entries counted: {before:?}");
        db.vlog_gc().unwrap();
        let after = db.stats();
        assert!(
            after.vlog_bytes - after.vlog_garbage_bytes <= before.vlog_bytes,
            "gc never grows live bytes"
        );
        assert!(
            after.vlog_garbage_bytes < before.vlog_garbage_bytes
                || after.vlog_bytes < before.vlog_bytes,
            "gc reclaimed something: {before:?} -> {after:?}"
        );
        // Every key still readable after rewrite, including across one more restart.
        drop(db);
        let db = Db::open(env, options, None).unwrap();
        for i in 0..20u32 {
            let want: &[u8] = if i < 10 { &[0xEE; 600] } else { &[i as u8; 600] };
            let got = db.get(format!("k{i:02}").as_bytes()).unwrap().unwrap();
            assert_eq!(&got.value[..], want, "k{i:02} after gc + restart");
        }
    }

    #[test]
    fn vlog_gc_is_replayable_on_a_follower() {
        // Same stream-replay harness as
        // replication_stream_replays_to_an_identical_store, but with value
        // separation on and a GC cycle in the stream.
        let probe = Arc::new(StreamProbe::default());
        let db = open_db(vlog_options());
        db.set_replication_sink(probe.clone());
        for i in 0..20u32 {
            db.put(format!("k{i:02}").as_bytes(), &[i as u8; 600]).unwrap();
        }
        db.flush().unwrap();
        for i in 0..10u32 {
            db.put(format!("k{i:02}").as_bytes(), &[0xAB; 600]).unwrap();
        }
        db.flush().unwrap();
        db.compact_major().unwrap();
        db.vlog_gc().unwrap();
        assert!(
            probe.events.lock().iter().any(|e| matches!(e, ReplayEvent::VlogGc(_))),
            "gc must ship as a replication event"
        );

        let replica = open_db(vlog_options());
        for event in probe.events.lock().iter() {
            match event {
                ReplayEvent::Frame(records) => replica.apply_replicated_batch(records).unwrap(),
                ReplayEvent::Flush => replica.apply_replicated_flush().unwrap(),
                ReplayEvent::Compact(job) => replica.apply_compaction_job(job).unwrap(),
                ReplayEvent::VlogGc(gc) => replica.apply_vlog_gc(gc).unwrap(),
                ReplayEvent::Install => {}
            }
        }
        for i in 0..20u32 {
            let want: &[u8] = if i < 10 { &[0xAB; 600] } else { &[i as u8; 600] };
            let got = replica.get(format!("k{i:02}").as_bytes()).unwrap().unwrap();
            assert_eq!(&got.value[..], want, "replica k{i:02}");
        }
        assert_eq!(replica.stats().vlog_bytes, db.stats().vlog_bytes, "replayed vlog converges");
    }
}
