//! The key-value store: memtable + WAL + leveled runs + compaction.
//!
//! Implements the paper's storage model (§2, §5.3):
//!
//! * writes go to the WAL (outside the enclave) and the memtable (inside),
//! * a full memtable flushes by merging into level 1,
//! * `COMPACTION(Li, Li+1)` merges two whole adjacent levels when `Li`
//!   exceeds its size budget (geometric level targets),
//! * point reads search memtable then levels in order with **early stop**,
//! * range reads visit every level (§5.4),
//! * deletes are tombstones, purged at the bottom level.
//!
//! All observable events fire on the configured [`StoreListener`], which is
//! how the `elsm` crate adds authentication without modifying this crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use sgx_sim::EnclaveRegion;
use sim_disk::FsError;

use crate::encoding::{get_fixed_u64, get_varint_u64, put_fixed_u64, put_varint_u64};
use crate::env::StorageEnv;
use crate::events::{CompactionInfo, FilterDecision, RecordSource, StoreListener};
use crate::memtable::MemTable;
use crate::merge::{KWayMerge, MergeInput};
use crate::options::Options;
use crate::record::{Record, Timestamp, ValueKind};
use crate::sstable::{TableBuilder, TableGet, TableReader};
use crate::version::{GetTrace, LevelOutcome, LevelRange, LevelSearch, Run, ScanTrace};
use crate::wal::{recover, WalWriter};

const MANIFEST: &str = "MANIFEST";

/// Cumulative operation counters.
#[derive(Debug, Default)]
pub struct DbStats {
    puts: AtomicU64,
    deletes: AtomicU64,
    gets: AtomicU64,
    scans: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    compaction_input_records: AtomicU64,
    compaction_output_records: AtomicU64,
}

/// Snapshot of [`DbStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct DbStatsSnapshot {
    pub puts: u64,
    pub deletes: u64,
    pub gets: u64,
    pub scans: u64,
    pub flushes: u64,
    pub compactions: u64,
    pub compaction_input_records: u64,
    pub compaction_output_records: u64,
}

struct DbInner {
    memtable: MemTable,
    wal: WalWriter,
    wal_no: u64,
    /// `levels[0]` is unused; `levels[i]` holds level `i`'s run.
    levels: Vec<Option<Run>>,
    next_file_no: u64,
}

/// A LevelDB-class LSM key-value store over the simulated platform.
///
/// # Examples
///
/// ```
/// use lsm_store::{Db, Options};
/// use sgx_sim::Platform;
/// use sim_disk::{SimDisk, SimFs};
///
/// # fn main() -> Result<(), sim_disk::FsError> {
/// let platform = Platform::with_defaults();
/// let fs = SimFs::new(SimDisk::new(platform.clone()));
/// let env = lsm_store::StorageEnv::new(platform, fs, lsm_store::EnvConfig::default(), None);
/// let db = Db::open(env, Options::default(), None)?;
/// db.put(b"k", b"v")?;
/// assert_eq!(&db.get(b"k")?.unwrap().value[..], b"v");
/// # Ok(())
/// # }
/// ```
pub struct Db {
    env: Arc<StorageEnv>,
    options: Options,
    listener: Arc<dyn StoreListener>,
    inner: Mutex<DbInner>,
    ts: AtomicU64,
    memtable_region: Option<EnclaveRegion>,
    stats: DbStats,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Db(ts={}, levels={})", self.ts.load(Ordering::Relaxed), self.options.max_levels)
    }
}

impl Db {
    /// Opens (or recovers) a store in the environment's filesystem.
    ///
    /// If a manifest exists, levels and the WAL are recovered; otherwise a
    /// fresh store is initialized.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO or corruption errors.
    pub fn open(
        env: Arc<StorageEnv>,
        options: Options,
        listener: Option<Arc<dyn StoreListener>>,
    ) -> Result<Self, FsError> {
        let listener = listener.unwrap_or_else(|| Arc::new(crate::events::NoopListener));
        let memtable_region = env
            .config()
            .in_enclave
            .then(|| env.platform().enclave_alloc(options.write_buffer_bytes * 2));
        let recovering = env.fs().open(MANIFEST).is_ok();
        let (inner, last_ts) = if recovering {
            Self::recover_parts(&env, &options)?
        } else {
            let wal_file = env.fs().create(&wal_name(1))?;
            (
                DbInner {
                    memtable: MemTable::new(),
                    wal: WalWriter::new(env.clone(), wal_file),
                    wal_no: 1,
                    levels: (0..=options.max_levels).map(|_| None).collect(),
                    next_file_no: 1,
                },
                0,
            )
        };
        let db = Db {
            env,
            options,
            listener,
            inner: Mutex::new(inner),
            ts: AtomicU64::new(last_ts),
            memtable_region,
            stats: DbStats::default(),
        };
        if !recovering {
            db.write_manifest()?;
        }
        Ok(db)
    }

    fn recover_parts(env: &Arc<StorageEnv>, options: &Options) -> Result<(DbInner, u64), FsError> {
        let manifest = env.fs().open(MANIFEST)?;
        let bytes = env.host_call(|| manifest.read_at(0, manifest.len()))?;
        let corrupt =
            || FsError::OutOfBounds { name: MANIFEST.to_string(), requested_end: 0, len: 0 };
        let next_file_no = get_fixed_u64(&bytes, 0).ok_or_else(corrupt)?;
        let last_ts = get_fixed_u64(&bytes, 8).ok_or_else(corrupt)?;
        let wal_no = get_fixed_u64(&bytes, 16).ok_or_else(corrupt)?;
        let mut pos = 24usize;
        let (nlevels, n) = get_varint_u64(&bytes[pos..]).ok_or_else(corrupt)?;
        pos += n;
        let mut levels: Vec<Option<Run>> =
            (0..=options.max_levels.max(nlevels as usize)).map(|_| None).collect();
        for slot in levels.iter_mut().take(nlevels as usize + 1).skip(1) {
            let (nfiles, n) = get_varint_u64(&bytes[pos..]).ok_or_else(corrupt)?;
            pos += n;
            if nfiles == 0 {
                continue;
            }
            let mut tables = Vec::new();
            for _ in 0..nfiles {
                let (file_no, n) = get_varint_u64(&bytes[pos..]).ok_or_else(corrupt)?;
                pos += n;
                let file = env.fs().open(&table_name(file_no))?;
                tables.push(Arc::new(TableReader::open(env.clone(), file, file_no)?));
            }
            *slot = Some(Run::new(tables));
        }
        // Replay the WAL into a fresh memtable.
        let wal_file = match env.fs().open(&wal_name(wal_no)) {
            Ok(f) => f,
            Err(_) => env.fs().create(&wal_name(wal_no))?,
        };
        let recovered = recover(env, &wal_file)?;
        let mut max_ts = last_ts;
        let mut memtable = MemTable::new();
        for r in recovered {
            max_ts = max_ts.max(r.ts);
            memtable.insert(r);
        }
        Ok((
            DbInner {
                memtable,
                wal: WalWriter::new(env.clone(), wal_file),
                wal_no,
                levels,
                next_file_no,
            },
            max_ts,
        ))
    }

    /// The storage environment.
    pub fn env(&self) -> &Arc<StorageEnv> {
        &self.env
    }

    /// The options this store was opened with.
    pub fn options(&self) -> &Options {
        &self.options
    }

    /// Operation counters.
    pub fn stats(&self) -> DbStatsSnapshot {
        DbStatsSnapshot {
            puts: self.stats.puts.load(Ordering::Relaxed),
            deletes: self.stats.deletes.load(Ordering::Relaxed),
            gets: self.stats.gets.load(Ordering::Relaxed),
            scans: self.stats.scans.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            compaction_input_records: self.stats.compaction_input_records.load(Ordering::Relaxed),
            compaction_output_records: self.stats.compaction_output_records.load(Ordering::Relaxed),
        }
    }

    /// Latest assigned timestamp.
    pub fn latest_ts(&self) -> Timestamp {
        self.ts.load(Ordering::SeqCst)
    }

    /// Every record of one on-disk level, in internal-key order. Used by
    /// recovery paths that must rebuild derived structures (e.g. eLSM's
    /// untrusted digest store after a restart).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn level_record_dump(&self, level: usize) -> Result<Vec<Record>, FsError> {
        let inner = self.inner.lock();
        let Some(run) = inner.levels.get(level).and_then(|l| l.as_ref()) else {
            return Ok(Vec::new());
        };
        Ok(run.iter_records().collect())
    }

    /// Bytes stored at each level (index 0 = memtable approximation).
    pub fn level_bytes(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut out = vec![inner.memtable.approximate_bytes() as u64];
        for level in 1..inner.levels.len() {
            out.push(inner.levels[level].as_ref().map_or(0, |r| r.total_bytes()));
        }
        out
    }

    /// Record count at each level (index 0 = memtable).
    pub fn level_records(&self) -> Vec<u64> {
        let inner = self.inner.lock();
        let mut out = vec![inner.memtable.len() as u64];
        for level in 1..inner.levels.len() {
            out.push(inner.levels[level].as_ref().map_or(0, |r| r.total_records()));
        }
        out
    }

    // ----- write path -----------------------------------------------------

    /// Inserts a key-value record; returns its timestamp (Equation 1:
    /// `ts = PUT(k, v)`).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if flushing or compaction IO fails.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, FsError> {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        let ts = self.ts.fetch_add(1, Ordering::SeqCst) + 1;
        self.write_record(Record::put(
            Bytes::copy_from_slice(key),
            Bytes::copy_from_slice(value),
            ts,
        ))?;
        Ok(ts)
    }

    /// Deletes a key by writing a tombstone; returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if flushing or compaction IO fails.
    pub fn delete(&self, key: &[u8]) -> Result<Timestamp, FsError> {
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        let ts = self.ts.fetch_add(1, Ordering::SeqCst) + 1;
        self.write_record(Record::tombstone(Bytes::copy_from_slice(key), ts))?;
        Ok(ts)
    }

    fn write_record(&self, record: Record) -> Result<(), FsError> {
        self.env.platform().charge_op_base();
        let mut inner = self.inner.lock();
        self.listener.on_wal_append(&record);
        inner.wal.append(&record);
        // Model the in-enclave memtable write: touch the insertion point.
        if let Some(region) = &self.memtable_region {
            let off = inner.memtable.approximate_bytes() % region.len().max(1);
            let len = record.approximate_size().min(region.len() - off.min(region.len())).max(1);
            self.env.platform().enclave_touch(region, off.min(region.len() - len), len);
        }
        inner.memtable.insert(record);
        if inner.memtable.approximate_bytes() >= self.options.write_buffer_bytes {
            self.flush_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Forces a memtable flush (merging into level 1).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn flush(&self) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        self.flush_locked(&mut inner)
    }

    // ----- read path ------------------------------------------------------

    /// Point query at the latest timestamp; tombstones read as absent.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>, FsError> {
        let trace = self.get_with_trace(key, Timestamp::MAX >> 1)?;
        Ok(trace.result.filter(|r| r.kind == ValueKind::Put))
    }

    /// Point query returning the full per-level trace (the middleware
    /// interface eLSM builds proofs from). Search stops at the first level
    /// with a record for the key — the paper's early stop.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn get_with_trace(&self, key: &[u8], ts_q: Timestamp) -> Result<GetTrace, FsError> {
        let inner = self.inner.lock();
        self.get_with_trace_locked(&inner, key, ts_q)
    }

    /// Like [`Db::get_with_trace`], but runs `check` on the trace *before*
    /// releasing the store-wide mutex. Because flush/compaction installs
    /// (and their listener callbacks, where eLSM replaces Merkle roots)
    /// also run under that mutex, the callback observes commitments that
    /// are guaranteed consistent with the trace — the mutex-guarded
    /// read/compaction synchronization of the paper's §5.5.2.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors; `check`'s verdict is returned
    /// alongside the trace.
    pub fn get_with_trace_sync<T>(
        &self,
        key: &[u8],
        ts_q: Timestamp,
        check: impl FnOnce(&GetTrace) -> T,
    ) -> Result<(GetTrace, T), FsError> {
        let inner = self.inner.lock();
        let trace = self.get_with_trace_locked(&inner, key, ts_q)?;
        let verdict = check(&trace);
        Ok((trace, verdict))
    }

    fn get_with_trace_locked(
        &self,
        inner: &DbInner,
        key: &[u8],
        ts_q: Timestamp,
    ) -> Result<GetTrace, FsError> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.env.platform().charge_op_base();
        // Model the in-enclave memtable probe.
        if let Some(region) = &self.memtable_region {
            let h = fxhash(key) as usize;
            let len = region.len().max(2);
            self.env.platform().enclave_touch(region, h % (len / 2), 32.min(len / 2));
        }
        if let Some(r) = inner.memtable.get(key, ts_q) {
            return Ok(GetTrace { memtable: Some(r.clone()), levels: Vec::new(), result: Some(r) });
        }
        let mut levels = Vec::new();
        let mut result = None;
        // With compaction on, lower levels are fresher (Lemma 5.4). With
        // compaction off, runs stack upward as they flush, so the freshest
        // run has the highest index and search order reverses.
        let order: Vec<usize> = if self.options.compaction_enabled {
            (1..inner.levels.len()).collect()
        } else {
            (1..inner.levels.len()).rev().collect()
        };
        for level in order {
            match &inner.levels[level] {
                None => levels.push(LevelSearch { level, outcome: LevelOutcome::Empty }),
                Some(run) => match run.get(key, ts_q)? {
                    TableGet::Hit(r) => {
                        levels.push(LevelSearch { level, outcome: LevelOutcome::Hit(r.clone()) });
                        result = Some(r);
                        break; // early stop (§5.3)
                    }
                    TableGet::Miss { left, right } => {
                        levels.push(LevelSearch {
                            level,
                            outcome: LevelOutcome::Miss { left, right },
                        });
                    }
                },
            }
        }
        Ok(GetTrace { memtable: None, levels, result })
    }

    /// Range query at the latest timestamp (Equation 1's SCAN).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        Ok(self.scan_with_trace(from, to, Timestamp::MAX >> 1)?.merged)
    }

    /// Range query with the full per-level trace. Unlike GET, every level
    /// is visited (§5.4).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn scan_with_trace(
        &self,
        from: &[u8],
        to: &[u8],
        ts_q: Timestamp,
    ) -> Result<ScanTrace, FsError> {
        let inner = self.inner.lock();
        self.scan_with_trace_locked(&inner, from, to, ts_q)
    }

    /// Like [`Db::scan_with_trace`], but runs `check` on the trace before
    /// releasing the store-wide mutex — the scan counterpart of
    /// [`Db::get_with_trace_sync`].
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors; `check`'s verdict is returned
    /// alongside the trace.
    pub fn scan_with_trace_sync<T>(
        &self,
        from: &[u8],
        to: &[u8],
        ts_q: Timestamp,
        check: impl FnOnce(&ScanTrace) -> T,
    ) -> Result<(ScanTrace, T), FsError> {
        let inner = self.inner.lock();
        let trace = self.scan_with_trace_locked(&inner, from, to, ts_q)?;
        let verdict = check(&trace);
        Ok((trace, verdict))
    }

    fn scan_with_trace_locked(
        &self,
        inner: &DbInner,
        from: &[u8],
        to: &[u8],
        ts_q: Timestamp,
    ) -> Result<ScanTrace, FsError> {
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
        self.env.platform().charge_op_base();
        let memtable: Vec<Record> =
            inner.memtable.range_records(from, to).into_iter().filter(|r| r.ts <= ts_q).collect();
        let mut levels = Vec::new();
        for level in 1..inner.levels.len() {
            match &inner.levels[level] {
                None => levels.push(LevelRange {
                    level,
                    empty: true,
                    records: Vec::new(),
                    left: None,
                    right: None,
                }),
                Some(run) => levels.push(LevelRange {
                    level,
                    empty: false,
                    records: run.range(from, to)?,
                    left: run.neighbor_below(from, ts_q)?,
                    right: run.neighbor_above(to, ts_q)?,
                }),
            }
        }
        // Merge: newest visible version per key, tombstones hide.
        let mut all: Vec<&Record> = memtable
            .iter()
            .chain(levels.iter().flat_map(|l| l.records.iter()))
            .filter(|r| r.ts <= ts_q)
            .collect();
        all.sort_by(|a, b| a.key.cmp(&b.key).then(b.ts.cmp(&a.ts)));
        let mut merged = Vec::new();
        let mut last_key: Option<&[u8]> = None;
        for r in all {
            if last_key == Some(&r.key[..]) {
                continue;
            }
            last_key = Some(&r.key[..]);
            if r.kind == ValueKind::Put {
                merged.push(r.clone());
            }
        }
        Ok(ScanTrace { memtable, levels, merged })
    }

    // ----- flush & compaction ----------------------------------------------

    fn flush_locked(&self, inner: &mut DbInner) -> Result<(), FsError> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let mem_records: Vec<Record> = inner.memtable.iter_records().collect();
        for r in &mem_records {
            self.listener.on_flush_record(r);
        }
        let mut inputs = vec![MergeInput {
            source: RecordSource { level: 0, file_no: 0 },
            iter: Box::new(mem_records.into_iter()),
        }];
        let target = if self.options.compaction_enabled {
            // Rolling merge into level 1 (the paper's model).
            push_run_inputs(&mut inputs, inner.levels[1].as_ref(), 1);
            1
        } else {
            // Compaction off: stack the run at the first empty level —
            // write amplification 1, read cost grows with run count
            // (Figure 7b's wo-compaction mode).
            let mut i = 1;
            while i < inner.levels.len() && inner.levels[i].is_some() {
                i += 1;
            }
            if i == inner.levels.len() {
                inner.levels.push(None);
            }
            i
        };
        self.merge_into(inner, inputs, 0, target)?;
        // Fresh memtable and WAL.
        inner.memtable = MemTable::new();
        let new_wal_no = inner.wal_no + 1;
        let wal_file = self.env.fs().create(&wal_name(new_wal_no))?;
        let old_wal = wal_name(inner.wal_no);
        inner.wal = WalWriter::new(self.env.clone(), wal_file);
        inner.wal_no = new_wal_no;
        let _ = self.env.fs().delete(&old_wal);
        self.write_manifest_locked(inner)?;
        if self.options.compaction_enabled {
            self.maybe_compact(inner)?;
        }
        Ok(())
    }

    /// Runs size-triggered compactions until all levels are within budget.
    fn maybe_compact(&self, inner: &mut DbInner) -> Result<(), FsError> {
        let mut level = 1;
        while level < self.options.max_levels {
            let over = inner.levels[level]
                .as_ref()
                .is_some_and(|r| r.total_bytes() > self.options.level_target_bytes(level));
            if over {
                self.compact_levels(inner, level)?;
            }
            level += 1;
        }
        Ok(())
    }

    /// Compacts level `i` into level `i+1` (the paper's
    /// `COMPACTION(Li, Li+1)`).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn compact(&self, level: usize) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        self.compact_levels(&mut inner, level)
    }

    fn compact_levels(&self, inner: &mut DbInner, level: usize) -> Result<(), FsError> {
        assert!(level >= 1 && level < self.options.max_levels, "invalid compaction level");
        if inner.levels[level].is_none() {
            return Ok(());
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        let mut inputs = Vec::new();
        push_run_inputs(&mut inputs, inner.levels[level].as_ref(), level);
        push_run_inputs(&mut inputs, inner.levels[level + 1].as_ref(), level + 1);
        self.merge_into(inner, inputs, level, level + 1)?;
        self.write_manifest_locked(inner)?;
        Ok(())
    }

    /// Merges the given inputs into `output_level`, replacing both the
    /// input level's run (if `input_level >= 1`) and the output run.
    fn merge_into(
        &self,
        inner: &mut DbInner,
        inputs: Vec<MergeInput>,
        input_level: usize,
        output_level: usize,
    ) -> Result<(), FsError> {
        // Tombstones may only be purged when merges propagate downward;
        // stacked (no-compaction) runs must keep them.
        let is_bottom = self.options.compaction_enabled && output_level >= self.options.max_levels;
        let mut output: Vec<Record> = Vec::new();
        let mut input_count = 0u64;
        let mut cur_key: Option<Bytes> = None;
        let mut drop_rest = false;
        let mut seen_version = false;
        for (source, record) in KWayMerge::new(inputs) {
            input_count += 1;
            if source.level != 0 {
                self.listener.on_compaction_input(source, &record);
            }
            let same_key = cur_key.as_ref() == Some(&record.key);
            if !same_key {
                cur_key = Some(record.key.clone());
                drop_rest = false;
                seen_version = false;
            }
            if drop_rest {
                continue;
            }
            if is_bottom
                && self.options.purge_tombstones_at_bottom
                && record.kind == ValueKind::Delete
                && !seen_version
            {
                // Newest surviving version is a tombstone at the bottom:
                // the key disappears entirely (§5.4).
                drop_rest = true;
                continue;
            }
            if seen_version && !self.options.keep_old_versions {
                continue;
            }
            seen_version = true;
            if self.listener.filter_output(&record) == FilterDecision::Drop {
                continue;
            }
            output.push(record);
        }
        self.stats.compaction_input_records.fetch_add(input_count, Ordering::Relaxed);
        let output = self.listener.transform_output(output_level, output);
        self.stats.compaction_output_records.fetch_add(output.len() as u64, Ordering::Relaxed);

        // Write the output run, chunked into files.
        let mut output_files = Vec::new();
        let mut tables = Vec::new();
        let mut idx = 0usize;
        while idx < output.len() {
            let file_no = inner.next_file_no;
            inner.next_file_no += 1;
            let file = self.env.fs().create(&table_name(file_no))?;
            let mut builder = TableBuilder::new(
                self.env.clone(),
                file.clone(),
                file_no,
                self.options.table.clone(),
            );
            let mut bytes = 0u64;
            while idx < output.len() {
                let r = &output[idx];
                // Never split versions of one key across files (chains stay
                // within one file's leaf).
                let key_boundary = builder.count() > 0 && output[idx - 1].key != r.key;
                if bytes >= self.options.target_file_bytes && key_boundary {
                    break;
                }
                builder.add(r);
                bytes += r.approximate_size() as u64;
                idx += 1;
            }
            let meta = builder.finish();
            output_files.push(meta.file_no);
            tables.push(Arc::new(TableReader::open(self.env.clone(), file, file_no)?));
        }

        self.listener.on_compaction_end(&CompactionInfo {
            input_level,
            output_level,
            input_records: input_count,
            output_records: output.len() as u64,
            output_files: output_files.clone(),
        });

        // Install: drop input-level run and old output run, delete files.
        if input_level >= 1 {
            if let Some(old) = inner.levels[input_level].take() {
                self.retire_run(&old);
            }
        }
        if let Some(old) = inner.levels[output_level].take() {
            self.retire_run(&old);
        }
        if !tables.is_empty() {
            inner.levels[output_level] = Some(Run::new(tables));
        }
        Ok(())
    }

    fn retire_run(&self, run: &Run) {
        run.close();
        for t in run.tables() {
            let _ = self.env.fs().delete(&table_name(t.meta().file_no));
        }
    }

    // ----- manifest ---------------------------------------------------------

    fn write_manifest(&self) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        // Reborrow as &mut DbInner for the shared path.
        self.write_manifest_locked(&mut inner)
    }

    fn write_manifest_locked(&self, inner: &mut DbInner) -> Result<(), FsError> {
        let mut bytes = Vec::new();
        put_fixed_u64(&mut bytes, inner.next_file_no);
        put_fixed_u64(&mut bytes, self.ts.load(Ordering::SeqCst));
        put_fixed_u64(&mut bytes, inner.wal_no);
        put_varint_u64(&mut bytes, (inner.levels.len() - 1) as u64);
        for level in 1..inner.levels.len() {
            match &inner.levels[level] {
                None => put_varint_u64(&mut bytes, 0),
                Some(run) => {
                    put_varint_u64(&mut bytes, run.tables().len() as u64);
                    for t in run.tables() {
                        put_varint_u64(&mut bytes, t.meta().file_no);
                    }
                }
            }
        }
        let _ = self.env.fs().delete(MANIFEST);
        let file = self.env.fs().create(MANIFEST)?;
        self.env.append(&file, &bytes);
        Ok(())
    }
}

fn push_run_inputs(inputs: &mut Vec<MergeInput>, run: Option<&Run>, level: usize) {
    if let Some(run) = run {
        for t in run.tables() {
            let records: Vec<Record> = t.iter().collect();
            inputs.push(MergeInput {
                source: RecordSource { level, file_no: t.meta().file_no },
                iter: Box::new(records.into_iter()),
            });
        }
    }
}

fn table_name(file_no: u64) -> String {
    format!("{file_no:06}.sst")
}

fn wal_name(wal_no: u64) -> String {
    format!("wal-{wal_no:06}.log")
}

fn fxhash(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    use sgx_sim::Platform;
    use sim_disk::{SimDisk, SimFs};

    fn open_db(options: Options) -> Arc<Db> {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        Arc::new(Db::open(env, options, None).unwrap())
    }

    fn small_options() -> Options {
        Options {
            write_buffer_bytes: 4 * 1024,
            target_file_bytes: 8 * 1024,
            level1_max_bytes: 16 * 1024,
            level_multiplier: 4,
            max_levels: 4,
            ..Options::default()
        }
    }

    #[test]
    fn put_get_round_trip() {
        let db = open_db(small_options());
        db.put(b"alpha", b"1").unwrap();
        db.put(b"beta", b"2").unwrap();
        assert_eq!(&db.get(b"alpha").unwrap().unwrap().value[..], b"1");
        assert_eq!(&db.get(b"beta").unwrap().unwrap().value[..], b"2");
        assert!(db.get(b"gamma").unwrap().is_none());
    }

    #[test]
    fn overwrites_return_newest() {
        let db = open_db(small_options());
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(&db.get(b"k").unwrap().unwrap().value[..], b"v2");
    }

    #[test]
    fn timestamps_are_unique_and_monotone() {
        let db = open_db(small_options());
        let t1 = db.put(b"a", b"1").unwrap();
        let t2 = db.put(b"b", b"2").unwrap();
        let t3 = db.delete(b"a").unwrap();
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn delete_hides_key() {
        let db = open_db(small_options());
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        assert!(db.get(b"k").unwrap().is_none());
    }

    #[test]
    fn flush_moves_data_to_level1_and_reads_still_work() {
        let db = open_db(small_options());
        for i in 0..100 {
            db.put(format!("key{i:04}").as_bytes(), format!("val{i}").as_bytes()).unwrap();
        }
        db.flush().unwrap();
        let lb = db.level_bytes();
        assert_eq!(lb[0], 0, "memtable empty after flush");
        assert!(lb[1] > 0 || lb[2] > 0, "data must be on disk");
        for i in (0..100).step_by(7) {
            let key = format!("key{i:04}");
            assert_eq!(
                &db.get(key.as_bytes()).unwrap().unwrap().value[..],
                format!("val{i}").as_bytes(),
                "{key}"
            );
        }
    }

    #[test]
    fn many_writes_trigger_flushes_and_compactions() {
        let db = open_db(small_options());
        for i in 0..2000u32 {
            let key = format!("key{:05}", i % 500);
            db.put(key.as_bytes(), &[b'x'; 40]).unwrap();
        }
        let s = db.stats();
        assert!(s.flushes > 0, "expected flushes");
        assert!(s.compactions > 0, "expected compactions");
        // All keys still readable with the newest value.
        for i in 0..500u32 {
            let key = format!("key{i:05}");
            assert!(db.get(key.as_bytes()).unwrap().is_some(), "missing {key}");
        }
    }

    #[test]
    fn get_trace_early_stops() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        for i in 0..200 {
            db.put(format!("k{i:04}").as_bytes(), b"v").unwrap();
        }
        db.flush().unwrap();
        // New write of k0000 stays in the memtable.
        db.put(b"k0000", b"new").unwrap();
        let trace = db.get_with_trace(b"k0000", Timestamp::MAX >> 1).unwrap();
        assert!(trace.memtable.is_some(), "memtable hit must not search levels");
        assert!(trace.levels.is_empty());

        let trace = db.get_with_trace(b"k0001", Timestamp::MAX >> 1).unwrap();
        assert!(trace.memtable.is_none());
        assert!(matches!(trace.levels.last().unwrap().outcome, LevelOutcome::Hit(_)));
    }

    #[test]
    fn get_trace_miss_has_neighbors() {
        let db = open_db(small_options());
        db.put(b"b", b"1").unwrap();
        db.put(b"d", b"2").unwrap();
        db.flush().unwrap();
        let trace = db.get_with_trace(b"c", Timestamp::MAX >> 1).unwrap();
        let hit_level = trace
            .levels
            .iter()
            .find(|l| !matches!(l.outcome, LevelOutcome::Empty))
            .expect("one searched level");
        match &hit_level.outcome {
            LevelOutcome::Miss { left, right } => {
                assert_eq!(&left.as_ref().unwrap().key[..], b"b");
                assert_eq!(&right.as_ref().unwrap().key[..], b"d");
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn scan_merges_levels_and_memtable() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        db.put(b"a", b"old").unwrap();
        db.put(b"c", b"1").unwrap();
        db.flush().unwrap();
        db.put(b"a", b"new").unwrap();
        db.put(b"b", b"2").unwrap();
        let got = db.scan(b"a", b"c").unwrap();
        let pairs: Vec<(&[u8], &[u8])> = got.iter().map(|r| (&r.key[..], &r.value[..])).collect();
        assert_eq!(
            pairs,
            vec![
                (b"a".as_slice(), b"new".as_slice()),
                (b"b".as_slice(), b"2".as_slice()),
                (b"c".as_slice(), b"1".as_slice())
            ]
        );
    }

    #[test]
    fn scan_hides_deleted_keys() {
        let db = open_db(small_options());
        db.put(b"a", b"1").unwrap();
        db.put(b"b", b"2").unwrap();
        db.delete(b"a").unwrap();
        let got = db.scan(b"a", b"z").unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].key[..], b"b");
    }

    #[test]
    fn tombstones_purged_at_bottom_level() {
        let mut opts = small_options();
        opts.max_levels = 2;
        let db = open_db(opts);
        db.put(b"k", b"v").unwrap();
        db.delete(b"k").unwrap();
        db.flush().unwrap();
        db.compact(1).unwrap();
        assert!(db.get(b"k").unwrap().is_none());
        // At the bottom level the key is physically gone.
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 0, "tombstone and value purged: {recs:?}");
    }

    #[test]
    fn old_versions_retained_by_default() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        db.flush().unwrap();
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 2, "both versions kept: {recs:?}");
    }

    #[test]
    fn old_versions_dropped_when_configured() {
        let db = open_db(Options {
            keep_old_versions: false,
            compaction_enabled: false,
            ..small_options()
        });
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
        db.flush().unwrap();
        let recs = db.level_records();
        assert_eq!(recs.iter().sum::<u64>(), 1, "only newest kept: {recs:?}");
        assert_eq!(&db.get(b"k").unwrap().unwrap().value[..], b"v2");
    }

    #[test]
    fn recovery_from_manifest_and_wal() {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let env = StorageEnv::new(platform.clone(), fs.clone(), options.env.clone(), None);
        {
            let db = Db::open(env.clone(), options.clone(), None).unwrap();
            for i in 0..300 {
                db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            // Some data flushed, some still in WAL/memtable.
        }
        // "Power cycle": reopen from the same filesystem.
        let db2 = Db::open(env, options, None).unwrap();
        for i in 0..300 {
            let key = format!("key{i:04}");
            assert_eq!(
                &db2.get(key.as_bytes()).unwrap().unwrap().value[..],
                format!("v{i}").as_bytes(),
                "lost {key} across restart"
            );
        }
        // Timestamps must continue past the recovered maximum.
        let t = db2.put(b"post", b"restart").unwrap();
        assert!(t > 300);
    }

    #[test]
    fn listener_sees_flush_and_compaction_events() {
        use std::sync::atomic::AtomicU64;
        #[derive(Default)]
        struct Spy {
            wal: AtomicU64,
            flush: AtomicU64,
            inputs: AtomicU64,
            ends: AtomicU64,
        }
        impl StoreListener for Spy {
            fn on_wal_append(&self, _: &Record) {
                self.wal.fetch_add(1, Ordering::Relaxed);
            }
            fn on_flush_record(&self, _: &Record) {
                self.flush.fetch_add(1, Ordering::Relaxed);
            }
            fn on_compaction_input(&self, _: RecordSource, _: &Record) {
                self.inputs.fetch_add(1, Ordering::Relaxed);
            }
            fn on_compaction_end(&self, _: &CompactionInfo) {
                self.ends.fetch_add(1, Ordering::Relaxed);
            }
        }
        let spy = Arc::new(Spy::default());
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        let db = Db::open(env, options, Some(spy.clone())).unwrap();
        for i in 0..400 {
            db.put(format!("key{i:05}").as_bytes(), &[b'x'; 30]).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(spy.wal.load(Ordering::Relaxed), 400);
        assert!(spy.flush.load(Ordering::Relaxed) >= 400);
        assert!(spy.ends.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn transform_output_rewrites_values() {
        struct Embed;
        impl StoreListener for Embed {
            fn transform_output(&self, _: usize, records: Vec<Record>) -> Vec<Record> {
                records
                    .into_iter()
                    .map(|mut r| {
                        let mut v = r.value.to_vec();
                        v.extend_from_slice(b"+proof");
                        r.value = Bytes::from(v);
                        r
                    })
                    .collect()
            }
        }
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let options = small_options();
        let env = StorageEnv::new(platform, fs, options.env.clone(), None);
        let db = Db::open(env, options, Some(Arc::new(Embed))).unwrap();
        db.put(b"k", b"v").unwrap();
        db.flush().unwrap();
        assert_eq!(&db.get(b"k").unwrap().unwrap().value[..], b"v+proof");
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let db = open_db(small_options());
        std::thread::scope(|s| {
            for t in 0..4 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..200 {
                        let key = format!("t{t}-key{i:04}");
                        db.put(key.as_bytes(), b"v").unwrap();
                        assert!(db.get(key.as_bytes()).unwrap().is_some());
                    }
                });
            }
        });
        for t in 0..4 {
            for i in (0..200).step_by(13) {
                let key = format!("t{t}-key{i:04}");
                assert!(db.get(key.as_bytes()).unwrap().is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn snapshot_reads_see_history() {
        let db = open_db(Options { compaction_enabled: false, ..small_options() });
        let t1 = db.put(b"k", b"v1").unwrap();
        let t2 = db.put(b"k", b"v2").unwrap();
        let tr1 = db.get_with_trace(b"k", t1).unwrap();
        assert_eq!(&tr1.result.unwrap().value[..], b"v1");
        let tr2 = db.get_with_trace(b"k", t2).unwrap();
        assert_eq!(&tr2.result.unwrap().value[..], b"v2");
    }
}
