//! The storage environment: where code runs, where buffers live, how files
//! are protected.
//!
//! One [`StorageEnv`] value captures a complete configuration from the
//! paper's design space (Table 1):
//!
//! | Configuration | `in_enclave` | cache placement | `use_mmap` | `sealed_files` |
//! |---|---|---|---|---|
//! | eLSM-P1 | yes | [`Placement::Enclave`] | no (impossible) | yes (SDK protection) |
//! | eLSM-P2 (buffer) | yes | [`Placement::Untrusted`] | no | no (Merkle proofs instead) |
//! | eLSM-P2 (mmap) | yes | — | yes | no |
//! | unsecured LevelDB | no | [`Placement::Untrusted`] | either | no |
//!
//! Every file read/write routes through here so the right OCalls, copies,
//! paging and sealing costs are charged.

use std::sync::Arc;

use bytes::Bytes;
use sgx_sim::{Platform, Sealer};
use sim_disk::{BufferCache, FsError, MmapFile, Placement, SimFile, SimFs};

/// Behavioural configuration of the storage stack.
#[derive(Debug, Clone)]
pub struct EnvConfig {
    /// Whether the store's code executes inside the enclave (file IO then
    /// requires OCalls).
    pub in_enclave: bool,
    /// Read SSTables through untrusted-memory mmaps instead of buffered
    /// reads. Incompatible with an enclave-placed cache.
    pub use_mmap: bool,
    /// Placement of the block cache.
    pub cache_placement: Placement,
    /// Block cache capacity in bytes; 0 disables the cache.
    pub block_cache_bytes: usize,
    /// Cache slot size; must be ≥ the block size plus sealing overhead.
    pub block_slot_bytes: usize,
    /// Seal file blocks with the enclave sealing key (eLSM-P1's
    /// file-granularity protection).
    pub sealed_files: bool,
}

impl Default for EnvConfig {
    fn default() -> Self {
        EnvConfig {
            in_enclave: true,
            use_mmap: false,
            cache_placement: Placement::Untrusted,
            block_cache_bytes: 8 * 1024 * 1024,
            block_slot_bytes: 8 * 1024,
            sealed_files: false,
        }
    }
}

/// A sub-allocation of the shared in-enclave metadata arena.
///
/// Table indexes and Bloom filters live in one contiguous enclave heap
/// (as they would in a real allocator) rather than each in their own
/// page-rounded region — page-granularity EPC pressure then matches the
/// unscaled system (DESIGN.md §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaSlice {
    offset: usize,
    len: usize,
}

impl MetaSlice {
    /// Length of the slice in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The storage environment shared by a DB instance and its table readers.
#[derive(Debug)]
pub struct StorageEnv {
    platform: Arc<Platform>,
    fs: Arc<SimFs>,
    config: EnvConfig,
    cache: Option<BufferCache<(u64, u64)>>,
    sealer: Option<Sealer>,
    meta_arena: Option<sgx_sim::EnclaveRegion>,
    meta_cursor: std::sync::atomic::AtomicUsize,
}

impl StorageEnv {
    /// Creates an environment.
    ///
    /// # Panics
    ///
    /// Panics when `use_mmap` is combined with an enclave-placed cache:
    /// mmap'd files live in untrusted memory, which eLSM-P1 forbids (§6.3).
    pub fn new(
        platform: Arc<Platform>,
        fs: Arc<SimFs>,
        config: EnvConfig,
        sealer: Option<Sealer>,
    ) -> Arc<Self> {
        assert!(
            !(config.use_mmap && config.cache_placement == Placement::Enclave),
            "mmap reads are incompatible with an in-enclave buffer (eLSM-P1 cannot mmap)"
        );
        let cache =
            (config.block_cache_bytes >= config.block_slot_bytes && !config.use_mmap).then(|| {
                BufferCache::new(
                    platform.clone(),
                    config.cache_placement,
                    config.block_slot_bytes,
                    config.block_cache_bytes,
                )
            });
        // One shared enclave heap for all metadata; sized generously so
        // wrap-around aliasing stays rare.
        let meta_arena = config
            .in_enclave
            .then(|| platform.enclave_alloc(platform.cost().epc_bytes.max(4096) * 4));
        Arc::new(StorageEnv {
            platform,
            fs,
            config,
            cache,
            sealer,
            meta_arena,
            meta_cursor: std::sync::atomic::AtomicUsize::new(0),
        })
    }

    /// The platform costs are charged to.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The simulated filesystem.
    pub fn fs(&self) -> &Arc<SimFs> {
        &self.fs
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// Block cache hit/miss counters, if a cache is configured.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.hit_stats())
    }

    /// Runs a host-side closure, charging an OCall when in enclave mode.
    pub fn host_call<T>(&self, f: impl FnOnce() -> T) -> T {
        if self.config.in_enclave {
            self.platform.ocall(f)
        } else {
            f()
        }
    }

    /// Appends to a file (write path: WAL appends, table builds).
    pub fn append(&self, file: &SimFile, bytes: &[u8]) {
        self.host_call(|| file.append(bytes));
        if self.config.in_enclave {
            // The written bytes cross the boundary from enclave to host.
            self.platform.cross_copy(bytes.len());
        }
    }

    /// Reads a data block, applying (in order): block cache or mmap, OCall
    /// charging, and unsealing for protected files.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on out-of-range reads and
    /// [`FsError::OutOfBounds`]-mapped corruption for unsealing failures.
    pub fn read_block(
        &self,
        file_no: u64,
        file: &Arc<SimFile>,
        mmap: Option<&Arc<MmapFile>>,
        offset: usize,
        len: usize,
    ) -> Result<Bytes, FsError> {
        let raw = if let (true, Some(map)) = (self.config.use_mmap, mmap) {
            // mmap path: direct dereference of untrusted memory, no OCall.
            map.read(offset, len)?
        } else if let Some(cache) = &self.cache {
            match cache.get(&(file_no, offset as u64)) {
                Some(data) => data,
                None => {
                    let data = self.host_call(|| file.read_at(offset, len))?;
                    cache.insert((file_no, offset as u64), data.clone());
                    data
                }
            }
        } else {
            self.host_call(|| file.read_at(offset, len))?
        };
        if let Some(sealer) = self.sealer.as_ref().filter(|_| self.config.sealed_files) {
            // eLSM-P1: the SDK protected file system decrypts and verifies
            // each node inside the enclave. Charge the cryptographic work,
            // the copy into enclave memory, and one protected-FS metadata
            // node read (its own Merkle tree over the file; for multi-GB
            // file sets those nodes miss the SDK's cache).
            self.platform.charge_hash(raw.len() * 3);
            self.platform.cross_copy(raw.len() * 2);
            if file.len() >= 128 {
                let node_off = ((offset / 4096) * 64) % (file.len() - 64);
                let _ = self.host_call(|| file.read_at(node_off, 64));
            }
            let aad = seal_aad(file_no, offset);
            let blob = sgx_sim::SealedBlob::from_bytes(&raw).map_err(|_| FsError::OutOfBounds {
                name: file.name(),
                requested_end: offset + len,
                len: file.len(),
            })?;
            let plain = sealer.unseal(&aad, &blob).map_err(|_| FsError::OutOfBounds {
                name: file.name(),
                requested_end: offset + len,
                len: file.len(),
            })?;
            Ok(Bytes::from(plain))
        } else {
            Ok(raw)
        }
    }

    /// Transforms a block for writing: seals it when file protection is on
    /// (charging the cryptographic work), otherwise returns it unchanged.
    pub fn prepare_block(&self, file_no: u64, offset: usize, block: Vec<u8>) -> Vec<u8> {
        match self.sealer.as_ref().filter(|_| self.config.sealed_files) {
            Some(sealer) => {
                self.platform.charge_hash(block.len());
                sealer.seal(&seal_aad(file_no, offset), &block).to_bytes()
            }
            None => block,
        }
    }

    /// Extra bytes sealing adds per block (nonce + tag), for readers that
    /// must account for it in offsets.
    pub fn seal_overhead(&self) -> usize {
        if self.config.sealed_files && self.sealer.is_some() {
            12 + 32
        } else {
            0
        }
    }

    /// Allocates `len` bytes of the shared in-enclave metadata heap when
    /// running in enclave mode (file indices, Bloom filters — the paper
    /// keeps them inside).
    pub fn metadata_region(&self, len: usize) -> Option<MetaSlice> {
        let arena = self.meta_arena.as_ref()?;
        let len = len.max(1).min(arena.len() / 2);
        let offset = self.meta_cursor.fetch_add(len, std::sync::atomic::Ordering::Relaxed)
            % (arena.len() - len);
        Some(MetaSlice { offset, len })
    }

    /// Models an access to in-enclave metadata at the given offsets, or an
    /// untrusted DRAM access outside the enclave.
    pub fn touch_metadata(
        &self,
        slice: Option<&MetaSlice>,
        offsets: impl IntoIterator<Item = (usize, usize)>,
    ) {
        match (slice, self.meta_arena.as_ref()) {
            (Some(s), Some(arena)) => {
                for (off, len) in offsets {
                    let off = off.min(s.len.saturating_sub(1));
                    let len = len.min(s.len - off).max(1);
                    self.platform.enclave_touch(arena, s.offset + off, len);
                }
            }
            _ => {
                for (_, len) in offsets {
                    self.platform.dram_access(len);
                }
            }
        }
    }
}

fn seal_aad(file_no: u64, offset: usize) -> Vec<u8> {
    let mut aad = Vec::with_capacity(16);
    aad.extend_from_slice(&file_no.to_be_bytes());
    aad.extend_from_slice(&(offset as u64).to_be_bytes());
    aad
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsm_crypto::sha256::sha256;
    use sgx_sim::CostModel;
    use sim_disk::SimDisk;

    fn env_with(config: EnvConfig) -> (Arc<StorageEnv>, Arc<SimFs>) {
        let platform = Platform::new(CostModel::paper_defaults());
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let sealer = Sealer::new(sha256(b"test enclave"), b"machine");
        (StorageEnv::new(platform, fs.clone(), config, Some(sealer)), fs)
    }

    #[test]
    fn enclave_reads_issue_ocalls_on_miss_only() {
        let (env, fs) = env_with(EnvConfig::default());
        let f = fs.create("t").unwrap();
        f.append(&vec![1u8; 8192]);
        let ocalls0 = env.platform().stats().ocalls;
        env.read_block(1, &f, None, 0, 4096).unwrap();
        assert_eq!(env.platform().stats().ocalls, ocalls0 + 1, "miss needs an OCall");
        env.read_block(1, &f, None, 0, 4096).unwrap();
        assert_eq!(env.platform().stats().ocalls, ocalls0 + 1, "hit stays in enclave");
    }

    #[test]
    fn non_enclave_mode_never_switches() {
        let (env, fs) = env_with(EnvConfig { in_enclave: false, ..EnvConfig::default() });
        let f = fs.create("t").unwrap();
        f.append(&vec![1u8; 8192]);
        env.read_block(1, &f, None, 0, 4096).unwrap();
        env.append(&f, b"more");
        let s = env.platform().stats();
        assert_eq!((s.ecalls, s.ocalls), (0, 0));
    }

    #[test]
    fn sealed_blocks_round_trip() {
        let (env, fs) = env_with(EnvConfig {
            sealed_files: true,
            block_cache_bytes: 0,
            ..EnvConfig::default()
        });
        let f = fs.create("t").unwrap();
        let sealed = env.prepare_block(9, 0, b"plain block".to_vec());
        assert_ne!(&sealed[..], b"plain block");
        f.append(&sealed);
        let got = env.read_block(9, &f, None, 0, sealed.len()).unwrap();
        assert_eq!(&got[..], b"plain block");
    }

    #[test]
    fn sealed_block_wrong_location_rejected() {
        let (env, fs) = env_with(EnvConfig {
            sealed_files: true,
            block_cache_bytes: 0,
            ..EnvConfig::default()
        });
        let f = fs.create("t").unwrap();
        let sealed = env.prepare_block(9, 4096, b"block".to_vec());
        f.append(&sealed);
        // Stored at offset 0 but sealed for offset 4096: swap detected.
        assert!(env.read_block(9, &f, None, 0, sealed.len()).is_err());
    }

    #[test]
    fn mmap_path_skips_ocalls() {
        let (env, fs) =
            env_with(EnvConfig { use_mmap: true, block_cache_bytes: 0, ..EnvConfig::default() });
        let f = fs.create("t").unwrap();
        f.append(&vec![7u8; 8192]);
        let map = MmapFile::map(f.clone());
        let ocalls0 = env.platform().stats().ocalls;
        let got = env.read_block(1, &f, Some(&map), 100, 50).unwrap();
        assert_eq!(got, Bytes::from(vec![7u8; 50]));
        assert_eq!(env.platform().stats().ocalls, ocalls0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn mmap_with_enclave_cache_rejected() {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        StorageEnv::new(
            platform,
            fs,
            EnvConfig {
                use_mmap: true,
                cache_placement: Placement::Enclave,
                ..EnvConfig::default()
            },
            None,
        );
    }

    #[test]
    fn metadata_touch_in_and_out_of_enclave() {
        let (env, _) = env_with(EnvConfig::default());
        let region = env.metadata_region(8192);
        assert!(region.is_some());
        env.touch_metadata(region.as_ref(), [(0, 64), (4096, 64)]);
        assert!(env.platform().stats().epc_page_ins >= 2);

        let (env2, _) = env_with(EnvConfig { in_enclave: false, ..EnvConfig::default() });
        assert!(env2.metadata_region(8192).is_none());
        env2.touch_metadata(None, [(0, 64)]);
        assert_eq!(env2.platform().stats().epc_page_ins, 0);
    }
}
