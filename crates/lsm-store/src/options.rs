//! Store configuration.

use crate::env::EnvConfig;
use crate::sstable::TableOptions;

/// Options for opening a [`crate::db::Db`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Environment (enclave mode, buffer placement, mmap, sealing).
    pub env: EnvConfig,
    /// SSTable construction parameters.
    pub table: TableOptions,
    /// Memtable size that triggers a flush (the paper uses 4 MB).
    pub write_buffer_bytes: usize,
    /// Target size of one SSTable file within a run.
    pub target_file_bytes: u64,
    /// Size budget of level 1; level `i` holds `level1 * multiplier^(i-1)`.
    pub level1_max_bytes: u64,
    /// Geometric growth factor between levels (LevelDB uses 10).
    pub level_multiplier: u64,
    /// Maximum number of on-disk levels.
    pub max_levels: usize,
    /// Run size-triggered compactions automatically after flushes.
    pub compaction_enabled: bool,
    /// Drop tombstones (and the versions they shadow) when merging into the
    /// bottom level (§5.4 "Handling Deletes").
    pub purge_tombstones_at_bottom: bool,
    /// Keep shadowed old versions (the paper's hash chains digest them;
    /// transparency-log deployments retain full history).
    pub keep_old_versions: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            env: EnvConfig::default(),
            table: TableOptions::default(),
            write_buffer_bytes: 64 * 1024,
            target_file_bytes: 128 * 1024,
            level1_max_bytes: 256 * 1024,
            level_multiplier: 10,
            max_levels: 7,
            compaction_enabled: true,
            purge_tombstones_at_bottom: true,
            keep_old_versions: true,
        }
    }
}

impl Options {
    /// Size budget for level `i` (1-based).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        self.level1_max_bytes * self.level_multiplier.pow(level.saturating_sub(1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_geometrically() {
        let o = Options { level1_max_bytes: 100, level_multiplier: 10, ..Options::default() };
        assert_eq!(o.level_target_bytes(1), 100);
        assert_eq!(o.level_target_bytes(2), 1_000);
        assert_eq!(o.level_target_bytes(3), 10_000);
    }
}
