//! Store configuration.

use crate::compaction::CompactionConfig;
use crate::env::EnvConfig;
use crate::sstable::TableOptions;

/// When acknowledged writes become durable in the host-side WAL.
///
/// Batches are *always* framed atomically (a torn frame drops the whole
/// batch on recovery); this knob only governs **when** frames leave the
/// enclave for the host file, i.e. how many acknowledged records a crash
/// can cost:
///
/// | Policy | Host pushes | Crash-loss window |
/// |---|---|---|
/// | [`Always`](WalSyncPolicy::Always) | one per writer batch | none: every acknowledged batch is on the host before the writer returns |
/// | [`EveryBatch`](WalSyncPolicy::EveryBatch) | one per commit *group* | none for the application; coalesced writers' frames reach the host together, saving one OCall per follower |
/// | [`EveryNBytes`](WalSyncPolicy::EveryNBytes) | when ≥ n bytes pend | up to n bytes of acknowledged batches (whole frames — never a torn batch) |
///
/// `EveryNBytes` trades durability for throughput the way
/// `fsync`-batching databases do: group-commit systems (LevelDB's
/// `sync=false`, LSKV's batched ledger appends) acknowledge from the
/// enclave-side buffer and push in bulk. A flush-triggered WAL rotation
/// always forces pending frames out first, so the loss window never spans
/// a memtable freeze.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSyncPolicy {
    /// Push every writer batch to the host before acknowledging — the
    /// original per-operation behaviour (default).
    #[default]
    Always,
    /// Push once per coalesced commit group: followers in a group-commit
    /// ride the leader's single host exit.
    EveryBatch,
    /// Buffer frames in enclave memory and push once the given byte
    /// threshold accumulates (or a rotation/sync forces it).
    EveryNBytes(usize),
}

/// Key-value separation knobs (WiscKey-style authenticated value log).
///
/// When enabled on [`Options::vlog`], flushes divert values of at least
/// [`VlogConfig::value_threshold`] bytes into append-only value-log files;
/// the LSM levels keep pointer records
/// ([`crate::record::ValueKind::VlogPut`]) of a few dozen bytes, so
/// compaction merges and listener re-hashing no longer pay per value byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VlogConfig {
    /// Stored values of at least this many bytes move to the value log at
    /// flush time (smaller values stay inline in the LSM).
    pub value_threshold: usize,
    /// Rotate to a new value-log file once the active one reaches this
    /// size (bounds the blast radius of one GC rewrite).
    pub target_file_bytes: u64,
    /// Garbage-collect a value-log file once this fraction of its bytes
    /// belongs to dropped pointer records.
    pub gc_garbage_ratio: f64,
    /// Run value-log GC automatically after flush-chased compaction.
    pub gc_enabled: bool,
}

impl Default for VlogConfig {
    fn default() -> Self {
        VlogConfig {
            value_threshold: 4096,
            target_file_bytes: 256 * 1024,
            gc_garbage_ratio: 0.5,
            gc_enabled: true,
        }
    }
}

/// Options for opening a [`crate::db::Db`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Environment (enclave mode, buffer placement, mmap, sealing).
    pub env: EnvConfig,
    /// SSTable construction parameters.
    pub table: TableOptions,
    /// Memtable size that triggers a flush (the paper uses 4 MB).
    pub write_buffer_bytes: usize,
    /// Target size of one SSTable file within a run.
    pub target_file_bytes: u64,
    /// Size budget of level 1; level `i` holds `level1 * multiplier^(i-1)`.
    pub level1_max_bytes: u64,
    /// Geometric growth factor between levels (LevelDB uses 10).
    pub level_multiplier: u64,
    /// Maximum number of on-disk levels.
    pub max_levels: usize,
    /// Run size-triggered compactions automatically after flushes.
    pub compaction_enabled: bool,
    /// Compaction strategy and scheduler parallelism (ignored while
    /// `compaction_enabled` is false).
    pub compaction: CompactionConfig,
    /// Drop tombstones (and the versions they shadow) when merging into the
    /// bottom level (§5.4 "Handling Deletes").
    pub purge_tombstones_at_bottom: bool,
    /// Keep shadowed old versions (the paper's hash chains digest them;
    /// transparency-log deployments retain full history).
    pub keep_old_versions: bool,
    /// When acknowledged writes become durable in the host-side WAL (see
    /// [`WalSyncPolicy`] for the durability/throughput trade-off).
    pub wal_sync: WalSyncPolicy,
    /// Upper bound on the bytes one group-commit leader coalesces before
    /// handing leadership on (keeps follower latency bounded under bursts).
    pub max_group_commit_bytes: usize,
    /// How many of the most recent epochs stay verifiable even with no
    /// live reader pinning them. Detached trace-then-verify flows
    /// (adversary harnesses, replication cross-checks, tests) collect a
    /// trace and verify it later; this floor keeps their epoch's
    /// snapshots alive across that window. Raising it lengthens the
    /// window at the cost of more retained `Version`s (and more
    /// listener-side snapshots); 0 retires every drained version
    /// immediately.
    pub retired_epoch_floor: u64,
    /// Key-value separation: `Some` splits large values into an
    /// append-only value log at flush time (`None` keeps every value
    /// inline in the LSM levels — the pre-separation behaviour).
    pub vlog: Option<VlogConfig>,
    /// Telemetry registry the store's counters, spans and gauges live in.
    /// The default handle is disabled (counters still count — they *are*
    /// the store's bookkeeping — but spans/histograms are no-ops); pass
    /// [`telemetry::Telemetry::new`] to trace, or a
    /// [scoped](telemetry::Telemetry::scoped) handle to share one registry
    /// across shards or replicas without name collisions.
    pub telemetry: telemetry::Telemetry,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            env: EnvConfig::default(),
            table: TableOptions::default(),
            write_buffer_bytes: 64 * 1024,
            target_file_bytes: 128 * 1024,
            level1_max_bytes: 256 * 1024,
            level_multiplier: 10,
            max_levels: 7,
            compaction_enabled: true,
            compaction: CompactionConfig::default(),
            purge_tombstones_at_bottom: true,
            keep_old_versions: true,
            wal_sync: WalSyncPolicy::default(),
            max_group_commit_bytes: 1 << 20,
            retired_epoch_floor: 8,
            vlog: None,
            telemetry: telemetry::Telemetry::default(),
        }
    }
}

impl Options {
    /// Size budget for level `i` (1-based).
    pub fn level_target_bytes(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        self.level1_max_bytes * self.level_multiplier.pow(level.saturating_sub(1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_targets_grow_geometrically() {
        let o = Options { level1_max_bytes: 100, level_multiplier: 10, ..Options::default() };
        assert_eq!(o.level_target_bytes(1), 100);
        assert_eq!(o.level_target_bytes(2), 1_000);
        assert_eq!(o.level_target_bytes(3), 10_000);
    }
}
