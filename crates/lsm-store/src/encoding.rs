//! Binary encodings shared by the WAL, blocks, SSTables and the manifest:
//! LEB128 varints, length-prefixed slices and CRC-32 (the Castagnoli
//! polynomial LevelDB/RocksDB use for record framing).

/// Appends a LEB128 varint encoding of `v`.
pub fn put_varint_u64(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decodes a LEB128 varint from the front of `buf`, returning the value and
/// the number of bytes consumed.
///
/// Returns `None` on truncated or over-long input.
pub fn get_varint_u64(buf: &[u8]) -> Option<(u64, usize)> {
    let mut result = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        result |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((result, i + 1));
        }
        shift += 7;
    }
    None
}

/// Appends a `u32` varint.
pub fn put_varint_u32(buf: &mut Vec<u8>, v: u32) {
    put_varint_u64(buf, u64::from(v));
}

/// Decodes a `u32` varint; fails if the value exceeds `u32::MAX`.
pub fn get_varint_u32(buf: &[u8]) -> Option<(u32, usize)> {
    let (v, n) = get_varint_u64(buf)?;
    u32::try_from(v).ok().map(|v| (v, n))
}

/// Appends a varint length followed by the bytes.
pub fn put_length_prefixed(buf: &mut Vec<u8>, data: &[u8]) {
    put_varint_u64(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

/// Reads a length-prefixed slice from the front of `buf`, returning the
/// slice and total bytes consumed.
pub fn get_length_prefixed(buf: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint_u64(buf)?;
    let len = usize::try_from(len).ok()?;
    let end = n.checked_add(len)?;
    if end > buf.len() {
        return None;
    }
    Some((&buf[n..end], end))
}

/// Appends a little-endian fixed `u32`.
pub fn put_fixed_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian fixed `u32` at `offset`.
pub fn get_fixed_u32(buf: &[u8], offset: usize) -> Option<u32> {
    let bytes = buf.get(offset..offset + 4)?;
    Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Appends a little-endian fixed `u64`.
pub fn put_fixed_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian fixed `u64` at `offset`.
pub fn get_fixed_u64(buf: &[u8], offset: usize) -> Option<u64> {
    let bytes = buf.get(offset..offset + 8)?;
    Some(u64::from_le_bytes([
        bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
    ]))
}

/// CRC-32C (Castagnoli) lookup table, computed at first use.
fn crc32c_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        const POLY: u32 = 0x82f6_3b78; // reflected 0x1EDC6F41
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut j = 0;
            while j < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
                j += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// CRC-32C checksum of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let table = crc32c_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint_u64(&mut buf, v);
            let (got, n) = get_varint_u64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_sizes_match_leb128() {
        let mut buf = Vec::new();
        put_varint_u64(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint_u64(&mut buf, 128);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn varint_truncated_fails() {
        assert!(get_varint_u64(&[0x80]).is_none());
        assert!(get_varint_u64(&[]).is_none());
    }

    #[test]
    fn varint_overlong_fails() {
        // 11 continuation bytes exceed a u64.
        let buf = [0xffu8; 11];
        assert!(get_varint_u64(&buf).is_none());
    }

    #[test]
    fn u32_varint_rejects_big_values() {
        let mut buf = Vec::new();
        put_varint_u64(&mut buf, u64::from(u32::MAX) + 1);
        assert!(get_varint_u32(&buf).is_none());
    }

    #[test]
    fn length_prefixed_round_trip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        let (a, n) = get_length_prefixed(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, m) = get_length_prefixed(&buf[n..]).unwrap();
        assert_eq!(b, b"");
        assert_eq!(n + m, buf.len());
    }

    #[test]
    fn length_prefixed_truncated_fails() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        assert!(get_length_prefixed(&buf[..3]).is_none());
    }

    #[test]
    fn fixed_round_trip() {
        let mut buf = Vec::new();
        put_fixed_u32(&mut buf, 0xdead_beef);
        put_fixed_u64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(get_fixed_u32(&buf, 0), Some(0xdead_beef));
        assert_eq!(get_fixed_u64(&buf, 4), Some(0x0123_4567_89ab_cdef));
        assert_eq!(get_fixed_u32(&buf, 9), None);
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 test vectors for CRC-32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0..32u8).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
    }

    #[test]
    fn crc32c_detects_corruption() {
        let a = crc32c(b"payload");
        let b = crc32c(b"paYload");
        assert_ne!(a, b);
    }
}
