//! Write-ahead log with group-commit batch framing.
//!
//! Every commit group writes one *batch frame* to the log before the
//! records touch the memtable, so the memtable can be rebuilt after a
//! crash. Framing is `[len u32][crc32c u32][payload]` where the payload is
//! `varint(record_count)` followed by the concatenated record encodings.
//! A singleton put is simply a batch of one.
//!
//! The frame is the **atomicity unit**: recovery stops at the first
//! corrupt or truncated frame (standard LevelDB behaviour), so a torn tail
//! write drops its whole batch — a batch can never partially apply.
//!
//! When frames reach the host is governed by
//! [`WalSyncPolicy`](crate::options::WalSyncPolicy): per writer batch, per
//! coalesced commit group, or buffered in enclave memory until a byte
//! threshold (see the policy docs for the durability trade-off).
//!
//! In eLSM the WAL *storage* lives outside the enclave while the enclave
//! keeps a running hash of its contents (§5.3, step w1); the hash
//! maintenance is the `elsm` crate's job via
//! [`crate::events::StoreListener::on_wal_append_batch`].

use std::sync::Arc;

use sim_disk::{FsError, SimFile};

use crate::encoding::{crc32c, get_fixed_u32, get_varint_u64, put_fixed_u32, put_varint_u64};
use crate::env::StorageEnv;
use crate::options::WalSyncPolicy;
use crate::record::Record;

/// Appends batch-framed records to a log file.
#[derive(Debug)]
pub struct WalWriter {
    env: Arc<StorageEnv>,
    file: Arc<SimFile>,
    records: u64,
    policy: WalSyncPolicy,
    /// Frames not yet pushed to the host ([`WalSyncPolicy::EveryNBytes`]).
    pending: Vec<u8>,
}

/// Encodes one batch frame: `[len][crc][varint count][records…]`.
///
/// Public because the frame is also the **replication unit**: a primary
/// ships exactly these bytes to its replicas (the same crash-atomicity
/// unit recovery uses), and [`decode_frame`] replays them. The encoding is
/// deterministic, so a replica's WAL ends up byte-comparable with the
/// primary's.
///
/// # Panics
///
/// Panics if the payload exceeds the frame format's 32-bit length field —
/// a truncated length would silently corrupt the log and drop every later
/// acknowledged frame on recovery. [`crate::Db::write_batch`] rejects such
/// batches before they reach the committer.
pub fn encode_frame(records: &[Record]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(records.len() * 32);
    put_varint_u64(&mut payload, records.len() as u64);
    for r in records {
        payload.extend_from_slice(&r.encode());
    }
    assert!(
        u32::try_from(payload.len()).is_ok(),
        "WAL batch frame exceeds the u32 length field ({} bytes); split the batch",
        payload.len()
    );
    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_fixed_u32(&mut frame, payload.len() as u32);
    put_fixed_u32(&mut frame, crc32c(&payload));
    frame.extend_from_slice(&payload);
    frame
}

impl WalWriter {
    /// Wraps an (empty or existing) log file for appending.
    pub fn new(env: Arc<StorageEnv>, file: Arc<SimFile>, policy: WalSyncPolicy) -> Self {
        WalWriter { env, file, records: 0, policy, pending: Vec::new() }
    }

    /// Appends one record as a batch of one (step w3 of the paper's write
    /// path; charged as an enclave-exit write when the store runs in
    /// enclave mode).
    pub fn append(&mut self, record: &Record) {
        self.append_batch(std::slice::from_ref(record));
    }

    /// Appends one batch as a single atomic frame; returns the frame's
    /// encoded size in bytes (how the store meters WAL traffic).
    ///
    /// Under [`WalSyncPolicy::EveryNBytes`] the frame may be buffered in
    /// enclave memory; call [`WalWriter::sync`] to force it out (the store
    /// does this before every WAL rotation).
    pub fn append_batch(&mut self, records: &[Record]) -> usize {
        if records.is_empty() {
            return 0;
        }
        let frame = encode_frame(records);
        match self.policy {
            WalSyncPolicy::Always => self.env.append(&self.file, &frame),
            WalSyncPolicy::EveryBatch => self.pending.extend_from_slice(&frame),
            WalSyncPolicy::EveryNBytes(n) => {
                self.pending.extend_from_slice(&frame);
                if self.pending.len() >= n {
                    self.sync();
                }
            }
        }
        self.records += records.len() as u64;
        frame.len()
    }

    /// Pushes buffered frames to the host in one append (one OCall in
    /// enclave mode); returns the bytes pushed. A no-op (returning 0) when
    /// nothing is pending.
    pub fn sync(&mut self) -> usize {
        let pushed = self.pending.len();
        if pushed > 0 {
            self.env.append(&self.file, &self.pending);
            self.pending.clear();
        }
        pushed
    }

    /// Bytes buffered in enclave memory, not yet visible to the host.
    pub fn pending_bytes(&self) -> usize {
        self.pending.len()
    }

    /// Number of records appended through this writer.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The underlying file.
    pub fn file(&self) -> &Arc<SimFile> {
        &self.file
    }
}

/// Decodes exactly one batch frame produced by [`encode_frame`],
/// verifying the CRC and the record count.
///
/// Returns `None` for anything malformed: a truncated frame, a CRC
/// mismatch, a record count that does not match the payload, or trailing
/// bytes after the last record. Replication replay treats `None` as a
/// tampered shipment — the frame is the atomicity unit there exactly as
/// it is for crash recovery.
pub fn decode_frame(data: &[u8]) -> Option<Vec<Record>> {
    let frame_len = get_fixed_u32(data, 0)?;
    let crc = get_fixed_u32(data, 4)?;
    let end = 8usize.checked_add(frame_len as usize)?;
    if end != data.len() {
        return None; // exactly one frame, nothing more
    }
    let payload = &data[8..end];
    if crc32c(payload) != crc {
        return None;
    }
    let (count, mut at) = get_varint_u64(payload)?;
    // The count rides in untrusted bytes: bound the allocation by what the
    // payload could physically hold (see `recover`).
    let mut records = Vec::with_capacity((count as usize).min(payload.len() - at));
    for _ in 0..count {
        let (r, used) = Record::decode_prefix(&payload[at..])?;
        records.push(r);
        at += used;
    }
    (at == payload.len()).then_some(records)
}

/// Reads back all intact records from a WAL file.
///
/// Stops silently at the first corrupt/truncated frame and returns the
/// records recovered up to that point: a torn tail drops its **whole
/// batch** (crash-recovery semantics — the frame is the atomicity unit).
///
/// # Errors
///
/// Returns [`FsError`] only for IO-level failures, not for torn frames.
pub fn recover(env: &StorageEnv, file: &Arc<SimFile>) -> Result<Vec<Record>, FsError> {
    let len = file.len();
    if len == 0 {
        return Ok(Vec::new());
    }
    let data = env.host_call(|| file.read_at(0, len))?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let Some(frame_len) = get_fixed_u32(&data, pos) else { break };
        let Some(crc) = get_fixed_u32(&data, pos + 4) else { break };
        let start = pos + 8;
        let end = start + frame_len as usize;
        if end > data.len() {
            break; // torn tail write
        }
        let payload = &data[start..end];
        if crc32c(payload) != crc {
            break; // corruption: stop recovery here
        }
        let Some((count, mut at)) = get_varint_u64(payload) else { break };
        // The count rides in untrusted bytes: never allocate from it
        // unchecked (a tampered frame claiming 2^64 records must stop
        // recovery gracefully, not abort the enclave). Each record costs
        // at least one payload byte, so this bound is safe.
        let mut batch = Vec::with_capacity((count as usize).min(payload.len() - at));
        let mut intact = true;
        for _ in 0..count {
            match Record::decode_prefix(&payload[at..]) {
                Some((r, used)) => {
                    batch.push(r);
                    at += used;
                }
                None => {
                    intact = false;
                    break;
                }
            }
        }
        if !intact || at != payload.len() {
            break; // malformed frame: drop the whole batch, stop recovery
        }
        out.append(&mut batch);
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvConfig, StorageEnv};
    use sgx_sim::Platform;
    use sim_disk::{SimDisk, SimFs};

    fn env() -> (Arc<StorageEnv>, Arc<sim_disk::SimFs>) {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        (StorageEnv::new(platform, fs.clone(), EnvConfig::default(), None), fs)
    }

    fn sample(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::put(
                    format!("key{i:04}").into_bytes(),
                    format!("val{i}").into_bytes(),
                    i as u64 + 1,
                )
            })
            .collect()
    }

    fn writer(env: &Arc<StorageEnv>, file: Arc<SimFile>) -> WalWriter {
        WalWriter::new(env.clone(), file, WalSyncPolicy::Always)
    }

    #[test]
    fn write_then_recover_all() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(50);
        for r in &records {
            w.append(r);
        }
        assert_eq!(w.records(), 50);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn batches_recover_in_order() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(10);
        w.append_batch(&records[..4]);
        w.append(&records[4]);
        w.append_batch(&records[5..]);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        assert!(recover(&env, &file).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(3);
        for r in &records {
            w.append(r);
        }
        // Simulate a torn final write: append half a frame.
        file.append(&[9, 0, 0, 0, 1, 2]);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records, "intact prefix recovered, torn tail dropped");
    }

    #[test]
    fn torn_batch_frame_drops_whole_batch() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(8);
        w.append_batch(&records[..3]);
        // The next batch's frame is torn mid-payload: only a prefix of its
        // bytes reach the platter.
        let torn = encode_frame(&records[3..]);
        file.append(&torn[..torn.len() - 5]);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records[..3], "no record of the torn batch may apply");
    }

    #[test]
    fn corrupt_byte_inside_batch_frame_drops_whole_batch() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(8);
        w.append_batch(&records[..3]);
        let before = file.len();
        w.append_batch(&records[3..]);
        // Flip one byte in the second batch's payload: the CRC must reject
        // the frame and recovery must not surface *any* of its records.
        file.corrupt(before + 12, 0x40);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records[..3], "a corrupt batch must drop atomically");
    }

    #[test]
    fn tampered_record_count_stops_recovery_gracefully() {
        // The host controls the WAL bytes and can re-CRC anything it
        // writes: a frame claiming 2^60 records must stop recovery (the
        // records aren't there), never abort on a giant allocation.
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(3);
        for r in &records {
            w.append(r);
        }
        let mut payload = Vec::new();
        put_varint_u64(&mut payload, 1u64 << 60);
        payload.extend_from_slice(&Record::put(b"x".as_slice(), b"y".as_slice(), 9).encode());
        let mut frame = Vec::new();
        put_fixed_u32(&mut frame, payload.len() as u32);
        put_fixed_u32(&mut frame, crc32c(&payload)); // CRC is valid!
        frame.extend_from_slice(&payload);
        file.append(&frame);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records, "tampered count must stop recovery at the frame");
    }

    #[test]
    fn corrupt_frame_stops_recovery() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let records = sample(2);
        for r in &records {
            w.append(r);
        }
        // Append a frame with a wrong CRC, then a good record after it.
        let mut frame = encode_frame(&[Record::put(b"evil".as_slice(), b"x".as_slice(), 99)]);
        frame[4] ^= 0xff; // break the CRC field
        file.append(&frame);
        w.append(&Record::put(b"after".as_slice(), b"y".as_slice(), 100));
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records, "recovery must stop at the corrupt frame");
    }

    #[test]
    fn tombstones_survive_recovery() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file.clone());
        let t = Record::tombstone(b"gone".as_slice(), 7);
        w.append(&t);
        assert_eq!(recover(&env, &file).unwrap(), vec![t]);
    }

    #[test]
    fn appends_issue_ocalls_in_enclave_mode() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, fs.open("wal").unwrap());
        let before = env.platform().stats().ocalls;
        w.append(&Record::put(b"k".as_slice(), b"v".as_slice(), 1));
        assert_eq!(env.platform().stats().ocalls, before + 1);
        let _ = file;
    }

    #[test]
    fn batch_append_is_one_ocall() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = writer(&env, file);
        let before = env.platform().stats().ocalls;
        w.append_batch(&sample(64));
        assert_eq!(
            env.platform().stats().ocalls,
            before + 1,
            "one host exit per batch, not per record"
        );
    }

    #[test]
    fn frame_codec_round_trips() {
        let records = sample(9);
        let frame = encode_frame(&records);
        assert_eq!(decode_frame(&frame).unwrap(), records);
        // Tampering anywhere — length, CRC, payload — rejects the frame.
        for idx in [0usize, 5, 9, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[idx] ^= 0x20;
            assert!(decode_frame(&bad).is_none(), "flip at {idx} must reject");
        }
        // Truncation and trailing garbage reject too.
        assert!(decode_frame(&frame[..frame.len() - 1]).is_none());
        let mut long = frame.clone();
        long.push(0);
        assert!(decode_frame(&long).is_none());
        assert!(decode_frame(&[]).is_none());
    }

    #[test]
    fn every_n_bytes_buffers_until_threshold() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file.clone(), WalSyncPolicy::EveryNBytes(4096));
        let records = sample(10);
        w.append_batch(&records[..5]);
        assert_eq!(file.len(), 0, "frames buffer in enclave memory below the threshold");
        assert!(w.pending_bytes() > 0);
        // Nothing recoverable before a sync — the documented loss window.
        assert!(recover(&env, &file).unwrap().is_empty());
        w.sync();
        assert_eq!(recover(&env, &file).unwrap(), records[..5]);
        assert_eq!(w.pending_bytes(), 0);
    }

    #[test]
    fn every_n_bytes_flushes_past_threshold() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file.clone(), WalSyncPolicy::EveryNBytes(64));
        w.append_batch(&sample(10));
        assert!(!file.is_empty(), "crossing the byte threshold forces the push");
        assert_eq!(recover(&env, &file).unwrap(), sample(10));
    }
}
