//! Write-ahead log.
//!
//! Every PUT appends a framed record to the WAL before touching the
//! memtable, so the memtable can be rebuilt after a crash. Framing is
//! `[len u32][crc32c u32][payload]`; recovery stops at the first corrupt or
//! truncated frame (standard LevelDB behaviour).
//!
//! In eLSM the WAL *storage* lives outside the enclave while the enclave
//! keeps a running hash of its contents (§5.3, step w1); the hash
//! maintenance is the `elsm` crate's job via
//! [`crate::events::StoreListener::on_wal_append`].

use std::sync::Arc;

use sim_disk::{FsError, SimFile};

use crate::encoding::{crc32c, get_fixed_u32, put_fixed_u32};
use crate::env::StorageEnv;
use crate::record::Record;

/// Appends framed records to a log file.
#[derive(Debug)]
pub struct WalWriter {
    env: Arc<StorageEnv>,
    file: Arc<SimFile>,
    records: u64,
}

impl WalWriter {
    /// Wraps an (empty or existing) log file for appending.
    pub fn new(env: Arc<StorageEnv>, file: Arc<SimFile>) -> Self {
        WalWriter { env, file, records: 0 }
    }

    /// Appends one record (charged as an enclave-exit write when the store
    /// runs in enclave mode — step w3 of the paper's write path).
    pub fn append(&mut self, record: &Record) {
        let payload = record.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_fixed_u32(&mut frame, payload.len() as u32);
        put_fixed_u32(&mut frame, crc32c(&payload));
        frame.extend_from_slice(&payload);
        self.env.append(&self.file, &frame);
        self.records += 1;
    }

    /// Number of records appended through this writer.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The underlying file.
    pub fn file(&self) -> &Arc<SimFile> {
        &self.file
    }
}

/// Reads back all intact records from a WAL file.
///
/// Stops silently at the first corrupt/truncated frame; returns the records
/// recovered up to that point (crash-recovery semantics).
///
/// # Errors
///
/// Returns [`FsError`] only for IO-level failures, not for torn frames.
pub fn recover(env: &StorageEnv, file: &Arc<SimFile>) -> Result<Vec<Record>, FsError> {
    let len = file.len();
    if len == 0 {
        return Ok(Vec::new());
    }
    let data = env.host_call(|| file.read_at(0, len))?;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let Some(frame_len) = get_fixed_u32(&data, pos) else { break };
        let Some(crc) = get_fixed_u32(&data, pos + 4) else { break };
        let start = pos + 8;
        let end = start + frame_len as usize;
        if end > data.len() {
            break; // torn tail write
        }
        let payload = &data[start..end];
        if crc32c(payload) != crc {
            break; // corruption: stop recovery here
        }
        match Record::decode(payload) {
            Some(r) => out.push(r),
            None => break,
        }
        pos = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvConfig, StorageEnv};
    use sgx_sim::Platform;
    use sim_disk::{SimDisk, SimFs};

    fn env() -> (Arc<StorageEnv>, Arc<sim_disk::SimFs>) {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        (StorageEnv::new(platform, fs.clone(), EnvConfig::default(), None), fs)
    }

    fn sample(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                Record::put(
                    format!("key{i:04}").into_bytes(),
                    format!("val{i}").into_bytes(),
                    i as u64 + 1,
                )
            })
            .collect()
    }

    #[test]
    fn write_then_recover_all() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file.clone());
        let records = sample(50);
        for r in &records {
            w.append(r);
        }
        assert_eq!(w.records(), 50);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        assert!(recover(&env, &file).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file.clone());
        let records = sample(3);
        for r in &records {
            w.append(r);
        }
        // Simulate a torn final write: append half a frame.
        file.append(&[9, 0, 0, 0, 1, 2]);
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records, "intact prefix recovered, torn tail dropped");
    }

    #[test]
    fn corrupt_frame_stops_recovery() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file.clone());
        let records = sample(2);
        for r in &records {
            w.append(r);
        }
        // Append a frame with a wrong CRC, then a good record after it.
        let payload = Record::put(b"evil".as_slice(), b"x".as_slice(), 99).encode();
        let mut frame = Vec::new();
        put_fixed_u32(&mut frame, payload.len() as u32);
        put_fixed_u32(&mut frame, 0xdead_beef);
        frame.extend_from_slice(&payload);
        file.append(&frame);
        w.append(&Record::put(b"after".as_slice(), b"y".as_slice(), 100));
        let got = recover(&env, &file).unwrap();
        assert_eq!(got, records, "recovery must stop at the corrupt frame");
    }

    #[test]
    fn tombstones_survive_recovery() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file.clone());
        let t = Record::tombstone(b"gone".as_slice(), 7);
        w.append(&t);
        assert_eq!(recover(&env, &file).unwrap(), vec![t]);
    }

    #[test]
    fn appends_issue_ocalls_in_enclave_mode() {
        let (env, fs) = env();
        let file = fs.create("wal").unwrap();
        let mut w = WalWriter::new(env.clone(), file);
        let before = env.platform().stats().ocalls;
        w.append(&Record::put(b"k".as_slice(), b"v".as_slice(), 1));
        assert_eq!(env.platform().stats().ocalls, before + 1);
    }
}
