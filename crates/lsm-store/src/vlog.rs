//! The authenticated value log (WiscKey-style key-value separation).
//!
//! Values at or above [`VlogConfig::value_threshold`] bytes leave the LSM
//! levels at flush time: the value bytes are appended to an append-only
//! *value-log* file and the level keeps a pointer record
//! ([`ValueKind::VlogPut`](crate::record::ValueKind::VlogPut)) whose
//! stored value is `encode_pointer(ptr, mac)` — 56 bytes regardless of
//! value size. Compaction merges, listener re-hashing and Merkle
//! recomputation then pay per *pointer*, not per value byte, which is the
//! write-amplification saving WiscKey demonstrated for plain LSM stores
//! and the TEE-KVS survey names as a dominant lever for enclave stores.
//!
//! Authentication: the 32-byte MAC rides *inside* the pointer record's
//! canonical bytes, so the existing per-level Merkle commitments cover it
//! (§5.2 unchanged). A verified GET first verifies the pointer record
//! against its level commitment, then checks the fetched log entry against
//! the MAC — the host can neither swap entries between pointers nor serve
//! stale bytes without failing one of the two checks. What the MAC binds
//! (and whether it exists at all) is the listener's decision via
//! [`StoreListener::vlog_mac`](crate::events::StoreListener::vlog_mac);
//! the vanilla store runs with a zero MAC and only the per-entry CRC.
//!
//! Crash story: entries are individually CRC-framed and the manifest
//! records each file's durable length. A crash between a value-log append
//! and the manifest write leaves an orphan tail — recovery counts those
//! bytes as garbage (no pointer record can name them: pointers reach the
//! levels only after the log is synced and the manifest written) and
//! appends continue after the physical end.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sim_disk::{FsError, SimFile};

use crate::encoding::{
    crc32c, get_fixed_u64, get_length_prefixed, get_varint_u64, put_fixed_u32, put_fixed_u64,
    put_length_prefixed,
};
use crate::env::StorageEnv;
use crate::options::VlogConfig;
use crate::record::Timestamp;

/// Bytes of an encoded pointer: three fixed `u64`s plus the 32-byte MAC.
pub const POINTER_BYTES: usize = 24 + MAC_BYTES;
/// Bytes of a value-log entry MAC.
pub const MAC_BYTES: usize = 32;

/// Location of one entry in the value log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlogPtr {
    /// Value-log file number.
    pub file_no: u64,
    /// Byte offset of the entry (its CRC header) within the file.
    pub offset: u64,
    /// Total length of the framed entry in bytes.
    pub len: u64,
}

/// Serializes a pointer + MAC into the fixed [`POINTER_BYTES`] form stored
/// as a `VlogPut` record's value.
pub fn encode_pointer(ptr: VlogPtr, mac: &[u8; MAC_BYTES]) -> Vec<u8> {
    let mut out = Vec::with_capacity(POINTER_BYTES);
    put_fixed_u64(&mut out, ptr.file_no);
    put_fixed_u64(&mut out, ptr.offset);
    put_fixed_u64(&mut out, ptr.len);
    out.extend_from_slice(mac);
    out
}

/// Parses bytes produced by [`encode_pointer`]; `None` on any length or
/// format mismatch (a tampered pointer record — though in the
/// authenticated store the Merkle check fails first).
pub fn decode_pointer(bytes: &[u8]) -> Option<(VlogPtr, [u8; MAC_BYTES])> {
    if bytes.len() != POINTER_BYTES {
        return None;
    }
    let ptr = VlogPtr {
        file_no: get_fixed_u64(bytes, 0)?,
        offset: get_fixed_u64(bytes, 8)?,
        len: get_fixed_u64(bytes, 16)?,
    };
    let mut mac = [0u8; MAC_BYTES];
    mac.copy_from_slice(&bytes[24..]);
    Some((ptr, mac))
}

/// One decoded value-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlogEntry {
    /// User key the entry was written for (cross-checked on read).
    pub key: Vec<u8>,
    /// Timestamp of the owning record.
    pub ts: Timestamp,
    /// The stored payload, exactly as the owning record's value would have
    /// been stored inline.
    pub value: Vec<u8>,
}

/// Frames one entry: `[crc32c u32][varint key_len][key][ts u64 fixed]
/// [varint value_len][value]`, CRC over everything after the CRC field.
fn encode_entry(key: &[u8], ts: Timestamp, value: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(key.len() + value.len() + 24);
    put_length_prefixed(&mut body, key);
    put_fixed_u64(&mut body, ts);
    put_length_prefixed(&mut body, value);
    let mut out = Vec::with_capacity(body.len() + 4);
    put_fixed_u32(&mut out, crc32c(&body));
    out.extend_from_slice(&body);
    out
}

/// Parses one framed entry; `None` on CRC mismatch, truncation or
/// trailing bytes (tampering or a torn write).
fn decode_entry(bytes: &[u8]) -> Option<VlogEntry> {
    if bytes.len() < 4 {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[..4].try_into().ok()?);
    let body = &bytes[4..];
    if crc32c(body) != crc {
        return None;
    }
    let (key, n) = get_length_prefixed(body)?;
    let ts = get_fixed_u64(body, n)?;
    let (value, m) = get_length_prefixed(body.get(n + 8..)?)?;
    (n + 8 + m == body.len()).then(|| VlogEntry { key: key.to_vec(), ts, value: value.to_vec() })
}

/// Name of value-log file `no`.
pub fn vlog_name(no: u64) -> String {
    format!("vlog-{no:06}.vlg")
}

/// Parses a value-log file name back to its number.
pub fn parse_vlog_name(name: &str) -> Option<u64> {
    name.strip_prefix("vlog-")?.strip_suffix(".vlg")?.parse().ok()
}

#[derive(Debug)]
struct VlogFile {
    file: Arc<SimFile>,
    /// Durable + pending bytes of the file (pointer space ends here).
    len: u64,
    /// Bytes belonging to dropped pointer records (GC victim metric).
    garbage: u64,
    /// The file was garbage-collected: excluded from the manifest and the
    /// gauges, but kept readable while pinned old versions may still hold
    /// pointers into it.
    removed: bool,
}

#[derive(Debug)]
struct VlogState {
    files: BTreeMap<u64, VlogFile>,
    active: u64,
    next_no: u64,
    /// Entry bytes appended but not yet pushed to the host.
    pending: Vec<u8>,
}

/// The store's value log: rotation, framed appends, pointer reads and
/// garbage accounting. All methods are thread-safe; appends serialize on
/// an internal mutex (they run on the single flush/merge path anyway).
#[derive(Debug)]
pub struct Vlog {
    env: Arc<StorageEnv>,
    config: VlogConfig,
    state: Mutex<VlogState>,
}

impl Vlog {
    /// Creates a fresh value log (first file is created lazily on the
    /// first append).
    pub fn new(env: Arc<StorageEnv>, config: VlogConfig) -> Self {
        Vlog {
            env,
            config,
            state: Mutex::new(VlogState {
                files: BTreeMap::new(),
                active: 0,
                next_no: 1,
                pending: Vec::new(),
            }),
        }
    }

    /// Reopens the value log from manifest state: `(file_no, valid_len,
    /// garbage)` per live file. Physical bytes beyond `valid_len` are an
    /// orphan tail from a crash mid-flush; they are counted as garbage and
    /// appends continue after them.
    pub fn recover(
        env: Arc<StorageEnv>,
        config: VlogConfig,
        next_no: u64,
        manifest_files: &[(u64, u64, u64)],
    ) -> Result<Self, FsError> {
        let mut files = BTreeMap::new();
        let mut active = 0;
        for &(no, valid_len, garbage) in manifest_files {
            let file = env.fs().open(&vlog_name(no))?;
            let physical = file.len() as u64;
            let orphan_tail = physical.saturating_sub(valid_len);
            files.insert(
                no,
                VlogFile { file, len: physical, garbage: garbage + orphan_tail, removed: false },
            );
            active = active.max(no);
        }
        Ok(Vlog {
            env,
            config,
            state: Mutex::new(VlogState { files, active, next_no, pending: Vec::new() }),
        })
    }

    /// The separation threshold and GC knobs.
    pub fn config(&self) -> &VlogConfig {
        &self.config
    }

    /// Appends one value, returning its pointer. The entry is buffered in
    /// enclave memory until [`Vlog::sync`] — callers must sync before any
    /// pointer record naming the entry becomes durable or visible.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] if a new log file cannot be created.
    pub fn append(&self, key: &[u8], ts: Timestamp, value: &[u8]) -> Result<VlogPtr, FsError> {
        let entry = encode_entry(key, ts, value);
        let mut s = self.state.lock();
        let rotate = match s.files.get(&s.active) {
            Some(f) if !f.removed => f.len >= self.config.target_file_bytes,
            _ => true,
        };
        if rotate {
            // Push pending bytes of the outgoing file first so `len`
            // bookkeeping never spans files.
            self.sync_locked(&mut s);
            let no = s.next_no;
            s.next_no += 1;
            let file = self.env.fs().create(&vlog_name(no))?;
            s.files.insert(no, VlogFile { file, len: 0, garbage: 0, removed: false });
            s.active = no;
        }
        let active = s.active;
        let f = s.files.get_mut(&active).expect("active vlog file");
        let ptr = VlogPtr { file_no: active, offset: f.len, len: entry.len() as u64 };
        f.len += entry.len() as u64;
        s.pending.extend_from_slice(&entry);
        Ok(ptr)
    }

    /// Pushes buffered entries to the host in one append (one OCall in
    /// enclave mode), mirroring the WAL writer's batching.
    pub fn sync(&self) {
        let mut s = self.state.lock();
        self.sync_locked(&mut s);
    }

    fn sync_locked(&self, s: &mut VlogState) {
        if s.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut s.pending);
        let active = s.active;
        if let Some(f) = s.files.get(&active) {
            self.env.append(&f.file, &pending);
        }
    }

    /// Fetches and validates the entry at `ptr`. `Ok(None)` means the
    /// bytes do not parse as the expected entry — a tampered or torn log
    /// (the caller maps this to a verification failure), or a pointer
    /// into a file this log never had.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] only for IO-level failures.
    pub fn read(&self, ptr: VlogPtr) -> Result<Option<VlogEntry>, FsError> {
        let file = {
            let s = self.state.lock();
            match s.files.get(&ptr.file_no) {
                Some(f) => {
                    if ptr.offset + ptr.len > f.len {
                        return Ok(None);
                    }
                    f.file.clone()
                }
                None => return Ok(None),
            }
        };
        if ptr.offset as usize + ptr.len as usize > file.len() {
            return Ok(None);
        }
        let bytes = self.env.host_call(|| file.read_at(ptr.offset as usize, ptr.len as usize))?;
        Ok(decode_entry(&bytes))
    }

    /// Records that `bytes` of `file_no` now belong to dropped pointers
    /// (a merge dropped, purged or rewrote the owning record).
    pub fn note_garbage(&self, file_no: u64, bytes: u64) {
        let mut s = self.state.lock();
        if let Some(f) = s.files.get_mut(&file_no) {
            f.garbage = (f.garbage + bytes).min(f.len);
        }
    }

    /// `(live_bytes, garbage_bytes)` across non-removed files; live counts
    /// every stored byte including garbage (the on-disk footprint).
    pub fn stats(&self) -> (u64, u64) {
        let s = self.state.lock();
        let mut total = 0;
        let mut garbage = 0;
        for f in s.files.values().filter(|f| !f.removed) {
            total += f.len;
            garbage += f.garbage;
        }
        (total, garbage)
    }

    /// Manifest rows for live files: `(file_no, valid_len, garbage)`.
    pub fn manifest_files(&self) -> Vec<(u64, u64, u64)> {
        let s = self.state.lock();
        s.files.iter().filter(|(_, f)| !f.removed).map(|(&no, f)| (no, f.len, f.garbage)).collect()
    }

    /// The next file number a fresh file would take (persisted in the
    /// manifest so recovery never reuses a number).
    pub fn next_file_no(&self) -> u64 {
        self.state.lock().next_no
    }

    /// Non-active files whose garbage fraction reaches the configured
    /// ratio, worst first — GC candidates that still hold live entries.
    pub fn victims(&self) -> Vec<u64> {
        let s = self.state.lock();
        let mut out: Vec<(u64, f64)> = s
            .files
            .iter()
            .filter(|(&no, f)| {
                !f.removed
                    && no != s.active
                    && f.len > 0
                    && f.garbage < f.len
                    && f.garbage as f64 >= self.config.gc_garbage_ratio * f.len as f64
            })
            .map(|(&no, f)| (no, f.garbage as f64 / f.len as f64))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        out.into_iter().map(|(no, _)| no).collect()
    }

    /// Non-active files every byte of which is garbage: deletable without
    /// any rewrite.
    pub fn fully_dead(&self) -> Vec<u64> {
        let s = self.state.lock();
        s.files
            .iter()
            .filter(|(&no, f)| !f.removed && no != s.active && f.len > 0 && f.garbage >= f.len)
            .map(|(&no, _)| no)
            .collect()
    }

    /// Retires a file after GC: dropped from the manifest and gauges,
    /// deleted from the filesystem, but its handle stays readable so
    /// pinned old versions holding pointers into it keep verifying.
    pub fn remove_file(&self, file_no: u64) {
        let mut s = self.state.lock();
        if file_no == s.active {
            return; // never remove the file still taking appends
        }
        if let Some(f) = s.files.get_mut(&file_no) {
            f.removed = true;
            let _ = self.env.fs().delete(&vlog_name(file_no));
        }
    }

    /// Whether `file_no` is a live (non-removed) file of this log.
    pub fn is_live(&self, file_no: u64) -> bool {
        let s = self.state.lock();
        s.files.get(&file_no).is_some_and(|f| !f.removed)
    }
}

/// Appends the value-log manifest section: `[varint next_no]
/// [varint n_files]` then `[varint file_no][varint valid_len]
/// [varint garbage]` per live file. Always written (an empty section when
/// separation is off) so the manifest layout is version-independent.
pub fn encode_manifest_section(vlog: Option<&Vlog>, out: &mut Vec<u8>) {
    use crate::encoding::put_varint_u64;
    match vlog {
        Some(v) => {
            let files = v.manifest_files();
            put_varint_u64(out, v.next_file_no());
            put_varint_u64(out, files.len() as u64);
            for (no, len, garbage) in files {
                put_varint_u64(out, no);
                put_varint_u64(out, len);
                put_varint_u64(out, garbage);
            }
        }
        None => {
            put_varint_u64(out, 1); // next_no for a log that never existed
            put_varint_u64(out, 0);
        }
    }
}

/// A manifest-recorded value-log file: `(file_no, byte_len, garbage_bytes)`.
pub type ManifestFileEntry = (u64, u64, u64);

/// Parses the section written by [`encode_manifest_section`], returning
/// `(next_no, files, bytes_consumed)`.
pub fn decode_manifest_section(bytes: &[u8]) -> Option<(u64, Vec<ManifestFileEntry>, usize)> {
    let (next_no, mut at) = get_varint_u64(bytes)?;
    let (n, used) = get_varint_u64(&bytes[at..])?;
    at += used;
    let mut files = Vec::with_capacity((n as usize).min(bytes.len()));
    for _ in 0..n {
        let (no, u1) = get_varint_u64(&bytes[at..])?;
        at += u1;
        let (len, u2) = get_varint_u64(&bytes[at..])?;
        at += u2;
        let (garbage, u3) = get_varint_u64(&bytes[at..])?;
        at += u3;
        files.push((no, len, garbage));
    }
    Some((next_no, files, at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use sgx_sim::Platform;
    use sim_disk::{SimDisk, SimFs};

    fn test_env() -> Arc<StorageEnv> {
        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        StorageEnv::new(platform, fs, EnvConfig::default(), None)
    }

    fn small_config() -> VlogConfig {
        VlogConfig { value_threshold: 64, target_file_bytes: 256, ..VlogConfig::default() }
    }

    #[test]
    fn pointer_encoding_round_trips_and_rejects_bad_lengths() {
        let ptr = VlogPtr { file_no: 3, offset: 4096, len: 517 };
        let mac = [0xabu8; MAC_BYTES];
        let bytes = encode_pointer(ptr, &mac);
        assert_eq!(bytes.len(), POINTER_BYTES);
        assert_eq!(decode_pointer(&bytes), Some((ptr, mac)));
        assert!(decode_pointer(&bytes[..POINTER_BYTES - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_pointer(&long).is_none());
    }

    #[test]
    fn append_sync_read_round_trip() {
        let vlog = Vlog::new(test_env(), small_config());
        let ptr = vlog.append(b"k1", 7, b"a-large-value-payload").unwrap();
        vlog.sync();
        let entry = vlog.read(ptr).unwrap().expect("entry decodes");
        assert_eq!(entry.key, b"k1");
        assert_eq!(entry.ts, 7);
        assert_eq!(entry.value, b"a-large-value-payload");
    }

    #[test]
    fn rotation_respects_target_file_bytes() {
        let vlog = Vlog::new(test_env(), small_config());
        let mut files = std::collections::HashSet::new();
        for i in 0..20u64 {
            let ptr = vlog.append(b"key", i, &[0u8; 100]).unwrap();
            files.insert(ptr.file_no);
        }
        vlog.sync();
        assert!(files.len() > 1, "appends past the target must rotate");
        // Every pointer still readable after rotation.
        let ptr = vlog.append(b"last", 99, &[1u8; 100]).unwrap();
        vlog.sync();
        assert_eq!(vlog.read(ptr).unwrap().unwrap().ts, 99);
    }

    #[test]
    fn corrupt_entry_reads_as_none() {
        let env = test_env();
        let vlog = Vlog::new(env.clone(), small_config());
        let ptr = vlog.append(b"k", 1, &[7u8; 120]).unwrap();
        vlog.sync();
        env.fs().open(&vlog_name(ptr.file_no)).unwrap().corrupt(ptr.offset as usize + 10, 0x5a);
        assert_eq!(vlog.read(ptr).unwrap(), None, "CRC must catch tampering");
    }

    #[test]
    fn garbage_accounting_drives_victim_selection() {
        let config = VlogConfig { gc_garbage_ratio: 0.5, target_file_bytes: 200, ..small_config() };
        let vlog = Vlog::new(test_env(), config);
        let a = vlog.append(b"a", 1, &[0u8; 100]).unwrap();
        let b = vlog.append(b"b", 2, &[0u8; 100]).unwrap();
        assert_eq!(a.file_no, b.file_no);
        // The first file is past its target now, so this append rotates
        // and the first file is no longer active.
        let c = vlog.append(b"c", 3, &[0u8; 100]).unwrap();
        assert_ne!(c.file_no, a.file_no);
        vlog.sync();
        assert!(vlog.victims().is_empty());
        vlog.note_garbage(a.file_no, a.len);
        assert_eq!(vlog.victims(), vec![a.file_no], "half-dead file is a victim");
        vlog.note_garbage(b.file_no, b.len);
        assert_eq!(vlog.fully_dead(), vec![a.file_no]);
        assert!(vlog.victims().is_empty(), "fully dead files skip the rewrite path");
    }

    #[test]
    fn removed_files_stay_readable_but_leave_the_manifest() {
        let env = test_env();
        let vlog = Vlog::new(env.clone(), small_config());
        let a = vlog.append(b"a", 1, &[3u8; 100]).unwrap();
        let _ = vlog.append(b"pad", 2, &[0u8; 300]).unwrap(); // fills past target
        let moved = vlog.append(b"next", 3, &[0u8; 10]).unwrap(); // rotates
        assert_ne!(moved.file_no, a.file_no);
        vlog.sync();
        assert!(vlog.manifest_files().iter().any(|&(no, _, _)| no == a.file_no));
        vlog.remove_file(a.file_no);
        assert!(!vlog.manifest_files().iter().any(|&(no, _, _)| no == a.file_no));
        assert!(!vlog.is_live(a.file_no));
        // Pinned readers can still resolve old pointers.
        assert_eq!(vlog.read(a).unwrap().unwrap().value, vec![3u8; 100]);
        assert!(env.fs().open(&vlog_name(a.file_no)).is_err(), "file left the namespace");
    }

    #[test]
    fn manifest_section_round_trips_and_recovery_counts_orphan_tail() {
        let env = test_env();
        let vlog = Vlog::new(env.clone(), small_config());
        let a = vlog.append(b"a", 1, &[1u8; 100]).unwrap();
        vlog.sync();
        let mut section = Vec::new();
        encode_manifest_section(Some(&vlog), &mut section);
        let (next_no, files, used) = decode_manifest_section(&section).unwrap();
        assert_eq!(used, section.len());
        assert_eq!(next_no, vlog.next_file_no());
        assert_eq!(files, vlog.manifest_files());

        // Simulate a crash after an extra (unmanifested) append: the tail
        // beyond valid_len must be counted as garbage on recovery.
        let orphan = vlog.append(b"orphan", 2, &[2u8; 50]).unwrap();
        vlog.sync();
        let recovered = Vlog::recover(env, small_config(), next_no, &files).unwrap();
        let (total, garbage) = recovered.stats();
        assert_eq!(total, orphan.offset + orphan.len);
        assert_eq!(garbage, orphan.len, "orphan tail is garbage");
        // The manifested entry still reads.
        assert_eq!(recovered.read(a).unwrap().unwrap().value, vec![1u8; 100]);
    }

    #[test]
    fn empty_manifest_section_decodes() {
        let mut section = Vec::new();
        encode_manifest_section(None, &mut section);
        let (next_no, files, used) = decode_manifest_section(&section).unwrap();
        assert_eq!((next_no, files.len(), used), (1, 0, section.len()));
    }

    #[test]
    fn vlog_names_round_trip() {
        assert_eq!(vlog_name(7), "vlog-000007.vlg");
        assert_eq!(parse_vlog_name("vlog-000007.vlg"), Some(7));
        assert_eq!(parse_vlog_name("000007.sst"), None);
        assert_eq!(parse_vlog_name("vlog-x.vlg"), None);
    }
}
