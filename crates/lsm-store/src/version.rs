//! Levels and sorted runs.
//!
//! Following the paper's model (§2, §5.3), each level `L1..Lq` holds one
//! sorted run, physically stored as one or more non-overlapping SSTable
//! files (Figure 3b shows a level spanning two files). `COMPACTION(Li,
//! Li+1)` merges two whole adjacent levels — the "most basic form" the
//! paper's protocol and Lemma 5.4 are stated for.
//!
//! A [`Run`] answers point lookups with *bounding neighbors* on a miss:
//! the newest records of the adjacent user keys. eLSM turns those neighbors
//! into non-membership proofs (§5.5.1: "instead of returning null …
//! eLSM-P2 returns the two neighboring records").

use std::sync::Arc;

use bytes::Bytes;
use sim_disk::FsError;

use crate::memtable::MemTable;
use crate::record::{Record, Timestamp};
use crate::sstable::{NeighborPolicy, TableGet, TableReader};

/// One sorted run: non-overlapping tables in ascending key order.
#[derive(Debug)]
pub struct Run {
    tables: Vec<Arc<TableReader>>,
}

impl Run {
    /// Builds a run from tables sorted by key range.
    ///
    /// # Panics
    ///
    /// Panics if tables overlap or are out of order (a corrupt manifest).
    pub fn new(tables: Vec<Arc<TableReader>>) -> Self {
        for w in tables.windows(2) {
            assert!(
                w[0].meta().largest < w[1].meta().smallest,
                "run tables must be disjoint and sorted"
            );
        }
        Run { tables }
    }

    /// The tables of this run, in key order.
    pub fn tables(&self) -> &[Arc<TableReader>] {
        &self.tables
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.meta().file_size).sum()
    }

    /// Total record count.
    pub fn total_records(&self) -> u64 {
        self.tables.iter().map(|t| t.meta().count).sum()
    }

    /// Whether the run holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Smallest user key of the run.
    pub fn smallest(&self) -> Option<Bytes> {
        self.tables.first().map(|t| t.meta().smallest.clone())
    }

    /// Largest user key of the run.
    pub fn largest(&self) -> Option<Bytes> {
        self.tables.last().map(|t| t.meta().largest.clone())
    }

    /// Index of the table whose range covers `key`, if any.
    fn covering_table(&self, key: &[u8]) -> Option<usize> {
        let idx = self.tables.partition_point(|t| &t.meta().largest[..] < key);
        (idx < self.tables.len() && &self.tables[idx].meta().smallest[..] <= key).then_some(idx)
    }

    /// Newest record of the greatest user key strictly below `key`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn neighbor_below(&self, key: &[u8], ts_q: Timestamp) -> Result<Option<Record>, FsError> {
        // Last table whose smallest key is < key.
        let idx = self.tables.partition_point(|t| &t.meta().smallest[..] < key);
        let mut i = match idx.checked_sub(1) {
            Some(i) => i,
            None => return Ok(None),
        };
        loop {
            if let Some(r) = self.tables[i].newest_before(key, ts_q)? {
                return Ok(Some(r));
            }
            match i.checked_sub(1) {
                Some(prev) => i = prev,
                None => return Ok(None),
            }
        }
    }

    /// Newest record of the smallest user key strictly above `key`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn neighbor_above(&self, key: &[u8], ts_q: Timestamp) -> Result<Option<Record>, FsError> {
        // First table that might contain a key above: largest >= key.
        let mut idx = self.tables.partition_point(|t| &t.meta().largest[..] <= key);
        while idx < self.tables.len() {
            if let Some(r) = self.tables[idx].newest_after(key, ts_q)? {
                return Ok(Some(r));
            }
            idx += 1;
        }
        Ok(None)
    }

    /// Point lookup across the run with cross-file neighbor resolution.
    ///
    /// With [`NeighborPolicy::Skip`] a miss returns no bounding neighbors
    /// and performs no extra IO to find them — the unauthenticated fast
    /// path. [`NeighborPolicy::Required`] resolves both neighbors (eLSM's
    /// non-membership proof material).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn get(
        &self,
        key: &[u8],
        ts_q: Timestamp,
        neighbors: NeighborPolicy,
    ) -> Result<TableGet, FsError> {
        match self.covering_table(key) {
            Some(idx) => match self.tables[idx].get(key, ts_q, neighbors)? {
                TableGet::Hit(r) => Ok(TableGet::Hit(r)),
                TableGet::Miss { left, right } => {
                    if neighbors == NeighborPolicy::Skip {
                        return Ok(TableGet::Miss { left: None, right: None });
                    }
                    let left = match left {
                        Some(l) => Some(l),
                        None => self.neighbor_below(key, ts_q)?,
                    };
                    let right = match right {
                        Some(r) => Some(r),
                        None => self.neighbor_above(key, ts_q)?,
                    };
                    Ok(TableGet::Miss { left, right })
                }
            },
            None if neighbors == NeighborPolicy::Skip => {
                Ok(TableGet::Miss { left: None, right: None })
            }
            None => Ok(TableGet::Miss {
                left: self.neighbor_below(key, ts_q)?,
                right: self.neighbor_above(key, ts_q)?,
            }),
        }
    }

    /// All records (every version) with user key in `[from, to]`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn range(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        let mut out = Vec::new();
        for t in &self.tables {
            if &t.meta().largest[..] < from || &t.meta().smallest[..] > to {
                continue;
            }
            out.extend(t.range(from, to)?);
        }
        Ok(out)
    }

    /// Iterates every record of the run in key order.
    pub fn iter_records(&self) -> impl Iterator<Item = Record> + '_ {
        self.tables.iter().flat_map(|t| t.iter())
    }

    /// Releases enclave metadata held by the run's tables.
    pub fn close(&self) {
        for t in &self.tables {
            t.close();
        }
    }
}

/// An immutable snapshot of the store's on-disk state: the level runs plus
/// the frozen memtable being flushed (if a flush is in flight), tagged
/// with a monotonically increasing **epoch**.
///
/// Versions are copy-on-write, LevelDB-style: flush and compaction build a
/// new `Version` and swap it in atomically; readers clone the current
/// `Arc<Version>` once and then search bloom filters, indexes and blocks
/// with **no store lock held**. eLSM verifies each trace against the level
/// commitments published for the trace's epoch, so concurrent
/// flush/compaction installs can never fail an honest read (§5.5.2's
/// guarantee without §5.5.2's mutex).
#[derive(Debug)]
pub struct Version {
    epoch: u64,
    imm: Option<Arc<MemTable>>,
    /// `levels[0]` is unused; `levels[i]` holds level `i`'s run.
    levels: Vec<Option<Arc<Run>>>,
}

impl Version {
    /// Builds a version (internal: the store installs these).
    pub(crate) fn new(
        epoch: u64,
        imm: Option<Arc<MemTable>>,
        levels: Vec<Option<Arc<Run>>>,
    ) -> Self {
        Version { epoch, imm, levels }
    }

    /// A fresh, empty version at epoch 0 with `max_levels` on-disk levels.
    pub(crate) fn empty(max_levels: usize) -> Self {
        Version { epoch: 0, imm: None, levels: (0..=max_levels).map(|_| None).collect() }
    }

    /// Derives a successor version with the same levels but a new frozen
    /// memtable state.
    pub(crate) fn with_imm(&self, epoch: u64, imm: Option<Arc<MemTable>>) -> Self {
        Version { epoch, imm, levels: self.levels.clone() }
    }

    /// The version's epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen memtable currently being flushed, if any. Its records
    /// live in trusted enclave memory, exactly like the live memtable's.
    pub fn imm(&self) -> Option<&Arc<MemTable>> {
        self.imm.as_ref()
    }

    /// The level runs (`levels()[0]` is unused).
    pub fn levels(&self) -> &[Option<Arc<Run>>] {
        &self.levels
    }

    /// The run of one level, if present.
    pub fn level(&self, level: usize) -> Option<&Arc<Run>> {
        self.levels.get(level).and_then(|l| l.as_ref())
    }
}

/// Outcome of searching one level during a traced GET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelOutcome {
    /// The level holds a record for the key (possibly a tombstone).
    Hit(Record),
    /// The level has no record for the key; bounding neighbors returned.
    Miss {
        /// Newest record of the greatest smaller user key.
        left: Option<Record>,
        /// Newest record of the smallest larger user key.
        right: Option<Record>,
    },
    /// The level currently holds no run at all.
    Empty,
}

/// One level's result within a [`GetTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSearch {
    /// Level number (1-based; 0 is the in-enclave memtable).
    pub level: usize,
    /// What the search found.
    pub outcome: LevelOutcome,
}

/// Full account of a point query: which levels were searched and what each
/// returned. This is the interface eLSM's middleware consumes to build
/// query proofs without modifying the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetTrace {
    /// Epoch of the [`Version`] the trace was collected against. The
    /// verifier checks the trace against the level commitments published
    /// for exactly this epoch.
    pub epoch: u64,
    /// Record found in the memtable (trusted memory), if any.
    pub memtable: Option<Record>,
    /// Per-level outcomes, in search order. Search stops at the first hit
    /// (the paper's early-stop, §5.3).
    pub levels: Vec<LevelSearch>,
    /// The record that answers the query (newest visible), if any;
    /// tombstones appear here and are interpreted by the caller.
    pub result: Option<Record>,
}

/// One level's slice of a traced SCAN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelRange {
    /// Level number.
    pub level: usize,
    /// Whether the level held no run.
    pub empty: bool,
    /// All records (every version) in `[from, to]` at this level.
    pub records: Vec<Record>,
    /// Newest record of the greatest user key `< from` (completeness edge).
    pub left: Option<Record>,
    /// Newest record of the smallest user key `> to`.
    pub right: Option<Record>,
}

/// Full account of a range query across memtable and levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanTrace {
    /// Epoch of the [`Version`] the trace was collected against.
    pub epoch: u64,
    /// Matching records from the memtable (live and frozen — both are
    /// trusted enclave memory).
    pub memtable: Vec<Record>,
    /// Per-level slices, every level included (no early stop for ranges —
    /// §5.4: "it iterates through all levels").
    pub levels: Vec<LevelRange>,
    /// Merged, newest-version-wins, tombstone-filtered result.
    pub merged: Vec<Record>,
}
