//! Key-value records and internal keys.
//!
//! The paper's interface (§3.2, Equation 1) is timestamped:
//! `ts = PUT(k, v)`, `⟨k, v, ts⟩ = GET(k, ts_q)`. The enclave's timestamp
//! manager assigns every operation a unique, monotonically increasing
//! timestamp; tombstones implement deletes (§5.4).
//!
//! Internally a record is identified by its *internal key*: the user key
//! followed by an 8-byte suffix packing `(timestamp, kind)` so that plain
//! byte comparison orders records by key ascending and, within a key, by
//! timestamp **descending** (newest first) — the order the eLSM hash chains
//! and Lemma 5.4 rely on.

use std::fmt;

use bytes::Bytes;

use crate::encoding::{get_fixed_u64, get_length_prefixed, put_fixed_u64, put_length_prefixed};

/// Whether a record stores a value, a value-log pointer, or a tombstone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueKind {
    /// A live key-value record with its value stored inline.
    Put,
    /// A live record whose value lives in the value log; the stored bytes
    /// are an encoded [`crate::vlog::VlogPtr`] plus its MAC (WiscKey-style
    /// key-value separation).
    VlogPut,
    /// A delete marker; compaction at the bottom level drops the key.
    Delete,
}

impl ValueKind {
    /// Two-bit packing. `Put` takes the largest code so that seeks built
    /// with `Put` (the historical "newest first" convention) sort at or
    /// before every kind at the same timestamp.
    fn to_bits(self) -> u64 {
        match self {
            ValueKind::Put => 2,
            ValueKind::VlogPut => 1,
            ValueKind::Delete => 0,
        }
    }

    fn from_bits(bits: u64) -> Self {
        match bits & 3 {
            2 | 3 => ValueKind::Put,
            1 => ValueKind::VlogPut,
            _ => ValueKind::Delete,
        }
    }

    /// Whether the record carries a live value (inline or via the value
    /// log) rather than a tombstone.
    pub fn is_value(self) -> bool {
        self != ValueKind::Delete
    }
}

/// A timestamp assigned by the enclave's timestamp manager.
pub type Timestamp = u64;

/// A full key-value record: user key, timestamp, kind and value bytes.
///
/// # Examples
///
/// ```
/// use lsm_store::record::{Record, ValueKind};
///
/// let r = Record::put(b"key".as_slice(), b"value".as_slice(), 7);
/// let bytes = r.encode();
/// assert_eq!(Record::decode(&bytes).unwrap(), r);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// User-visible key.
    pub key: Bytes,
    /// Operation timestamp (unique, monotone).
    pub ts: Timestamp,
    /// Put or tombstone.
    pub kind: ValueKind,
    /// Value bytes (empty for tombstones).
    pub value: Bytes,
}

impl Record {
    /// Creates a live record.
    pub fn put(key: impl Into<Bytes>, value: impl Into<Bytes>, ts: Timestamp) -> Self {
        Record { key: key.into(), ts, kind: ValueKind::Put, value: value.into() }
    }

    /// Creates a tombstone.
    pub fn tombstone(key: impl Into<Bytes>, ts: Timestamp) -> Self {
        Record { key: key.into(), ts, kind: ValueKind::Delete, value: Bytes::new() }
    }

    /// Creates a value-log pointer record: `pointer` is the encoded
    /// [`crate::vlog::VlogPtr`] + MAC (possibly listener-wrapped).
    pub fn vlog_put(key: impl Into<Bytes>, pointer: impl Into<Bytes>, ts: Timestamp) -> Self {
        Record { key: key.into(), ts, kind: ValueKind::VlogPut, value: pointer.into() }
    }

    /// The internal key identifying this record.
    pub fn internal_key(&self) -> InternalKey {
        InternalKey::new(self.key.clone(), self.ts, self.kind)
    }

    /// Serializes the record (length-prefixed key and value, fixed suffix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.key.len() + self.value.len() + 16);
        put_length_prefixed(&mut buf, &self.key);
        put_fixed_u64(&mut buf, pack(self.ts, self.kind));
        put_length_prefixed(&mut buf, &self.value);
        buf
    }

    /// Parses a record serialized by [`Record::encode`].
    ///
    /// Returns `None` on malformed input (including trailing bytes).
    pub fn decode(buf: &[u8]) -> Option<Record> {
        let (record, used) = Self::decode_prefix(buf)?;
        (used == buf.len()).then_some(record)
    }

    /// Parses one record from the front of `buf`, returning it together
    /// with the number of bytes consumed. The encoding is self-delimiting,
    /// so concatenated records (a WAL batch frame) decode by repeated
    /// prefix reads.
    ///
    /// Returns `None` on malformed/truncated input.
    pub fn decode_prefix(buf: &[u8]) -> Option<(Record, usize)> {
        let (key, n) = get_length_prefixed(buf)?;
        let packed = get_fixed_u64(buf, n)?;
        let (value, m) = get_length_prefixed(&buf[n + 8..])?;
        let (ts, kind) = unpack(packed);
        Some((
            Record {
                key: Bytes::copy_from_slice(key),
                ts,
                kind,
                value: Bytes::copy_from_slice(value),
            },
            n + 8 + m,
        ))
    }

    /// Canonical bytes hashed by the eLSM digest structures: the paper
    /// digests ⟨k, v, ts⟩ records, so all three fields (and the kind, which
    /// distinguishes tombstones) are covered.
    pub fn digest_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Approximate in-memory footprint, used for flush triggers.
    pub fn approximate_size(&self) -> usize {
        self.key.len() + self.value.len() + 24
    }
}

fn pack(ts: Timestamp, kind: ValueKind) -> u64 {
    (ts << 2) | kind.to_bits()
}

fn unpack(packed: u64) -> (Timestamp, ValueKind) {
    (packed >> 2, ValueKind::from_bits(packed))
}

/// Compares two *encoded* internal keys: user key ascending, then suffix
/// ascending (which is timestamp **descending**, because the suffix stores
/// the bitwise complement of the packed timestamp).
///
/// Raw byte comparison would be wrong when one user key is a prefix of
/// another (the 0xff-leading suffix of the shorter key would sort it after
/// the longer key), so every block, table and memtable comparison goes
/// through this function — the same design as LevelDB's
/// `InternalKeyComparator`.
pub fn internal_cmp(a: &[u8], b: &[u8]) -> std::cmp::Ordering {
    let (ua, sa) = split_suffix(a);
    let (ub, sb) = split_suffix(b);
    ua.cmp(ub).then_with(|| sa.cmp(sb))
}

fn split_suffix(k: &[u8]) -> (&[u8], &[u8]) {
    k.split_at(k.len().saturating_sub(8))
}

/// An internal key: user key plus `(timestamp, kind)` suffix.
///
/// The encoded form is `user_key ‖ be_bytes(!packed)`; ordering is defined
/// by [`internal_cmp`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct InternalKey {
    encoded: Vec<u8>,
    key_len: usize,
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        internal_cmp(&self.encoded, &other.encoded)
    }
}

impl InternalKey {
    /// Builds an internal key.
    pub fn new(key: impl AsRef<[u8]>, ts: Timestamp, kind: ValueKind) -> Self {
        let key = key.as_ref();
        let mut encoded = Vec::with_capacity(key.len() + 8);
        encoded.extend_from_slice(key);
        encoded.extend_from_slice(&(!pack(ts, kind)).to_be_bytes());
        InternalKey { encoded, key_len: key.len() }
    }

    /// The smallest internal key for `key`: seeks placed here find the
    /// *newest* record of `key` first.
    pub fn seek_to(key: impl AsRef<[u8]>) -> Self {
        Self::new(key, Timestamp::MAX >> 2, ValueKind::Put)
    }

    /// Reconstructs an internal key from its encoded bytes.
    ///
    /// Returns `None` if shorter than the 8-byte suffix.
    pub fn from_encoded(encoded: &[u8]) -> Option<Self> {
        if encoded.len() < 8 {
            return None;
        }
        Some(InternalKey { encoded: encoded.to_vec(), key_len: encoded.len() - 8 })
    }

    /// The encoded bytes (comparison form).
    pub fn encoded(&self) -> &[u8] {
        &self.encoded
    }

    /// The user key portion.
    pub fn user_key(&self) -> &[u8] {
        &self.encoded[..self.key_len]
    }

    /// The record timestamp.
    pub fn ts(&self) -> Timestamp {
        let (ts, _) = self.unpacked();
        ts
    }

    /// The record kind.
    pub fn kind(&self) -> ValueKind {
        let (_, kind) = self.unpacked();
        kind
    }

    fn unpacked(&self) -> (Timestamp, ValueKind) {
        let mut suffix = [0u8; 8];
        suffix.copy_from_slice(&self.encoded[self.key_len..]);
        unpack(!u64::from_be_bytes(suffix))
    }
}

impl fmt::Debug for InternalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InternalKey({:?}@{}{})",
            String::from_utf8_lossy(self.user_key()),
            self.ts(),
            match self.kind() {
                ValueKind::Delete => " DEL",
                ValueKind::VlogPut => " VLOG",
                ValueKind::Put => "",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_encode_decode_round_trip() {
        let r = Record::put(b"alpha".as_slice(), b"beta".as_slice(), 99);
        assert_eq!(Record::decode(&r.encode()).unwrap(), r);
        let t = Record::tombstone(b"gone".as_slice(), 5);
        assert_eq!(Record::decode(&t.encode()).unwrap(), t);
    }

    #[test]
    fn decode_prefix_walks_concatenated_records() {
        let a = Record::put(b"a".as_slice(), b"1".as_slice(), 1);
        let b = Record::tombstone(b"bb".as_slice(), 2);
        let mut buf = a.encode();
        buf.extend_from_slice(&b.encode());
        let (got_a, used_a) = Record::decode_prefix(&buf).unwrap();
        assert_eq!(got_a, a);
        let (got_b, used_b) = Record::decode_prefix(&buf[used_a..]).unwrap();
        assert_eq!(got_b, b);
        assert_eq!(used_a + used_b, buf.len());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = Record::put(b"k".as_slice(), b"v".as_slice(), 1).encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_none());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = Record::put(b"k".as_slice(), b"v".as_slice(), 1).encode();
        assert!(Record::decode(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn internal_key_orders_keys_ascending() {
        let a = InternalKey::new(b"a", 1, ValueKind::Put);
        let b = InternalKey::new(b"b", 1, ValueKind::Put);
        assert!(a < b);
    }

    #[test]
    fn internal_key_orders_timestamps_descending() {
        let newer = InternalKey::new(b"k", 10, ValueKind::Put);
        let older = InternalKey::new(b"k", 3, ValueKind::Put);
        assert!(newer < older, "newest must sort first");
    }

    #[test]
    fn seek_to_precedes_all_versions() {
        let seek = InternalKey::seek_to(b"k");
        let newest = InternalKey::new(b"k", u64::MAX >> 2, ValueKind::Put);
        assert!(seek <= newest);
    }

    #[test]
    fn internal_key_round_trips_fields() {
        let ik = InternalKey::new(b"user", 42, ValueKind::Delete);
        assert_eq!(ik.user_key(), b"user");
        assert_eq!(ik.ts(), 42);
        assert_eq!(ik.kind(), ValueKind::Delete);
        let again = InternalKey::from_encoded(ik.encoded()).unwrap();
        assert_eq!(again, ik);
    }

    #[test]
    fn from_encoded_rejects_short_input() {
        assert!(InternalKey::from_encoded(b"short").is_none());
    }

    #[test]
    fn prefix_keys_do_not_interleave_versions() {
        // "ab" with any ts must not sort between versions of "abc".
        let ab = InternalKey::new(b"ab", 1, ValueKind::Put);
        let abc_new = InternalKey::new(b"abc", 100, ValueKind::Put);
        let abc_old = InternalKey::new(b"abc", 1, ValueKind::Put);
        assert!(ab < abc_new);
        assert!(abc_new < abc_old);
    }

    #[test]
    fn internal_cmp_matches_field_order() {
        use std::cmp::Ordering;
        let cases = [
            (("a", 5u64), ("b", 1u64), Ordering::Less),
            (("k", 9), ("k", 2), Ordering::Less), // newer first
            (("k", 2), ("k", 2), Ordering::Equal),
            (("kk", 1), ("k", 9), Ordering::Greater),
        ];
        for ((ka, ta), (kb, tb), want) in cases {
            let a = InternalKey::new(ka.as_bytes(), ta, ValueKind::Put);
            let b = InternalKey::new(kb.as_bytes(), tb, ValueKind::Put);
            assert_eq!(internal_cmp(a.encoded(), b.encoded()), want, "{ka}@{ta} vs {kb}@{tb}");
        }
    }

    #[test]
    fn vlog_pointer_records_round_trip_and_sort_with_their_timestamp() {
        let p = Record::vlog_put(b"k".as_slice(), b"ptr-bytes".as_slice(), 9);
        assert_eq!(p.kind, ValueKind::VlogPut);
        assert!(p.kind.is_value());
        assert_eq!(Record::decode(&p.encode()).unwrap(), p);
        // Ordering stays timestamp-major across kinds.
        let newer_put = InternalKey::new(b"k", 10, ValueKind::Put);
        let older_del = InternalKey::new(b"k", 8, ValueKind::Delete);
        assert!(newer_put < p.internal_key());
        assert!(p.internal_key() < older_del);
    }

    #[test]
    fn put_seeks_find_every_kind_at_the_same_timestamp() {
        // Seeks use `Put` as the "newest" sentinel; a seek at ts_q must not
        // skip a VlogPut or Delete record whose ts equals ts_q.
        let seek = InternalKey::new(b"k", 5, ValueKind::Put);
        for kind in [ValueKind::Put, ValueKind::VlogPut, ValueKind::Delete] {
            assert!(seek <= InternalKey::new(b"k", 5, kind), "{kind:?}");
        }
    }

    #[test]
    fn digest_bytes_distinguish_vlog_pointers_from_inline_puts() {
        // A kind flip (inline value <-> pointer bytes) must change the
        // canonical digest, or a host could swap representations silently.
        let inline = Record::put(b"k".as_slice(), b"same".as_slice(), 1);
        let pointer = Record::vlog_put(b"k".as_slice(), b"same".as_slice(), 1);
        assert_ne!(inline.digest_bytes(), pointer.digest_bytes());
    }

    #[test]
    fn digest_bytes_cover_all_fields() {
        let a = Record::put(b"k".as_slice(), b"v".as_slice(), 1);
        let mut b = a.clone();
        b.ts = 2;
        assert_ne!(a.digest_bytes(), b.digest_bytes());
        let mut c = a.clone();
        c.kind = ValueKind::Delete;
        assert_ne!(a.digest_bytes(), c.digest_bytes());
    }
}
