//! The in-memory write buffer (level L0 in the paper's terminology).
//!
//! A skiplist over encoded internal keys, as in LevelDB/RocksDB. The arena
//! is a plain `Vec` of nodes with `u32` tower links, which keeps the
//! implementation in safe Rust while preserving the skiplist's O(log n)
//! search and its append-only memory behaviour (nodes are never moved or
//! freed — exactly like LevelDB's arena).
//!
//! Each node stores the full [`Record`] alongside its encoded internal
//! key, so probe and iteration paths hand out reference-counted
//! [`Bytes`](bytes::Bytes) clones instead of copying the user key on
//! every hit — the memtable sits on the hottest read path, where a
//! per-probe allocation would be pure overhead.
//!
//! In both eLSM designs the write buffer lives **inside** the enclave
//! (Table 1); it is small (4 MB by default) so it never causes EPC paging.

use bytes::Bytes;

use crate::record::{internal_cmp, InternalKey, Record, Timestamp, ValueKind};

const MAX_HEIGHT: usize = 12;
/// Branching probability 1/4, as in LevelDB.
const BRANCH_DENOM: u64 = 4;

#[derive(Debug)]
struct Node {
    /// Encoded internal key (empty for the head sentinel).
    key: Vec<u8>,
    record: Record,
    /// next[h] = arena index of the next node at height h (0 = none).
    next: Vec<u32>,
}

/// An append-only skiplist of [`Record`]s ordered by encoded internal key.
#[derive(Debug)]
pub struct SkipList {
    nodes: Vec<Node>,
    height: usize,
    rng_state: u64,
    approx_bytes: usize,
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        SkipList {
            nodes: vec![Node {
                key: Vec::new(),
                record: Record::put(Bytes::new(), Bytes::new(), 0),
                next: vec![0; MAX_HEIGHT],
            }],
            height: 1,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            approx_bytes: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory usage in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes
    }

    fn random_height(&mut self) -> usize {
        let mut h = 1;
        loop {
            self.rng_state =
                self.rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if h < MAX_HEIGHT && (self.rng_state >> 33) % BRANCH_DENOM == 0 {
                h += 1;
            } else {
                return h;
            }
        }
    }

    /// Finds, per level, the last node whose key is `< key`.
    fn find_predecessors(&self, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut prev = [0u32; MAX_HEIGHT];
        let mut node = 0u32;
        for h in (0..self.height).rev() {
            loop {
                let next = self.nodes[node as usize].next[h];
                if next != 0
                    && internal_cmp(self.nodes[next as usize].key.as_slice(), key)
                        == std::cmp::Ordering::Less
                {
                    node = next;
                } else {
                    break;
                }
            }
            prev[h] = node;
        }
        prev
    }

    /// Inserts a record. Internal keys must be unique (they carry a unique
    /// timestamp, so duplicates cannot occur in correct usage).
    pub fn insert(&mut self, record: Record) {
        let key = record.internal_key().encoded().to_vec();
        let prev = self.find_predecessors(&key);
        let h = self.random_height();
        if h > self.height {
            self.height = h;
        }
        let idx = self.nodes.len() as u32;
        self.approx_bytes += key.len() + record.value.len() + 8 * h + 24;
        let mut next = vec![0u32; h];
        #[allow(clippy::needless_range_loop)]
        for level in 0..h {
            next[level] = self.nodes[prev[level] as usize].next[level];
        }
        self.nodes.push(Node { key, record, next });
        for (level, &p) in prev.iter().enumerate().take(h) {
            self.nodes[p as usize].next[level] = idx;
        }
    }

    /// Arena index of the first node with key `>= key` (0 if none).
    fn seek_index(&self, key: &[u8]) -> u32 {
        let prev = self.find_predecessors(key);
        self.nodes[prev[0] as usize].next[0]
    }

    /// Iterates entries with keys `>=` the given encoded key.
    pub fn range_from<'a>(&'a self, key: &[u8]) -> SkipIter<'a> {
        SkipIter { list: self, node: self.seek_index(key) }
    }

    /// Iterates all entries in order.
    pub fn iter(&self) -> SkipIter<'_> {
        SkipIter { list: self, node: self.nodes[0].next[0] }
    }
}

/// Iterator over skiplist entries as `(encoded_key, record)` pairs.
#[derive(Debug, Clone)]
pub struct SkipIter<'a> {
    list: &'a SkipList,
    node: u32,
}

impl<'a> Iterator for SkipIter<'a> {
    type Item = (&'a [u8], &'a Record);

    fn next(&mut self) -> Option<Self::Item> {
        if self.node == 0 {
            return None;
        }
        let n = &self.list.nodes[self.node as usize];
        self.node = n.next[0];
        Some((n.key.as_slice(), &n.record))
    }
}

/// The write buffer: a skiplist of [`Record`]s plus bookkeeping.
///
/// # Examples
///
/// ```
/// use lsm_store::memtable::MemTable;
/// use lsm_store::record::Record;
///
/// let mut mt = MemTable::new();
/// mt.insert(Record::put(b"k".as_slice(), b"v1".as_slice(), 1));
/// mt.insert(Record::put(b"k".as_slice(), b"v2".as_slice(), 2));
/// let newest = mt.get(b"k", u64::MAX >> 1).unwrap();
/// assert_eq!(newest.ts, 2);
/// ```
#[derive(Debug, Default)]
pub struct MemTable {
    list: SkipList,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable { list: SkipList::new() }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the memtable holds no records.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Approximate memory usage (flush trigger input).
    pub fn approximate_bytes(&self) -> usize {
        self.list.approximate_bytes()
    }

    /// Inserts a record.
    pub fn insert(&mut self, record: Record) {
        self.list.insert(record);
    }

    /// Returns the newest record for `key` with `ts <= ts_q`, including
    /// tombstones (the caller interprets them). The returned record shares
    /// its key/value storage with the stored one (cheap `Bytes` clones).
    pub fn get(&self, key: &[u8], ts_q: Timestamp) -> Option<Record> {
        let seek = InternalKey::new(key, ts_q, ValueKind::Put);
        let (_, record) = self.list.range_from(seek.encoded()).next()?;
        if record.key != key {
            return None;
        }
        Some(record.clone())
    }

    /// All records in internal-key order (for flush and scans).
    pub fn iter_records(&self) -> impl Iterator<Item = Record> + '_ {
        self.list.iter().map(|(_, r)| r.clone())
    }

    /// Records with user key in `[from, to]`, all versions, newest first
    /// within a key.
    pub fn range_records(&self, from: &[u8], to: &[u8]) -> Vec<Record> {
        let seek = InternalKey::seek_to(from);
        let mut out = Vec::new();
        for (_, record) in self.list.range_from(seek.encoded()) {
            if record.key[..] > *to {
                break;
            }
            out.push(record.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_get_is_none() {
        let mt = MemTable::new();
        assert!(mt.get(b"k", u64::MAX >> 1).is_none());
        assert!(mt.is_empty());
    }

    #[test]
    fn newest_version_wins() {
        let mut mt = MemTable::new();
        mt.insert(Record::put(b"k".as_slice(), b"v1".as_slice(), 1));
        mt.insert(Record::put(b"k".as_slice(), b"v2".as_slice(), 5));
        mt.insert(Record::put(b"k".as_slice(), b"v3".as_slice(), 3));
        let r = mt.get(b"k", u64::MAX >> 1).unwrap();
        assert_eq!((r.ts, &r.value[..]), (5, b"v2".as_slice()));
    }

    #[test]
    fn snapshot_reads_respect_ts() {
        let mut mt = MemTable::new();
        mt.insert(Record::put(b"k".as_slice(), b"v1".as_slice(), 1));
        mt.insert(Record::put(b"k".as_slice(), b"v2".as_slice(), 5));
        assert_eq!(mt.get(b"k", 4).unwrap().ts, 1);
        assert_eq!(mt.get(b"k", 5).unwrap().ts, 5);
        assert!(mt.get(b"k", 0).is_none());
    }

    #[test]
    fn tombstones_are_returned() {
        let mut mt = MemTable::new();
        mt.insert(Record::put(b"k".as_slice(), b"v".as_slice(), 1));
        mt.insert(Record::tombstone(b"k".as_slice(), 2));
        let r = mt.get(b"k", u64::MAX >> 1).unwrap();
        assert_eq!(r.kind, ValueKind::Delete);
    }

    #[test]
    fn keys_do_not_bleed() {
        let mut mt = MemTable::new();
        mt.insert(Record::put(b"a".as_slice(), b"1".as_slice(), 1));
        mt.insert(Record::put(b"c".as_slice(), b"2".as_slice(), 2));
        assert!(mt.get(b"b", u64::MAX >> 1).is_none());
    }

    #[test]
    fn probe_shares_key_storage() {
        // The hot-path guarantee: a hit must not copy the user key.
        let mut mt = MemTable::new();
        mt.insert(Record::put(b"shared".as_slice(), b"v".as_slice(), 1));
        let a = mt.get(b"shared", u64::MAX >> 1).unwrap();
        let b = mt.get(b"shared", u64::MAX >> 1).unwrap();
        assert!(a.key.shares_storage(&b.key), "probes must clone, not copy");
    }

    #[test]
    fn iteration_is_sorted_newest_first_within_key() {
        let mut mt = MemTable::new();
        mt.insert(Record::put(b"b".as_slice(), b"old".as_slice(), 1));
        mt.insert(Record::put(b"a".as_slice(), b"x".as_slice(), 2));
        mt.insert(Record::put(b"b".as_slice(), b"new".as_slice(), 3));
        let recs: Vec<Record> = mt.iter_records().collect();
        let keys: Vec<&[u8]> = recs.iter().map(|r| &r.key[..]).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b".as_slice(), b"b".as_slice()]);
        assert_eq!(recs[1].ts, 3, "newest version of b first");
        assert_eq!(recs[2].ts, 1);
    }

    #[test]
    fn range_records_bounds_inclusive() {
        let mut mt = MemTable::new();
        for (i, k) in [b"a", b"b", b"c", b"d"].iter().enumerate() {
            mt.insert(Record::put(k.as_slice(), b"v".as_slice(), i as u64 + 1));
        }
        let got = mt.range_records(b"b", b"c");
        let keys: Vec<&[u8]> = got.iter().map(|r| &r.key[..]).collect();
        assert_eq!(keys, vec![b"b".as_slice(), b"c".as_slice()]);
    }

    #[test]
    fn large_insert_set_stays_sorted() {
        let mut mt = MemTable::new();
        // Insert shuffled keys.
        let mut keys: Vec<u32> = (0..2000).collect();
        let mut state = 7u64;
        for i in (1..keys.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (state % (i as u64 + 1)) as usize);
        }
        for (ts, k) in keys.iter().enumerate() {
            let key = format!("{k:08}");
            mt.insert(Record::put(key.into_bytes(), b"v".as_slice(), ts as u64 + 1));
        }
        let collected: Vec<Record> = mt.iter_records().collect();
        assert_eq!(collected.len(), 2000);
        for w in collected.windows(2) {
            assert!(w[0].key <= w[1].key);
        }
        // Every key findable.
        for k in 0..2000u32 {
            let key = format!("{k:08}");
            assert!(mt.get(key.as_bytes(), u64::MAX >> 1).is_some(), "missing {k}");
        }
    }

    #[test]
    fn approximate_bytes_grows() {
        let mut mt = MemTable::new();
        let before = mt.approximate_bytes();
        mt.insert(Record::put(b"key".as_slice(), vec![0u8; 100], 1));
        assert!(mt.approximate_bytes() > before + 100);
    }
}
