//! SSTable data blocks with prefix-compressed keys and restart points,
//! following the LevelDB block format:
//!
//! ```text
//! entry*   := shared_len varint | unshared_len varint | value_len varint
//!             | key_delta bytes | value bytes
//! trailer  := restart_offset u32 * n | n u32
//! ```
//!
//! Every `restart_interval` entries the full key is stored, so iterators
//! can binary-search restart points and then scan at most one interval.

use bytes::Bytes;

use crate::encoding::{get_fixed_u32, get_varint_u32, put_fixed_u32, put_varint_u32};
use crate::record::internal_cmp;

/// Default number of entries between restart points (LevelDB uses 16).
pub const RESTART_INTERVAL: usize = 16;

/// Builds one data block.
#[derive(Debug)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    count_since_restart: usize,
    last_key: Vec<u8>,
    entries: usize,
}

impl Default for BlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            count_since_restart: 0,
            last_key: Vec::new(),
            entries: 0,
        }
    }

    /// Appends an entry. Keys must arrive in strictly increasing order.
    ///
    /// # Panics
    ///
    /// Panics if `key` is not greater than the previous key (corrupt order
    /// would silently break binary search).
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        assert!(
            self.entries == 0
                || internal_cmp(key, self.last_key.as_slice()) == std::cmp::Ordering::Greater,
            "block keys must be strictly increasing"
        );
        let shared = if self.count_since_restart < RESTART_INTERVAL {
            common_prefix(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        };
        let unshared = key.len() - shared;
        put_varint_u32(&mut self.buf, shared as u32);
        put_varint_u32(&mut self.buf, unshared as u32);
        put_varint_u32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.count_since_restart += 1;
        self.entries += 1;
    }

    /// Current encoded size (data + trailer).
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The last key added (empty before the first add).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finishes the block, returning its encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for &r in &self.restarts {
            put_fixed_u32(&mut self.buf, r);
        }
        put_fixed_u32(&mut self.buf, self.restarts.len() as u32);
        self.buf
    }
}

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// A parsed, immutable data block.
#[derive(Debug, Clone)]
pub struct Block {
    data: Bytes,
    restarts_offset: usize,
    num_restarts: usize,
}

impl Block {
    /// Parses block bytes. Returns `None` when the trailer is malformed.
    pub fn parse(data: Bytes) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        let num_restarts = get_fixed_u32(&data, data.len() - 4)? as usize;
        let trailer = num_restarts.checked_mul(4)?.checked_add(4)?;
        if trailer > data.len() || num_restarts == 0 {
            return None;
        }
        let restarts_offset = data.len() - trailer;
        Some(Block { data, restarts_offset, num_restarts })
    }

    fn restart_point(&self, i: usize) -> usize {
        get_fixed_u32(&self.data, self.restarts_offset + i * 4).expect("restart in bounds") as usize
    }

    /// Iterates all entries from the beginning.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter { block: self, pos: 0, key: Vec::new(), done: false }
    }

    /// Iterator positioned at the first entry with key `>= target`.
    pub fn seek(&self, target: &[u8]) -> BlockIter<'_> {
        // Binary search the restart array for the last restart whose key
        // is <= target, then scan forward.
        let (mut lo, mut hi) = (0usize, self.num_restarts - 1);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let key = self.key_at_restart(mid);
            if internal_cmp(key.as_slice(), target) != std::cmp::Ordering::Greater {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let mut iter =
            BlockIter { block: self, pos: self.restart_point(lo), key: Vec::new(), done: false };
        // Fix-up: if even the first restart key is > target, start at 0.
        loop {
            let save = iter.clone_state();
            match iter.next() {
                Some((k, _)) if internal_cmp(k.as_slice(), target) == std::cmp::Ordering::Less => {
                    continue
                }
                Some(_) => {
                    iter.restore(save);
                    return iter;
                }
                None => return iter,
            }
        }
    }

    fn key_at_restart(&self, i: usize) -> Vec<u8> {
        let mut it =
            BlockIter { block: self, pos: self.restart_point(i), key: Vec::new(), done: false };
        it.next().map(|(k, _)| k).unwrap_or_default()
    }

    /// Number of restart points.
    pub fn num_restarts(&self) -> usize {
        self.num_restarts
    }
}

/// Iterator over block entries, yielding owned `(key, value)` pairs.
#[derive(Debug)]
pub struct BlockIter<'a> {
    block: &'a Block,
    pos: usize,
    key: Vec<u8>,
    done: bool,
}

impl<'a> BlockIter<'a> {
    fn clone_state(&self) -> (usize, Vec<u8>, bool) {
        (self.pos, self.key.clone(), self.done)
    }

    fn restore(&mut self, state: (usize, Vec<u8>, bool)) {
        self.pos = state.0;
        self.key = state.1;
        self.done = state.2;
    }
}

impl<'a> Iterator for BlockIter<'a> {
    type Item = (Vec<u8>, Bytes);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.pos >= self.block.restarts_offset {
            self.done = true;
            return None;
        }
        let data = &self.block.data;
        let (shared, n1) = get_varint_u32(&data[self.pos..])?;
        let (unshared, n2) = get_varint_u32(&data[self.pos + n1..])?;
        let (value_len, n3) = get_varint_u32(&data[self.pos + n1 + n2..])?;
        let key_start = self.pos + n1 + n2 + n3;
        let value_start = key_start + unshared as usize;
        let value_end = value_start + value_len as usize;
        if value_end > self.block.restarts_offset || shared as usize > self.key.len() {
            self.done = true;
            return None;
        }
        self.key.truncate(shared as usize);
        self.key.extend_from_slice(&data[key_start..value_start]);
        let value = data.slice(value_start..value_end);
        self.pos = value_end;
        Some((self.key.clone(), value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(entries: &[(&[u8], &[u8])]) -> Block {
        let mut b = BlockBuilder::new();
        for (k, v) in entries {
            b.add(k, v);
        }
        Block::parse(Bytes::from(b.finish())).unwrap()
    }

    #[test]
    fn round_trip_small() {
        let block = build(&[(b"apple", b"1"), (b"banana", b"2"), (b"cherry", b"3")]);
        let got: Vec<(Vec<u8>, Bytes)> = block.iter().collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, b"apple");
        assert_eq!(&got[2].1[..], b"3");
    }

    #[test]
    fn prefix_compression_shrinks_block() {
        let keys: Vec<String> = (0..100).map(|i| format!("common_prefix_key_{i:04}")).collect();
        let mut compressed = BlockBuilder::new();
        for k in &keys {
            compressed.add(k.as_bytes(), b"v");
        }
        let raw_key_bytes: usize = keys.iter().map(|k| k.len()).sum();
        assert!(
            compressed.size_estimate() < raw_key_bytes + 100 * 4,
            "prefix compression should beat storing full keys"
        );
        // And it still round-trips.
        let block = Block::parse(Bytes::from(compressed.finish())).unwrap();
        let got: Vec<_> = block.iter().map(|(k, _)| k).collect();
        assert_eq!(got.len(), 100);
        for (g, k) in got.iter().zip(&keys) {
            assert_eq!(g, k.as_bytes());
        }
    }

    #[test]
    fn seek_finds_exact_and_successor() {
        let block = build(&[(b"b", b"1"), (b"d", b"2"), (b"f", b"3")]);
        assert_eq!(block.seek(b"d").next().unwrap().0, b"d");
        assert_eq!(block.seek(b"c").next().unwrap().0, b"d");
        assert_eq!(block.seek(b"a").next().unwrap().0, b"b");
        assert!(block.seek(b"g").next().is_none());
    }

    #[test]
    fn seek_across_restart_points() {
        let keys: Vec<String> = (0..100).map(|i| format!("k{i:04}")).collect();
        let entries: Vec<(&[u8], &[u8])> =
            keys.iter().map(|k| (k.as_bytes(), b"v".as_slice())).collect();
        let block = build(&entries);
        assert!(block.num_restarts() > 1, "test must span restarts");
        for i in (0..100).step_by(7) {
            let target = format!("k{i:04}");
            let got = block.seek(target.as_bytes()).next().unwrap().0;
            assert_eq!(got, target.as_bytes());
        }
    }

    #[test]
    fn empty_block_iterates_nothing() {
        let block = Block::parse(Bytes::from(BlockBuilder::new().finish())).unwrap();
        assert!(block.iter().next().is_none());
        assert!(block.seek(b"x").next().is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_add_panics() {
        let mut b = BlockBuilder::new();
        b.add(b"b", b"1");
        b.add(b"a", b"2");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Block::parse(Bytes::from_static(b"xy")).is_none());
        assert!(Block::parse(Bytes::from_static(&[255, 255, 255, 255])).is_none());
    }

    #[test]
    fn values_survive_restart_boundaries() {
        let entries: Vec<(String, String)> =
            (0..50).map(|i| (format!("k{i:03}"), format!("value-{i}"))).collect();
        let refs: Vec<(&[u8], &[u8])> =
            entries.iter().map(|(k, v)| (k.as_bytes(), v.as_bytes())).collect();
        let block = build(&refs);
        for (k, v) in &entries {
            let (gk, gv) = block.seek(k.as_bytes()).next().unwrap();
            assert_eq!(gk, k.as_bytes());
            assert_eq!(&gv[..], v.as_bytes());
        }
    }
}
