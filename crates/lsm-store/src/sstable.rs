//! SSTables: immutable sorted files of records.
//!
//! Layout (offsets are file positions; data blocks may be individually
//! sealed when the environment enables eLSM-P1 file protection):
//!
//! ```text
//! [data block 0] [data block 1] … [bloom filter] [index block] [props] [footer]
//! ```
//!
//! * the **index block** maps each data block's last internal key to its
//!   `(offset, stored_len)`;
//! * the **Bloom filter** covers all user keys in the table;
//! * **props** stores smallest/largest user keys and the record count;
//! * the fixed-size **footer** locates everything else.
//!
//! Per the paper, the Bloom filter and index are metadata kept *inside* the
//! enclave (§5.3); the reader allocates enclave regions for them and touches
//! the probed offsets, so metadata becomes a realistic source of EPC
//! pressure.

use std::sync::Arc;

use bytes::Bytes;
use sim_disk::{FsError, MmapFile, SimFile};

use crate::block::{Block, BlockBuilder};
use crate::bloom::BloomFilter;
use crate::encoding::{get_fixed_u64, get_length_prefixed, put_fixed_u64, put_length_prefixed};
use crate::env::StorageEnv;
use crate::record::{InternalKey, Record, Timestamp, ValueKind};

const FOOTER_LEN: usize = 56;
const MAGIC: u64 = 0xe15a_5700_ab1e_d157;
/// Builders buffer output and issue one file append (OCall) per chunk,
/// like a buffered `fwrite`.
const WRITE_CHUNK: usize = 64 * 1024;

/// Whether a point lookup must resolve bounding neighbors on a miss.
///
/// eLSM turns the neighbors into non-membership proofs, so its traced
/// reads require them. The plain, unauthenticated read path never looks
/// at them — with [`NeighborPolicy::Skip`] a definite Bloom-filter miss
/// returns immediately with **no index or block IO at all**, and even a
/// post-search miss skips the neighbor block reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborPolicy {
    /// Resolve both bounding neighbors (authenticated reads).
    Required,
    /// Return misses without neighbors and without neighbor IO.
    Skip,
}

/// Options controlling table construction.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed data-block size.
    pub block_size: usize,
    /// Bloom filter bits per key (0 disables the filter).
    pub bloom_bits_per_key: usize,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions { block_size: 4096, bloom_bits_per_key: 10 }
    }
}

/// Summary of a finished table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// File number (also names the file: `{file_no}.sst`).
    pub file_no: u64,
    /// Smallest user key.
    pub smallest: Bytes,
    /// Largest user key.
    pub largest: Bytes,
    /// Number of records.
    pub count: u64,
    /// Total file size in bytes.
    pub file_size: u64,
}

/// Streams sorted records into an SSTable file.
#[derive(Debug)]
pub struct TableBuilder {
    env: Arc<StorageEnv>,
    file: Arc<SimFile>,
    file_no: u64,
    options: TableOptions,
    block: BlockBuilder,
    index: Vec<(Vec<u8>, u64, u64)>,
    user_keys: Vec<Vec<u8>>,
    offset: u64,
    count: u64,
    smallest: Option<Bytes>,
    largest: Option<Bytes>,
    pending: Vec<u8>,
}

impl TableBuilder {
    /// Starts building `file` (already created, empty).
    pub fn new(
        env: Arc<StorageEnv>,
        file: Arc<SimFile>,
        file_no: u64,
        options: TableOptions,
    ) -> Self {
        TableBuilder {
            env,
            file,
            file_no,
            options,
            block: BlockBuilder::new(),
            index: Vec::new(),
            user_keys: Vec::new(),
            offset: 0,
            count: 0,
            smallest: None,
            largest: None,
            pending: Vec::new(),
        }
    }

    /// Buffers output bytes, appending to the file one chunk at a time.
    fn write(&mut self, bytes: &[u8]) {
        self.pending.extend_from_slice(bytes);
        self.offset += bytes.len() as u64;
        if self.pending.len() >= WRITE_CHUNK {
            let chunk = std::mem::take(&mut self.pending);
            self.env.append(&self.file, &chunk);
        }
    }

    fn flush_pending(&mut self) {
        if !self.pending.is_empty() {
            let chunk = std::mem::take(&mut self.pending);
            self.env.append(&self.file, &chunk);
        }
    }

    /// Appends a record. Records must arrive in internal-key order.
    pub fn add(&mut self, record: &Record) {
        let ik = record.internal_key();
        self.block.add(ik.encoded(), &record.value);
        self.user_keys.push(record.key.to_vec());
        if self.smallest.is_none() {
            self.smallest = Some(record.key.clone());
        }
        self.largest = Some(record.key.clone());
        self.count += 1;
        if self.block.size_estimate() >= self.options.block_size {
            self.flush_block();
        }
    }

    /// Bytes written so far (flushed blocks only).
    pub fn written_bytes(&self) -> u64 {
        self.offset
    }

    /// Number of records added.
    pub fn count(&self) -> u64 {
        self.count
    }

    fn flush_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        let last_key = self.block.last_key().to_vec();
        let block = std::mem::take(&mut self.block);
        let bytes = block.finish();
        let stored = self.env.prepare_block(self.file_no, self.offset as usize, bytes);
        self.index.push((last_key, self.offset, stored.len() as u64));
        self.write(&stored);
    }

    /// Finishes the table, writing filter, index, props and footer.
    ///
    /// # Panics
    ///
    /// Panics if no records were added (empty tables are a logic error —
    /// callers skip creating them).
    pub fn finish(mut self) -> TableMeta {
        assert!(self.count > 0, "refusing to build an empty SSTable");
        self.flush_block();
        // Bloom filter (plaintext metadata: loaded into the enclave at
        // open; authenticity of metadata is the enclave's job, §5.3).
        let bloom = if self.options.bloom_bits_per_key > 0 {
            BloomFilter::from_keys(&self.user_keys, self.options.bloom_bits_per_key).encode()
        } else {
            Vec::new()
        };
        let bloom_offset = self.offset;
        self.write(&bloom.clone());
        // Index block.
        let mut index_block = BlockBuilder::new();
        for (key, off, len) in &self.index {
            let mut v = Vec::with_capacity(16);
            put_fixed_u64(&mut v, *off);
            put_fixed_u64(&mut v, *len);
            index_block.add(key, &v);
        }
        let index_bytes = index_block.finish();
        let index_offset = self.offset;
        self.write(&index_bytes.clone());
        // Props.
        let mut props = Vec::new();
        let smallest = self.smallest.clone().expect("non-empty table");
        let largest = self.largest.clone().expect("non-empty table");
        put_length_prefixed(&mut props, &smallest);
        put_length_prefixed(&mut props, &largest);
        put_fixed_u64(&mut props, self.count);
        let props_offset = self.offset;
        self.write(&props.clone());
        // Footer.
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        put_fixed_u64(&mut footer, bloom_offset);
        put_fixed_u64(&mut footer, index_offset - bloom_offset);
        put_fixed_u64(&mut footer, index_offset);
        put_fixed_u64(&mut footer, index_bytes.len() as u64);
        put_fixed_u64(&mut footer, props_offset);
        put_fixed_u64(&mut footer, props.len() as u64);
        debug_assert_eq!(footer.len() + 8, FOOTER_LEN);
        put_fixed_u64(&mut footer, MAGIC);
        let footer_bytes = footer.clone();
        self.write(&footer_bytes);
        self.flush_pending();
        TableMeta {
            file_no: self.file_no,
            smallest,
            largest,
            count: self.count,
            file_size: self.offset,
        }
    }
}

/// Outcome of a point lookup within one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableGet {
    /// Newest record for the key (with `ts <= ts_q`) in this table.
    Hit(Record),
    /// No record for the key; bounding neighbors within this table, if any.
    Miss {
        /// Newest record of the greatest user key `< key`.
        left: Option<Record>,
        /// Newest record of the smallest user key `> key`.
        right: Option<Record>,
    },
}

/// Reads an SSTable, keeping its metadata (index + Bloom filter) in enclave
/// memory when the environment runs in enclave mode.
#[derive(Debug)]
pub struct TableReader {
    env: Arc<StorageEnv>,
    file: Arc<SimFile>,
    mmap: Option<Arc<MmapFile>>,
    meta: TableMeta,
    index: Vec<(Vec<u8>, u64, u64)>,
    bloom: Option<BloomFilter>,
    bloom_region: Option<crate::env::MetaSlice>,
    index_region: Option<crate::env::MetaSlice>,
}

impl TableReader {
    /// Opens a table file, loading footer, props, index and filter.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] when the file is truncated or corrupt.
    pub fn open(env: Arc<StorageEnv>, file: Arc<SimFile>, file_no: u64) -> Result<Self, FsError> {
        let file_len = file.len();
        let corrupt =
            || FsError::OutOfBounds { name: file.name(), requested_end: file_len, len: file_len };
        if file_len < FOOTER_LEN {
            return Err(corrupt());
        }
        // Footer and metadata are read once at open (sequential IO).
        let footer = env.host_call(|| file.read_at(file_len - FOOTER_LEN, FOOTER_LEN))?;
        if get_fixed_u64(&footer, 48) != Some(MAGIC) {
            return Err(corrupt());
        }
        let bloom_offset = get_fixed_u64(&footer, 0).ok_or_else(corrupt)? as usize;
        let bloom_len = get_fixed_u64(&footer, 8).ok_or_else(corrupt)? as usize;
        let index_offset = get_fixed_u64(&footer, 16).ok_or_else(corrupt)? as usize;
        let index_len = get_fixed_u64(&footer, 24).ok_or_else(corrupt)? as usize;
        let props_offset = get_fixed_u64(&footer, 32).ok_or_else(corrupt)? as usize;
        let props_len = get_fixed_u64(&footer, 40).ok_or_else(corrupt)? as usize;

        let props = env.host_call(|| file.read_at(props_offset, props_len))?;
        let (smallest, n) = get_length_prefixed(&props).ok_or_else(corrupt)?;
        let (largest, m) = get_length_prefixed(&props[n..]).ok_or_else(corrupt)?;
        let count = get_fixed_u64(&props, n + m).ok_or_else(corrupt)?;
        let meta = TableMeta {
            file_no,
            smallest: Bytes::copy_from_slice(smallest),
            largest: Bytes::copy_from_slice(largest),
            count,
            file_size: file_len as u64,
        };

        let index_bytes = env.host_call(|| file.read_at(index_offset, index_len))?;
        let index_block = Block::parse(index_bytes).ok_or_else(corrupt)?;
        let mut index = Vec::new();
        for (key, value) in index_block.iter() {
            let off = get_fixed_u64(&value, 0).ok_or_else(corrupt)?;
            let len = get_fixed_u64(&value, 8).ok_or_else(corrupt)?;
            index.push((key, off, len));
        }

        let bloom = if bloom_len > 0 {
            let bloom_bytes = env.host_call(|| file.read_at(bloom_offset, bloom_len))?;
            BloomFilter::decode(&bloom_bytes)
        } else {
            None
        };

        // Metadata moves into the enclave: one boundary copy at open, then
        // enclave-resident regions that are touched on every probe.
        let bloom_region = bloom.as_ref().and_then(|b| {
            if env.config().in_enclave {
                env.platform().cross_copy(b.byte_len());
            }
            env.metadata_region(b.byte_len())
        });
        let index_bytes_total: usize = index.iter().map(|(k, _, _)| k.len() + 16).sum();
        let index_region = if env.config().in_enclave {
            env.platform().cross_copy(index_bytes_total);
            env.metadata_region(index_bytes_total.max(1))
        } else {
            None
        };

        let mmap = env.config().use_mmap.then(|| MmapFile::map(file.clone()));

        Ok(TableReader { env, file, mmap, meta, index, bloom, bloom_region, index_region })
    }

    /// Table summary.
    pub fn meta(&self) -> &TableMeta {
        &self.meta
    }

    /// Releases enclave metadata (call when the table is replaced by a
    /// compaction). Arena slices are bump-allocated, so this only exists
    /// to mirror the real resource lifecycle; residency fades by eviction.
    pub fn close(&self) {}

    fn read_block(&self, block_idx: usize) -> Result<Block, FsError> {
        let (_, off, len) = self.index[block_idx];
        let stored = self.env.read_block(
            self.meta.file_no,
            &self.file,
            self.mmap.as_ref(),
            off as usize,
            len as usize,
        )?;
        Block::parse(stored).ok_or(FsError::OutOfBounds {
            name: self.file.name(),
            requested_end: (off + len) as usize,
            len: self.file.len(),
        })
    }

    /// Index of the first block whose last key is `>= target`, or `None`
    /// past the end.
    fn block_for(&self, target: &[u8]) -> Option<usize> {
        let idx = self.index.partition_point(|(last, _, _)| {
            crate::record::internal_cmp(last.as_slice(), target) == std::cmp::Ordering::Less
        });
        (idx < self.index.len()).then_some(idx)
    }

    fn charge_index_probe(&self) {
        // Binary search over the index: ~log2(n) probes. The upper probes
        // share pages (the search tree's hot top); we model the batch as
        // one root-page touch plus one data-dependent touch, which keeps
        // the page-granularity pressure faithful to the unscaled system
        // (see DESIGN.md §4.1) while still faulting under EPC pollution.
        let probes = (self.index.len().max(2)).ilog2() as usize + 1;
        let total: usize = self.index.iter().map(|(k, _, _)| k.len() + 16).sum();
        let off = (self.index.len() / 2) * 32 % total.max(1);
        self.env.touch_metadata(self.index_region.as_ref(), [(0, 32usize), (off, probes * 32)]);
    }

    fn charge_bloom_probe(&self, offsets: &[usize]) {
        // Same page-granularity argument: the k probed bits are charged as
        // one batch anchored at the first probed offset.
        let anchor = offsets.first().copied().unwrap_or(0);
        self.env.touch_metadata(self.bloom_region.as_ref(), [(anchor, offsets.len().max(1))]);
    }

    /// Point lookup: newest record for `key` with `ts <= ts_q`, or the
    /// bounding neighbors if absent.
    ///
    /// With [`NeighborPolicy::Skip`], a definite Bloom miss returns before
    /// touching the index or any data block, and post-search misses skip
    /// the neighbor block reads — the unauthenticated path pays only for
    /// what it uses.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO/corruption errors.
    pub fn get(
        &self,
        key: &[u8],
        ts_q: Timestamp,
        neighbors: NeighborPolicy,
    ) -> Result<TableGet, FsError> {
        if let Some(bloom) = &self.bloom {
            let (maybe, offsets) = bloom.probe(key);
            self.charge_bloom_probe(&offsets);
            if !maybe {
                // Definitely absent. eLSM still needs the neighbors for
                // non-membership proofs; the plain path returns at once.
                return self.miss_with_neighbors(key, ts_q, neighbors);
            }
        }
        self.charge_index_probe();
        let seek = InternalKey::new(key, ts_q, ValueKind::Put);
        let Some(block_idx) = self.block_for(seek.encoded()) else {
            return self.miss_with_neighbors(key, ts_q, neighbors);
        };
        let block = self.read_block(block_idx)?;
        if let Some((ik_bytes, value)) = block.seek(seek.encoded()).next() {
            if let Some(ik) = InternalKey::from_encoded(&ik_bytes) {
                if ik.user_key() == key {
                    return Ok(TableGet::Hit(record_from(ik, value)));
                }
            }
        }
        self.miss_with_neighbors(key, ts_q, neighbors)
    }

    /// Builds the miss outcome with the newest records of the neighboring
    /// user keys (or, under [`NeighborPolicy::Skip`], without them and
    /// without the IO to find them).
    fn miss_with_neighbors(
        &self,
        key: &[u8],
        ts_q: Timestamp,
        neighbors: NeighborPolicy,
    ) -> Result<TableGet, FsError> {
        if neighbors == NeighborPolicy::Skip {
            return Ok(TableGet::Miss { left: None, right: None });
        }
        Ok(TableGet::Miss {
            left: self.newest_before(key, ts_q)?,
            right: self.newest_after(key, ts_q)?,
        })
    }

    /// Newest record of the greatest user key strictly `< key`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn newest_before(&self, key: &[u8], ts_q: Timestamp) -> Result<Option<Record>, FsError> {
        if key <= &self.meta.smallest[..] {
            return Ok(None);
        }
        let seek = InternalKey::seek_to(key);
        let start = self.block_for(seek.encoded()).unwrap_or(self.index.len() - 1);
        // Scan the candidate block (and earlier ones if needed) for the last
        // record with user key < key.
        let mut block_idx = start;
        loop {
            let block = self.read_block(block_idx)?;
            let mut best: Option<Record> = None;
            for (ik_bytes, value) in block.iter() {
                let Some(ik) = InternalKey::from_encoded(&ik_bytes) else { continue };
                if ik.user_key() >= key {
                    break;
                }
                match &best {
                    Some(b) if b.key == ik.user_key() => {
                        // Keep the newest visible version of this key.
                        if ik.ts() <= ts_q && b.ts < ik.ts() {
                            best = Some(record_from(ik, value));
                        }
                    }
                    _ => {
                        if ik.ts() <= ts_q {
                            best = Some(record_from(ik, value));
                        } else {
                            // Version too new for the snapshot; remember key
                            // by falling through to older versions later in
                            // the block (they sort after).
                        }
                    }
                }
            }
            if let Some(b) = best {
                return Ok(Some(b));
            }
            if block_idx == 0 {
                return Ok(None);
            }
            block_idx -= 1;
        }
    }

    /// Newest record of the smallest user key strictly `> key`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn newest_after(&self, key: &[u8], ts_q: Timestamp) -> Result<Option<Record>, FsError> {
        if key >= &self.meta.largest[..] {
            return Ok(None);
        }
        // Seek past all versions of `key`: the successor of (key, ts=0).
        let after = InternalKey::new(key, 0, ValueKind::Delete);
        let mut block_idx = match self.block_for(after.encoded()) {
            Some(i) => i,
            None => return Ok(None),
        };
        loop {
            let block = self.read_block(block_idx)?;
            let mut iter = block.seek(after.encoded());
            for (ik_bytes, value) in iter.by_ref() {
                let Some(ik) = InternalKey::from_encoded(&ik_bytes) else { continue };
                if ik.user_key() <= key {
                    continue;
                }
                if ik.ts() <= ts_q {
                    return Ok(Some(record_from(ik, value)));
                }
                // Newer than snapshot: older versions of the same key follow.
            }
            block_idx += 1;
            if block_idx >= self.index.len() {
                return Ok(None);
            }
        }
    }

    /// Iterates every record in order.
    pub fn iter(&self) -> TableIter<'_> {
        TableIter { reader: self, block_idx: 0, entries: Vec::new(), pos: 0 }
    }

    /// All records with user key in `[from, to]` (inclusive), every version.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn range(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        let seek = InternalKey::seek_to(from);
        let Some(mut block_idx) = self.block_for(seek.encoded()) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        'outer: while block_idx < self.index.len() {
            let block = self.read_block(block_idx)?;
            for (ik_bytes, value) in block.seek(seek.encoded()) {
                let Some(ik) = InternalKey::from_encoded(&ik_bytes) else { continue };
                if ik.user_key() > to {
                    break 'outer;
                }
                if ik.user_key() >= from {
                    out.push(record_from(ik, value));
                }
            }
            block_idx += 1;
        }
        Ok(out)
    }

    /// The first record in the table.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn first_record(&self) -> Result<Record, FsError> {
        let block = self.read_block(0)?;
        let (ik_bytes, value) = block.iter().next().expect("non-empty table");
        let ik = InternalKey::from_encoded(&ik_bytes).expect("valid key");
        Ok(record_from(ik, value))
    }

    /// The newest record of the largest user key in the table.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO errors.
    pub fn last_key_newest(&self) -> Result<Record, FsError> {
        let largest = self.meta.largest.clone();
        match self.get(&largest, Timestamp::MAX >> 1, NeighborPolicy::Skip)? {
            TableGet::Hit(r) => Ok(r),
            TableGet::Miss { .. } => unreachable!("largest key must be present"),
        }
    }
}

fn record_from(ik: InternalKey, value: Bytes) -> Record {
    Record { key: Bytes::copy_from_slice(ik.user_key()), ts: ik.ts(), kind: ik.kind(), value }
}

/// Sequential iterator over all records of a table.
#[derive(Debug)]
pub struct TableIter<'a> {
    reader: &'a TableReader,
    block_idx: usize,
    entries: Vec<(Vec<u8>, Bytes)>,
    pos: usize,
}

impl<'a> Iterator for TableIter<'a> {
    type Item = Record;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.entries.len() {
                let (ik_bytes, value) = &self.entries[self.pos];
                self.pos += 1;
                let ik = InternalKey::from_encoded(ik_bytes)?;
                return Some(record_from(ik, value.clone()));
            }
            if self.block_idx >= self.reader.index.len() {
                return None;
            }
            let block = self.reader.read_block(self.block_idx).ok()?;
            self.entries = block.iter().collect();
            self.pos = 0;
            self.block_idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::EnvConfig;
    use sgx_sim::{CostModel, Platform};
    use sim_disk::{SimDisk, SimFs};

    fn test_env(config: EnvConfig) -> (Arc<StorageEnv>, Arc<SimFs>) {
        let platform = Platform::new(CostModel::paper_defaults());
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let sealer = sgx_sim::Sealer::new(elsm_crypto::sha256(b"t"), b"m");
        (StorageEnv::new(platform, fs.clone(), config, Some(sealer)), fs)
    }

    fn build_table(env: &Arc<StorageEnv>, fs: &Arc<SimFs>, records: &[Record]) -> TableReader {
        let file = fs.create("1.sst").unwrap();
        let mut b = TableBuilder::new(env.clone(), file.clone(), 1, TableOptions::default());
        for r in records {
            b.add(r);
        }
        let meta = b.finish();
        assert_eq!(meta.count, records.len() as u64);
        TableReader::open(env.clone(), file, 1).unwrap()
    }

    fn sample_records() -> Vec<Record> {
        // Keys k0000..k0199, two versions for every 10th key.
        let mut recs = Vec::new();
        for (ts, i) in (1000u64..).zip(0..200) {
            let key = format!("k{i:04}");
            if i % 10 == 0 {
                recs.push(Record::put(
                    key.clone().into_bytes(),
                    format!("new{i}").into_bytes(),
                    ts,
                ));
                recs.push(Record::put(key.into_bytes(), format!("old{i}").into_bytes(), ts - 500));
            } else {
                recs.push(Record::put(key.into_bytes(), format!("v{i}").into_bytes(), ts));
            }
        }
        recs
    }

    #[test]
    fn build_and_get_every_key() {
        let (env, fs) = test_env(EnvConfig::default());
        let reader = build_table(&env, &fs, &sample_records());
        for i in 0..200 {
            let key = format!("k{i:04}");
            match reader.get(key.as_bytes(), u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
                TableGet::Hit(r) => {
                    assert_eq!(&r.key[..], key.as_bytes());
                    if i % 10 == 0 {
                        assert_eq!(&r.value[..], format!("new{i}").as_bytes(), "newest wins");
                    }
                }
                TableGet::Miss { .. } => panic!("missing {key}"),
            }
        }
    }

    #[test]
    fn snapshot_get_sees_old_version() {
        let (env, fs) = test_env(EnvConfig::default());
        let reader = build_table(&env, &fs, &sample_records());
        // k0000 has versions at ts=1000 (new) and ts=500 (old).
        match reader.get(b"k0000", 999, NeighborPolicy::Required).unwrap() {
            TableGet::Hit(r) => assert_eq!(&r.value[..], b"old0"),
            _ => panic!("expected old version"),
        }
    }

    #[test]
    fn miss_returns_bounding_neighbors() {
        let (env, fs) = test_env(EnvConfig::default());
        let recs = vec![
            Record::put(b"b".as_slice(), b"1".as_slice(), 1),
            Record::put(b"d".as_slice(), b"2".as_slice(), 2),
            Record::put(b"f".as_slice(), b"3".as_slice(), 3),
        ];
        let reader = build_table(&env, &fs, &recs);
        match reader.get(b"c", u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
            TableGet::Miss { left, right } => {
                assert_eq!(&left.unwrap().key[..], b"b");
                assert_eq!(&right.unwrap().key[..], b"d");
            }
            _ => panic!("expected miss"),
        }
        match reader.get(b"a", u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
            TableGet::Miss { left, right } => {
                assert!(left.is_none());
                assert_eq!(&right.unwrap().key[..], b"b");
            }
            _ => panic!("expected miss"),
        }
        match reader.get(b"z", u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
            TableGet::Miss { left, right } => {
                assert_eq!(&left.unwrap().key[..], b"f");
                assert!(right.is_none());
            }
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn neighbors_return_newest_version() {
        let (env, fs) = test_env(EnvConfig::default());
        let recs = vec![
            Record::put(b"b".as_slice(), b"new".as_slice(), 10),
            Record::put(b"b".as_slice(), b"old".as_slice(), 1),
            Record::put(b"d".as_slice(), b"x".as_slice(), 5),
        ];
        let reader = build_table(&env, &fs, &recs);
        match reader.get(b"c", u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
            TableGet::Miss { left, .. } => {
                let l = left.unwrap();
                assert_eq!((&l.key[..], l.ts), (b"b".as_slice(), 10));
            }
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn iter_returns_all_in_order() {
        let (env, fs) = test_env(EnvConfig::default());
        let recs = sample_records();
        let reader = build_table(&env, &fs, &recs);
        let got: Vec<Record> = reader.iter().collect();
        assert_eq!(got.len(), recs.len());
        for w in got.windows(2) {
            assert!(
                w[0].internal_key().encoded() < w[1].internal_key().encoded(),
                "iterator must be sorted"
            );
        }
    }

    #[test]
    fn range_is_inclusive_and_complete() {
        let (env, fs) = test_env(EnvConfig::default());
        let reader = build_table(&env, &fs, &sample_records());
        let got = reader.range(b"k0010", b"k0020").unwrap();
        let keys: Vec<String> =
            got.iter().map(|r| String::from_utf8_lossy(&r.key).into_owned()).collect();
        assert!(keys.contains(&"k0010".to_string()));
        assert!(keys.contains(&"k0020".to_string()));
        assert!(!keys.contains(&"k0021".to_string()));
        // k0010 and k0020 have 2 versions each: 11 keys + 2 extra versions.
        assert_eq!(got.len(), 13);
    }

    #[test]
    fn sealed_tables_round_trip() {
        let (env, fs) = test_env(EnvConfig {
            sealed_files: true,
            block_cache_bytes: 0,
            ..EnvConfig::default()
        });
        let reader = build_table(&env, &fs, &sample_records());
        match reader.get(b"k0042", u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
            TableGet::Hit(r) => assert_eq!(&r.value[..], b"v42"),
            _ => panic!("sealed table must still serve reads"),
        }
    }

    #[test]
    fn mmap_tables_round_trip() {
        let (env, fs) =
            test_env(EnvConfig { use_mmap: true, block_cache_bytes: 0, ..EnvConfig::default() });
        let reader = build_table(&env, &fs, &sample_records());
        let ocalls_before = env.platform().stats().ocalls;
        match reader.get(b"k0042", u64::MAX >> 1, NeighborPolicy::Required).unwrap() {
            TableGet::Hit(r) => assert_eq!(&r.value[..], b"v42"),
            _ => panic!("mmap table must serve reads"),
        }
        assert_eq!(env.platform().stats().ocalls, ocalls_before, "mmap read has no OCall");
    }

    #[test]
    fn bloom_probe_charges_metadata_touches() {
        let (env, fs) = test_env(EnvConfig::default());
        let reader = build_table(&env, &fs, &sample_records());
        let before = env.platform().stats().enclave_copy_bytes;
        let _ = reader.get(b"absent-key", u64::MAX >> 1, NeighborPolicy::Required).unwrap();
        assert!(
            env.platform().stats().enclave_copy_bytes > before,
            "probe must touch enclave metadata"
        );
    }

    #[test]
    fn corrupt_footer_rejected() {
        let (env, fs) = test_env(EnvConfig::default());
        let file = fs.create("bad.sst").unwrap();
        file.append(&[0u8; 100]);
        assert!(TableReader::open(env, file, 9).is_err());
    }

    #[test]
    fn meta_tracks_bounds() {
        let (env, fs) = test_env(EnvConfig::default());
        let reader = build_table(&env, &fs, &sample_records());
        assert_eq!(&reader.meta().smallest[..], b"k0000");
        assert_eq!(&reader.meta().largest[..], b"k0199");
        assert_eq!(reader.meta().count, 220);
    }
}
