//! Unit tests for [`crate::version::Run`]: cross-file search, neighbors,
//! and ranges over multi-file sorted runs.

#![cfg(test)]

use std::sync::Arc;

use crate::env::{EnvConfig, StorageEnv};
use crate::record::{Record, Timestamp};
use crate::sstable::{NeighborPolicy, TableBuilder, TableGet, TableOptions, TableReader};
use crate::version::Run;
use sgx_sim::Platform;
use sim_disk::{SimDisk, SimFs};

fn env() -> (Arc<StorageEnv>, Arc<SimFs>) {
    let platform = Platform::with_defaults();
    let fs = SimFs::new(SimDisk::new(platform.clone()));
    (StorageEnv::new(platform, fs.clone(), EnvConfig::default(), None), fs)
}

/// Builds a run of three files: keys a..h, i..p, q..x (one record each).
fn three_file_run() -> Run {
    let (env, fs) = env();
    let mut tables = Vec::new();
    for (file_no, range) in [(1u64, b'a'..=b'h'), (2, b'i'..=b'p'), (3, b'q'..=b'x')] {
        let file = fs.create(&format!("{file_no}.sst")).unwrap();
        let mut b = TableBuilder::new(env.clone(), file.clone(), file_no, TableOptions::default());
        for (i, k) in range.enumerate() {
            b.add(&Record::put(
                vec![k],
                format!("v{}", k as char).into_bytes(),
                i as u64 + file_no * 100,
            ));
        }
        b.finish();
        tables.push(Arc::new(TableReader::open(env.clone(), file, file_no).unwrap()));
    }
    Run::new(tables)
}

const TS: Timestamp = Timestamp::MAX >> 1;

#[test]
fn get_hits_in_every_file() {
    let run = three_file_run();
    for k in [b'a', b'h', b'i', b'p', b'q', b'x'] {
        match run.get(&[k], TS, NeighborPolicy::Required).unwrap() {
            TableGet::Hit(r) => assert_eq!(r.key[0], k),
            other => panic!("expected hit for {}: {other:?}", k as char),
        }
    }
}

#[test]
fn neighbors_cross_file_boundaries() {
    let run = three_file_run();
    // No key between 'h' (file 1) and 'i' (file 2) exists; query a gap by
    // deleting nothing — keys are contiguous, so probe before 'a' and
    // after 'x' instead, plus the synthetic key "h\x01" between files.
    match run.get(b"h\x01", TS, NeighborPolicy::Required).unwrap() {
        TableGet::Miss { left, right } => {
            assert_eq!(&left.unwrap().key[..], b"h", "left neighbor from file 1");
            assert_eq!(&right.unwrap().key[..], b"i", "right neighbor from file 2");
        }
        other => panic!("expected miss: {other:?}"),
    }
}

#[test]
fn boundary_misses_have_one_sided_neighbors() {
    let run = three_file_run();
    match run.get(b"A", TS, NeighborPolicy::Required).unwrap() {
        TableGet::Miss { left, right } => {
            assert!(left.is_none());
            assert_eq!(&right.unwrap().key[..], b"a");
        }
        other => panic!("{other:?}"),
    }
    match run.get(b"z", TS, NeighborPolicy::Required).unwrap() {
        TableGet::Miss { left, right } => {
            assert_eq!(&left.unwrap().key[..], b"x");
            assert!(right.is_none());
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn range_spans_files() {
    let run = three_file_run();
    let got = run.range(b"f", b"k").unwrap();
    let keys: Vec<u8> = got.iter().map(|r| r.key[0]).collect();
    assert_eq!(keys, vec![b'f', b'g', b'h', b'i', b'j', b'k']);
}

#[test]
fn totals_aggregate_files() {
    let run = three_file_run();
    assert_eq!(run.total_records(), 24);
    assert_eq!(&run.smallest().unwrap()[..], b"a");
    assert_eq!(&run.largest().unwrap()[..], b"x");
    assert_eq!(run.iter_records().count(), 24);
}

#[test]
#[should_panic(expected = "disjoint and sorted")]
fn overlapping_tables_rejected() {
    let (env, fs) = env();
    let mut tables = Vec::new();
    for file_no in [1u64, 2] {
        let file = fs.create(&format!("{file_no}.sst")).unwrap();
        let mut b = TableBuilder::new(env.clone(), file.clone(), file_no, TableOptions::default());
        b.add(&Record::put(b"same".as_slice(), b"v".as_slice(), file_no));
        b.finish();
        tables.push(Arc::new(TableReader::open(env.clone(), file, file_no).unwrap()));
    }
    let _ = Run::new(tables);
}
