//! K-way merging of sorted record streams (the compaction merge step).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::events::RecordSource;
use crate::record::{internal_cmp, Record};

/// One sorted input stream, tagged with its source level/file.
pub struct MergeInput {
    /// Where the records come from (level/file), for listener callbacks.
    pub source: RecordSource,
    /// Records in internal-key order.
    pub iter: Box<dyn Iterator<Item = Record>>,
}

impl std::fmt::Debug for MergeInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MergeInput(source={:?})", self.source)
    }
}

struct HeapEntry {
    record: Record,
    input_idx: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for ascending merge. Ties (same
        // internal key cannot happen — unique timestamps) fall back to
        // input index for determinism.
        internal_cmp(other.record.internal_key().encoded(), self.record.internal_key().encoded())
            .then_with(|| other.input_idx.cmp(&self.input_idx))
    }
}

/// Merges sorted inputs into one sorted stream of `(source, record)`.
///
/// # Examples
///
/// ```
/// use lsm_store::merge::{KWayMerge, MergeInput};
/// use lsm_store::events::RecordSource;
/// use lsm_store::record::Record;
///
/// let a = vec![Record::put(b"a".as_slice(), b"1".as_slice(), 1)];
/// let b = vec![Record::put(b"b".as_slice(), b"2".as_slice(), 2)];
/// let merged: Vec<_> = KWayMerge::new(vec![
///     MergeInput { source: RecordSource { level: 1, file_no: 1 }, iter: Box::new(a.into_iter()) },
///     MergeInput { source: RecordSource { level: 2, file_no: 2 }, iter: Box::new(b.into_iter()) },
/// ])
/// .collect();
/// assert_eq!(merged.len(), 2);
/// assert_eq!(&merged[0].1.key[..], b"a");
/// ```
pub struct KWayMerge {
    inputs: Vec<MergeInput>,
    heap: BinaryHeap<HeapEntry>,
}

impl std::fmt::Debug for KWayMerge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KWayMerge({} inputs)", self.inputs.len())
    }
}

impl KWayMerge {
    /// Builds a merge over the given inputs.
    pub fn new(mut inputs: Vec<MergeInput>) -> Self {
        let mut heap = BinaryHeap::new();
        for (i, input) in inputs.iter_mut().enumerate() {
            if let Some(record) = input.iter.next() {
                heap.push(HeapEntry { record, input_idx: i });
            }
        }
        KWayMerge { inputs, heap }
    }
}

impl Iterator for KWayMerge {
    type Item = (RecordSource, Record);

    fn next(&mut self) -> Option<Self::Item> {
        let entry = self.heap.pop()?;
        let source = self.inputs[entry.input_idx].source;
        if let Some(next) = self.inputs[entry.input_idx].iter.next() {
            self.heap.push(HeapEntry { record: next, input_idx: entry.input_idx });
        }
        Some((source, entry.record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(level: usize, recs: Vec<Record>) -> MergeInput {
        MergeInput {
            source: RecordSource { level, file_no: level as u64 },
            iter: Box::new(recs.into_iter()),
        }
    }

    #[test]
    fn merges_disjoint_streams() {
        let a: Vec<Record> = (0..10)
            .map(|i| Record::put(format!("a{i}").into_bytes(), b"x".as_slice(), i))
            .collect();
        let b: Vec<Record> = (0..10)
            .map(|i| Record::put(format!("b{i}").into_bytes(), b"y".as_slice(), 100 + i))
            .collect();
        let merged: Vec<_> = KWayMerge::new(vec![input(1, a), input(2, b)]).collect();
        assert_eq!(merged.len(), 20);
        for w in merged.windows(2) {
            assert!(
                internal_cmp(w[0].1.internal_key().encoded(), w[1].1.internal_key().encoded())
                    == Ordering::Less
            );
        }
    }

    #[test]
    fn interleaves_same_key_newest_first() {
        // Level 1 has the newer version (Lemma 5.4).
        let newer = vec![Record::put(b"k".as_slice(), b"new".as_slice(), 10)];
        let older = vec![Record::put(b"k".as_slice(), b"old".as_slice(), 2)];
        let merged: Vec<_> = KWayMerge::new(vec![input(1, newer), input(2, older)]).collect();
        assert_eq!(&merged[0].1.value[..], b"new");
        assert_eq!(&merged[1].1.value[..], b"old");
    }

    #[test]
    fn sources_are_preserved() {
        let a = vec![Record::put(b"a".as_slice(), b"1".as_slice(), 1)];
        let b = vec![Record::put(b"b".as_slice(), b"2".as_slice(), 2)];
        let merged: Vec<_> = KWayMerge::new(vec![input(1, a), input(2, b)]).collect();
        assert_eq!(merged[0].0.level, 1);
        assert_eq!(merged[1].0.level, 2);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let merged: Vec<_> = KWayMerge::new(vec![input(1, vec![]), input(2, vec![])]).collect();
        assert!(merged.is_empty());
        let merged: Vec<_> = KWayMerge::new(vec![]).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn three_way_merge_is_sorted() {
        let mk = |offset: u64| -> Vec<Record> {
            (0..30u64)
                .map(|i| {
                    Record::put(
                        format!("key{:04}", (i * 7 + offset) % 100).into_bytes(),
                        b"v".as_slice(),
                        offset * 1000 + i,
                    )
                })
                .collect::<Vec<_>>()
        };
        let sort = |mut v: Vec<Record>| {
            v.sort_by(|a, b| internal_cmp(a.internal_key().encoded(), b.internal_key().encoded()));
            v
        };
        let merged: Vec<_> = KWayMerge::new(vec![
            input(1, sort(mk(0))),
            input(2, sort(mk(1))),
            input(3, sort(mk(2))),
        ])
        .collect();
        assert_eq!(merged.len(), 90);
        for w in merged.windows(2) {
            assert!(
                internal_cmp(w[0].1.internal_key().encoded(), w[1].1.internal_key().encoded())
                    != Ordering::Greater
            );
        }
    }
}
