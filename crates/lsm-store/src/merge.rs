//! K-way merging of sorted record streams (the compaction merge step).
//!
//! The heap is a hand-rolled array min-heap rather than
//! `std::collections::BinaryHeap`: its backing `Vec` is allocated once at
//! construction (capacity = input count) and **reused for every record**.
//! Advancing an input is a fused replace-top + sift-down — one sift, no
//! push/pop churn, no per-record allocation — which matters because the
//! merge sits on the compaction hot path that every flushed byte funnels
//! through.

use std::cmp::Ordering;

use crate::events::RecordSource;
use crate::record::{internal_cmp, Record};

/// One sorted input stream, tagged with its source level/file.
pub struct MergeInput {
    /// Where the records come from (level/file), for listener callbacks.
    pub source: RecordSource,
    /// Records in internal-key order.
    pub iter: Box<dyn Iterator<Item = Record>>,
}

impl std::fmt::Debug for MergeInput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MergeInput(source={:?})", self.source)
    }
}

struct HeapEntry {
    record: Record,
    input_idx: usize,
}

impl HeapEntry {
    /// Ascending internal-key order; ties (same internal key cannot
    /// happen — unique timestamps) fall back to input index for
    /// determinism.
    fn lt(&self, other: &Self) -> bool {
        internal_cmp(self.record.internal_key().encoded(), other.record.internal_key().encoded())
            .then_with(|| self.input_idx.cmp(&other.input_idx))
            == Ordering::Less
    }
}

/// Merges sorted inputs into one sorted stream of `(source, record)`.
///
/// # Examples
///
/// ```
/// use lsm_store::merge::{KWayMerge, MergeInput};
/// use lsm_store::events::RecordSource;
/// use lsm_store::record::Record;
///
/// let a = vec![Record::put(b"a".as_slice(), b"1".as_slice(), 1)];
/// let b = vec![Record::put(b"b".as_slice(), b"2".as_slice(), 2)];
/// let merged: Vec<_> = KWayMerge::new(vec![
///     MergeInput { source: RecordSource { level: 1, file_no: 1 }, iter: Box::new(a.into_iter()) },
///     MergeInput { source: RecordSource { level: 2, file_no: 2 }, iter: Box::new(b.into_iter()) },
/// ])
/// .collect();
/// assert_eq!(merged.len(), 2);
/// assert_eq!(&merged[0].1.key[..], b"a");
/// ```
pub struct KWayMerge {
    inputs: Vec<MergeInput>,
    /// Array min-heap; capacity fixed at construction, never grows.
    heap: Vec<HeapEntry>,
}

impl std::fmt::Debug for KWayMerge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KWayMerge({} inputs)", self.inputs.len())
    }
}

impl KWayMerge {
    /// Builds a merge over the given inputs.
    pub fn new(mut inputs: Vec<MergeInput>) -> Self {
        let mut heap = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter_mut().enumerate() {
            if let Some(record) = input.iter.next() {
                heap.push(HeapEntry { record, input_idx: i });
            }
        }
        // Floyd heap construction: O(k) once, then the heap only shrinks.
        let mut merge = KWayMerge { inputs, heap };
        for i in (0..merge.heap.len() / 2).rev() {
            merge.sift_down(i);
        }
        merge
    }

    /// The heap's backing capacity (pinned by the buffer-reuse test: it
    /// must never grow past the input count during a merge).
    #[cfg(test)]
    pub(crate) fn heap_capacity(&self) -> usize {
        self.heap.capacity()
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (left, right) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if left < self.heap.len() && self.heap[left].lt(&self.heap[smallest]) {
                smallest = left;
            }
            if right < self.heap.len() && self.heap[right].lt(&self.heap[smallest]) {
                smallest = right;
            }
            if smallest == i {
                return;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

impl Iterator for KWayMerge {
    type Item = (RecordSource, Record);

    fn next(&mut self) -> Option<Self::Item> {
        if self.heap.is_empty() {
            return None;
        }
        let input_idx = self.heap[0].input_idx;
        let source = self.inputs[input_idx].source;
        let record = match self.inputs[input_idx].iter.next() {
            // Fused replace-top: swap the successor into the root slot and
            // restore the invariant with a single sift-down.
            Some(next) => {
                let out =
                    std::mem::replace(&mut self.heap[0], HeapEntry { record: next, input_idx });
                self.sift_down(0);
                out.record
            }
            // Input exhausted: shrink the heap in place.
            None => {
                let out = self.heap.swap_remove(0);
                self.sift_down(0);
                out.record
            }
        };
        Some((source, record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(level: usize, recs: Vec<Record>) -> MergeInput {
        MergeInput {
            source: RecordSource { level, file_no: level as u64 },
            iter: Box::new(recs.into_iter()),
        }
    }

    #[test]
    fn merges_disjoint_streams() {
        let a: Vec<Record> = (0..10)
            .map(|i| Record::put(format!("a{i}").into_bytes(), b"x".as_slice(), i))
            .collect();
        let b: Vec<Record> = (0..10)
            .map(|i| Record::put(format!("b{i}").into_bytes(), b"y".as_slice(), 100 + i))
            .collect();
        let merged: Vec<_> = KWayMerge::new(vec![input(1, a), input(2, b)]).collect();
        assert_eq!(merged.len(), 20);
        for w in merged.windows(2) {
            assert!(
                internal_cmp(w[0].1.internal_key().encoded(), w[1].1.internal_key().encoded())
                    == Ordering::Less
            );
        }
    }

    #[test]
    fn interleaves_same_key_newest_first() {
        // Level 1 has the newer version (Lemma 5.4).
        let newer = vec![Record::put(b"k".as_slice(), b"new".as_slice(), 10)];
        let older = vec![Record::put(b"k".as_slice(), b"old".as_slice(), 2)];
        let merged: Vec<_> = KWayMerge::new(vec![input(1, newer), input(2, older)]).collect();
        assert_eq!(&merged[0].1.value[..], b"new");
        assert_eq!(&merged[1].1.value[..], b"old");
    }

    #[test]
    fn sources_are_preserved() {
        let a = vec![Record::put(b"a".as_slice(), b"1".as_slice(), 1)];
        let b = vec![Record::put(b"b".as_slice(), b"2".as_slice(), 2)];
        let merged: Vec<_> = KWayMerge::new(vec![input(1, a), input(2, b)]).collect();
        assert_eq!(merged[0].0.level, 1);
        assert_eq!(merged[1].0.level, 2);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let merged: Vec<_> = KWayMerge::new(vec![input(1, vec![]), input(2, vec![])]).collect();
        assert!(merged.is_empty());
        let merged: Vec<_> = KWayMerge::new(vec![]).collect();
        assert!(merged.is_empty());
    }

    #[test]
    fn three_way_merge_is_sorted() {
        let mk = |offset: u64| -> Vec<Record> {
            (0..30u64)
                .map(|i| {
                    Record::put(
                        format!("key{:04}", (i * 7 + offset) % 100).into_bytes(),
                        b"v".as_slice(),
                        offset * 1000 + i,
                    )
                })
                .collect::<Vec<_>>()
        };
        let sort = |mut v: Vec<Record>| {
            v.sort_by(|a, b| internal_cmp(a.internal_key().encoded(), b.internal_key().encoded()));
            v
        };
        let merged: Vec<_> = KWayMerge::new(vec![
            input(1, sort(mk(0))),
            input(2, sort(mk(1))),
            input(3, sort(mk(2))),
        ])
        .collect();
        assert_eq!(merged.len(), 90);
        for w in merged.windows(2) {
            assert!(
                internal_cmp(w[0].1.internal_key().encoded(), w[1].1.internal_key().encoded())
                    != Ordering::Greater
            );
        }
    }

    /// The buffer-reuse microbench: an 8-way merge of 200k records must
    /// (a) never grow the heap's backing buffer past the input count —
    /// the per-record allocation the old `BinaryHeap` push/pop pattern
    /// paid is gone — and (b) sustain a floor throughput even in debug
    /// builds (a generous smoke bound that catches an accidental return
    /// to per-record heap rebuilds, which blow the bound by orders of
    /// magnitude).
    #[test]
    fn merge_reuses_buffers_and_holds_throughput_floor() {
        const WAYS: usize = 8;
        const PER_WAY: u64 = 25_000;
        let inputs: Vec<MergeInput> = (0..WAYS)
            .map(|w| {
                let recs: Vec<Record> = (0..PER_WAY)
                    .map(|i| {
                        Record::put(
                            format!("key{:08}", i * WAYS as u64 + w as u64).into_bytes(),
                            b"value-payload".as_slice(),
                            i * WAYS as u64 + w as u64 + 1,
                        )
                    })
                    .collect();
                input(w + 1, recs)
            })
            .collect();
        let mut merge = KWayMerge::new(inputs);
        let cap0 = merge.heap_capacity();
        assert!(cap0 <= WAYS, "initial heap capacity bounded by input count");
        let start = std::time::Instant::now();
        let mut n = 0u64;
        let mut last: Option<Record> = None;
        for (_, r) in merge.by_ref() {
            if let Some(prev) = &last {
                assert!(
                    internal_cmp(prev.internal_key().encoded(), r.internal_key().encoded())
                        == Ordering::Less
                );
            }
            last = Some(r);
            n += 1;
        }
        let elapsed = start.elapsed();
        assert_eq!(n, WAYS as u64 * PER_WAY);
        assert_eq!(merge.heap_capacity(), cap0, "heap buffer must be reused, never reallocated");
        let per_sec = n as f64 / elapsed.as_secs_f64().max(1e-9);
        assert!(
            per_sec > 100_000.0,
            "merge throughput collapsed to {per_sec:.0} records/s ({elapsed:?} for {n} records)"
        );
    }
}
