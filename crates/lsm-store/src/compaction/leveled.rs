//! Leveled compaction: the store's original policy, extracted.
//!
//! Flushes roll-merge into level 1; whenever level `i` exceeds its
//! geometric budget (`level1_max_bytes * multiplier^(i-1)`), the whole
//! level merges into `i+1` — the paper's `COMPACTION(Li, Li+1)` (§5.3).
//! A wave pairs levels greedily from the top, skipping a consumed output
//! level so jobs stay disjoint; repeated waves reach the same fixpoint
//! the old cascading loop did.

use super::{CompactionJob, CompactionStrategy, FlushPlan, LevelsView};
use crate::options::Options;

/// Whole-level rolling merges with geometric budgets.
#[derive(Debug, Clone, Copy, Default)]
pub struct Leveled;

impl CompactionStrategy for Leveled {
    fn name(&self) -> &'static str {
        "leveled"
    }

    fn stacked(&self) -> bool {
        false
    }

    fn flush_plan(&self, _view: &LevelsView, _opts: &Options) -> FlushPlan {
        FlushPlan { target: 1, merge_existing: true }
    }

    fn pick_jobs(&self, view: &LevelsView, opts: &Options) -> Vec<CompactionJob> {
        let mut jobs = Vec::new();
        let mut level = 1;
        while level < opts.max_levels {
            let over = view.bytes(level).is_some_and(|b| b > opts.level_target_bytes(level));
            if over {
                jobs.push(CompactionJob {
                    input_levels: vec![level, level + 1],
                    output_level: level + 1,
                    purge: level + 1 >= opts.max_levels,
                });
                // The output level is consumed by this job; the next
                // candidate pair starts past it.
                level += 2;
            } else {
                level += 1;
            }
        }
        jobs
    }

    fn major_job(&self, view: &LevelsView, opts: &Options) -> Option<CompactionJob> {
        let input_levels = view.non_empty();
        if input_levels.len() < 2 {
            return None;
        }
        let mut input_levels = input_levels;
        let output_level = opts.max_levels.max(*input_levels.last().expect("non-empty"));
        if !input_levels.contains(&output_level) {
            input_levels.push(output_level);
        }
        Some(CompactionJob { input_levels, output_level, purge: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(sizes: &[Option<u64>]) -> LevelsView {
        let mut v = vec![None];
        v.extend_from_slice(sizes);
        LevelsView::new(v)
    }

    fn opts() -> Options {
        Options { level1_max_bytes: 100, level_multiplier: 10, max_levels: 4, ..Options::default() }
    }

    #[test]
    fn within_budget_means_no_jobs() {
        let jobs = Leveled.pick_jobs(&view(&[Some(100), Some(900), None]), &opts());
        assert!(jobs.is_empty());
    }

    #[test]
    fn over_budget_levels_pair_downward_disjointly() {
        // Levels 1 and 2 both over budget: one wave takes (1,2), leaving
        // (2,3) — which now depends on the merged level 2 — for the next.
        let jobs = Leveled.pick_jobs(&view(&[Some(500), Some(5000), None]), &opts());
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].input_levels, vec![1, 2]);
        assert_eq!(jobs[0].output_level, 2);
        assert!(!jobs[0].purge);
    }

    #[test]
    fn disjoint_levels_compact_in_one_wave() {
        // Level 1 and level 3 over budget: both jobs fit one wave.
        let jobs = Leveled.pick_jobs(&view(&[Some(500), Some(10), Some(20_000)]), &opts());
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].input_levels, vec![1, 2]);
        assert_eq!(jobs[1].input_levels, vec![3, 4]);
        assert!(jobs[1].purge, "merging into the bottom level purges tombstones");
    }

    #[test]
    fn major_job_covers_every_run() {
        let job = Leveled.major_job(&view(&[Some(10), None, Some(20)]), &opts()).unwrap();
        assert_eq!(job.input_levels, vec![1, 3, 4]);
        assert_eq!(job.output_level, 4);
        assert!(job.purge);
        assert!(Leveled.major_job(&view(&[Some(10), None]), &opts()).is_none());
    }
}
