//! Size-tiered compaction (STCS).
//!
//! Flushed runs stack upward — each flush lands one slot above the
//! highest occupied level, so a higher slot is always fresher (the
//! stacked read order of the no-compaction mode). When enough
//! similar-sized runs accumulate in adjacent occupied slots, they merge
//! into the group's **oldest** slot; the slots above it become holes.
//! Group members are contiguous among occupied slots, so every run
//! outside the group is either entirely older or entirely fresher than
//! the whole group and the freshness order survives the merge.
//!
//! Write amplification is far below leveled's rolling merges (each
//! record is rewritten once per tier, not once per flush), at the cost
//! of more runs for reads to visit — exactly the trade the extended
//! Figure 7 sweeps.

use super::{CompactionJob, CompactionStrategy, FlushPlan, LevelsView};
use crate::options::Options;

/// Tuning for [`Tiered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TieredConfig {
    /// Minimum adjacent similar-sized runs before a merge triggers.
    pub min_merge_width: usize,
    /// Maximum runs one job merges.
    pub max_merge_width: usize,
    /// Two runs are "similar-sized" when the larger is at most this
    /// percentage of the smaller (150 = within 1.5×).
    pub size_ratio_pct: u64,
}

impl Default for TieredConfig {
    fn default() -> Self {
        TieredConfig { min_merge_width: 4, max_merge_width: 8, size_ratio_pct: 150 }
    }
}

/// Size-tiered strategy (see the module docs).
#[derive(Debug, Clone)]
pub struct Tiered {
    config: TieredConfig,
}

impl Tiered {
    /// Builds the strategy with the given tuning.
    pub fn new(config: TieredConfig) -> Self {
        let config = TieredConfig {
            min_merge_width: config.min_merge_width.max(2),
            max_merge_width: config.max_merge_width.max(config.min_merge_width.max(2)),
            size_ratio_pct: config.size_ratio_pct.max(100),
        };
        Tiered { config }
    }
}

impl CompactionStrategy for Tiered {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn stacked(&self) -> bool {
        true
    }

    fn flush_plan(&self, view: &LevelsView, _opts: &Options) -> FlushPlan {
        // A fresh run must land above *every* occupied slot (not the
        // first hole — holes sit below fresher runs).
        let target = view.highest_non_empty().map_or(1, |h| h + 1);
        FlushPlan { target, merge_existing: false }
    }

    fn pick_jobs(&self, view: &LevelsView, _opts: &Options) -> Vec<CompactionJob> {
        let slots = view.non_empty();
        let mut jobs = Vec::new();
        let mut i = 0;
        while i < slots.len() {
            // Grow a window of adjacent occupied slots while every member
            // stays within the size ratio of every other.
            let mut j = i;
            let mut min_b = view.bytes(slots[i]).expect("non-empty slot");
            let mut max_b = min_b;
            while j + 1 < slots.len() && (j + 1 - i) < self.config.max_merge_width {
                let b = view.bytes(slots[j + 1]).expect("non-empty slot");
                let (lo, hi) = (min_b.min(b), max_b.max(b));
                if hi * 100 > lo.max(1) * self.config.size_ratio_pct {
                    break;
                }
                j += 1;
                min_b = lo;
                max_b = hi;
            }
            if j + 1 - i >= self.config.min_merge_width {
                jobs.push(CompactionJob {
                    input_levels: slots[i..=j].to_vec(),
                    output_level: slots[i],
                    // Only the group holding the store's oldest run may
                    // purge: anything else still has older data below it.
                    purge: i == 0,
                });
                i = j + 1;
            } else {
                i += 1;
            }
        }
        jobs
    }

    fn major_job(&self, view: &LevelsView, _opts: &Options) -> Option<CompactionJob> {
        let input_levels = view.non_empty();
        if input_levels.len() < 2 {
            return None;
        }
        let output_level = input_levels[0];
        Some(CompactionJob { input_levels, output_level, purge: true })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(sizes: &[Option<u64>]) -> LevelsView {
        let mut v = vec![None];
        v.extend_from_slice(sizes);
        LevelsView::new(v)
    }

    fn tiered() -> Tiered {
        Tiered::new(TieredConfig::default())
    }

    #[test]
    fn flushes_stack_above_every_occupied_slot() {
        let opts = Options::default();
        assert_eq!(tiered().flush_plan(&view(&[]), &opts).target, 1);
        // Holes at 2 and 3 (a past group merge) must not swallow a fresh
        // run — it goes above slot 4.
        let plan = tiered().flush_plan(&view(&[Some(40), None, None, Some(10)]), &opts);
        assert_eq!(plan.target, 5);
        assert!(!plan.merge_existing);
    }

    #[test]
    fn similar_sized_adjacent_runs_merge_into_oldest_slot() {
        let jobs = tiered()
            .pick_jobs(&view(&[Some(10), Some(11), Some(9), Some(10)]), &Options::default());
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].input_levels, vec![1, 2, 3, 4]);
        assert_eq!(jobs[0].output_level, 1);
        assert!(jobs[0].purge, "the group holds the oldest run");
    }

    #[test]
    fn dissimilar_sizes_split_groups() {
        // A big old run below four small fresh ones: only the small group
        // merges, and it may not purge (older data exists below it).
        let jobs = tiered().pick_jobs(
            &view(&[Some(1000), Some(10), Some(10), Some(10), Some(10)]),
            &Options::default(),
        );
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].input_levels, vec![2, 3, 4, 5]);
        assert_eq!(jobs[0].output_level, 2);
        assert!(!jobs[0].purge);
    }

    #[test]
    fn groups_skip_holes_but_stay_contiguous_in_occupied_order() {
        let jobs = tiered().pick_jobs(
            &view(&[Some(10), None, Some(10), None, Some(10), Some(10)]),
            &Options::default(),
        );
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].input_levels, vec![1, 3, 5, 6]);
        assert_eq!(jobs[0].output_level, 1);
    }

    #[test]
    fn fewer_than_min_width_runs_stay_put() {
        let jobs = tiered().pick_jobs(&view(&[Some(10), Some(10), Some(10)]), &Options::default());
        assert!(jobs.is_empty());
    }

    #[test]
    fn major_job_merges_everything_into_the_oldest_slot() {
        let job = tiered()
            .major_job(&view(&[Some(1000), None, Some(10), Some(10)]), &Options::default())
            .unwrap();
        assert_eq!(job.input_levels, vec![1, 3, 4]);
        assert_eq!(job.output_level, 1);
        assert!(job.purge);
    }
}
