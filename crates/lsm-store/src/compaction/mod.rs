//! Pluggable compaction: strategies, jobs, and the wave scheduler model.
//!
//! Compaction is rebuilt here as a subsystem (ROADMAP item 3). A
//! [`CompactionStrategy`] inspects an immutable [`LevelsView`] of the
//! current [`Version`](crate::version::Version) and proposes
//! **non-overlapping** [`CompactionJob`]s — jobs whose input/output level
//! sets are pairwise disjoint, so the store can merge several of them
//! concurrently on worker threads against one pinned base version and
//! install each output as its own epoch-versioned swap. Selection and
//! install run under the maintenance mutex; the merge IO does not.
//!
//! Two strategies ship:
//!
//! * [`Leveled`](leveled::Leveled) — the store's original behavior,
//!   extracted: whole-level rolling merges `COMPACTION(Li, Li+1)` when a
//!   level exceeds its geometric budget (the paper's §5.3 model);
//! * [`Tiered`](tiered::Tiered) — size-tiered (STCS): flushed runs stack
//!   upward, and groups of similar-sized adjacent runs merge into the
//!   group's oldest slot, trading read fan-out for a much lower write
//!   amplification (the knob Figure 7 sweeps).
//!
//! Jobs are **strategy-deterministic**: the same view and options always
//! produce the same job list, which is what lets replicas replay a
//! primary's shipped job descriptions bit-identically instead of
//! re-deciding compaction locally.

pub mod leveled;
pub mod tiered;

use crate::encoding::{get_fixed_u64, put_fixed_u64};
use crate::options::Options;
use crate::version::Version;

pub use leveled::Leveled;
pub use tiered::{Tiered, TieredConfig};

/// One unit of compaction work: merge every run of `input_levels` into a
/// single run installed at `output_level`.
///
/// `input_levels` is ascending and always contains `output_level`. Two
/// jobs of one wave never share a level, which is the scheduler's
/// non-overlap invariant: concurrent jobs read and replace disjoint
/// slots of the base version, so their installs commute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionJob {
    /// Levels whose runs are merged (ascending; includes `output_level`).
    pub input_levels: Vec<usize>,
    /// Level the merged run installs at (the group's oldest slot).
    pub output_level: usize,
    /// Whether tombstones (and the versions they shadow) may be purged:
    /// true only when the job includes the oldest data in the store, so
    /// no older level could still hold a shadowed version (§5.4).
    pub purge: bool,
}

impl CompactionJob {
    /// Serializes the job (fixed-width, for the replication wire format).
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_fixed_u64(out, self.output_level as u64);
        put_fixed_u64(out, u64::from(self.purge));
        put_fixed_u64(out, self.input_levels.len() as u64);
        for &level in &self.input_levels {
            put_fixed_u64(out, level as u64);
        }
    }

    /// Decodes a job serialized by [`CompactionJob::encode`]; `None` on a
    /// malformed buffer (trailing bytes included).
    pub fn decode(bytes: &[u8]) -> Option<CompactionJob> {
        let output_level = get_fixed_u64(bytes, 0)? as usize;
        let purge = match get_fixed_u64(bytes, 8)? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let n = get_fixed_u64(bytes, 16)? as usize;
        if bytes.len() != 24 + 8 * n {
            return None;
        }
        let mut input_levels = Vec::with_capacity(n);
        for i in 0..n {
            input_levels.push(get_fixed_u64(bytes, 24 + 8 * i)? as usize);
        }
        Some(CompactionJob { input_levels, output_level, purge })
    }
}

/// A value-log garbage collection: one merge job run with the named
/// victim files' live entries rewritten into the active log file.
///
/// GC reuses the compaction machinery wholesale — the merge walks pointer
/// records anyway, so rewriting the ones that land in victim files costs
/// one extra read+append per live entry. Like [`CompactionJob`], the
/// description ships to replicas verbatim
/// ([`ReplicationEvent::VlogGc`](crate::events::ReplicationEvent::VlogGc))
/// so both sides rewrite identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VlogGcJob {
    /// The merge to run (selected by the strategy's major/minor logic).
    pub job: CompactionJob,
    /// Value-log file numbers whose live entries the merge rewrites; the
    /// files are deleted after the merge installs.
    pub rewrite_files: Vec<u64>,
}

impl VlogGcJob {
    /// Serializes the GC description (for the replication wire format).
    pub fn encode(&self, out: &mut Vec<u8>) {
        self.job.encode(out);
        put_fixed_u64(out, self.rewrite_files.len() as u64);
        for &no in &self.rewrite_files {
            put_fixed_u64(out, no);
        }
    }

    /// Decodes bytes written by [`VlogGcJob::encode`]; `None` on a
    /// malformed buffer (trailing bytes included).
    pub fn decode(bytes: &[u8]) -> Option<VlogGcJob> {
        // The inner job is self-describing: its length is 24 + 8 * n_levels.
        let n_levels = get_fixed_u64(bytes, 16)? as usize;
        let job_len = 24 + 8 * n_levels;
        let job = CompactionJob::decode(bytes.get(..job_len)?)?;
        let rest = bytes.get(job_len..)?;
        let n_files = get_fixed_u64(rest, 0)? as usize;
        if rest.len() != 8 + 8 * n_files {
            return None;
        }
        let mut rewrite_files = Vec::with_capacity(n_files);
        for i in 0..n_files {
            rewrite_files.push(get_fixed_u64(rest, 8 + 8 * i)?);
        }
        Some(VlogGcJob { job, rewrite_files })
    }
}

/// Where a memtable flush lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPlan {
    /// Level the frozen memtable merges into.
    pub target: usize,
    /// Whether the run already at `target` joins the merge (leveled's
    /// rolling merge) or the flush stacks a fresh run there (tiered).
    pub merge_existing: bool,
}

/// An immutable byte-size view of a version's levels, the only state a
/// strategy sees. Index = level (0 unused); `None` = empty slot.
#[derive(Debug, Clone)]
pub struct LevelsView {
    levels: Vec<Option<u64>>,
}

impl LevelsView {
    /// Builds a view from explicit per-level sizes (index 0 is ignored).
    pub fn new(levels: Vec<Option<u64>>) -> Self {
        LevelsView { levels }
    }

    /// Snapshot of a version's on-disk level sizes.
    pub fn from_version(version: &Version) -> Self {
        let mut levels = vec![None];
        for level in 1..version.levels().len() {
            levels.push(version.level(level).map(|r| r.total_bytes()));
        }
        LevelsView { levels }
    }

    /// Number of level slots (including the unused slot 0).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when no level holds a run.
    pub fn is_empty(&self) -> bool {
        self.non_empty().is_empty()
    }

    /// Bytes at `level`, `None` for an empty (or out-of-range) slot.
    pub fn bytes(&self, level: usize) -> Option<u64> {
        self.levels.get(level).copied().flatten()
    }

    /// Ascending list of non-empty levels.
    pub fn non_empty(&self) -> Vec<usize> {
        (1..self.levels.len()).filter(|&l| self.levels[l].is_some()).collect()
    }

    /// The highest non-empty level, if any.
    pub fn highest_non_empty(&self) -> Option<usize> {
        (1..self.levels.len()).rev().find(|&l| self.levels[l].is_some())
    }
}

/// A compaction policy: decides where flushes land and which
/// non-overlapping merge jobs to run against a given view.
///
/// Implementations must be **deterministic** functions of `(view,
/// options)` — replicas rely on replaying the primary's job stream
/// against the same state, and the debt gauge re-runs selection.
pub trait CompactionStrategy: Send + Sync + std::fmt::Debug {
    /// The strategy's display name (used in bench labels).
    fn name(&self) -> &'static str;

    /// Whether runs stack upward (freshest at the highest slot), which
    /// reverses the point-read search order.
    fn stacked(&self) -> bool;

    /// Where the next memtable flush lands on `view`.
    fn flush_plan(&self, view: &LevelsView, opts: &Options) -> FlushPlan;

    /// Non-overlapping jobs to run against `view` (possibly empty). The
    /// scheduler executes one returned wave concurrently, installs in
    /// job order, then re-picks until this returns no work.
    fn pick_jobs(&self, view: &LevelsView, opts: &Options) -> Vec<CompactionJob>;

    /// One merge-everything pass: every non-empty level into a single
    /// run, tombstones purged (major compaction). `None` when fewer than
    /// two runs exist.
    fn major_job(&self, view: &LevelsView, opts: &Options) -> Option<CompactionJob>;
}

/// The strategy selector carried by [`Options`](crate::options::Options).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompactionStrategyKind {
    /// Whole-level rolling merges (the store's original behavior).
    Leveled,
    /// Size-tiered (STCS) with the given tuning.
    Tiered(TieredConfig),
}

/// Compaction subsystem configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionConfig {
    /// Which strategy picks jobs.
    pub strategy: CompactionStrategyKind,
    /// Concurrent merge jobs per wave. 1 runs jobs inline under the
    /// maintenance serial class (the pre-subsystem behavior); higher
    /// values run each job on its own worker thread charged to a
    /// rotating [`sgx_sim::SerialClass::compaction_slot`], letting the
    /// virtual-time model overlap merges across clients. Capped by the
    /// number of jobs a wave actually yields; ≥ 4 adds nothing (four
    /// worker slots exist).
    pub parallelism: usize,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig { strategy: CompactionStrategyKind::Leveled, parallelism: 1 }
    }
}

impl CompactionConfig {
    /// Instantiates the configured strategy.
    pub fn strategy(&self) -> Box<dyn CompactionStrategy> {
        match &self.strategy {
            CompactionStrategyKind::Leveled => Box::new(Leveled),
            CompactionStrategyKind::Tiered(cfg) => Box::new(Tiered::new(cfg.clone())),
        }
    }

    /// The strategy's display name without instantiating it.
    pub fn strategy_name(&self) -> &'static str {
        match &self.strategy {
            CompactionStrategyKind::Leveled => "leveled",
            CompactionStrategyKind::Tiered(_) => "tiered",
        }
    }
}

/// Instantaneous backlog gauge: how far the store is from its shape
/// invariant and how much work the scheduler has queued up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionDebt {
    /// Bytes over budget per level (index = level, 0 unused).
    pub per_level_over_bytes: Vec<u64>,
    /// Sum of the per-level overages.
    pub total_over_bytes: u64,
    /// Jobs the strategy would schedule against the current version.
    pub pending_jobs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(sizes: &[Option<u64>]) -> LevelsView {
        let mut v = vec![None];
        v.extend_from_slice(sizes);
        LevelsView::new(v)
    }

    #[test]
    fn job_encoding_round_trips() {
        let job = CompactionJob { input_levels: vec![2, 5, 6], output_level: 2, purge: true };
        let mut bytes = Vec::new();
        job.encode(&mut bytes);
        assert_eq!(CompactionJob::decode(&bytes), Some(job));
    }

    #[test]
    fn vlog_gc_job_encoding_round_trips_and_rejects_malformed() {
        let gc = VlogGcJob {
            job: CompactionJob { input_levels: vec![1, 2, 3], output_level: 3, purge: true },
            rewrite_files: vec![4, 9],
        };
        let mut bytes = Vec::new();
        gc.encode(&mut bytes);
        assert_eq!(VlogGcJob::decode(&bytes), Some(gc.clone()));
        assert!(VlogGcJob::decode(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        let mut extended = bytes;
        extended.push(0);
        assert!(VlogGcJob::decode(&extended).is_none(), "trailing bytes");

        let empty = VlogGcJob {
            job: CompactionJob { input_levels: vec![2], output_level: 2, purge: false },
            rewrite_files: vec![],
        };
        let mut bytes = Vec::new();
        empty.encode(&mut bytes);
        assert_eq!(VlogGcJob::decode(&bytes), Some(empty));
    }

    #[test]
    fn job_decoding_rejects_malformed() {
        let job = CompactionJob { input_levels: vec![1, 2], output_level: 2, purge: false };
        let mut bytes = Vec::new();
        job.encode(&mut bytes);
        assert!(CompactionJob::decode(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(CompactionJob::decode(&extended).is_none(), "trailing bytes");
        let mut bad_purge = bytes;
        bad_purge[8] = 7;
        assert!(CompactionJob::decode(&bad_purge).is_none(), "purge flag out of range");
    }

    #[test]
    fn levels_view_reports_shape() {
        let v = view(&[Some(10), None, Some(30)]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.bytes(1), Some(10));
        assert_eq!(v.bytes(2), None);
        assert_eq!(v.non_empty(), vec![1, 3]);
        assert_eq!(v.highest_non_empty(), Some(3));
        assert!(view(&[None, None]).is_empty());
    }

    #[test]
    fn waves_from_any_strategy_are_disjoint() {
        let opts = Options { level1_max_bytes: 100, level_multiplier: 2, ..Options::default() };
        let big = view(&[
            Some(500),
            Some(500),
            Some(500),
            Some(510),
            Some(480),
            Some(500),
            Some(490),
            Some(505),
        ]);
        for config in [
            CompactionConfig::default(),
            CompactionConfig {
                strategy: CompactionStrategyKind::Tiered(TieredConfig::default()),
                parallelism: 4,
            },
        ] {
            let strategy = config.strategy();
            let jobs = strategy.pick_jobs(&big, &opts);
            let mut seen = std::collections::HashSet::new();
            for job in &jobs {
                assert!(job.input_levels.contains(&job.output_level), "{job:?}");
                for &level in &job.input_levels {
                    assert!(
                        seen.insert(level),
                        "{} wave overlaps on level {level}",
                        strategy.name()
                    );
                }
            }
        }
    }
}
