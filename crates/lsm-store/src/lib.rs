//! # lsm-store
//!
//! A from-scratch LevelDB-class LSM-tree storage engine, the substrate the
//! eLSM paper builds on. It provides:
//!
//! * [`memtable`] — skiplist write buffer (level L0, in-enclave),
//! * [`batch`]/[`wal`] — atomic write batches over a framed, checksummed
//!   write-ahead log with leader/follower group commit,
//! * [`block`]/[`sstable`] — prefix-compressed blocks, Bloom filters,
//!   block indexes, footers,
//! * [`version`] — levels as whole sorted runs (the paper's model),
//! * [`db`] — puts/gets/scans/deletes, flushes and whole-level compactions
//!   with recovery from manifest + WAL,
//! * [`events`] — RocksDB-style callbacks through which the `elsm` crate
//!   adds authentication **without modifying this crate** (§5.5.3),
//! * [`env`](mod@crate::env) — the placement/cost configuration matrix of Table 1.
//!
//! The traced read APIs ([`db::Db::get_with_trace`],
//! [`db::Db::scan_with_trace`]) expose per-level outcomes including miss
//! neighbors, which is exactly the information the paper's modified GET
//! path returns (§5.5.1).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod block;
pub mod bloom;
pub mod compaction;
pub mod db;
pub mod encoding;
pub mod env;
pub mod events;
pub mod memtable;
pub mod merge;
pub mod options;
pub mod record;
pub mod sstable;
pub mod version;
#[cfg(test)]
mod version_tests;
pub mod vlog;
pub mod wal;

pub use batch::WriteBatch;
pub use compaction::{
    CompactionConfig, CompactionDebt, CompactionJob, CompactionStrategy, CompactionStrategyKind,
    FlushPlan, Leveled, LevelsView, Tiered, TieredConfig, VlogGcJob,
};
pub use db::{Db, DbStats, DbStatsSnapshot};
pub use env::{EnvConfig, StorageEnv};
pub use events::{
    CompactionInfo, FilterDecision, NoopListener, RecordSource, ReplicationEvent, ReplicationSink,
    StoreListener,
};
pub use options::{Options, VlogConfig, WalSyncPolicy};
pub use record::{internal_cmp, InternalKey, Record, Timestamp, ValueKind};
pub use sstable::{NeighborPolicy, TableBuilder, TableGet, TableMeta, TableOptions, TableReader};
pub use version::{GetTrace, LevelOutcome, LevelRange, LevelSearch, Run, ScanTrace, Version};
pub use vlog::{Vlog, VlogEntry, VlogPtr};
pub use wal::{decode_frame, encode_frame};
