//! Write batches: the unit of atomic, group-committed ingestion.
//!
//! A [`WriteBatch`] collects puts and deletes and hands them to
//! [`Db::write_batch`](crate::Db::write_batch) as one operation. The store
//! guarantees:
//!
//! * **one WAL frame per batch** — the batch either survives a crash whole
//!   or disappears whole; a torn tail write can never apply part of it
//!   (recovery drops the entire frame at the first CRC/decode failure);
//! * **consecutive timestamps** — all records of a batch are ordered
//!   contiguously, with no other writer's records interleaved;
//! * **group commit** — concurrent writers' batches are coalesced by a
//!   leader into a single write-lock acquisition (LevelDB-style
//!   leader/follower commit), so the per-commit costs are paid once per
//!   group rather than once per record.

use bytes::Bytes;

use crate::record::ValueKind;

/// One pending operation of a [`WriteBatch`].
#[derive(Debug, Clone)]
pub(crate) struct BatchOp {
    pub key: Bytes,
    pub value: Bytes,
    pub kind: ValueKind,
}

/// An ordered collection of puts/deletes applied atomically.
///
/// # Examples
///
/// ```
/// use lsm_store::{Db, Options, WriteBatch};
/// use sgx_sim::Platform;
/// use sim_disk::{SimDisk, SimFs};
///
/// # fn main() -> Result<(), sim_disk::FsError> {
/// let platform = Platform::with_defaults();
/// let fs = SimFs::new(SimDisk::new(platform.clone()));
/// let env = lsm_store::StorageEnv::new(platform, fs, lsm_store::EnvConfig::default(), None);
/// let db = Db::open(env, Options::default(), None)?;
/// let mut batch = WriteBatch::new();
/// batch.put(b"a".as_slice(), b"1".as_slice());
/// batch.put(b"b".as_slice(), b"2".as_slice());
/// batch.delete(b"a".as_slice());
/// let timestamps = db.write_batch(batch)?;
/// assert_eq!(timestamps.len(), 3);
/// assert!(db.get(b"a")?.is_none());
/// assert_eq!(&db.get(b"b")?.unwrap().value[..], b"2");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
    payload_bytes: usize,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Creates an empty batch with capacity for `n` operations.
    pub fn with_capacity(n: usize) -> Self {
        WriteBatch { ops: Vec::with_capacity(n), payload_bytes: 0 }
    }

    /// Appends a put.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        let (key, value) = (key.into(), value.into());
        self.payload_bytes += key.len() + value.len();
        self.ops.push(BatchOp { key, value, kind: ValueKind::Put });
    }

    /// Appends a tombstone.
    pub fn delete(&mut self, key: impl Into<Bytes>) {
        let key = key.into();
        self.payload_bytes += key.len();
        self.ops.push(BatchOp { key, value: Bytes::new(), kind: ValueKind::Delete });
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total key + value bytes of the batch (marshalling-cost input).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bytes
    }

    pub(crate) fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_ops_in_order() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(b"k1".as_slice(), b"v1".as_slice());
        b.delete(b"k2".as_slice());
        b.put(b"k1".as_slice(), b"v2".as_slice());
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload_bytes(), 2 + 2 + 2 + 2 + 2);
        let ops = b.into_ops();
        assert_eq!(ops[0].kind, ValueKind::Put);
        assert_eq!(ops[1].kind, ValueKind::Delete);
        assert_eq!(&ops[2].value[..], b"v2");
    }
}
