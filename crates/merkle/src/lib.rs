//! # merkle
//!
//! Authenticated data structures for the eLSM reproduction:
//!
//! * [`tree`] — RFC 6962-style Merkle hash trees with audit paths,
//! * [`chain`] — temporal hash chains over record versions (§5.2),
//! * [`level`] — per-LSM-level digests: chains at the leaves of a tree,
//!   built streaming in compaction order (Figure 4's `MHT_add`),
//! * [`proof`] — embedded record proofs and the per-level commitments the
//!   enclave stores,
//! * [`range`] — segment-tree range proofs for query completeness (§5.4),
//! * [`mbt`] — the conventional update-in-place Merkle B-tree baseline
//!   (§3.4).
//!
//! # Examples
//!
//! ```
//! use merkle::level::{LeafLookup, LevelDigest};
//!
//! // Digest the paper's level L2 = [⟨T,4⟩, ⟨Z,7⟩, ⟨Z,6⟩]:
//! let l2 = LevelDigest::from_records(2, vec![
//!     (b"T".as_slice(), b"T,4".to_vec()),
//!     (b"Z".as_slice(), b"Z,7".to_vec()),
//!     (b"Z".as_slice(), b"Z,6".to_vec()),
//! ]);
//! let commitment = l2.commitment(); // lives in the enclave
//! let LeafLookup::Found { index } = l2.lookup(b"Z") else { panic!() };
//! let proof = l2.prove_newest(index); // embedded in the record
//! assert!(proof.verify(&commitment, b"Z,7").is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod level;
pub mod mbt;
pub mod proof;
pub mod range;
pub mod tree;

pub use chain::{chain_digest, chain_link, ChainPosition};
pub use level::{LeafLookup, LevelDigest, LevelDigestBuilder};
pub use mbt::{MerkleBTree, UpdateStats};
pub use proof::{LevelCommitment, RecordProof, VerifyError};
pub use range::{prove_range, verify_range, RangeProof};
pub use tree::{leaf_hash, node_hash, MerkleTree};
