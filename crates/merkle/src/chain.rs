//! Temporal hash chains over record versions (§5.2, design 2).
//!
//! Within one LSM level, all records sharing a data key are chained in
//! temporal order: the chain *digest* covers the newest record outermost,
//! so any proof about an older version necessarily exposes the full bytes
//! of every newer version — which is exactly how the verifier detects a
//! stale-record attack (the paper's ⟨Z,6⟩ vs ⟨Z,7⟩ example).
//!
//! `chain_digest([r_newest, …, r_oldest]) =
//!     H(0x02 ‖ r_newest ‖ H(0x02 ‖ r_next ‖ … H(0x02 ‖ r_oldest ‖ ⊥)))`

use elsm_crypto::{sha256_concat, Digest};

/// Domain-separation prefix for chain links.
const CHAIN_PREFIX: u8 = 0x02;

/// One fold step: extends the chain with a newer record's bytes.
pub fn chain_link(record_bytes: &[u8], older_digest: &Digest) -> Digest {
    sha256_concat(&[&[CHAIN_PREFIX], record_bytes, older_digest.as_bytes()])
}

/// Digest of a full version chain, `records` given newest-first (the order
/// LSM levels store them).
pub fn chain_digest<B: AsRef<[u8]>>(records_newest_first: &[B]) -> Digest {
    let mut acc = Digest::ZERO;
    for r in records_newest_first.iter().rev() {
        acc = chain_link(r.as_ref(), &acc);
    }
    acc
}

/// Where a record sits in its key's version chain, with the material needed
/// to recompute the chain digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainPosition {
    /// The record is the newest version at this level: only the digest of
    /// the (possibly empty) older suffix is needed.
    Newest {
        /// Digest of the chain of strictly older versions.
        older_digest: Digest,
    },
    /// The record is not the newest: every newer record's bytes must be
    /// exposed (newest first), which is what makes staleness detectable.
    Older {
        /// Full bytes of all newer versions, newest first.
        newer_records: Vec<Vec<u8>>,
        /// Digest of the chain of strictly older versions.
        older_digest: Digest,
    },
}

impl ChainPosition {
    /// Recomputes the chain-head digest for `record_bytes` at this
    /// position.
    pub fn chain_head(&self, record_bytes: &[u8]) -> Digest {
        match self {
            ChainPosition::Newest { older_digest } => chain_link(record_bytes, older_digest),
            ChainPosition::Older { newer_records, older_digest } => {
                let mut acc = chain_link(record_bytes, older_digest);
                for newer in newer_records.iter().rev() {
                    acc = chain_link(newer, &acc);
                }
                acc
            }
        }
    }

    /// The newer-record bytes this position exposes (empty for the newest).
    pub fn exposed_newer(&self) -> &[Vec<u8>] {
        match self {
            ChainPosition::Newest { .. } => &[],
            ChainPosition::Older { newer_records, .. } => newer_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: usize) -> Vec<Vec<u8>> {
        // newest first: ts descending
        (0..n).map(|i| format!("rec-ts{}", n - i).into_bytes()).collect()
    }

    #[test]
    fn empty_chain_is_zero() {
        assert_eq!(chain_digest::<Vec<u8>>(&[]), Digest::ZERO);
    }

    #[test]
    fn single_record_chain() {
        let r = recs(1);
        assert_eq!(chain_digest(&r), chain_link(&r[0], &Digest::ZERO));
    }

    #[test]
    fn newest_position_recomputes_head() {
        let r = recs(3);
        let full = chain_digest(&r);
        let older = chain_digest(&r[1..]);
        let pos = ChainPosition::Newest { older_digest: older };
        assert_eq!(pos.chain_head(&r[0]), full);
    }

    #[test]
    fn older_position_recomputes_head() {
        let r = recs(4);
        let full = chain_digest(&r);
        // Proving position 2 (third newest).
        let pos = ChainPosition::Older {
            newer_records: vec![r[0].clone(), r[1].clone()],
            older_digest: chain_digest(&r[3..]),
        };
        assert_eq!(pos.chain_head(&r[2]), full);
        assert_eq!(pos.exposed_newer().len(), 2);
    }

    #[test]
    fn tampered_record_changes_head() {
        let r = recs(2);
        let older = chain_digest(&r[1..]);
        let pos = ChainPosition::Newest { older_digest: older };
        assert_ne!(pos.chain_head(&r[0]), pos.chain_head(b"forged"));
    }

    #[test]
    fn order_matters() {
        let a = vec![b"x".to_vec(), b"y".to_vec()];
        let b = vec![b"y".to_vec(), b"x".to_vec()];
        assert_ne!(chain_digest(&a), chain_digest(&b));
    }

    #[test]
    fn stale_claim_exposes_newer_bytes() {
        // A prover claiming r[1] is the answer must supply r[0]'s bytes in
        // the position — there is no valid ChainPosition for r[1] that
        // hides r[0].
        let r = recs(2);
        let full = chain_digest(&r);
        let honest =
            ChainPosition::Older { newer_records: vec![r[0].clone()], older_digest: Digest::ZERO };
        assert_eq!(honest.chain_head(&r[1]), full);
        // Claiming "newest" for the stale record yields a different head.
        let lying = ChainPosition::Newest { older_digest: Digest::ZERO };
        assert_ne!(lying.chain_head(&r[1]), full);
        let lying2 = ChainPosition::Newest { older_digest: chain_digest(&r[..1]) };
        assert_ne!(lying2.chain_head(&r[1]), full);
    }
}
