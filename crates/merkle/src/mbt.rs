//! Update-in-place Merkle B-tree: the conventional ADS the paper argues
//! against (§3.4).
//!
//! A B-tree where every node carries the digest of its subtree; updates
//! rewrite the digests along the root path ("in place"). Queries return a
//! value with a path proof. The `elsm-baselines` crate wraps this with
//! disk-IO charging to reproduce the random-access write amplification the
//! paper contrasts LSM digests with.

use elsm_crypto::{sha256_concat, Digest};

const MAX_KEYS: usize = 8; // B-tree order (small, forces depth in tests)

#[derive(Debug, Clone)]
enum Node {
    Leaf { keys: Vec<Vec<u8>>, values: Vec<Vec<u8>> },
    Internal { keys: Vec<Vec<u8>>, children: Vec<Node> },
}

impl Node {
    fn digest(&self) -> Digest {
        match self {
            Node::Leaf { keys, values } => {
                let mut parts: Vec<&[u8]> = vec![&[0x10]];
                for (k, v) in keys.iter().zip(values) {
                    parts.push(k);
                    parts.push(v);
                }
                sha256_concat(&parts)
            }
            Node::Internal { keys, children } => {
                let child_digests: Vec<Digest> = children.iter().map(Node::digest).collect();
                let mut parts: Vec<&[u8]> = vec![&[0x11]];
                for k in keys {
                    parts.push(k);
                }
                for d in &child_digests {
                    parts.push(d.as_bytes());
                }
                sha256_concat(&parts)
            }
        }
    }
}

/// Statistics of one update: how many nodes were touched/rewritten.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Nodes whose digest changed (each a random-access write in the
    /// disk-resident setting).
    pub nodes_rewritten: usize,
    /// Tree depth at the updated key.
    pub depth: usize,
}

/// An authenticated dictionary with update-in-place digests.
///
/// # Examples
///
/// ```
/// use merkle::mbt::MerkleBTree;
///
/// let mut t = MerkleBTree::new();
/// t.insert(b"key".to_vec(), b"value".to_vec());
/// assert_eq!(t.get(b"key"), Some(b"value".to_vec()));
/// let root_before = t.root();
/// t.insert(b"key".to_vec(), b"new".to_vec());
/// assert_ne!(t.root(), root_before, "updates change the root digest");
/// ```
#[derive(Debug, Clone)]
pub struct MerkleBTree {
    root: Node,
    len: usize,
}

impl Default for MerkleBTree {
    fn default() -> Self {
        Self::new()
    }
}

impl MerkleBTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        MerkleBTree { root: Node::Leaf { keys: Vec::new(), values: Vec::new() }, len: 0 }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root digest over the whole dictionary.
    pub fn root(&self) -> Digest {
        self.root.digest()
    }

    /// Inserts or updates a key, returning how many nodes were rewritten
    /// (the cost an update-in-place ADS pays per write).
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> UpdateStats {
        let mut stats = UpdateStats::default();
        let split = Self::insert_rec(&mut self.root, key, value, &mut stats);
        if let Some((mid_key, right)) = split {
            let left = std::mem::replace(
                &mut self.root,
                Node::Leaf { keys: Vec::new(), values: Vec::new() },
            );
            self.root = Node::Internal { keys: vec![mid_key], children: vec![left, right] };
            stats.nodes_rewritten += 1;
        }
        self.len = Self::count(&self.root);
        stats
    }

    fn insert_rec(
        node: &mut Node,
        key: Vec<u8>,
        value: Vec<u8>,
        stats: &mut UpdateStats,
    ) -> Option<(Vec<u8>, Node)> {
        stats.nodes_rewritten += 1;
        stats.depth += 1;
        match node {
            Node::Leaf { keys, values } => {
                match keys.binary_search(&key) {
                    Ok(i) => values[i] = value,
                    Err(i) => {
                        keys.insert(i, key);
                        values.insert(i, value);
                    }
                }
                if keys.len() > MAX_KEYS {
                    let mid = keys.len() / 2;
                    let right_keys = keys.split_off(mid);
                    let right_values = values.split_off(mid);
                    let mid_key = right_keys[0].clone();
                    return Some((mid_key, Node::Leaf { keys: right_keys, values: right_values }));
                }
                None
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key.as_slice());
                let split = Self::insert_rec(&mut children[idx], key, value, stats);
                if let Some((mid_key, right)) = split {
                    keys.insert(idx, mid_key);
                    children.insert(idx + 1, right);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let up_key = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop();
                        let right_children = children.split_off(mid + 1);
                        return Some((
                            up_key,
                            Node::Internal { keys: right_keys, children: right_children },
                        ));
                    }
                }
                None
            }
        }
    }

    fn count(node: &Node) -> usize {
        match node {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { children, .. } => children.iter().map(Self::count).sum(),
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, values } => {
                    return keys
                        .binary_search_by(|k| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| values[i].clone());
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Depth of the tree (1 = a single leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }

    /// Keys in `[from, to]`, with values.
    pub fn range(&self, from: &[u8], to: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        Self::range_rec(&self.root, from, to, &mut out);
        out
    }

    fn range_rec(node: &Node, from: &[u8], to: &[u8], out: &mut Vec<(Vec<u8>, Vec<u8>)>) {
        match node {
            Node::Leaf { keys, values } => {
                for (k, v) in keys.iter().zip(values) {
                    if k.as_slice() >= from && k.as_slice() <= to {
                        out.push((k.clone(), v.clone()));
                    }
                }
            }
            Node::Internal { keys, children } => {
                // Children overlapping [from, to].
                let lo = keys.partition_point(|k| k.as_slice() <= from);
                let hi = keys.partition_point(|k| k.as_slice() <= to);
                for child in &children[lo.min(children.len() - 1)..=hi.min(children.len() - 1)] {
                    Self::range_rec(child, from, to, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:06}").into_bytes()
    }

    #[test]
    fn insert_get_many() {
        let mut t = MerkleBTree::new();
        for i in 0..500 {
            t.insert(key(i * 7 % 500), format!("v{i}").into_bytes());
        }
        assert_eq!(t.len(), 500);
        for i in 0..500 {
            assert!(t.get(&key(i)).is_some(), "missing {i}");
        }
        assert!(t.get(b"absent").is_none());
    }

    #[test]
    fn splits_keep_order() {
        let mut t = MerkleBTree::new();
        for i in (0..200).rev() {
            t.insert(key(i), b"v".to_vec());
        }
        assert!(t.depth() > 1, "insertions must split");
        let all = t.range(&key(0), &key(199));
        assert_eq!(all.len(), 200);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "range output sorted");
        }
    }

    #[test]
    fn update_changes_root() {
        let mut t = MerkleBTree::new();
        for i in 0..100 {
            t.insert(key(i), b"v".to_vec());
        }
        let r1 = t.root();
        t.insert(key(50), b"changed".to_vec());
        assert_ne!(t.root(), r1);
        assert_eq!(t.len(), 100, "update is in place");
    }

    #[test]
    fn identical_content_identical_root() {
        let build = |order: &[u32]| {
            let mut t = MerkleBTree::new();
            for &i in order {
                t.insert(key(i), format!("v{i}").into_bytes());
            }
            t
        };
        // Same final content via different insertion orders can give
        // different tree shapes; roots may differ (structure-dependent).
        // But the same order twice must agree.
        let a = build(&[3, 1, 2]);
        let b = build(&[3, 1, 2]);
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn update_cost_grows_with_depth() {
        let mut t = MerkleBTree::new();
        let shallow = t.insert(key(0), b"v".to_vec());
        for i in 1..2000 {
            t.insert(key(i), b"v".to_vec());
        }
        let deep = t.insert(key(1999), b"v2".to_vec());
        assert!(
            deep.nodes_rewritten > shallow.nodes_rewritten,
            "deep trees rewrite more nodes per update: {deep:?} vs {shallow:?}"
        );
        assert_eq!(deep.depth, t.depth());
    }

    #[test]
    fn range_bounds_inclusive() {
        let mut t = MerkleBTree::new();
        for i in 0..50 {
            t.insert(key(i), b"v".to_vec());
        }
        let got = t.range(&key(10), &key(20));
        assert_eq!(got.len(), 11);
        assert_eq!(got[0].0, key(10));
        assert_eq!(got[10].0, key(20));
    }
}
