//! Merkle hash trees with RFC 6962 structure.
//!
//! The tree over `n` leaves splits at the largest power of two below `n`
//! (equivalently: built bottom-up, pairing nodes and promoting an unpaired
//! trailing node). Domain separation follows RFC 6962: leaves hash with a
//! `0x00` prefix and interior nodes with `0x01`, preventing leaf/node
//! confusion attacks. This is the same structure Certificate Transparency
//! uses — fitting, since CT is the paper's §5.7 case study.

use elsm_crypto::{sha256_concat, Digest};

/// Hashes leaf data with domain separation.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_concat(&[&[0x00], data])
}

/// Hashes two child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[&[0x01], left.as_bytes(), right.as_bytes()])
}

/// An immutable Merkle tree storing every internal level.
///
/// # Examples
///
/// ```
/// use merkle::tree::{leaf_hash, MerkleTree};
///
/// let leaves: Vec<_> = (0..5u8).map(|i| leaf_hash(&[i])).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// let path = tree.audit_path(3);
/// assert!(MerkleTree::verify(tree.root(), 5, 3, leaves[3], &path));
/// assert!(!MerkleTree::verify(tree.root(), 5, 2, leaves[3], &path));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaves; each higher level pairs the one below,
    /// promoting an unpaired last node.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree over the given leaf digests. An empty input yields the
    /// designated empty root ([`Digest::ZERO`]).
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        let mut levels = vec![leaves];
        while levels.last().expect("non-empty levels").len() > 1 {
            let below = levels.last().expect("non-empty levels");
            let mut above = Vec::with_capacity(below.len().div_ceil(2));
            for pair in below.chunks(2) {
                match pair {
                    [l, r] => above.push(node_hash(l, r)),
                    [promoted] => above.push(*promoted),
                    _ => unreachable!("chunks(2)"),
                }
            }
            levels.push(above);
        }
        MerkleTree { levels }
    }

    /// The root digest ([`Digest::ZERO`] for an empty tree).
    pub fn root(&self) -> Digest {
        self.levels.last().and_then(|l| l.first()).copied().unwrap_or(Digest::ZERO)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaf_count() == 0
    }

    /// The leaf digests.
    pub fn leaves(&self) -> &[Digest] {
        &self.levels[0]
    }

    /// Audit path (Merkle authentication path) for the leaf at `index`:
    /// the sibling hashes from bottom to top, skipping levels where the
    /// node is promoted unpaired.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn audit_path(&self, index: usize) -> Vec<Digest> {
        assert!(index < self.leaf_count(), "leaf index out of range");
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                path.push(level[sibling]);
            }
            idx /= 2;
        }
        path
    }

    /// Verifies an audit path: does `leaf` at `index` (of `leaf_count`
    /// leaves) hash up to `root` through `path`?
    pub fn verify(
        root: Digest,
        leaf_count: usize,
        index: usize,
        leaf: Digest,
        path: &[Digest],
    ) -> bool {
        if index >= leaf_count || leaf_count == 0 {
            return false;
        }
        let mut h = leaf;
        let mut idx = index;
        let mut count = leaf_count;
        let mut it = path.iter();
        while count > 1 {
            let sibling_exists = idx ^ 1 < count;
            if sibling_exists {
                let Some(sib) = it.next() else { return false };
                h = if idx % 2 == 0 { node_hash(&h, sib) } else { node_hash(sib, &h) };
            }
            idx /= 2;
            count = count.div_ceil(2);
        }
        it.next().is_none() && h == root
    }

    /// Internal levels (used by range proofs).
    pub(crate) fn levels(&self) -> &[Vec<Digest>] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| leaf_hash(format!("leaf-{i}").as_bytes())).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let t = MerkleTree::from_leaves(Vec::new());
        assert!(t.root().is_zero());
        assert!(t.is_empty());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        let t = MerkleTree::from_leaves(l.clone());
        assert_eq!(t.root(), l[0]);
        assert!(MerkleTree::verify(t.root(), 1, 0, l[0], &t.audit_path(0)));
    }

    #[test]
    fn audit_paths_verify_for_all_sizes() {
        for n in 1..=33 {
            let l = leaves(n);
            let t = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let path = t.audit_path(i);
                assert!(MerkleTree::verify(t.root(), n, i, *leaf, &path), "n={n}, i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let l = leaves(10);
        let t = MerkleTree::from_leaves(l.clone());
        let path = t.audit_path(4);
        assert!(!MerkleTree::verify(t.root(), 10, 4, leaf_hash(b"forged"), &path));
    }

    #[test]
    fn wrong_index_fails() {
        let l = leaves(10);
        let t = MerkleTree::from_leaves(l.clone());
        let path = t.audit_path(4);
        assert!(!MerkleTree::verify(t.root(), 10, 5, l[4], &path));
        assert!(!MerkleTree::verify(t.root(), 10, 12, l[4], &path));
    }

    #[test]
    fn structurally_wrong_count_fails() {
        // A claimed count that changes the path shape is rejected. (Counts
        // that leave the shape identical — e.g. 10 vs 11 at index 4 — are
        // indistinguishable to an audit path; binding the exact count is
        // the LevelCommitment's job, enforced in proof::RecordProof.)
        let l = leaves(10);
        let t = MerkleTree::from_leaves(l.clone());
        let path = t.audit_path(4);
        assert!(!MerkleTree::verify(t.root(), 32, 4, l[4], &path));
        assert!(!MerkleTree::verify(t.root(), 5, 4, l[4], &path));
        assert!(!MerkleTree::verify(t.root(), 3, 4, l[4], &path));
    }

    #[test]
    fn truncated_or_padded_path_fails() {
        let l = leaves(16);
        let t = MerkleTree::from_leaves(l.clone());
        let mut path = t.audit_path(7);
        let extra = path.clone();
        path.pop();
        assert!(!MerkleTree::verify(t.root(), 16, 7, l[7], &path));
        let mut padded = extra;
        padded.push(leaf_hash(b"pad"));
        assert!(!MerkleTree::verify(t.root(), 16, 7, l[7], &padded));
    }

    #[test]
    fn domain_separation_prevents_node_as_leaf() {
        // An interior node presented as a leaf must not verify.
        let l = leaves(4);
        let t = MerkleTree::from_leaves(l.clone());
        let interior = node_hash(&l[0], &l[1]);
        // A 2-leaf tree whose first "leaf" is that interior node:
        let forged = MerkleTree::from_leaves(vec![interior, l[2]]);
        assert_ne!(forged.root(), t.root());
    }

    #[test]
    fn order_matters() {
        let l = leaves(4);
        let mut rev = l.clone();
        rev.reverse();
        assert_ne!(MerkleTree::from_leaves(l).root(), MerkleTree::from_leaves(rev).root());
    }

    #[test]
    fn rfc6962_promote_structure() {
        // n=3: root = H(H(l0,l1), l2) — the promoted leaf pairs at the top.
        let l = leaves(3);
        let t = MerkleTree::from_leaves(l.clone());
        assert_eq!(t.root(), node_hash(&node_hash(&l[0], &l[1]), &l[2]));
        // n=7: root = H(H(H(01),H(23)), H(H(45),6))
        let l = leaves(7);
        let t = MerkleTree::from_leaves(l.clone());
        let left = node_hash(&node_hash(&l[0], &l[1]), &node_hash(&l[2], &l[3]));
        let right = node_hash(&node_hash(&l[4], &l[5]), &l[6]);
        assert_eq!(t.root(), node_hash(&left, &right));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn audit_path_out_of_range_panics() {
        MerkleTree::from_leaves(leaves(3)).audit_path(3);
    }
}
