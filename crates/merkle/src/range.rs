//! Range (completeness) proofs over a Merkle tree (§5.4).
//!
//! The paper views the per-level Merkle tree as a segment tree: a queried
//! key range maps to a contiguous run of leaves `[lo, hi]`, and the proof
//! consists of the sibling hashes bounding that run — `O(log n)` hashes
//! regardless of the range width. The verifier reconstructs the root from
//! the in-range leaf hashes (computed from the returned records) plus the
//! boundary hashes, which proves no leaf inside the range was withheld.

use elsm_crypto::Digest;

use crate::tree::{node_hash, MerkleTree};

/// Boundary hashes proving a contiguous leaf range.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeProof {
    /// Left-boundary siblings, bottom-up.
    pub left: Vec<Digest>,
    /// Right-boundary siblings, bottom-up.
    pub right: Vec<Digest>,
}

impl RangeProof {
    /// Total number of hashes in the proof.
    pub fn len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Whether the proof carries no hashes (full-tree range).
    pub fn is_empty(&self) -> bool {
        self.left.is_empty() && self.right.is_empty()
    }
}

/// Produces the range proof for leaves `lo..=hi` of `tree`.
///
/// # Panics
///
/// Panics if the range is empty or out of bounds.
pub fn prove_range(tree: &MerkleTree, lo: usize, hi: usize) -> RangeProof {
    assert!(lo <= hi && hi < tree.leaf_count(), "invalid leaf range {lo}..={hi}");
    let mut proof = RangeProof::default();
    let mut a = lo;
    let mut b = hi;
    let levels = tree.levels();
    for level in &levels[..levels.len().saturating_sub(1)] {
        if a % 2 == 1 {
            proof.left.push(level[a - 1]);
        }
        if b % 2 == 0 && b + 1 < level.len() {
            proof.right.push(level[b + 1]);
        }
        a /= 2;
        b /= 2;
    }
    proof
}

/// Verifies that `leaves` are exactly the leaves `lo..=lo+leaves.len()-1`
/// of the tree with the given `root` and `leaf_count`.
pub fn verify_range(
    root: Digest,
    leaf_count: usize,
    lo: usize,
    leaves: &[Digest],
    proof: &RangeProof,
) -> bool {
    if leaves.is_empty() || lo + leaves.len() > leaf_count {
        return false;
    }
    let mut a = lo;
    let mut count = leaf_count;
    let mut known = leaves.to_vec();
    let mut li = proof.left.iter();
    let mut ri = proof.right.iter();
    while count > 1 {
        let mut b = a + known.len() - 1;
        if a % 2 == 1 {
            let Some(h) = li.next() else { return false };
            known.insert(0, *h);
            a -= 1;
        }
        if b % 2 == 0 && b + 1 < count {
            let Some(h) = ri.next() else { return false };
            known.push(*h);
            b += 1;
        }
        let mut next = Vec::with_capacity(known.len() / 2 + 1);
        let mut i = 0;
        while i + 1 < known.len() {
            next.push(node_hash(&known[i], &known[i + 1]));
            i += 2;
        }
        if i < known.len() {
            // Unpaired trailing node promotes (must be the level's last).
            if b != count - 1 {
                return false;
            }
            next.push(known[i]);
        }
        known = next;
        a /= 2;
        count = count.div_ceil(2);
    }
    li.next().is_none() && ri.next().is_none() && known.len() == 1 && known[0] == root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::leaf_hash;

    fn tree(n: usize) -> (MerkleTree, Vec<Digest>) {
        let leaves: Vec<Digest> = (0..n).map(|i| leaf_hash(format!("L{i}").as_bytes())).collect();
        (MerkleTree::from_leaves(leaves.clone()), leaves)
    }

    #[test]
    fn all_ranges_of_all_small_trees_verify() {
        for n in 1..=17 {
            let (t, l) = tree(n);
            for lo in 0..n {
                for hi in lo..n {
                    let p = prove_range(&t, lo, hi);
                    assert!(
                        verify_range(t.root(), n, lo, &l[lo..=hi], &p),
                        "n={n} range={lo}..={hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn withheld_leaf_fails() {
        let (t, l) = tree(10);
        let p = prove_range(&t, 2, 6);
        // Drop leaf 4 from the presented range: wrong.
        let mut partial = l[2..=6].to_vec();
        partial.remove(2);
        assert!(!verify_range(t.root(), 10, 2, &partial, &p));
    }

    #[test]
    fn shifted_range_fails() {
        let (t, l) = tree(10);
        let p = prove_range(&t, 2, 6);
        assert!(!verify_range(t.root(), 10, 3, &l[2..=6], &p));
        assert!(!verify_range(t.root(), 10, 1, &l[2..=6], &p));
    }

    #[test]
    fn substituted_leaf_fails() {
        let (t, l) = tree(10);
        let p = prove_range(&t, 2, 6);
        let mut forged = l[2..=6].to_vec();
        forged[1] = leaf_hash(b"forged");
        assert!(!verify_range(t.root(), 10, 2, &forged, &p));
    }

    #[test]
    fn full_range_needs_no_proof() {
        let (t, l) = tree(8);
        let p = prove_range(&t, 0, 7);
        assert!(p.is_empty());
        assert!(verify_range(t.root(), 8, 0, &l, &p));
    }

    #[test]
    fn proof_is_logarithmic() {
        let (t, _) = tree(1024);
        let p = prove_range(&t, 400, 420);
        assert!(p.len() <= 2 * 10, "range proof should be O(log n), got {}", p.len());
    }

    #[test]
    fn single_leaf_range_matches_audit_path_size() {
        let (t, l) = tree(64);
        let p = prove_range(&t, 10, 10);
        assert!(verify_range(t.root(), 64, 10, &l[10..=10], &p));
        assert_eq!(p.len(), t.audit_path(10).len());
    }

    #[test]
    fn empty_leaves_rejected() {
        let (t, _) = tree(4);
        assert!(!verify_range(t.root(), 4, 0, &[], &RangeProof::default()));
    }

    #[test]
    #[should_panic(expected = "invalid leaf range")]
    fn out_of_bounds_prove_panics() {
        let (t, _) = tree(4);
        prove_range(&t, 2, 4);
    }
}
