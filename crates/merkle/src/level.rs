//! Per-level digests: the eLSM digest structure (§5.2).
//!
//! One LSM level digests as a Merkle tree whose leaves are, in key order,
//! the *chain heads* of each distinct user key (records of the same key
//! form a temporal hash chain, newest outermost). The
//! [`LevelDigestBuilder`] consumes the level's records in exactly the
//! order a compaction emits them — key ascending, timestamp descending —
//! which is the paper's streaming `MHT_add` construction (Figure 4).

use elsm_crypto::Digest;

use crate::chain::{chain_digest, ChainPosition};
use crate::proof::{LevelCommitment, RecordProof};
use crate::range::{prove_range, RangeProof};
use crate::tree::MerkleTree;

/// Streaming builder for a level digest (the paper's `MHT_add`).
#[derive(Debug, Default)]
pub struct LevelDigestBuilder {
    level: u32,
    keys: Vec<Vec<u8>>,
    chains: Vec<Vec<Vec<u8>>>,
    cur_key: Option<Vec<u8>>,
    cur_records: Vec<Vec<u8>>,
}

impl LevelDigestBuilder {
    /// Starts building the digest of `level`.
    pub fn new(level: u32) -> Self {
        LevelDigestBuilder { level, ..Default::default() }
    }

    /// Adds the next record of the sorted stream.
    ///
    /// # Panics
    ///
    /// Panics if keys arrive out of ascending order (a correctness bug in
    /// the feeding compaction, never data-dependent).
    pub fn add(&mut self, user_key: &[u8], record_bytes: Vec<u8>) {
        match &self.cur_key {
            Some(k) if k.as_slice() == user_key => {
                self.cur_records.push(record_bytes);
            }
            Some(k) => {
                assert!(
                    k.as_slice() < user_key,
                    "level records must arrive in ascending key order"
                );
                self.seal_current();
                self.cur_key = Some(user_key.to_vec());
                self.cur_records.push(record_bytes);
            }
            None => {
                self.cur_key = Some(user_key.to_vec());
                self.cur_records.push(record_bytes);
            }
        }
    }

    fn seal_current(&mut self) {
        if let Some(k) = self.cur_key.take() {
            self.keys.push(k);
            self.chains.push(std::mem::take(&mut self.cur_records));
        }
    }

    /// Number of records added so far.
    pub fn record_count(&self) -> usize {
        self.chains.iter().map(Vec::len).sum::<usize>() + self.cur_records.len()
    }

    /// Finishes the digest.
    pub fn finish(mut self) -> LevelDigest {
        self.seal_current();
        let leaves: Vec<Digest> = self.chains.iter().map(|c| chain_digest(c)).collect();
        LevelDigest {
            level: self.level,
            tree: MerkleTree::from_leaves(leaves),
            keys: self.keys,
            chains: self.chains,
        }
    }
}

/// Result of locating a key among a level's leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafLookup {
    /// The key is leaf `index`.
    Found {
        /// Leaf index of the key.
        index: usize,
    },
    /// The key is absent; it would insert before leaf `successor`.
    Absent {
        /// Index of the first leaf with a larger key (== leaf count when
        /// the key is beyond the last leaf).
        successor: usize,
    },
}

/// The digest of one LSM level plus the prover-side material (leaf keys and
/// chain bytes) the *untrusted* host keeps to answer queries.
#[derive(Debug, Clone)]
pub struct LevelDigest {
    level: u32,
    tree: MerkleTree,
    keys: Vec<Vec<u8>>,
    chains: Vec<Vec<Vec<u8>>>,
}

impl LevelDigest {
    /// Builds a digest in one shot from `(key, record_bytes)` pairs in
    /// compaction order.
    pub fn from_records<'a>(
        level: u32,
        records: impl IntoIterator<Item = (&'a [u8], Vec<u8>)>,
    ) -> Self {
        let mut b = LevelDigestBuilder::new(level);
        for (k, r) in records {
            b.add(k, r);
        }
        b.finish()
    }

    /// The commitment the enclave stores for this level.
    pub fn commitment(&self) -> LevelCommitment {
        LevelCommitment {
            level: self.level,
            root: self.tree.root(),
            leaf_count: self.tree.leaf_count() as u64,
        }
    }

    /// Level number.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Number of distinct keys (leaves).
    pub fn leaf_count(&self) -> usize {
        self.tree.leaf_count()
    }

    /// Leaf keys in order.
    pub fn keys(&self) -> &[Vec<u8>] {
        &self.keys
    }

    /// Locates `key` among the leaves.
    pub fn lookup(&self, key: &[u8]) -> LeafLookup {
        match self.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
            Ok(index) => LeafLookup::Found { index },
            Err(successor) => LeafLookup::Absent { successor },
        }
    }

    /// Proof for the version at `version_idx` (0 = newest) of leaf
    /// `leaf_idx`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn prove_version(&self, leaf_idx: usize, version_idx: usize) -> RecordProof {
        let chain = &self.chains[leaf_idx];
        assert!(version_idx < chain.len(), "version index out of range");
        let older_digest = chain_digest(&chain[version_idx + 1..]);
        let position = if version_idx == 0 {
            ChainPosition::Newest { older_digest }
        } else {
            ChainPosition::Older { newer_records: chain[..version_idx].to_vec(), older_digest }
        };
        RecordProof {
            level: self.level,
            leaf_index: leaf_idx as u64,
            leaf_count: self.tree.leaf_count() as u64,
            chain: position,
            audit_path: self.tree.audit_path(leaf_idx),
        }
    }

    /// Proof for the newest version of leaf `leaf_idx` — the common case
    /// embedded in records.
    pub fn prove_newest(&self, leaf_idx: usize) -> RecordProof {
        self.prove_version(leaf_idx, 0)
    }

    /// Range proof covering leaves `lo..=hi` (§5.4 segment-tree view).
    pub fn prove_leaf_range(&self, lo: usize, hi: usize) -> RangeProof {
        prove_range(&self.tree, lo, hi)
    }

    /// The leaf digests (chain heads), for range verification.
    pub fn leaf_digests(&self) -> &[Digest] {
        self.tree.leaves()
    }

    /// All versions' bytes of leaf `leaf_idx`, newest first.
    pub fn chain_records(&self, leaf_idx: usize) -> &[Vec<u8>] {
        &self.chains[leaf_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::verify_range;

    /// The paper's Figure 3 example: level L2 = [⟨T,4⟩, ⟨Z,7⟩, ⟨Z,6⟩],
    /// level L3 = [⟨A,2⟩, ⟨T,0⟩, ⟨Y,3⟩, ⟨Z,1⟩].
    fn level2() -> LevelDigest {
        LevelDigest::from_records(
            2,
            vec![
                (b"T".as_slice(), b"T,4".to_vec()),
                (b"Z".as_slice(), b"Z,7".to_vec()),
                (b"Z".as_slice(), b"Z,6".to_vec()),
            ],
        )
    }

    fn level3() -> LevelDigest {
        LevelDigest::from_records(
            3,
            vec![
                (b"A".as_slice(), b"A,2".to_vec()),
                (b"T".as_slice(), b"T,0".to_vec()),
                (b"Y".as_slice(), b"Y,3".to_vec()),
                (b"Z".as_slice(), b"Z,1".to_vec()),
            ],
        )
    }

    #[test]
    fn leaf_count_is_distinct_keys() {
        assert_eq!(level2().leaf_count(), 2, "T and Z chains");
        assert_eq!(level3().leaf_count(), 4);
    }

    #[test]
    fn newest_version_proof_verifies() {
        let l2 = level2();
        let c = l2.commitment();
        let LeafLookup::Found { index } = l2.lookup(b"Z") else { panic!("Z present") };
        let proof = l2.prove_newest(index);
        assert_eq!(proof.verify(&c, b"Z,7"), Ok(()));
    }

    #[test]
    fn stale_version_cannot_claim_newest() {
        let l2 = level2();
        let c = l2.commitment();
        let LeafLookup::Found { index } = l2.lookup(b"Z") else { panic!() };
        // The only verifying proof for Z,6 exposes Z,7's bytes.
        let honest = l2.prove_version(index, 1);
        assert_eq!(honest.verify(&c, b"Z,6"), Ok(()));
        assert_eq!(honest.chain.exposed_newer(), &[b"Z,7".to_vec()]);
        // A "Newest" claim for Z,6 fails.
        let lying = RecordProof {
            chain: ChainPosition::Newest { older_digest: Digest::ZERO },
            ..honest.clone()
        };
        assert!(lying.verify(&c, b"Z,6").is_err());
    }

    #[test]
    fn lookup_absent_gives_successor() {
        let l3 = level3();
        assert_eq!(l3.lookup(b"B"), LeafLookup::Absent { successor: 1 });
        assert_eq!(l3.lookup(b"0"), LeafLookup::Absent { successor: 0 });
        assert_eq!(l3.lookup(b"z"), LeafLookup::Absent { successor: 4 });
        assert_eq!(l3.lookup(b"T"), LeafLookup::Found { index: 1 });
    }

    #[test]
    fn adjacent_leaf_proofs_support_non_membership() {
        // Non-membership of "B" at L3: neighbors A (leaf 0) and T (leaf 1).
        let l3 = level3();
        let c = l3.commitment();
        let pa = l3.prove_newest(0);
        let pt = l3.prove_newest(1);
        assert_eq!(pa.verify(&c, b"A,2"), Ok(()));
        assert_eq!(pt.verify(&c, b"T,0"), Ok(()));
        assert_eq!(pa.leaf_index + 1, pt.leaf_index, "adjacency check");
    }

    #[test]
    fn range_proof_over_level_verifies() {
        // SCAN([S,U]) against L3 covers leaf T (the paper's §5.4 example
        // plus boundaries).
        let l3 = level3();
        let c = l3.commitment();
        let proof = l3.prove_leaf_range(1, 2); // T..Y
        let leaves = &l3.leaf_digests()[1..=2];
        assert!(verify_range(c.root, c.leaf_count as usize, 1, leaves, &proof));
    }

    #[test]
    fn builder_rejects_unsorted_keys() {
        let mut b = LevelDigestBuilder::new(1);
        b.add(b"b", b"1".to_vec());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.add(b"a", b"2".to_vec());
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_level_commitment() {
        let d = LevelDigestBuilder::new(5).finish();
        let c = d.commitment();
        assert!(c.is_empty());
        assert_eq!(c.root, Digest::ZERO);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let records = vec![
            (b"a".as_slice(), b"a9".to_vec()),
            (b"a".as_slice(), b"a3".to_vec()),
            (b"b".as_slice(), b"b1".to_vec()),
            (b"c".as_slice(), b"c7".to_vec()),
            (b"c".as_slice(), b"c5".to_vec()),
            (b"c".as_slice(), b"c2".to_vec()),
        ];
        let one_shot = LevelDigest::from_records(1, records.clone());
        let mut b = LevelDigestBuilder::new(1);
        for (k, r) in records {
            b.add(k, r);
        }
        let streamed = b.finish();
        assert_eq!(one_shot.commitment(), streamed.commitment());
    }

    #[test]
    fn different_levels_different_commitments() {
        let a = LevelDigest::from_records(1, vec![(b"k".as_slice(), b"v".to_vec())]);
        let b = LevelDigest::from_records(2, vec![(b"k".as_slice(), b"v".to_vec())]);
        assert_eq!(a.commitment().root, b.commitment().root);
        assert_ne!(a.commitment().digest(), b.commitment().digest());
    }
}
