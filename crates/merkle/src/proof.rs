//! Record proofs and level commitments.
//!
//! A [`LevelCommitment`] is what the enclave keeps per LSM level: the
//! Merkle root, the leaf count (needed for boundary non-membership) and
//! the level number. A [`RecordProof`] is what travels *embedded inside a
//! record's value* (§5.2: "each record ⟨k, v‖πᵢ⟩ is augmented with its
//! proof"): the record's position in its version chain plus the audit path
//! from its chain head to the level root.

use elsm_crypto::{sha256_concat, Digest};

use crate::chain::ChainPosition;
use crate::tree::MerkleTree;

/// What the enclave stores per level: `(level, root, leaf_count)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCommitment {
    /// LSM level number (1-based).
    pub level: u32,
    /// Merkle root over the level's chain heads.
    pub root: Digest,
    /// Number of leaves (distinct user keys) at the level.
    pub leaf_count: u64,
}

impl LevelCommitment {
    /// Commitment for an empty level.
    pub fn empty(level: u32) -> Self {
        LevelCommitment { level, root: Digest::ZERO, leaf_count: 0 }
    }

    /// Whether the level holds no records.
    pub fn is_empty(&self) -> bool {
        self.leaf_count == 0
    }

    /// A single digest binding all fields, used for the monotonic-counter
    /// rollback defence (§5.6.1 hashes "the current dataset across all
    /// levels").
    pub fn digest(&self) -> Digest {
        sha256_concat(&[
            &[0x04],
            &self.level.to_be_bytes(),
            self.root.as_bytes(),
            &self.leaf_count.to_be_bytes(),
        ])
    }
}

/// Reasons a proof fails verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// Proof's claimed level number differs from the commitment's.
    LevelMismatch,
    /// Proof's claimed leaf count differs from the commitment's.
    LeafCountMismatch,
    /// The audit path does not reach the committed root.
    BadAuditPath,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LevelMismatch => f.write_str("proof level does not match commitment"),
            VerifyError::LeafCountMismatch => {
                f.write_str("proof leaf count does not match commitment")
            }
            VerifyError::BadAuditPath => f.write_str("audit path does not reach committed root"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The proof embedded in a record: chain position + Merkle audit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordProof {
    /// Level the record resides at.
    pub level: u32,
    /// Leaf index of the record's key within the level.
    pub leaf_index: u64,
    /// Leaf count of the level at proof-generation time.
    pub leaf_count: u64,
    /// Position within the key's version chain.
    pub chain: ChainPosition,
    /// Sibling hashes from the chain head to the level root.
    pub audit_path: Vec<Digest>,
}

impl RecordProof {
    /// Verifies the proof for a record's canonical bytes against the
    /// enclave's commitment for the level.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] naming the first check that failed.
    pub fn verify(
        &self,
        commitment: &LevelCommitment,
        record_bytes: &[u8],
    ) -> Result<(), VerifyError> {
        if self.level != commitment.level {
            return Err(VerifyError::LevelMismatch);
        }
        if self.leaf_count != commitment.leaf_count {
            return Err(VerifyError::LeafCountMismatch);
        }
        let chain_head = self.chain.chain_head(record_bytes);
        let ok = MerkleTree::verify(
            commitment.root,
            commitment.leaf_count as usize,
            self.leaf_index as usize,
            chain_head,
            &self.audit_path,
        );
        if ok {
            Ok(())
        } else {
            Err(VerifyError::BadAuditPath)
        }
    }

    /// Serializes the proof (for embedding in stored values).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u32(&mut out, self.level);
        push_u64(&mut out, self.leaf_index);
        push_u64(&mut out, self.leaf_count);
        match &self.chain {
            ChainPosition::Newest { older_digest } => {
                out.push(0);
                out.extend_from_slice(older_digest.as_bytes());
            }
            ChainPosition::Older { newer_records, older_digest } => {
                out.push(1);
                push_u32(&mut out, newer_records.len() as u32);
                for r in newer_records {
                    push_u32(&mut out, r.len() as u32);
                    out.extend_from_slice(r);
                }
                out.extend_from_slice(older_digest.as_bytes());
            }
        }
        push_u32(&mut out, self.audit_path.len() as u32);
        for d in &self.audit_path {
            out.extend_from_slice(d.as_bytes());
        }
        out
    }

    /// Parses a proof serialized by [`RecordProof::encode`].
    pub fn decode(buf: &[u8]) -> Option<(Self, usize)> {
        let mut pos = 0usize;
        let level = read_u32(buf, &mut pos)?;
        let leaf_index = read_u64(buf, &mut pos)?;
        let leaf_count = read_u64(buf, &mut pos)?;
        let tag = *buf.get(pos)?;
        pos += 1;
        let chain = match tag {
            0 => ChainPosition::Newest { older_digest: read_digest(buf, &mut pos)? },
            1 => {
                let n = read_u32(buf, &mut pos)? as usize;
                if n > buf.len() {
                    return None;
                }
                let mut newer = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = read_u32(buf, &mut pos)? as usize;
                    let bytes = buf.get(pos..pos + len)?.to_vec();
                    pos += len;
                    newer.push(bytes);
                }
                ChainPosition::Older {
                    newer_records: newer,
                    older_digest: read_digest(buf, &mut pos)?,
                }
            }
            _ => return None,
        };
        let n = read_u32(buf, &mut pos)? as usize;
        if n > buf.len() {
            return None;
        }
        let mut audit_path = Vec::with_capacity(n);
        for _ in 0..n {
            audit_path.push(read_digest(buf, &mut pos)?);
        }
        Some((RecordProof { level, leaf_index, leaf_count, chain, audit_path }, pos))
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn read_u32(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let b = buf.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}
fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let b = buf.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}
fn read_digest(buf: &[u8], pos: &mut usize) -> Option<Digest> {
    let b = buf.get(*pos..*pos + 32)?;
    *pos += 32;
    let mut d = [0u8; 32];
    d.copy_from_slice(b);
    Some(Digest::from_bytes(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::chain_digest;

    fn setup() -> (LevelCommitment, RecordProof, Vec<u8>) {
        // Level with 4 keys; key index 2 has a 2-version chain.
        let recs2 = vec![b"k2-new".to_vec(), b"k2-old".to_vec()];
        let leaves = vec![
            chain_digest(&[b"k0".to_vec()]),
            chain_digest(&[b"k1".to_vec()]),
            chain_digest(&recs2),
            chain_digest(&[b"k3".to_vec()]),
        ];
        let tree = MerkleTree::from_leaves(leaves);
        let commitment = LevelCommitment { level: 2, root: tree.root(), leaf_count: 4 };
        let proof = RecordProof {
            level: 2,
            leaf_index: 2,
            leaf_count: 4,
            chain: ChainPosition::Newest { older_digest: chain_digest(&recs2[1..]) },
            audit_path: tree.audit_path(2),
        };
        (commitment, proof, recs2[0].clone())
    }

    #[test]
    fn valid_proof_verifies() {
        let (c, p, bytes) = setup();
        assert_eq!(p.verify(&c, &bytes), Ok(()));
    }

    #[test]
    fn forged_record_rejected() {
        let (c, p, _) = setup();
        assert_eq!(p.verify(&c, b"forged bytes"), Err(VerifyError::BadAuditPath));
    }

    #[test]
    fn wrong_level_rejected() {
        let (c, mut p, bytes) = setup();
        p.level = 3;
        assert_eq!(p.verify(&c, &bytes), Err(VerifyError::LevelMismatch));
    }

    #[test]
    fn wrong_leaf_count_rejected() {
        let (c, mut p, bytes) = setup();
        p.leaf_count = 5;
        assert_eq!(p.verify(&c, &bytes), Err(VerifyError::LeafCountMismatch));
    }

    #[test]
    fn stale_version_claiming_newest_rejected() {
        let (c, p, _) = setup();
        // The old version with a "Newest" chain position cannot verify.
        let lying =
            RecordProof { chain: ChainPosition::Newest { older_digest: Digest::ZERO }, ..p };
        assert_eq!(lying.verify(&c, b"k2-old"), Err(VerifyError::BadAuditPath));
    }

    #[test]
    fn stale_version_with_honest_position_exposes_newer() {
        let (c, p, _) = setup();
        let honest_old = RecordProof {
            chain: ChainPosition::Older {
                newer_records: vec![b"k2-new".to_vec()],
                older_digest: Digest::ZERO,
            },
            ..p
        };
        // It verifies — but the verifier can now see the newer record's
        // bytes and detect staleness (the enclave-side check in elsm).
        assert_eq!(honest_old.verify(&c, b"k2-old"), Ok(()));
        assert_eq!(honest_old.chain.exposed_newer().len(), 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let (_, p, _) = setup();
        let bytes = p.encode();
        let (decoded, used) = RecordProof::decode(&bytes).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(used, bytes.len());

        // Older variant too.
        let older = RecordProof {
            chain: ChainPosition::Older {
                newer_records: vec![b"a".to_vec(), b"bb".to_vec()],
                older_digest: Digest::ZERO,
            },
            ..p
        };
        let bytes = older.encode();
        let (decoded, _) = RecordProof::decode(&bytes).unwrap();
        assert_eq!(decoded, older);
    }

    #[test]
    fn decode_rejects_truncation() {
        let (_, p, _) = setup();
        let bytes = p.encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(RecordProof::decode(&bytes[..cut]).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn commitment_digest_binds_all_fields() {
        let c = LevelCommitment { level: 1, root: chain_digest(&[b"x".to_vec()]), leaf_count: 9 };
        let mut c2 = c;
        c2.leaf_count = 10;
        assert_ne!(c.digest(), c2.digest());
        let mut c3 = c;
        c3.level = 2;
        assert_ne!(c.digest(), c3.digest());
    }
}
