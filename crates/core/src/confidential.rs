//! Data confidentiality layer (§5.6.2).
//!
//! Wraps an [`ElsmP2`] store so the untrusted world only ever sees
//! ciphertext:
//!
//! * data **keys** are deterministically encrypted (so the host can still
//!   search equality over ciphertext), prefixed with an order-preserving
//!   encoding so range queries remain possible — the paper's DE + OPE
//!   combination;
//! * data **values** are AEAD-encrypted with the key ciphertext as
//!   associated data (values cannot be swapped between keys).
//!
//! Like every DE/OPE system (CryptDB, Speicher), equality and order of
//! keys intentionally leak; the paper accepts the same leakage.

use std::sync::Arc;

use elsm_crypto::aead::nonce_from_u64s;
use elsm_crypto::{AeadKey, DetKey, OpeKey};
use lsm_store::Timestamp;
use sgx_sim::Platform;

use crate::api::{AuthenticatedKv, VerifiedRecord};
use crate::error::{ElsmError, VerificationFailure};
use crate::p2::{ElsmP2, P2Options};

/// An authenticated **and** confidential key-value store.
///
/// # Examples
///
/// ```
/// use elsm::{AuthenticatedKv, ConfidentialStore, P2Options};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), elsm::ElsmError> {
/// let store = ConfidentialStore::open(
///     Platform::with_defaults(), P2Options::default(), b"tenant master key")?;
/// store.put(b"alice", b"balance=10")?;
/// assert_eq!(store.get(b"alice")?.unwrap().value(), b"balance=10");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ConfidentialStore {
    inner: ElsmP2,
    det: DetKey,
    ope: OpeKey,
    aead: AeadKey,
    platform: Arc<Platform>,
}

impl ConfidentialStore {
    /// Opens a confidential store deriving all keys from `master`.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open(
        platform: Arc<Platform>,
        options: P2Options,
        master: &[u8],
    ) -> Result<Self, ElsmError> {
        let inner = ElsmP2::open(platform.clone(), options)?;
        Ok(ConfidentialStore {
            inner,
            det: DetKey::derive(master),
            ope: OpeKey::derive(master),
            aead: AeadKey::derive(master),
            platform,
        })
    }

    /// Wraps an existing eLSM-P2 store.
    pub fn wrap(inner: ElsmP2, master: &[u8]) -> Self {
        let platform = inner.platform().clone();
        ConfidentialStore {
            inner,
            det: DetKey::derive(master),
            ope: OpeKey::derive(master),
            aead: AeadKey::derive(master),
            platform,
        }
    }

    /// The wrapped authenticated store.
    pub fn inner(&self) -> &ElsmP2 {
        &self.inner
    }

    /// Encrypted key layout: `[16-byte big-endian OPE code][DET ciphertext]`.
    fn encrypt_key(&self, key: &[u8]) -> Vec<u8> {
        self.platform.charge_hash(key.len() * 3); // OPE walk + DET rounds
        let code = elsm_crypto::ope::encode_prefix(&self.ope, key);
        let mut out = Vec::with_capacity(16 + key.len() + 2);
        out.extend_from_slice(&code.to_be_bytes());
        out.extend_from_slice(&self.det.encrypt(key));
        out
    }

    fn decrypt_key(&self, enc: &[u8]) -> Result<Vec<u8>, ElsmError> {
        let det_part = enc.get(16..).ok_or(VerificationFailure::SealBroken)?;
        self.det.decrypt(det_part).map_err(|_| VerificationFailure::SealBroken.into())
    }

    fn encrypt_value(&self, enc_key: &[u8], ts_hint: u64, value: &[u8]) -> Vec<u8> {
        self.platform.charge_hash(value.len() + 64);
        let nonce = nonce_from_u64s(ts_hint, 0xc0df);
        let mut out = Vec::with_capacity(8 + value.len() + 44);
        out.extend_from_slice(&ts_hint.to_be_bytes());
        out.extend_from_slice(&self.aead.seal(&nonce, enc_key, value));
        out
    }

    fn decrypt_value(&self, enc_key: &[u8], stored: &[u8]) -> Result<Vec<u8>, ElsmError> {
        let hint = stored.get(..8).ok_or(VerificationFailure::SealBroken)?;
        let ts_hint = u64::from_be_bytes(hint.try_into().expect("8 bytes"));
        let nonce = nonce_from_u64s(ts_hint, 0xc0df);
        self.platform.charge_hash(stored.len() + 64);
        self.aead
            .open(&nonce, enc_key, &stored[8..])
            .map_err(|_| VerificationFailure::SealBroken.into())
    }
}

static NONCE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl AuthenticatedKv for ConfidentialStore {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError> {
        let enc_key = self.encrypt_key(key);
        let seq = NONCE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let enc_value = self.encrypt_value(&enc_key, seq, value);
        self.inner.put(&enc_key, &enc_value)
    }

    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError> {
        self.inner.delete(&self.encrypt_key(key))
    }

    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        let enc_key = self.encrypt_key(key);
        match self.inner.get(&enc_key)? {
            Some(rec) => {
                let value = self.decrypt_value(&enc_key, rec.value())?;
                Ok(Some(VerifiedRecord::new(
                    bytes::Bytes::copy_from_slice(key),
                    bytes::Bytes::from(value),
                    rec.ts(),
                    rec.proof_bytes(),
                    rec.levels_checked(),
                )))
            }
            None => Ok(None),
        }
    }

    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        // Encrypt the whole batch up front (the per-byte cryptographic work
        // is inherent), then ride the inner store's single batch ECall.
        let encrypted: Vec<(Vec<u8>, Vec<u8>)> = items
            .iter()
            .map(|(key, value)| {
                let enc_key = self.encrypt_key(key);
                let seq = NONCE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let enc_value = self.encrypt_value(&enc_key, seq, value);
                (enc_key, enc_value)
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            encrypted.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect();
        self.inner.put_batch(&refs)
    }

    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        let encrypted: Vec<Vec<u8>> = keys.iter().map(|key| self.encrypt_key(key)).collect();
        let refs: Vec<&[u8]> = encrypted.iter().map(Vec::as_slice).collect();
        self.inner.delete_batch(&refs)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        // OPE codes bound the encrypted range; DET suffixes are covered by
        // scanning the full code interval and post-filtering exactly.
        let lo_code = elsm_crypto::ope::encode_prefix(&self.ope, from);
        let hi_code = elsm_crypto::ope::encode_prefix(&self.ope, to);
        let lo = lo_code.to_be_bytes().to_vec();
        let mut hi = hi_code.to_be_bytes().to_vec();
        hi.extend_from_slice(&[0xff; 40]); // cover all DET suffixes
        let mut out = Vec::new();
        for rec in self.inner.scan(&lo, &hi)? {
            let plain_key = self.decrypt_key(rec.key())?;
            if plain_key.as_slice() < from || plain_key.as_slice() > to {
                continue; // OPE prefix collision outside the exact range
            }
            let value = self.decrypt_value(rec.key(), rec.value())?;
            out.push(VerifiedRecord::new(
                bytes::Bytes::from(plain_key),
                bytes::Bytes::from(value),
                rec.ts(),
                rec.proof_bytes(),
                rec.levels_checked(),
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ConfidentialStore {
        ConfidentialStore::open(
            Platform::with_defaults(),
            P2Options {
                write_buffer_bytes: 4 * 1024,
                level1_max_bytes: 16 * 1024,
                ..P2Options::default()
            },
            b"master key",
        )
        .unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let s = store();
        s.put(b"alice", b"v-alice").unwrap();
        s.put(b"bob", b"v-bob").unwrap();
        assert_eq!(s.get(b"alice").unwrap().unwrap().value(), b"v-alice");
        assert_eq!(s.get(b"bob").unwrap().unwrap().value(), b"v-bob");
        assert!(s.get(b"carol").unwrap().is_none());
    }

    #[test]
    fn untrusted_world_sees_no_plaintext() {
        let s = store();
        for i in 0..200 {
            s.put(format!("user{i:04}").as_bytes(), b"topsecret-value").unwrap();
        }
        s.inner().db().flush().unwrap();
        for name in s.inner().fs().list() {
            let f = s.inner().fs().open(&name).unwrap();
            let bytes = f.peek(0, f.len()).unwrap();
            assert!(
                !bytes.windows(9).any(|w| w == b"topsecret"),
                "plaintext value leaked into {name}"
            );
            assert!(!bytes.windows(4).any(|w| w == b"user"), "plaintext key leaked into {name}");
        }
    }

    #[test]
    fn range_queries_work_over_ciphertext() {
        let s = store();
        for name in ["alice", "bob", "carol", "dave", "erin"] {
            s.put(name.as_bytes(), format!("v-{name}").as_bytes()).unwrap();
        }
        let got = s.scan(b"bob", b"dave").unwrap();
        let keys: Vec<&[u8]> = got.iter().map(|r| r.key()).collect();
        assert_eq!(keys, vec![b"bob".as_slice(), b"carol".as_slice(), b"dave".as_slice()]);
        assert_eq!(got[1].value(), b"v-carol");
    }

    #[test]
    fn overwrites_return_newest_plaintext() {
        let s = store();
        s.put(b"k", b"v1").unwrap();
        s.put(b"k", b"v2").unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap().value(), b"v2");
    }

    #[test]
    fn deletes_hide_keys() {
        let s = store();
        s.put(b"k", b"v").unwrap();
        s.delete(b"k").unwrap();
        assert!(s.get(b"k").unwrap().is_none());
    }

    #[test]
    fn deterministic_keys_enable_equality_search() {
        let s = store();
        let k1 = s.encrypt_key(b"same");
        let k2 = s.encrypt_key(b"same");
        assert_eq!(k1, k2, "DE must be deterministic for host-side search");
    }
}
