//! The untrusted host's prover material: full per-level digests.
//!
//! The untrusted world stores the complete Merkle trees (it stores all the
//! data anyway) and uses them to answer proof requests — here, segment-tree
//! range proofs for SCAN completeness (§5.4). Nothing in this module is
//! trusted: a tampered digest store simply produces proofs that fail
//! against the enclave's commitments.

use std::collections::HashMap;
use std::sync::Arc;

use merkle::{LevelDigest, RangeProof};
use parking_lot::Mutex;
use sgx_sim::Platform;

use crate::trusted::RangeProver;

/// Host-side map from level number to its full digest structure.
#[derive(Debug)]
pub struct UntrustedDigests {
    platform: Arc<Platform>,
    levels: Mutex<HashMap<u32, LevelDigest>>,
}

impl UntrustedDigests {
    /// Creates an empty digest store.
    pub fn new(platform: Arc<Platform>) -> Arc<Self> {
        Arc::new(UntrustedDigests { platform, levels: Mutex::new(HashMap::new()) })
    }

    /// Installs the digest for a level (after a compaction).
    pub fn install(&self, digest: LevelDigest) {
        self.levels.lock().insert(digest.level(), digest);
    }

    /// Removes a level's digest (its run was consumed).
    pub fn clear(&self, level: u32) {
        self.levels.lock().remove(&level);
    }

    /// Runs `f` over the digest of `level`, if present.
    pub fn with_level<T>(&self, level: u32, f: impl FnOnce(&LevelDigest) -> T) -> Option<T> {
        self.levels.lock().get(&level).map(f)
    }

    /// Number of levels with digests.
    pub fn len(&self) -> usize {
        self.levels.lock().len()
    }

    /// Whether no digests are stored.
    pub fn is_empty(&self) -> bool {
        self.levels.lock().is_empty()
    }
}

impl RangeProver for UntrustedDigests {
    fn prove_range(&self, level: u32, lo: u64, hi: u64) -> Option<RangeProof> {
        let levels = self.levels.lock();
        let digest = levels.get(&level)?;
        if hi < lo || hi as usize >= digest.leaf_count() {
            return None;
        }
        // Reading tree nodes from untrusted memory.
        self.platform.dram_access(64 * ((hi - lo + 1) as usize).max(1));
        Some(digest.prove_leaf_range(lo as usize, hi as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merkle::LevelDigest;

    fn digest(level: u32) -> LevelDigest {
        LevelDigest::from_records(
            level,
            vec![
                (b"a".as_slice(), b"a1".to_vec()),
                (b"b".as_slice(), b"b1".to_vec()),
                (b"c".as_slice(), b"c1".to_vec()),
            ],
        )
    }

    #[test]
    fn install_and_prove() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        assert!(d.prove_range(1, 0, 2).is_some());
        assert!(d.prove_range(1, 0, 3).is_none(), "out of bounds");
        assert!(d.prove_range(2, 0, 0).is_none(), "unknown level");
    }

    #[test]
    fn clear_removes() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        d.clear(1);
        assert!(d.is_empty());
        assert!(d.prove_range(1, 0, 0).is_none());
    }

    #[test]
    fn reinstall_replaces() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        let single = LevelDigest::from_records(1, vec![(b"x".as_slice(), b"x1".to_vec())]);
        d.install(single);
        assert_eq!(d.with_level(1, |l| l.leaf_count()), Some(1));
    }
}
