//! The untrusted host's prover material: full per-level digests.
//!
//! The untrusted world stores the complete Merkle trees (it stores all the
//! data anyway) and uses them to answer proof requests — here, segment-tree
//! range proofs for SCAN completeness (§5.4). Nothing in this module is
//! trusted: a tampered digest store simply produces proofs that fail
//! against the enclave's commitments.
//!
//! Like the enclave's [`TrustedState`](crate::TrustedState), the digest
//! store is **epoch-versioned**: each store version install publishes an
//! immutable snapshot of the level→digest map, so a scan collected against
//! an older version gets range proofs from the trees its trace (and the
//! enclave's matching commitment snapshot) actually describe, even while
//! concurrent compactions replace the current trees.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use merkle::{LevelDigest, RangeProof};
use parking_lot::Mutex;
use sgx_sim::Platform;

use crate::trusted::RangeProver;

#[derive(Debug)]
struct DigestsInner {
    /// The working map compactions mutate before their install.
    current: HashMap<u32, Arc<LevelDigest>>,
    /// Published snapshots, oldest first (digest trees shared by `Arc`).
    epochs: VecDeque<(u64, HashMap<u32, Arc<LevelDigest>>)>,
}

/// Host-side map from level number to its full digest structure.
#[derive(Debug)]
pub struct UntrustedDigests {
    platform: Arc<Platform>,
    levels: Mutex<DigestsInner>,
}

impl UntrustedDigests {
    /// Creates an empty digest store with an (empty) snapshot for epoch 0.
    pub fn new(platform: Arc<Platform>) -> Arc<Self> {
        let mut epochs = VecDeque::new();
        epochs.push_back((0, HashMap::new()));
        Arc::new(UntrustedDigests {
            platform,
            levels: Mutex::new(DigestsInner { current: HashMap::new(), epochs }),
        })
    }

    /// Installs the digest for a level into the working map (after a
    /// compaction builds it). Visible to provers once the owning epoch is
    /// published.
    pub fn install(&self, digest: LevelDigest) {
        let mut inner = self.levels.lock();
        inner.current.insert(digest.level(), Arc::new(digest));
    }

    /// Removes a level's digest from the working map (its run was
    /// consumed).
    pub fn clear(&self, level: u32) {
        self.levels.lock().current.remove(&level);
    }

    /// Publishes the working map as the snapshot for `epoch`.
    pub fn publish_epoch(&self, epoch: u64) {
        let mut inner = self.levels.lock();
        let snapshot = inner.current.clone();
        match inner.epochs.back_mut() {
            Some(back) if back.0 == epoch => back.1 = snapshot,
            _ => inner.epochs.push_back((epoch, snapshot)),
        }
    }

    /// Drops snapshots for epochs not in the live set (interior drained
    /// epochs included); the newest always survives.
    pub fn prune_epochs(&self, live_epochs: &[u64]) {
        let mut inner = self.levels.lock();
        let newest = inner.epochs.back().map(|(e, _)| *e);
        inner.epochs.retain(|(e, _)| Some(*e) == newest || live_epochs.contains(e));
    }

    /// Number of epoch snapshots currently held (diagnostics/tests).
    pub fn epochs_tracked(&self) -> usize {
        self.levels.lock().epochs.len()
    }

    /// Runs `f` over the working digest of `level`, if present.
    pub fn with_level<T>(&self, level: u32, f: impl FnOnce(&LevelDigest) -> T) -> Option<T> {
        self.levels.lock().current.get(&level).map(|d| f(d))
    }

    /// Number of levels with working digests.
    pub fn len(&self) -> usize {
        self.levels.lock().current.len()
    }

    /// Whether no working digests are stored.
    pub fn is_empty(&self) -> bool {
        self.levels.lock().current.is_empty()
    }
}

impl RangeProver for UntrustedDigests {
    fn prove_range(&self, epoch: u64, level: u32, lo: u64, hi: u64) -> Option<RangeProof> {
        let digest = {
            let inner = self.levels.lock();
            let (_, snapshot) = inner.epochs.iter().find(|(e, _)| *e == epoch)?;
            snapshot.get(&level)?.clone()
        };
        if hi < lo || hi as usize >= digest.leaf_count() {
            return None;
        }
        // Reading tree nodes from untrusted memory.
        self.platform.dram_access(64 * ((hi - lo + 1) as usize).max(1));
        Some(digest.prove_leaf_range(lo as usize, hi as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merkle::LevelDigest;

    fn digest(level: u32) -> LevelDigest {
        LevelDigest::from_records(
            level,
            vec![
                (b"a".as_slice(), b"a1".to_vec()),
                (b"b".as_slice(), b"b1".to_vec()),
                (b"c".as_slice(), b"c1".to_vec()),
            ],
        )
    }

    #[test]
    fn install_publish_and_prove() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        assert!(d.prove_range(0, 1, 0, 2).is_none(), "not yet published for epoch 0");
        d.publish_epoch(0);
        assert!(d.prove_range(0, 1, 0, 2).is_some());
        assert!(d.prove_range(0, 1, 0, 3).is_none(), "out of bounds");
        assert!(d.prove_range(0, 2, 0, 0).is_none(), "unknown level");
        assert!(d.prove_range(7, 1, 0, 0).is_none(), "unknown epoch");
    }

    #[test]
    fn old_epochs_keep_old_trees() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        d.publish_epoch(1);
        // A compaction replaces level 1 with a single-leaf tree at epoch 2.
        let single = LevelDigest::from_records(1, vec![(b"x".as_slice(), b"x1".to_vec())]);
        d.install(single);
        d.publish_epoch(2);
        // Epoch 1 still proves over the 3-leaf tree; epoch 2 over 1 leaf.
        assert!(d.prove_range(1, 1, 0, 2).is_some());
        assert!(d.prove_range(2, 1, 0, 0).is_some());
        assert!(d.prove_range(2, 1, 0, 2).is_none());
        // Pruning drops epoch 1 once its readers drained.
        d.prune_epochs(&[2]);
        assert!(d.prove_range(1, 1, 0, 2).is_none());
        assert_eq!(d.epochs_tracked(), 1, "only the newest snapshot survives");
    }

    #[test]
    fn clear_removes() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        d.clear(1);
        d.publish_epoch(0);
        assert!(d.is_empty());
        assert!(d.prove_range(0, 1, 0, 0).is_none());
    }

    #[test]
    fn reinstall_replaces() {
        let d = UntrustedDigests::new(Platform::with_defaults());
        d.install(digest(1));
        let single = LevelDigest::from_records(1, vec![(b"x".as_slice(), b"x1".to_vec())]);
        d.install(single);
        assert_eq!(d.with_level(1, |l| l.leaf_count()), Some(1));
    }
}
