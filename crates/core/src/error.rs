//! Error types of the authenticated store.

use std::fmt;

use merkle::VerifyError;
use sim_disk::FsError;

/// Why a query failed verification — each variant corresponds to an attack
/// class from the paper's threat model (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerificationFailure {
    /// A returned record's proof does not reach the committed root:
    /// forged or tampered data (query-integrity violation).
    ForgedRecord {
        /// Level the record claimed to be at.
        level: u32,
        /// The underlying proof error.
        source: VerifyError,
    },
    /// The returned record verifies but is not the newest version — the
    /// chain position exposed newer records (query-freshness violation).
    StaleRecord {
        /// Level the stale record resides at.
        level: u32,
        /// How many newer versions exist at that level.
        newer_versions: usize,
    },
    /// A record lacks an embedded proof where one is required.
    MissingProof {
        /// Level of the offending record.
        level: u32,
    },
    /// A non-membership claim failed: the presented neighbors are not
    /// adjacent leaves bracketing the queried key (completeness violation).
    BadNonMembership {
        /// Level of the claim.
        level: u32,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A range result failed completeness verification at a level.
    IncompleteRange {
        /// Level of the claim.
        level: u32,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The store skipped or reordered levels in its response.
    LevelSkipped {
        /// The level expected next.
        expected: u32,
    },
    /// The store claimed a level is empty but the enclave holds a
    /// non-empty commitment for it.
    HiddenLevel {
        /// The hidden level.
        level: u32,
    },
    /// The enclave's state was found inconsistent with the trusted
    /// monotonic counter: a rollback attack (§5.6.1).
    RolledBack,
    /// A compaction's inputs failed digest verification; the store is
    /// poisoned and refuses further authenticated answers.
    CompactionInputMismatch {
        /// The input level whose digest mismatched.
        level: u32,
    },
    /// The sealed enclave state could not be unsealed (tampered or from a
    /// different enclave).
    SealBroken,
    /// A trace names an epoch the enclave holds no commitment snapshot
    /// for — either a fabricated epoch or one that drained long ago (the
    /// host replaying an ancient view).
    UnknownEpoch {
        /// The epoch the trace claimed.
        epoch: u64,
    },
    /// An answer (or sealed state) came from a different shard's enclave
    /// than the one that owns the queried key: the host rerouted a query
    /// to the wrong partition, smuggled another shard's records into a
    /// scan segment, or swapped per-shard persistent state across a
    /// restart. [`WRONG_SHARD_UNSHARDED`] stands for "no shard domain".
    WrongShard {
        /// The shard the trusted router expected to answer.
        expected: u32,
        /// The shard whose commitment domain the answer actually carries.
        got: u32,
    },
    /// A shipped replication envelope failed the authenticated channel's
    /// checks: its MAC does not verify, or its sequence number is not the
    /// next expected one — the transport host tampered with, reordered,
    /// selectively dropped or replayed shipped frames.
    ChannelTampered {
        /// Sequence number the replica expected to receive next.
        seq: u64,
    },
    /// A replica refused to answer because its replayed state lags the
    /// primary's last known epoch by more than the configured freshness
    /// bound — the host is withholding the replication stream while
    /// still presenting the replica as live.
    ReplicaStale {
        /// Epochs between the primary's announced head and the replica.
        lag_epochs: u64,
        /// The configured maximum acceptable lag.
        bound: u64,
    },
    /// The primary's signed announcement for an epoch does not match the
    /// state an honest replay of its own frame stream produces (or two
    /// announcements for one epoch disagree): the primary equivocated —
    /// it is showing different histories to different observers.
    ForkedPrimary {
        /// The epoch the conflicting announcements name.
        epoch: u64,
    },
    /// A value-log entry the host returned for a pointer record does not
    /// match the MAC folded into the record commitment: the host swapped,
    /// truncated, or rewrote the separated value (query-integrity
    /// violation on the key-value-separated path).
    VlogEntryTampered {
        /// The value-log file the pointer named.
        file_no: u64,
        /// Human-readable reason (missing entry, key/ts mismatch, bad MAC).
        reason: &'static str,
    },
    /// A verified-cache entry failed its integrity check on hit: the
    /// host process scribbled over enclave-cached verified data. The
    /// entry is discarded and the query falls back to the verified disk
    /// path — tampering is detected, never served.
    CacheTampered {
        /// Commitment epoch the poisoned entry was tagged with.
        epoch: u64,
    },
    /// A node acted under a leadership generation the fencing counter has
    /// moved past: a deposed primary resurrecting after failover, or a
    /// promotion racing a completed one. The generation bump at
    /// promotion (§5.6.1's counter, applied to leadership) makes this
    /// structurally detectable.
    FencedOut {
        /// The generation the node believed it held.
        generation: u64,
        /// The fencing counter's current generation.
        active: u64,
    },
}

/// Sentinel shard id in [`VerificationFailure::WrongShard`] for a store
/// with no shard binding at all (an unsharded enclave domain).
pub const WRONG_SHARD_UNSHARDED: u32 = u32::MAX;

impl VerificationFailure {
    /// The variant name as a static string — the audit stream's event
    /// kind, so auditors can aggregate detections per attack class
    /// without parsing display strings.
    pub fn kind(&self) -> &'static str {
        match self {
            VerificationFailure::ForgedRecord { .. } => "ForgedRecord",
            VerificationFailure::StaleRecord { .. } => "StaleRecord",
            VerificationFailure::MissingProof { .. } => "MissingProof",
            VerificationFailure::BadNonMembership { .. } => "BadNonMembership",
            VerificationFailure::IncompleteRange { .. } => "IncompleteRange",
            VerificationFailure::LevelSkipped { .. } => "LevelSkipped",
            VerificationFailure::HiddenLevel { .. } => "HiddenLevel",
            VerificationFailure::RolledBack => "RolledBack",
            VerificationFailure::CompactionInputMismatch { .. } => "CompactionInputMismatch",
            VerificationFailure::SealBroken => "SealBroken",
            VerificationFailure::UnknownEpoch { .. } => "UnknownEpoch",
            VerificationFailure::WrongShard { .. } => "WrongShard",
            VerificationFailure::ChannelTampered { .. } => "ChannelTampered",
            VerificationFailure::ReplicaStale { .. } => "ReplicaStale",
            VerificationFailure::ForkedPrimary { .. } => "ForkedPrimary",
            VerificationFailure::VlogEntryTampered { .. } => "VlogEntryTampered",
            VerificationFailure::CacheTampered { .. } => "CacheTampered",
            VerificationFailure::FencedOut { .. } => "FencedOut",
        }
    }

    /// The shard context a failure carries, when its variant names one.
    pub(crate) fn shard_context(&self) -> Option<u32> {
        match self {
            VerificationFailure::WrongShard { expected, .. } => Some(*expected),
            _ => None,
        }
    }

    /// The epoch context a failure carries, when its variant names one.
    pub(crate) fn epoch_context(&self) -> Option<u64> {
        match self {
            VerificationFailure::UnknownEpoch { epoch }
            | VerificationFailure::ForkedPrimary { epoch }
            | VerificationFailure::CacheTampered { epoch } => Some(*epoch),
            _ => None,
        }
    }
}

impl fmt::Display for VerificationFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerificationFailure::ForgedRecord { level, source } => {
                write!(f, "forged record at level {level}: {source}")
            }
            VerificationFailure::StaleRecord { level, newer_versions } => {
                write!(f, "stale record at level {level} ({newer_versions} newer versions exist)")
            }
            VerificationFailure::MissingProof { level } => {
                write!(f, "record at level {level} carries no embedded proof")
            }
            VerificationFailure::BadNonMembership { level, reason } => {
                write!(f, "non-membership proof at level {level} rejected: {reason}")
            }
            VerificationFailure::IncompleteRange { level, reason } => {
                write!(f, "range completeness at level {level} rejected: {reason}")
            }
            VerificationFailure::LevelSkipped { expected } => {
                write!(f, "store response skipped level {expected}")
            }
            VerificationFailure::HiddenLevel { level } => {
                write!(f, "store hid non-empty level {level}")
            }
            VerificationFailure::RolledBack => f.write_str("rollback attack detected"),
            VerificationFailure::CompactionInputMismatch { level } => {
                write!(f, "compaction input digest mismatch at level {level}")
            }
            VerificationFailure::SealBroken => f.write_str("sealed enclave state failed to unseal"),
            VerificationFailure::UnknownEpoch { epoch } => {
                write!(f, "no commitment snapshot for epoch {epoch}")
            }
            VerificationFailure::ChannelTampered { seq } => {
                write!(f, "replication envelope {seq} failed channel authentication")
            }
            VerificationFailure::ReplicaStale { lag_epochs, bound } => {
                write!(f, "replica lags the primary by {lag_epochs} epochs (bound {bound})")
            }
            VerificationFailure::ForkedPrimary { epoch } => {
                write!(f, "primary equivocated at epoch {epoch}")
            }
            VerificationFailure::VlogEntryTampered { file_no, reason } => {
                write!(f, "value-log entry in file {file_no} failed authentication: {reason}")
            }
            VerificationFailure::CacheTampered { epoch } => {
                write!(f, "verified cache entry (epoch {epoch}) failed its integrity check")
            }
            VerificationFailure::FencedOut { generation, active } => {
                write!(f, "node generation {generation} fenced out (active generation {active})")
            }
            VerificationFailure::WrongShard { expected, got } => {
                let name = |id: u32| {
                    if id == WRONG_SHARD_UNSHARDED {
                        "unsharded".to_string()
                    } else {
                        format!("shard {id}")
                    }
                };
                write!(
                    f,
                    "answer from the wrong shard: expected {}, got {}",
                    name(*expected),
                    name(*got)
                )
            }
        }
    }
}

impl std::error::Error for VerificationFailure {}

/// Top-level error of the authenticated store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElsmError {
    /// Storage-layer failure.
    Io(FsError),
    /// The host's answer failed authentication.
    Verification(VerificationFailure),
    /// The store refuses service after a failed compaction verification.
    Poisoned,
}

impl fmt::Display for ElsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElsmError::Io(e) => write!(f, "io error: {e}"),
            ElsmError::Verification(v) => write!(f, "verification failed: {v}"),
            ElsmError::Poisoned => f.write_str("store poisoned by failed compaction verification"),
        }
    }
}

impl std::error::Error for ElsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ElsmError::Io(e) => Some(e),
            ElsmError::Verification(v) => Some(v),
            ElsmError::Poisoned => None,
        }
    }
}

impl From<FsError> for ElsmError {
    fn from(e: FsError) -> Self {
        ElsmError::Io(e)
    }
}

impl From<VerificationFailure> for ElsmError {
    fn from(v: VerificationFailure) -> Self {
        ElsmError::Verification(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ElsmError::Verification(VerificationFailure::StaleRecord {
            level: 2,
            newer_versions: 1,
        });
        let s = format!("{e}");
        assert!(s.contains("stale") && s.contains("level 2"));
    }

    #[test]
    fn conversions_work() {
        let io: ElsmError = FsError::NotFound("x".into()).into();
        assert!(matches!(io, ElsmError::Io(_)));
        let v: ElsmError = VerificationFailure::RolledBack.into();
        assert!(matches!(v, ElsmError::Verification(_)));
    }

    #[test]
    fn wrong_shard_display_names_domains() {
        let e = VerificationFailure::WrongShard { expected: 2, got: WRONG_SHARD_UNSHARDED };
        let s = format!("{e}");
        assert!(s.contains("shard 2") && s.contains("unsharded"), "{s}");
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e = ElsmError::Verification(VerificationFailure::RolledBack);
        assert!(e.source().is_some());
    }

    #[test]
    fn kinds_name_their_variants() {
        assert_eq!(VerificationFailure::RolledBack.kind(), "RolledBack");
        assert_eq!(VerificationFailure::CacheTampered { epoch: 1 }.kind(), "CacheTampered");
        assert_eq!(VerificationFailure::WrongShard { expected: 0, got: 1 }.kind(), "WrongShard");
    }
}
