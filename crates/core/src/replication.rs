//! Replication protocol primitives shared by primaries, replicas and
//! auditors.
//!
//! The `elsm-replica` crate builds the actual nodes; this module holds
//! the pieces that belong to the *trusted* protocol surface and are
//! consumed beyond the replica crate (the ct-log fork monitor audits
//! announcements without ever touching a channel):
//!
//! * [`SessionKey`] — the symmetric group key the replication group's
//!   enclaves share after mutual attestation. In real SGX this comes out
//!   of local/remote attestation key exchange; the simulation derives it
//!   from a seed.
//! * [`Announcement`] — a **signed version-install announcement**: on
//!   every version install the primary's enclave binds the installing
//!   epoch to the digest of its level-commitment snapshot
//!   ([`TrustedState::snapshot_digest`]) under the group key. Because
//!   the signature travels with the claim, announcements can be relayed
//!   by untrusted parties (the transport host, gossip, an auditor) and
//!   still be held against the primary — which is what makes both the
//!   replica's fork check and the monitor's divergence check binding.

use elsm_crypto::hmac::hmac_sha256;
use elsm_crypto::{sha256, Digest};
use sgx_sim::Platform;

use crate::trusted::TrustedState;

/// The attestation-established symmetric key of one replication group.
///
/// Used for two separable purposes, domain-tagged apart: transport
/// authentication of shipped envelopes (the channel MAC) and signing of
/// version-install announcements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKey([u8; 32]);

/// Domain tag for channel-envelope MACs.
const DOMAIN_CHANNEL: u8 = 0x01;
/// Domain tag for announcement signatures.
const DOMAIN_ANNOUNCE: u8 = 0x02;

impl SessionKey {
    /// Derives a group key from a seed (stands in for the attested key
    /// exchange).
    pub fn derive(seed: &[u8]) -> Self {
        SessionKey(*sha256(&[b"elsm-replica session v1/", seed].concat()).as_bytes())
    }

    /// MACs one transport envelope: `tag = HMAC(key, 0x01 ‖ seq ‖ payload)`.
    /// The sequence number under the MAC is what turns reordering and
    /// replay into detectable tampering.
    pub fn mac_envelope(&self, platform: &Platform, seq: u64, payload: &[u8]) -> Digest {
        platform.charge_hash(payload.len() + 9 + 64);
        let mut msg = Vec::with_capacity(payload.len() + 9);
        msg.push(DOMAIN_CHANNEL);
        msg.extend_from_slice(&seq.to_le_bytes());
        msg.extend_from_slice(payload);
        hmac_sha256(&self.0, &msg)
    }

    fn mac_announcement(&self, node: u32, epoch: u64, commitments: &Digest) -> Digest {
        let mut msg = Vec::with_capacity(45);
        msg.push(DOMAIN_ANNOUNCE);
        msg.extend_from_slice(&node.to_le_bytes());
        msg.extend_from_slice(&epoch.to_le_bytes());
        msg.extend_from_slice(commitments.as_bytes());
        hmac_sha256(&self.0, &msg)
    }
}

/// A signed version-install announcement: "node `node`'s enclave, at
/// epoch `epoch`, holds the level-commitment snapshot digested as
/// `commitments`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Announcement {
    /// The announcing node's id within its replication group (0 is the
    /// founding primary; replicas follow).
    pub node: u32,
    /// The installed version's epoch.
    pub epoch: u64,
    /// [`TrustedState::snapshot_digest`] of that epoch's commitments.
    pub commitments: Digest,
    /// HMAC over the three fields under the group [`SessionKey`].
    pub mac: Digest,
}

/// Serialized announcement size ([`Announcement::encode`]).
pub const ANNOUNCEMENT_BYTES: usize = 4 + 8 + 32 + 32;

impl Announcement {
    /// Signs an announcement of `state`'s commitment snapshot at `epoch`.
    /// Returns `None` when that epoch's snapshot already drained.
    pub fn sign(
        platform: &Platform,
        state: &TrustedState,
        node: u32,
        epoch: u64,
        key: &SessionKey,
    ) -> Option<Self> {
        let commitments = state.snapshot_digest(epoch)?;
        Some(Self::sign_digest(platform, node, epoch, commitments, key))
    }

    /// Signs an arbitrary commitment digest as `epoch`'s announcement —
    /// the raw signing oracle. An honest node only ever signs through
    /// [`Announcement::sign`]; this entry exists because a *compromised*
    /// primary enclave is exactly such an oracle, and the fork-detection
    /// tests need to produce what it would.
    pub fn sign_digest(
        platform: &Platform,
        node: u32,
        epoch: u64,
        commitments: Digest,
        key: &SessionKey,
    ) -> Self {
        platform.charge_hash(ANNOUNCEMENT_BYTES + 64);
        let mac = key.mac_announcement(node, epoch, &commitments);
        Announcement { node, epoch, commitments, mac }
    }

    /// Verifies the signature. Charges hashing to `platform`.
    pub fn verify(&self, platform: &Platform, key: &SessionKey) -> bool {
        platform.charge_hash(ANNOUNCEMENT_BYTES + 64);
        key.mac_announcement(self.node, self.epoch, &self.commitments) == self.mac
    }

    /// Serializes for shipping/relaying.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ANNOUNCEMENT_BYTES);
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(self.commitments.as_bytes());
        out.extend_from_slice(self.mac.as_bytes());
        out
    }

    /// Parses a serialized announcement (signature **not** yet checked).
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() != ANNOUNCEMENT_BYTES {
            return None;
        }
        let node = u32::from_le_bytes(buf[0..4].try_into().ok()?);
        let epoch = u64::from_le_bytes(buf[4..12].try_into().ok()?);
        let mut commitments = [0u8; 32];
        commitments.copy_from_slice(&buf[12..44]);
        let mut mac = [0u8; 32];
        mac.copy_from_slice(&buf[44..76]);
        Some(Announcement {
            node,
            epoch,
            commitments: Digest::from_bytes(commitments),
            mac: Digest::from_bytes(mac),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announcements_sign_verify_and_round_trip() {
        let platform = Platform::with_defaults();
        let state = TrustedState::new(platform.clone(), 4);
        let key = SessionKey::derive(b"group-1");
        let a = Announcement::sign(&platform, &state, 0, 0, &key).expect("epoch 0 published");
        assert!(a.verify(&platform, &key));
        let decoded = Announcement::decode(&a.encode()).unwrap();
        assert_eq!(decoded, a);
        assert!(decoded.verify(&platform, &key));
        // Wrong key, tampered field, drained epoch: all rejected.
        assert!(!a.verify(&platform, &SessionKey::derive(b"group-2")));
        let mut forged = a.clone();
        forged.epoch = 7;
        assert!(!forged.verify(&platform, &key));
        assert!(Announcement::sign(&platform, &state, 0, 99, &key).is_none());
    }

    #[test]
    fn envelope_macs_bind_the_sequence() {
        let platform = Platform::with_defaults();
        let key = SessionKey::derive(b"group-1");
        let m1 = key.mac_envelope(&platform, 1, b"payload");
        assert_eq!(m1, key.mac_envelope(&platform, 1, b"payload"));
        assert_ne!(m1, key.mac_envelope(&platform, 2, b"payload"));
        assert_ne!(m1, key.mac_envelope(&platform, 1, b"payloae"));
    }

    #[test]
    fn snapshot_digests_separate_shard_domains() {
        let platform = Platform::with_defaults();
        let plain = TrustedState::new(platform.clone(), 4);
        let shard0 = TrustedState::new_in_domain(platform.clone(), 4, Some(0));
        let shard1 = TrustedState::new_in_domain(platform, 4, Some(1));
        let d = |s: &TrustedState| s.snapshot_digest(0).unwrap();
        assert_ne!(d(&plain), d(&shard0));
        assert_ne!(d(&shard0), d(&shard1));
    }
}
