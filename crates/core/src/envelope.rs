//! The value envelope: how proofs are embedded inside stored values.
//!
//! §5.2: "each record at the level ⟨k, v⟩ is augmented with its eLSM proof
//! πᵢ, that is, ⟨k, v‖πᵢ⟩". We encode the stored value as a tagged
//! envelope so the same byte format flows through the vanilla store:
//!
//! ```text
//! [0x00][varint len][app value]                  — fresh write (no proof yet)
//! [0x01][varint len][app value][encoded proof]   — after compaction
//! ```
//!
//! The *canonical bytes* digested by every Merkle structure are the record
//! with its **bare** application value (the proof cannot be part of what it
//! proves).

use bytes::Bytes;
use lsm_store::Record;
use merkle::RecordProof;

use crate::error::VerificationFailure;

/// Wraps a fresh application value (no proof).
pub fn wrap_plain(value: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(value.len() + 6);
    out.push(0x00);
    push_varint(&mut out, value.len() as u64);
    out.extend_from_slice(value);
    Bytes::from(out)
}

/// Wraps an application value together with its embedded proof.
pub fn wrap_with_proof(value: &[u8], proof: &RecordProof) -> Bytes {
    let mut out = Vec::with_capacity(value.len() + 6);
    out.push(0x01);
    push_varint(&mut out, value.len() as u64);
    out.extend_from_slice(value);
    out.extend_from_slice(&proof.encode());
    Bytes::from(out)
}

/// Parses an envelope into `(application value, optional proof)`.
///
/// Returns `None` on malformed envelopes (which verification treats as
/// forgery).
pub fn unwrap(stored: &[u8]) -> Option<(Bytes, Option<RecordProof>)> {
    if stored.is_empty() {
        // Tombstones carry no value at all; treat as plain-empty.
        return Some((Bytes::new(), None));
    }
    let (&tag, rest) = stored.split_first()?;
    let (len, n) = read_varint(rest)?;
    let len = usize::try_from(len).ok()?;
    let value = rest.get(n..n + len)?;
    let tail = &rest[n + len..];
    match tag {
        0x00 => tail.is_empty().then(|| (Bytes::copy_from_slice(value), None)),
        0x01 => {
            let (proof, used) = RecordProof::decode(tail)?;
            (used == tail.len()).then(|| (Bytes::copy_from_slice(value), Some(proof)))
        }
        _ => None,
    }
}

/// The canonical bytes of a record — bare application value, no envelope —
/// the input to every chain and Merkle digest.
pub fn canonical_bytes(record: &Record, bare_value: &[u8]) -> Vec<u8> {
    let bare = Record {
        key: record.key.clone(),
        ts: record.ts,
        kind: record.kind,
        value: Bytes::copy_from_slice(bare_value),
    };
    bare.digest_bytes()
}

/// Unwraps a stored record into `(bare record bytes, app value, proof)`,
/// mapping malformed envelopes to a verification failure at `level`.
///
/// # Errors
///
/// Returns [`VerificationFailure::ForgedRecord`]-class errors on malformed
/// envelopes.
pub fn open_record(
    record: &Record,
    level: u32,
) -> Result<(Vec<u8>, Bytes, Option<RecordProof>), VerificationFailure> {
    let Some((value, proof)) = unwrap(&record.value) else {
        return Err(VerificationFailure::ForgedRecord {
            level,
            source: merkle::VerifyError::BadAuditPath,
        });
    };
    Ok((canonical_bytes(record, &value), value, proof))
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut result = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        result |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((result, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use merkle::ChainPosition;

    fn proof() -> RecordProof {
        RecordProof {
            level: 2,
            leaf_index: 5,
            leaf_count: 9,
            chain: ChainPosition::Newest { older_digest: elsm_crypto::Digest::ZERO },
            audit_path: vec![elsm_crypto::sha256(b"sib")],
        }
    }

    #[test]
    fn plain_round_trip() {
        let w = wrap_plain(b"value bytes");
        let (v, p) = unwrap(&w).unwrap();
        assert_eq!(&v[..], b"value bytes");
        assert!(p.is_none());
    }

    #[test]
    fn proof_round_trip() {
        let w = wrap_with_proof(b"value", &proof());
        let (v, p) = unwrap(&w).unwrap();
        assert_eq!(&v[..], b"value");
        assert_eq!(p.unwrap(), proof());
    }

    #[test]
    fn empty_value_round_trips() {
        let w = wrap_plain(b"");
        let (v, p) = unwrap(&w).unwrap();
        assert!(v.is_empty() && p.is_none());
    }

    #[test]
    fn empty_stored_value_is_plain_empty() {
        let (v, p) = unwrap(b"").unwrap();
        assert!(v.is_empty() && p.is_none());
    }

    #[test]
    fn garbage_rejected() {
        assert!(unwrap(&[0x02, 1, b'x']).is_none());
        assert!(unwrap(&[0x00, 5, b'x']).is_none(), "declared length too long");
        let mut w = wrap_plain(b"v").to_vec();
        w.push(0xff);
        assert!(unwrap(&w).is_none(), "trailing bytes rejected");
    }

    #[test]
    fn canonical_bytes_ignore_envelope() {
        let bare = Record::put(b"k".as_slice(), b"v".as_slice(), 3);
        let enveloped = Record::put(b"k".as_slice(), wrap_plain(b"v"), 3);
        let enveloped2 = Record::put(b"k".as_slice(), wrap_with_proof(b"v", &proof()), 3);
        assert_eq!(canonical_bytes(&enveloped, b"v"), bare.digest_bytes());
        assert_eq!(canonical_bytes(&enveloped2, b"v"), bare.digest_bytes());
    }

    #[test]
    fn open_record_rejects_malformed() {
        let bad = Record::put(b"k".as_slice(), b"\x07garbage".as_slice(), 3);
        assert!(open_record(&bad, 1).is_err());
    }
}
