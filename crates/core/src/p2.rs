//! eLSM-P2: the paper's primary design (§5).
//!
//! Code inside the enclave; read buffers, SSTables and WAL outside,
//! protected by the per-level Merkle forest. Reads verify membership /
//! non-membership / freshness against in-enclave commitments with early
//! stop; compactions are authenticated through the listener; an optional
//! trusted monotonic counter defends rollback across power cycles
//! (§5.6.1).

use std::sync::Arc;

use bytes::Bytes;
use elsm_crypto::Digest;
use lsm_store::{
    Db, EnvConfig, GetTrace, LevelOutcome, Options, ScanTrace, StorageEnv, Timestamp, ValueKind,
};
use merkle::LevelCommitment;
use sgx_sim::{BufferedCounter, MonotonicCounter, Platform, SealedBlob, Sealer};
use sim_disk::{Placement, SimDisk, SimFs};

use crate::api::{AuthenticatedKv, VerifiedRecord};
use crate::cache::{CacheStats, VerifiedCache};
use crate::digests::UntrustedDigests;
use crate::envelope::{open_record, wrap_plain};
use crate::error::{ElsmError, VerificationFailure};
use crate::listener::{vlog_entry_mac, AuthListener};
use crate::trusted::{RangeProver, TrustedState, VerifyStats};

/// File holding the sealed enclave state between runs.
const STATE_FILE: &str = "ENCLAVE_STATE";

/// How eLSM-P2 reads SSTables (§5.5.1, Figure 6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Map files into untrusted memory and dereference directly.
    Mmap,
    /// Read through a user-space buffer in untrusted memory.
    Buffer,
}

/// Rollback-defence configuration (§5.6.1).
#[derive(Debug, Clone)]
pub struct RollbackOptions {
    /// Number of state updates batched per hardware counter write (the
    /// paper's tunable write buffer).
    pub counter_write_buffer: usize,
}

impl Default for RollbackOptions {
    fn default() -> Self {
        RollbackOptions { counter_write_buffer: 512 }
    }
}

/// Configuration of an eLSM-P2 store.
#[derive(Debug, Clone)]
pub struct P2Options {
    /// Read path (mmap is the paper's fastest configuration).
    pub read_mode: ReadMode,
    /// Block-cache capacity for [`ReadMode::Buffer`] (untrusted memory).
    pub block_cache_bytes: usize,
    /// Memtable size triggering a flush.
    pub write_buffer_bytes: usize,
    /// Level-1 size budget (levels grow geometrically above it).
    pub level1_max_bytes: u64,
    /// Geometric level growth factor.
    pub level_multiplier: u64,
    /// Number of on-disk levels.
    pub max_levels: usize,
    /// Target SSTable file size within a run.
    pub target_file_bytes: u64,
    /// SSTable block size.
    pub block_size: usize,
    /// Bloom-filter bits per key (0 disables).
    pub bloom_bits_per_key: usize,
    /// Automatic size-triggered compaction.
    pub compaction_enabled: bool,
    /// Which compaction strategy schedules merges (leveled rolling
    /// merges, or size-tiered stacking — the write/read amplification
    /// trade Figure 7 sweeps). Ignored while `compaction_enabled` is
    /// false.
    pub compaction_strategy: lsm_store::CompactionStrategyKind,
    /// Concurrent merge jobs per scheduler wave (1 = the serial
    /// pre-subsystem behavior; up to 4 worker slots exist).
    pub compaction_parallelism: usize,
    /// Reuse stored leaf work for compaction output records whose key
    /// chain is bit-identical to a single input run's, instead of
    /// rehashing them inside the enclave. Commitments and proofs are
    /// identical either way — this only changes the charged enclave
    /// work (the incremental integrity-metadata maintenance lever).
    pub incremental_commitments: bool,
    /// Optional rollback protection via a trusted monotonic counter.
    pub rollback: Option<RollbackOptions>,
    /// When acknowledged writes become durable in the host-side WAL (see
    /// [`lsm_store::WalSyncPolicy`] for the durability trade-off).
    pub wal_sync: lsm_store::WalSyncPolicy,
    /// How many of the most recent epochs stay verifiable with no live
    /// reader (detached trace-then-verify windows — see
    /// [`lsm_store::Options::retired_epoch_floor`]).
    pub retired_epoch_floor: u64,
    /// Shard this store's enclave is bound to when it serves as one
    /// partition of a sharded cluster (`None` for a standalone store).
    /// The id is folded into the trusted state's commitment domain and
    /// carried inside the sealed enclave state, so a host that swaps two
    /// shards' persistent state is detected at recovery
    /// ([`VerificationFailure::WrongShard`]).
    pub shard_id: Option<u32>,
    /// Key-value separation: values at or above the threshold move to an
    /// authenticated value log at flush time; levels keep MAC-carrying
    /// pointer records (`None` disables separation). See
    /// [`lsm_store::VlogConfig`].
    pub vlog: Option<lsm_store::VlogConfig>,
    /// Byte budget of the epoch-aware verified read cache (0 disables).
    /// Hot verified GETs answer from enclave-checked cached entries,
    /// skipping disk reads and proof re-verification; writes and epoch
    /// installs keep it coherent. See [`crate::cache::VerifiedCache`].
    pub verified_cache_bytes: usize,
    /// Telemetry registry the store's metrics, spans and audit events
    /// live in. The default handle is disabled (counters still count —
    /// they are the store's bookkeeping — but spans, histograms and
    /// platform snapshots are no-ops). Pass a
    /// [scoped](telemetry::Telemetry::scoped) handle to share one
    /// registry across shards or replicas without name collisions.
    pub telemetry: telemetry::Telemetry,
}

impl Default for P2Options {
    fn default() -> Self {
        P2Options {
            read_mode: ReadMode::Mmap,
            block_cache_bytes: 512 * 1024,
            write_buffer_bytes: 64 * 1024,
            level1_max_bytes: 256 * 1024,
            level_multiplier: 10,
            max_levels: 7,
            target_file_bytes: 128 * 1024,
            block_size: 4096,
            bloom_bits_per_key: 10,
            compaction_enabled: true,
            compaction_strategy: lsm_store::CompactionStrategyKind::Leveled,
            compaction_parallelism: 1,
            incremental_commitments: false,
            rollback: None,
            wal_sync: lsm_store::WalSyncPolicy::Always,
            retired_epoch_floor: 8,
            shard_id: None,
            vlog: None,
            verified_cache_bytes: 0,
            telemetry: telemetry::Telemetry::default(),
        }
    }
}

/// The eLSM-P2 authenticated key-value store.
///
/// # Examples
///
/// ```
/// use elsm::{AuthenticatedKv, ElsmP2, P2Options};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), elsm::ElsmError> {
/// let store = ElsmP2::open(Platform::with_defaults(), P2Options::default())?;
/// store.put(b"certificate/example.org", b"cert-hash")?;
/// let rec = store.get(b"certificate/example.org")?.expect("present");
/// assert_eq!(rec.value(), b"cert-hash");
/// assert!(store.get(b"absent")?.is_none()); // verified non-membership
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ElsmP2 {
    platform: Arc<Platform>,
    fs: Arc<SimFs>,
    db: Arc<Db>,
    trusted: Arc<TrustedState>,
    digests: Arc<UntrustedDigests>,
    sealer: Sealer,
    counter: Option<Arc<BufferedCounter>>,
    cache: Option<Arc<VerifiedCache>>,
    options: P2Options,
}

impl ElsmP2 {
    /// Opens a fresh store on a new simulated filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open(platform: Arc<Platform>, options: P2Options) -> Result<Self, ElsmError> {
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        Self::open_with(platform, fs, options, None)
    }

    /// Opens (or re-opens) a store on an existing filesystem, optionally
    /// bound to a trusted monotonic counter (required for rollback
    /// protection to survive power cycles).
    ///
    /// On re-open the enclave unseals its commitments, re-derives the WAL
    /// digest from the log, and — when a counter is bound — checks the
    /// dataset digest against the counter's current epoch.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::RolledBack`] when the on-disk state
    /// is an older (but authentic) version than the counter epoch, and
    /// [`VerificationFailure::SealBroken`] when the sealed state fails to
    /// unseal.
    pub fn open_with(
        platform: Arc<Platform>,
        fs: Arc<SimFs>,
        options: P2Options,
        counter: Option<Arc<MonotonicCounter>>,
    ) -> Result<Self, ElsmError> {
        options.telemetry.attach_platform("platform", &platform);
        let trusted =
            TrustedState::new_in_domain(platform.clone(), options.max_levels, options.shard_id);
        let digests = UntrustedDigests::new(platform.clone());
        let cache = (options.verified_cache_bytes > 0).then(|| {
            VerifiedCache::with_telemetry(
                platform.clone(),
                options.verified_cache_bytes,
                &options.telemetry,
            )
        });
        let listener = AuthListener::with_cache(
            platform.clone(),
            trusted.clone(),
            digests.clone(),
            options.incremental_commitments,
            cache.clone(),
        );
        let env = StorageEnv::new(
            platform.clone(),
            fs.clone(),
            EnvConfig {
                in_enclave: true,
                use_mmap: options.read_mode == ReadMode::Mmap,
                cache_placement: Placement::Untrusted,
                block_cache_bytes: if options.read_mode == ReadMode::Buffer {
                    options.block_cache_bytes
                } else {
                    0
                },
                block_slot_bytes: options.block_size * 2,
                sealed_files: false,
            },
            None,
        );
        let recovering = fs.open("MANIFEST").is_ok();
        // Embedded proofs inflate stored records ~6x (audit path + chain
        // digest versus a 100-byte value). Level budgets are configured in
        // *logical* bytes, so physical budgets scale by the overhead
        // factor — otherwise proof bytes would trigger spurious cascades.
        const PROOF_INFLATION: u64 = 6;
        let db_options = Options {
            wal_sync: options.wal_sync,
            max_group_commit_bytes: 1 << 20,
            retired_epoch_floor: options.retired_epoch_floor,
            env: env.config().clone(),
            table: lsm_store::TableOptions {
                block_size: options.block_size,
                bloom_bits_per_key: options.bloom_bits_per_key,
            },
            write_buffer_bytes: options.write_buffer_bytes,
            target_file_bytes: options.target_file_bytes * PROOF_INFLATION,
            level1_max_bytes: options.level1_max_bytes * PROOF_INFLATION,
            level_multiplier: options.level_multiplier,
            max_levels: options.max_levels,
            compaction_enabled: options.compaction_enabled,
            compaction: lsm_store::CompactionConfig {
                strategy: options.compaction_strategy.clone(),
                parallelism: options.compaction_parallelism,
            },
            purge_tombstones_at_bottom: true,
            keep_old_versions: true,
            vlog: options.vlog,
            telemetry: options.telemetry.clone(),
        };
        let db = Arc::new(Db::open(env, db_options, Some(listener))?);
        let sealer = Sealer::new(elsm_crypto::sha256(b"elsm-p2 enclave v1"), b"machine-0");
        let counter = counter.map(|c| {
            Arc::new(BufferedCounter::new(
                c,
                options.rollback.as_ref().map_or(512, |r| r.counter_write_buffer),
            ))
        });
        store_set_stacked(&trusted, &options);
        let store = ElsmP2 { platform, fs, db, trusted, digests, sealer, counter, cache, options };
        if recovering {
            let recovery = store.recover_trusted_state();
            store.audited(recovery)?;
        }
        Ok(store)
    }

    /// Restores enclave state after a power cycle: unseal commitments,
    /// check the monotonic counter, verify the WAL digest and rebuild the
    /// untrusted digest store from the (now re-verified) level contents.
    fn recover_trusted_state(&self) -> Result<(), ElsmError> {
        let state_file = self.fs.open(STATE_FILE).map_err(|_| VerificationFailure::SealBroken)?;
        let raw = state_file.read_at(0, state_file.len())?;
        let blob = SealedBlob::from_bytes(&raw).map_err(|_| VerificationFailure::SealBroken)?;
        let plain = self
            .sealer
            .unseal(b"elsm-p2/state", &blob)
            .map_err(|_| VerificationFailure::SealBroken)?;
        let (commitments, wal_digest, sealed_shard) =
            decode_state(&plain).ok_or(VerificationFailure::SealBroken)?;
        // Shard binding: sealed state from another shard's enclave is
        // authentic (it unseals) but belongs to a different commitment
        // domain — a host swapping per-shard state across a restart.
        if sealed_shard != self.options.shard_id {
            let unsharded = crate::error::WRONG_SHARD_UNSHARDED;
            return Err(VerificationFailure::WrongShard {
                expected: self.options.shard_id.unwrap_or(unsharded),
                got: sealed_shard.unwrap_or(unsharded),
            }
            .into());
        }
        self.trusted.restore_commitments(commitments);
        self.trusted.restore_wal_digest(wal_digest);
        // Rollback check: the dataset digest must match the counter epoch.
        if let Some(counter) = &self.counter {
            let digest = self.trusted.dataset_digest();
            if !counter.counter().verify_current(&digest) {
                return Err(VerificationFailure::RolledBack.into());
            }
        }
        // Rebuild the host's digest trees from the stored levels. If the
        // host tampered with them, proofs will fail against the restored
        // commitments at query time.
        self.rebuild_untrusted_digests()?;
        // Re-publish the rebuilt trees for the recovered store's current
        // epoch, mirroring the restored commitment snapshot.
        self.digests.publish_epoch(self.db.current_epoch());
        Ok(())
    }

    fn rebuild_untrusted_digests(&self) -> Result<(), ElsmError> {
        for level in 1..=self.options.max_levels as u32 {
            let records = self.db.level_record_dump(level as usize)?;
            if records.is_empty() {
                self.digests.clear(level);
                continue;
            }
            let mut builder = merkle::LevelDigestBuilder::new(level);
            for record in &records {
                if let Ok((canonical, _, _)) = open_record(record, level) {
                    builder.add(&record.key, canonical);
                }
            }
            self.digests.install(builder.finish());
        }
        Ok(())
    }

    /// Seals the enclave state to untrusted storage and flushes the
    /// rollback counter — the clean-shutdown path that makes restart
    /// verification possible.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn close(&self) -> Result<(), ElsmError> {
        // Acknowledged writes buffered under a lazy WalSyncPolicy must
        // reach the host before the sealed state claims them: the sealed
        // WAL digest already covers them, so losing their frames across a
        // clean shutdown would fail honest recovery.
        self.db.sync_wal();
        let plain = encode_state(
            &self.trusted.commitments(),
            self.trusted.wal_digest(),
            self.options.shard_id,
        );
        let blob = self.sealer.seal(b"elsm-p2/state", &plain);
        let _ = self.fs.delete(STATE_FILE);
        let file = self.fs.create(STATE_FILE)?;
        file.append(&blob.to_bytes());
        if let Some(counter) = &self.counter {
            counter.update(self.trusted.dataset_digest());
            counter.flush();
        }
        Ok(())
    }

    /// The platform (clock, stats) this store charges against.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The simulated filesystem (exposed for restart/adversary tests).
    pub fn fs(&self) -> &Arc<SimFs> {
        &self.fs
    }

    /// The underlying vanilla store (exposed for benchmarks/statistics).
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// The enclave state (exposed for adversary unit tests).
    pub fn trusted(&self) -> &Arc<TrustedState> {
        &self.trusted
    }

    /// The host-side digest store.
    pub fn digests(&self) -> &Arc<UntrustedDigests> {
        &self.digests
    }

    /// Verification-work counters.
    pub fn verify_stats(&self) -> VerifyStats {
        self.trusted.verify_stats()
    }

    /// Options this store was opened with.
    pub fn options(&self) -> &P2Options {
        &self.options
    }

    /// Telemetry handle this store's metrics and audit events report
    /// into (the one passed via [`P2Options::telemetry`]).
    pub fn telemetry(&self) -> &telemetry::Telemetry {
        &self.options.telemetry
    }

    /// Records a verification failure on the audit stream, stamped with
    /// this store's shard binding and the failure's epoch context (the
    /// current commitment epoch when the variant carries none).
    fn audit_failure(&self, failure: &VerificationFailure) {
        let epoch = failure.epoch_context().unwrap_or_else(|| self.db.current_epoch());
        let mut event = telemetry::AuditEvent::new(failure.kind(), "p2")
            .detail(failure.to_string())
            .epoch(epoch)
            .at_ns(self.platform.clock().now_ns());
        if let Some(shard) = failure.shard_context().or(self.options.shard_id) {
            event = event.shard(shard);
        }
        self.options.telemetry.audit(event);
    }

    /// Passes `result` through, recording any verification failure it
    /// carries on the audit stream first.
    fn audited<T>(&self, result: Result<T, ElsmError>) -> Result<T, ElsmError> {
        if let Err(ElsmError::Verification(failure)) = &result {
            self.audit_failure(failure);
        }
        result
    }

    fn ensure_healthy(&self) -> Result<(), ElsmError> {
        if self.trusted.is_poisoned() {
            Err(ElsmError::Poisoned)
        } else {
            Ok(())
        }
    }

    fn after_write(&self) {
        if let Some(counter) = &self.counter {
            counter.update(self.trusted.dataset_digest());
        }
    }

    /// Assembles the verified answer from a GET trace, resolving
    /// key-value-separated pointer records through the authenticated
    /// value log.
    fn answer_from_trace(&self, trace: &GetTrace) -> Result<Option<VerifiedRecord>, ElsmError> {
        let Some(record) = trace.memtable.as_ref().or(trace.result.as_ref()) else {
            return Ok(None);
        };
        if !record.kind.is_value() {
            return Ok(None); // verified tombstone: key absent
        }
        let Ok((_, value, proof)) = open_record(record, 0) else {
            return Ok(None);
        };
        let proof_bytes = proof.map_or(0, |p| p.encoded_len());
        let value = if record.kind == ValueKind::VlogPut {
            self.resolve_vlog_value(record, &value)?
        } else {
            value
        };
        Ok(Some(VerifiedRecord::new(
            record.key.clone(),
            value,
            record.ts,
            proof_bytes,
            trace.levels.len(),
        )))
    }

    /// Follows a verified pointer record into the authenticated value
    /// log: fetch the entry (verified cache first, host read second),
    /// check it against the MAC the level commitment vouches for, and
    /// unwrap the payload's envelope. Any mismatch is the host swapping,
    /// truncating or staling the separated value —
    /// [`VerificationFailure::VlogEntryTampered`].
    fn resolve_vlog_value(
        &self,
        record: &lsm_store::Record,
        pointer: &[u8],
    ) -> Result<Bytes, ElsmError> {
        let Some((ptr, mac)) = lsm_store::vlog::decode_pointer(pointer) else {
            return Err(VerificationFailure::VlogEntryTampered {
                file_no: 0,
                reason: "malformed pointer record",
            }
            .into());
        };
        let tamper = |reason| {
            ElsmError::Verification(VerificationFailure::VlogEntryTampered {
                file_no: ptr.file_no,
                reason,
            })
        };
        let payload = match self
            .cache
            .as_ref()
            .and_then(|cache| cache.lookup_vlog(ptr.file_no, ptr.offset, &mac))
        {
            Some(payload) => payload,
            None => {
                let vlog = self.db.vlog().ok_or_else(|| tamper("store holds no value log"))?;
                let entry = vlog.read(ptr)?.ok_or_else(|| tamper("entry missing or unreadable"))?;
                if entry.key != record.key[..] || entry.ts != record.ts {
                    return Err(tamper("entry bound to a different key or timestamp"));
                }
                let expect = vlog_entry_mac(&self.platform, &entry.key, entry.ts, &entry.value);
                if expect != mac {
                    return Err(tamper("entry digest does not match the committed MAC"));
                }
                let payload = Bytes::from(entry.value);
                if let Some(cache) = &self.cache {
                    cache.insert_vlog(ptr.file_no, ptr.offset, mac, payload.clone());
                }
                payload
            }
        };
        let (value, _) =
            crate::envelope::unwrap(&payload).ok_or_else(|| tamper("entry envelope malformed"))?;
        Ok(value)
    }

    /// Verified-cache counters (zeroed stats when caching is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The verified read cache, when enabled (exposed for adversary
    /// tests that scribble over entries).
    pub fn verified_cache(&self) -> Option<&Arc<VerifiedCache>> {
        self.cache.as_ref()
    }
}

impl AuthenticatedKv for ElsmP2 {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError> {
        // Every public entry point opens a trace span: the root of a
        // fresh trace tree for a direct caller, a nested child when a
        // router or replica span is already active on this thread. The
        // guard drops after `after_write`, so the whole request —
        // including any flush it triggers — lands in one span window.
        let _trace = self.options.telemetry.trace_op("op.put", "put");
        self.ensure_healthy()?;
        // The YCSB driver wraps each operation in an ECall (§6.1),
        // marshalling the record across the boundary.
        let ts = self
            .platform
            .ecall_with_payload(key.len() + value.len(), || self.db.put(key, &wrap_plain(value)))?;
        self.after_write();
        Ok(ts)
    }

    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError> {
        let _trace = self.options.telemetry.trace_op("op.delete", "delete");
        self.ensure_healthy()?;
        let ts = self.platform.ecall_with_payload(key.len(), || self.db.delete(key))?;
        self.after_write();
        Ok(ts)
    }

    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        let _trace = self.options.telemetry.trace_op("op.put_batch", "put_batch");
        self.ensure_healthy()?;
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // One enclave transition carries the whole batch (plus per-record
        // marshalling); the envelope layer wraps every value in bulk inside,
        // the store group-commits the batch as one WAL frame, and the
        // trusted state (WAL digest, rollback counter) updates once.
        // Marshalling covers the *argument* bytes — the envelope is added
        // inside the enclave, so the batch's own payload_bytes (enveloped)
        // is deliberately not the number charged here.
        let payload: usize = items.iter().map(|(k, v)| k.len() + v.len()).sum();
        let timestamps = self.platform.ecall_with_payload(payload, || {
            let mut batch = lsm_store::WriteBatch::with_capacity(items.len());
            for (key, value) in items {
                batch.put(Bytes::copy_from_slice(key), wrap_plain(value));
            }
            self.db.write_batch(batch)
        })?;
        self.after_write();
        Ok(timestamps)
    }

    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        let _trace = self.options.telemetry.trace_op("op.delete_batch", "delete_batch");
        self.ensure_healthy()?;
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut batch = lsm_store::WriteBatch::with_capacity(keys.len());
        for key in keys {
            batch.delete(Bytes::copy_from_slice(key));
        }
        let timestamps = self
            .platform
            .ecall_with_payload(batch.payload_bytes(), || self.db.write_batch(batch))?;
        self.after_write();
        Ok(timestamps)
    }

    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        let _trace = self.options.telemetry.trace_op("op.get", "get");
        self.ensure_healthy()?;
        let result = self.get_inner(key);
        self.audited(result)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        let _trace = self.options.telemetry.trace_op("op.scan", "scan");
        self.ensure_healthy()?;
        let result = self.scan_inner(from, to);
        self.audited(result)
    }
}

impl ElsmP2 {
    fn get_inner(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        // The trace is collected against a pinned version snapshot and
        // verified against the commitment set published for that
        // snapshot's epoch. Concurrent flush/compaction installs replace
        // neither — readers never serialize behind them, yet verification
        // always sees exactly the roots the trace was collected under
        // (the §5.5.2 guarantee, lock-free).
        self.platform.ecall(|| {
            // Verified-cache fast path: an entry memoized under the
            // current epoch answers without touching the host at all. A
            // tampered entry is detected, discarded and the query falls
            // back to the verified disk path below — never served.
            if let Some(cache) = &self.cache {
                if let Ok(Some((ts, value))) = cache.lookup_record(key, self.db.current_epoch()) {
                    return Ok(Some(VerifiedRecord::new(
                        Bytes::copy_from_slice(key),
                        value,
                        ts,
                        0,
                        0,
                    )));
                }
            }
            let (trace, verdict) =
                self.db.get_with_trace_sync(key, Timestamp::MAX >> 1, |trace| {
                    self.trusted.verify_get(key, trace)
                })?;
            verdict?;
            let answer = self.answer_from_trace(&trace)?;
            if let (Some(cache), Some(rec)) = (&self.cache, &answer) {
                cache.insert_record(
                    key,
                    trace.epoch,
                    rec.ts(),
                    Bytes::copy_from_slice(rec.value()),
                );
            }
            Ok(answer)
        })
    }

    fn scan_inner(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        let (trace, verdict) = self.platform.ecall(|| {
            self.db.scan_with_trace_sync(from, to, Timestamp::MAX >> 1, |trace| {
                self.trusted.verify_scan(from, to, trace, self.digests.as_ref())
            })
        })?;
        verdict?;
        let mut out = Vec::with_capacity(trace.merged.len());
        for record in &trace.merged {
            let (_, value, proof) = open_record(record, 0).map_err(ElsmError::Verification)?;
            let value = if record.kind == ValueKind::VlogPut {
                self.resolve_vlog_value(record, &value)?
            } else {
                value
            };
            out.push(VerifiedRecord::new(
                record.key.clone(),
                value,
                record.ts,
                proof.map_or(0, |p| p.encoded_len()),
                trace.levels.len(),
            ));
        }
        Ok(out)
    }
}

/// Exposes trace-level entry points so adversary tests can feed tampered
/// traces directly into the verifier.
impl ElsmP2 {
    /// Runs the GET verifier on an externally supplied trace.
    ///
    /// # Errors
    ///
    /// Returns the detected [`VerificationFailure`].
    pub fn verify_get_trace(
        &self,
        key: &[u8],
        trace: &GetTrace,
    ) -> Result<(), VerificationFailure> {
        let verdict = self.trusted.verify_get(key, trace);
        if let Err(failure) = &verdict {
            self.audit_failure(failure);
        }
        verdict
    }

    /// Runs the SCAN verifier on an externally supplied trace.
    ///
    /// # Errors
    ///
    /// Returns the detected [`VerificationFailure`].
    pub fn verify_scan_trace(
        &self,
        from: &[u8],
        to: &[u8],
        trace: &ScanTrace,
    ) -> Result<(), VerificationFailure> {
        let verdict = self.trusted.verify_scan(from, to, trace, self.digests.as_ref());
        if let Err(failure) = &verdict {
            self.audit_failure(failure);
        }
        verdict
    }

    /// Produces a raw (unverified) trace — adversary tests tamper with
    /// this before feeding it back to the verifier.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Io`] on storage errors.
    pub fn raw_get_trace(&self, key: &[u8]) -> Result<GetTrace, ElsmError> {
        Ok(self.db.get_with_trace(key, Timestamp::MAX >> 1)?)
    }

    /// Produces a raw (unverified) scan trace.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Io`] on storage errors.
    pub fn raw_scan_trace(&self, from: &[u8], to: &[u8]) -> Result<ScanTrace, ElsmError> {
        Ok(self.db.scan_with_trace(from, to, Timestamp::MAX >> 1)?)
    }

    /// Reference to a trace's hit record (handy in tests).
    pub fn hit_of(trace: &GetTrace) -> Option<&lsm_store::Record> {
        trace.levels.iter().find_map(|l| match &l.outcome {
            LevelOutcome::Hit(r) => Some(r),
            _ => None,
        })
    }
}

fn store_set_stacked(trusted: &Arc<TrustedState>, options: &P2Options) {
    // Stacked (freshest-run-highest) read order holds when compaction is
    // off entirely, and also under strategies that stack flushed runs
    // (size-tiered) — the verifier's expected search order must match the
    // store's.
    let stacked_strategy = lsm_store::CompactionConfig {
        strategy: options.compaction_strategy.clone(),
        parallelism: options.compaction_parallelism,
    }
    .strategy()
    .stacked();
    trusted.set_stacked(!options.compaction_enabled || stacked_strategy);
}

fn encode_state(
    commitments: &[LevelCommitment],
    wal_digest: Digest,
    shard: Option<u32>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(commitments.len() as u32).to_le_bytes());
    for c in commitments {
        out.extend_from_slice(&c.level.to_le_bytes());
        out.extend_from_slice(c.root.as_bytes());
        out.extend_from_slice(&c.leaf_count.to_le_bytes());
    }
    out.extend_from_slice(wal_digest.as_bytes());
    out.extend_from_slice(&shard.unwrap_or(crate::error::WRONG_SHARD_UNSHARDED).to_le_bytes());
    out
}

fn decode_state(buf: &[u8]) -> Option<(Vec<LevelCommitment>, Digest, Option<u32>)> {
    let n = u32::from_le_bytes(buf.get(0..4)?.try_into().ok()?) as usize;
    let mut pos = 4;
    let mut commitments = Vec::with_capacity(n);
    for _ in 0..n {
        let level = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?);
        pos += 4;
        let mut root = [0u8; 32];
        root.copy_from_slice(buf.get(pos..pos + 32)?);
        pos += 32;
        let leaf_count = u64::from_le_bytes(buf.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        commitments.push(LevelCommitment { level, root: Digest::from_bytes(root), leaf_count });
    }
    let mut wal = [0u8; 32];
    wal.copy_from_slice(buf.get(pos..pos + 32)?);
    pos += 32;
    let shard = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?);
    let shard = (shard != crate::error::WRONG_SHARD_UNSHARDED).then_some(shard);
    Some((commitments, Digest::from_bytes(wal), shard))
}

// A small accessor used by scan verification; kept here to avoid exposing
// the prover trait at the API surface.
impl RangeProver for ElsmP2 {
    fn prove_range(&self, epoch: u64, level: u32, lo: u64, hi: u64) -> Option<merkle::RangeProof> {
        self.digests.prove_range(epoch, level, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_store::{CompactionStrategyKind, TieredConfig};
    use std::collections::BTreeMap;

    /// Deterministic 64-bit LCG (MMIX constants) — no RNG crates in-tree.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 16
        }
    }

    fn small_options(strategy: CompactionStrategyKind, parallelism: usize) -> P2Options {
        P2Options {
            write_buffer_bytes: 4 * 1024,
            level1_max_bytes: 8 * 1024,
            level_multiplier: 4,
            max_levels: 4,
            target_file_bytes: 8 * 1024,
            compaction_strategy: strategy,
            compaction_parallelism: parallelism,
            incremental_commitments: true,
            ..P2Options::default()
        }
    }

    /// Property: whatever the strategy and scheduler parallelism, the
    /// store is observationally one key-value map. A random workload of
    /// puts and deletes — sized to force many flushes and compaction
    /// waves — must leave every configuration agreeing with a model
    /// oracle on verified point reads and on one totally-ordered,
    /// completeness-verified scan.
    #[test]
    fn compaction_strategy_matches_oracle() {
        let configs = [
            (CompactionStrategyKind::Leveled, 1),
            (CompactionStrategyKind::Leveled, 4),
            (CompactionStrategyKind::Tiered(TieredConfig::default()), 1),
            (CompactionStrategyKind::Tiered(TieredConfig::default()), 4),
        ];
        let stores: Vec<ElsmP2> = configs
            .iter()
            .map(|(strategy, parallelism)| {
                ElsmP2::open(
                    Platform::with_defaults(),
                    small_options(strategy.clone(), *parallelism),
                )
                .expect("open")
            })
            .collect();
        let mut oracle: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut rng = Lcg(0xe15a_c0de);
        for step in 0..700u64 {
            let key = format!("key{:04}", rng.next() % 160).into_bytes();
            if rng.next() % 5 == 0 {
                for store in &stores {
                    store.delete(&key).expect("delete");
                }
                oracle.insert(key, None);
            } else {
                let value = format!("val-{step}-{:08}", rng.next() % 100_000_000).into_bytes();
                for store in &stores {
                    store.put(&key, &value).expect("put");
                }
                oracle.insert(key, Some(value));
            }
        }
        for store in &stores {
            let stats = store.db().stats();
            assert!(stats.flushes > 0, "workload must trigger flushes");
        }
        // Verified point reads over the whole keyspace (plus never-written
        // keys: verified non-membership).
        for k in 0..170u64 {
            let key = format!("key{k:04}").into_bytes();
            let expect = oracle.get(&key).and_then(Clone::clone);
            for (store, (strategy, parallelism)) in stores.iter().zip(&configs) {
                let got = store.get(&key).expect("verified get").map(|r| r.value().to_vec());
                assert_eq!(
                    got, expect,
                    "{strategy:?}/par{parallelism} diverged from oracle on {key:?}"
                );
            }
        }
        // One totally-ordered, completeness-verified scan per store.
        let expect_scan: Vec<(Vec<u8>, Vec<u8>)> =
            oracle.iter().filter_map(|(k, v)| v.clone().map(|v| (k.clone(), v))).collect();
        for (store, (strategy, parallelism)) in stores.iter().zip(&configs) {
            let got: Vec<(Vec<u8>, Vec<u8>)> = store
                .scan(b"key0000", b"key9999")
                .expect("verified scan")
                .iter()
                .map(|r| (r.key().to_vec(), r.value().to_vec()))
                .collect();
            assert_eq!(got, expect_scan, "{strategy:?}/par{parallelism} scan diverged");
        }
    }
}
