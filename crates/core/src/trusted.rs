//! The enclave-resident trusted state and the VRFY algorithms (§5.3).
//!
//! [`TrustedState`] holds exactly what the paper keeps inside the enclave:
//! one Merkle commitment per LSM level (root + leaf count), the running
//! WAL digest, and the poisoned flag set when a compaction's inputs fail
//! digest verification.
//!
//! # Epoch-versioned commitments
//!
//! The paper's §5.5.2 serializes reads against compaction installs with a
//! mutex. This implementation keeps the *guarantee* — a trace is always
//! verified against the exact commitments it was collected under — without
//! the lock: every store version install publishes an immutable snapshot
//! of the commitment vector tagged with the version's **epoch**
//! ([`TrustedState::publish_epoch`]), and [`TrustedState::verify_get`] /
//! [`TrustedState::verify_scan`] look the snapshot up by the trace's
//! epoch. Snapshots are pruned once their readers drain
//! ([`TrustedState::prune_epochs`]); a trace naming an unknown epoch is
//! rejected ([`VerificationFailure::UnknownEpoch`]), so the host cannot
//! replay arbitrarily old views.
//!
//! [`TrustedState::verify_get`] implements the GET verification of
//! Theorem 5.3: membership + freshness at the hit level, non-membership at
//! every earlier level, early stop justified by Lemma 5.4.
//! [`TrustedState::verify_scan`] implements the §5.4 range completeness
//! check using segment-tree range proofs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use elsm_crypto::{sha256_concat, Digest};
use lsm_store::{GetTrace, LevelOutcome, Record, ScanTrace};
use merkle::{verify_range, ChainPosition, LevelCommitment, RangeProof, RecordProof};
use parking_lot::Mutex;
use sgx_sim::Platform;

use crate::envelope::open_record;
use crate::error::VerificationFailure;

/// Supplies range proofs for a level — implemented by the untrusted host's
/// digest store ([`crate::digests::UntrustedDigests`]).
pub trait RangeProver {
    /// Produces the proof for leaves `lo..=hi` of `level` as of `epoch`,
    /// or `None` if the host cannot (treated as a completeness failure).
    fn prove_range(&self, epoch: u64, level: u32, lo: u64, hi: u64) -> Option<RangeProof>;
}

/// The commitment-vector mutation one compaction job induces, expressed
/// as a delta instead of a full recompute: the runs the job consumed
/// (their levels' commitments clear) and the runs it produced (their
/// commitments install). Applying the delta touches only the changed
/// slots of the working vector — O(levels-in-job) enclave work instead of
/// O(max-levels) — and is charged under its own serial class
/// ([`sgx_sim::SerialClass::DeltaFold`]) so concurrent jobs' folds
/// exclude each other without riding the store's maintenance section.
///
/// The resulting vector — and therefore every published
/// [`TrustedState::snapshot_digest`] — is **bit-identical** to the full
/// set/clear recompute path (pinned by a unit test).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionDelta {
    /// Levels whose runs the job consumed; their commitments clear.
    pub runs_removed: Vec<u32>,
    /// Commitments of the runs the job produced (installed after the
    /// removals, so a level appearing in both ends up installed).
    pub runs_added: Vec<LevelCommitment>,
}

impl CompactionDelta {
    /// True when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.runs_removed.is_empty() && self.runs_added.is_empty()
    }

    /// Number of commitment slots the delta touches.
    pub fn touched_levels(&self) -> usize {
        self.runs_removed.len() + self.runs_added.len()
    }
}

/// Counters describing verification work (proof-size ablations read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Individual record proofs verified.
    pub proofs_verified: u64,
    /// Total serialized proof bytes inspected.
    pub proof_bytes: u64,
    /// Levels checked across all queries (proof-size proxy: the early stop
    /// keeps this small).
    pub levels_checked: u64,
}

/// The commitment vector plus its epoch-tagged published snapshots.
#[derive(Debug)]
struct CommitmentStore {
    /// The working vector compactions mutate before their install.
    current: Vec<LevelCommitment>,
    /// Published snapshots, oldest first; verification reads these.
    epochs: VecDeque<(u64, Arc<[LevelCommitment]>)>,
}

/// Enclave-held state of an eLSM-P2 store.
#[derive(Debug)]
pub struct TrustedState {
    platform: Arc<Platform>,
    max_levels: usize,
    /// Shard this enclave's commitment domain is bound to (`None` for a
    /// standalone store). Folded into [`TrustedState::dataset_digest`], so
    /// the same data committed by two different shards yields two
    /// different domains — a host cannot swap one shard's state for
    /// another's.
    shard: Option<u32>,
    commitments: Mutex<CommitmentStore>,
    wal_digest: Mutex<Digest>,
    /// Stacked-run mode (compaction disabled): freshness order is highest
    /// level first, and GET traces arrive in that order.
    stacked: AtomicBool,
    poisoned: AtomicBool,
    proofs_verified: AtomicU64,
    proof_bytes: AtomicU64,
    levels_checked: AtomicU64,
}

impl TrustedState {
    /// Fresh state with empty commitments for levels `1..=max_levels`,
    /// published as the snapshot for epoch 0.
    pub fn new(platform: Arc<Platform>, max_levels: usize) -> Arc<Self> {
        Self::new_in_domain(platform, max_levels, None)
    }

    /// Fresh state whose commitment domain is bound to `shard` (see the
    /// `shard` field); `None` gives the standalone domain of
    /// [`TrustedState::new`].
    pub fn new_in_domain(
        platform: Arc<Platform>,
        max_levels: usize,
        shard: Option<u32>,
    ) -> Arc<Self> {
        let current: Vec<LevelCommitment> =
            (0..=max_levels as u32).map(LevelCommitment::empty).collect();
        let mut epochs = VecDeque::new();
        epochs.push_back((0, Arc::from(current.as_slice())));
        Arc::new(TrustedState {
            platform,
            max_levels,
            shard,
            commitments: Mutex::new(CommitmentStore { current, epochs }),
            wal_digest: Mutex::new(Digest::ZERO),
            stacked: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            proofs_verified: AtomicU64::new(0),
            proof_bytes: AtomicU64::new(0),
            levels_checked: AtomicU64::new(0),
        })
    }

    /// Number of on-disk levels currently tracked (grows when the store
    /// stacks runs with compaction disabled).
    pub fn max_levels(&self) -> usize {
        self.commitments.lock().current.len().saturating_sub(1).max(self.max_levels)
    }

    /// The *working* commitment for `level` (empty for levels never
    /// installed). Compaction input checks read this; trace verification
    /// reads epoch snapshots instead.
    pub fn commitment(&self, level: u32) -> LevelCommitment {
        let c = self.commitments.lock();
        c.current.get(level as usize).copied().unwrap_or_else(|| LevelCommitment::empty(level))
    }

    /// Installs a commitment into the working vector (the
    /// compaction-completion ECall of §5.5.2), growing the level table if
    /// needed. It becomes visible to verification when the owning store
    /// version's epoch is published.
    pub fn set_commitment(&self, commitment: LevelCommitment) {
        let mut c = self.commitments.lock();
        Self::set_commitment_locked(&mut c, commitment);
    }

    /// Clears a level's commitment (its run was consumed by compaction).
    pub fn clear_commitment(&self, level: u32) {
        self.set_commitment(LevelCommitment::empty(level));
    }

    /// Folds one compaction job's [`CompactionDelta`] into the working
    /// vector: removals clear, then additions install — one lock
    /// acquisition, touching only the job's levels. The enclave work is
    /// charged per touched slot (a 32-byte root move each) under
    /// [`sgx_sim::SerialClass::DeltaFold`], the incremental-recomputation
    /// class, so concurrent jobs' folds serialize against each other but
    /// overlap with query verification and WAL folding.
    pub fn apply_compaction_delta(&self, delta: &CompactionDelta) {
        if delta.is_empty() {
            return;
        }
        let _serial = self.platform.serial_section(sgx_sim::SerialClass::DeltaFold);
        self.platform.charge_hash(32 * delta.touched_levels());
        let mut c = self.commitments.lock();
        for &level in &delta.runs_removed {
            Self::set_commitment_locked(&mut c, LevelCommitment::empty(level));
        }
        for commitment in &delta.runs_added {
            Self::set_commitment_locked(&mut c, *commitment);
        }
    }

    fn set_commitment_locked(c: &mut CommitmentStore, commitment: LevelCommitment) {
        let idx = commitment.level as usize;
        while c.current.len() <= idx {
            let next = c.current.len() as u32;
            c.current.push(LevelCommitment::empty(next));
        }
        c.current[idx] = commitment;
    }

    /// All working commitments (for sealing).
    pub fn commitments(&self) -> Vec<LevelCommitment> {
        self.commitments.lock().current.clone()
    }

    /// Restores commitments from sealed state, re-publishing the newest
    /// epoch snapshot so recovered traces verify against the restored
    /// roots.
    pub fn restore_commitments(&self, commitments: Vec<LevelCommitment>) {
        let mut c = self.commitments.lock();
        let snapshot: Arc<[LevelCommitment]> = Arc::from(commitments.as_slice());
        c.current = commitments;
        match c.epochs.back_mut() {
            Some(back) => back.1 = snapshot,
            None => c.epochs.push_back((0, snapshot)),
        }
    }

    /// Publishes the working commitment vector as the snapshot for
    /// `epoch` (called under the store's write lock, *before* the version
    /// becomes visible — no reader can name an epoch without a snapshot).
    pub fn publish_epoch(&self, epoch: u64) {
        let mut c = self.commitments.lock();
        let snapshot: Arc<[LevelCommitment]> = Arc::from(c.current.as_slice());
        match c.epochs.back_mut() {
            Some(back) if back.0 == epoch => back.1 = snapshot,
            _ => c.epochs.push_back((epoch, snapshot)),
        }
    }

    /// Drops snapshots for epochs no longer in the live set (their
    /// readers have drained) — interior drained epochs included, so one
    /// long-pinned old snapshot cannot make the history grow without
    /// bound. The newest snapshot always survives.
    pub fn prune_epochs(&self, live_epochs: &[u64]) {
        let mut c = self.commitments.lock();
        let newest = c.epochs.back().map(|(e, _)| *e);
        c.epochs.retain(|(e, _)| Some(*e) == newest || live_epochs.contains(e));
    }

    /// Number of epoch snapshots currently held (diagnostics/tests).
    pub fn epochs_tracked(&self) -> usize {
        self.commitments.lock().epochs.len()
    }

    /// The commitment snapshot published for `epoch`, if still held.
    fn commitments_at(&self, epoch: u64) -> Option<Arc<[LevelCommitment]>> {
        let c = self.commitments.lock();
        c.epochs.iter().find(|(e, _)| *e == epoch).map(|(_, s)| s.clone())
    }

    /// Digest over the commitment snapshot published for `epoch`, or
    /// `None` if that snapshot drained. This is what a version-install
    /// [`Announcement`](crate::replication::Announcement) binds: a
    /// replica that replayed the primary's frame stream honestly derives
    /// the same snapshot for the same epoch, so digest equality is the
    /// cross-check — and inequality is a fork. The shard binding is
    /// folded in, exactly as in [`TrustedState::dataset_digest`].
    pub fn snapshot_digest(&self, epoch: u64) -> Option<Digest> {
        let snapshot = self.commitments_at(epoch)?;
        let digests: Vec<Digest> = snapshot.iter().map(|c| c.digest()).collect();
        let shard_tag = self.shard.map(|id| id.to_le_bytes());
        let epoch_le = epoch.to_le_bytes();
        let mut parts: Vec<&[u8]> = vec![&[0x09], &epoch_le];
        if let Some(tag) = &shard_tag {
            parts.push(&[0x08]);
            parts.push(tag);
        }
        for d in &digests {
            parts.push(d.as_bytes());
        }
        self.platform.charge_hash(parts.iter().map(|p| p.len()).sum());
        Some(sha256_concat(&parts))
    }

    /// Folds a WAL append into the running digest (§5.3, step w1).
    pub fn absorb_wal(&self, record_bytes: &[u8]) {
        self.absorb_wal_batch(std::iter::once(record_bytes));
    }

    /// Folds a whole commit group into the running digest with one lock
    /// acquisition. The digest *value* — and the hashing work charged — is
    /// identical to folding record by record: batching changes who pays
    /// the synchronization, never what the enclave commits to, which is
    /// what keeps batched and singleton writes bit-for-bit comparable.
    ///
    /// The fold is charged to
    /// [`sgx_sim::SerialClass::TrustedFold`]: it happens off the store's
    /// write lock (the committer's leader ordering keeps it sequential),
    /// but concurrent writers' folds still exclude each other.
    pub fn absorb_wal_batch<'a>(&self, records: impl IntoIterator<Item = &'a [u8]>) {
        let _serial = self.platform.serial_section(sgx_sim::SerialClass::TrustedFold);
        let mut dig = self.wal_digest.lock();
        for record_bytes in records {
            // Each chain step is its own SHA-256 invocation with its own
            // finalization, exactly as in the singleton path.
            self.platform.charge_hash(record_bytes.len() + 32);
            *dig = sha256_concat(&[&[0x05], record_bytes, dig.as_bytes()]);
        }
    }

    /// Current WAL digest.
    pub fn wal_digest(&self) -> Digest {
        *self.wal_digest.lock()
    }

    /// Overwrites the WAL digest (recovery from sealed state).
    pub fn restore_wal_digest(&self, digest: Digest) {
        *self.wal_digest.lock() = digest;
    }

    /// The shard id this state's commitment domain is bound to, if any.
    pub fn shard_id(&self) -> Option<u32> {
        self.shard
    }

    /// Digest of the whole dataset: all level commitments plus the WAL
    /// digest — what the rollback counter binds (§5.6.1). A sharded
    /// domain additionally folds the shard id in, so identical data in
    /// two shards never shares a dataset digest.
    pub fn dataset_digest(&self) -> Digest {
        let commitments = self.commitments.lock();
        let digests: Vec<Digest> = commitments.current.iter().map(|c| c.digest()).collect();
        let wal = self.wal_digest.lock();
        let shard_tag = self.shard.map(|id| id.to_le_bytes());
        let mut parts: Vec<&[u8]> = vec![&[0x06]];
        if let Some(tag) = &shard_tag {
            parts.push(&[0x08]);
            parts.push(tag);
        }
        for d in &digests {
            parts.push(d.as_bytes());
        }
        parts.push(wal.as_bytes());
        self.platform.charge_hash(parts.iter().map(|p| p.len()).sum());
        sha256_concat(&parts)
    }

    /// Switches the verifier to stacked-run order (compaction disabled).
    pub fn set_stacked(&self, stacked: bool) {
        self.stacked.store(stacked, Ordering::SeqCst);
    }

    /// Whether stacked-run order is in effect.
    pub fn is_stacked(&self) -> bool {
        self.stacked.load(Ordering::SeqCst)
    }

    /// Marks the store poisoned: a compaction input failed verification.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
    }

    /// Whether authenticated service is refused.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Verification-work counters.
    pub fn verify_stats(&self) -> VerifyStats {
        VerifyStats {
            proofs_verified: self.proofs_verified.load(Ordering::Relaxed),
            proof_bytes: self.proof_bytes.load(Ordering::Relaxed),
            levels_checked: self.levels_checked.load(Ordering::Relaxed),
        }
    }

    /// Verifies one record proof against a level commitment, charging the
    /// hashing work.
    fn check_proof(
        &self,
        commitment: &LevelCommitment,
        proof: &RecordProof,
        canonical: &[u8],
    ) -> Result<(), VerificationFailure> {
        let newer_bytes: usize = proof.chain.exposed_newer().iter().map(Vec::len).sum();
        self.platform.charge_hash(canonical.len() + newer_bytes + 64 * proof.audit_path.len());
        self.proofs_verified.fetch_add(1, Ordering::Relaxed);
        self.proof_bytes.fetch_add(proof.encoded_len() as u64, Ordering::Relaxed);
        proof
            .verify(commitment, canonical)
            .map_err(|source| VerificationFailure::ForgedRecord { level: commitment.level, source })
    }

    // ----- GET verification (Theorem 5.3) ---------------------------------

    /// Verifies a traced point query for `key` against the commitment
    /// snapshot of the trace's epoch.
    ///
    /// # Errors
    ///
    /// Returns the [`VerificationFailure`] naming the attack detected.
    pub fn verify_get(&self, key: &[u8], trace: &GetTrace) -> Result<(), VerificationFailure> {
        if trace.memtable.is_some() {
            // Served from trusted enclave memory; nothing to verify.
            return Ok(());
        }
        let snapshot = self
            .commitments_at(trace.epoch)
            .ok_or(VerificationFailure::UnknownEpoch { epoch: trace.epoch })?;
        let commitment_at = |level: u32| {
            snapshot.get(level as usize).copied().unwrap_or_else(|| LevelCommitment::empty(level))
        };
        let epoch_levels = snapshot.len().saturating_sub(1).max(self.max_levels);
        self.levels_checked.fetch_add(trace.levels.len() as u64, Ordering::Relaxed);
        // Expected search order: ascending with compaction (lower =
        // fresher, Lemma 5.4), descending in stacked-run mode (later run =
        // fresher).
        let stacked = self.is_stacked();
        let mut expected: i64 = if stacked { epoch_levels as i64 } else { 1 };
        let step: i64 = if stacked { -1 } else { 1 };
        let mut hit = false;
        for search in &trace.levels {
            if search.level as i64 != expected {
                return Err(VerificationFailure::LevelSkipped { expected: expected.max(0) as u32 });
            }
            if hit {
                // Nothing may follow the hit level (early stop).
                return Err(VerificationFailure::LevelSkipped { expected: expected.max(0) as u32 });
            }
            let commitment = commitment_at(expected as u32);
            match &search.outcome {
                LevelOutcome::Empty => {
                    if !commitment.is_empty() {
                        return Err(VerificationFailure::HiddenLevel { level: expected as u32 });
                    }
                }
                LevelOutcome::Miss { left, right } => {
                    self.verify_non_membership(&commitment, key, left.as_ref(), right.as_ref())?;
                }
                LevelOutcome::Hit(record) => {
                    self.verify_hit(&commitment, key, record)?;
                    hit = true;
                }
            }
            expected += step;
        }
        let exhausted = if stacked { expected < 1 } else { expected as usize > epoch_levels };
        if !hit && !exhausted {
            // The store must account for every level when nothing is found.
            return Err(VerificationFailure::LevelSkipped { expected: expected.max(0) as u32 });
        }
        Ok(())
    }

    fn verify_hit(
        &self,
        commitment: &LevelCommitment,
        key: &[u8],
        record: &Record,
    ) -> Result<(), VerificationFailure> {
        let level = commitment.level;
        if record.key != key {
            return Err(VerificationFailure::BadNonMembership {
                level,
                reason: "hit record key differs from query",
            });
        }
        let (canonical, _value, proof) = open_record(record, level)?;
        let Some(proof) = proof else {
            return Err(VerificationFailure::MissingProof { level });
        };
        self.check_proof(commitment, &proof, &canonical)?;
        // Freshness: the answer must be the newest version at its level
        // (any newer version would appear in the chain position — the
        // paper's ⟨Z,6⟩/⟨Z,7⟩ detection).
        if let ChainPosition::Older { newer_records, .. } = &proof.chain {
            return Err(VerificationFailure::StaleRecord {
                level,
                newer_versions: newer_records.len(),
            });
        }
        Ok(())
    }

    fn verify_non_membership(
        &self,
        commitment: &LevelCommitment,
        key: &[u8],
        left: Option<&Record>,
        right: Option<&Record>,
    ) -> Result<(), VerificationFailure> {
        let level = commitment.level;
        if commitment.is_empty() {
            return if left.is_none() && right.is_none() {
                Ok(())
            } else {
                Err(VerificationFailure::BadNonMembership {
                    level,
                    reason: "neighbors presented for an empty level",
                })
            };
        }
        let left_proof = match left {
            Some(rec) => {
                if rec.key[..] >= *key {
                    return Err(VerificationFailure::BadNonMembership {
                        level,
                        reason: "left neighbor not below query key",
                    });
                }
                let (canonical, _, proof) = open_record(rec, level)?;
                let proof = proof.ok_or(VerificationFailure::MissingProof { level })?;
                self.check_proof(commitment, &proof, &canonical)?;
                Some(proof)
            }
            None => None,
        };
        let right_proof = match right {
            Some(rec) => {
                if rec.key[..] <= *key {
                    return Err(VerificationFailure::BadNonMembership {
                        level,
                        reason: "right neighbor not above query key",
                    });
                }
                let (canonical, _, proof) = open_record(rec, level)?;
                let proof = proof.ok_or(VerificationFailure::MissingProof { level })?;
                self.check_proof(commitment, &proof, &canonical)?;
                Some(proof)
            }
            None => None,
        };
        match (left_proof, right_proof) {
            (Some(l), Some(r)) => {
                if r.leaf_index != l.leaf_index + 1 {
                    return Err(VerificationFailure::BadNonMembership {
                        level,
                        reason: "neighbors are not adjacent leaves",
                    });
                }
            }
            (None, Some(r)) => {
                if r.leaf_index != 0 {
                    return Err(VerificationFailure::BadNonMembership {
                        level,
                        reason: "right neighbor is not the first leaf",
                    });
                }
            }
            (Some(l), None) => {
                if l.leaf_index + 1 != commitment.leaf_count {
                    return Err(VerificationFailure::BadNonMembership {
                        level,
                        reason: "left neighbor is not the last leaf",
                    });
                }
            }
            (None, None) => {
                return Err(VerificationFailure::BadNonMembership {
                    level,
                    reason: "no neighbors for a non-empty level",
                });
            }
        }
        Ok(())
    }

    // ----- SCAN verification (§5.4) ----------------------------------------

    /// Verifies a traced range query over `[from, to]`.
    ///
    /// # Errors
    ///
    /// Returns the [`VerificationFailure`] naming the attack detected.
    pub fn verify_scan(
        &self,
        from: &[u8],
        to: &[u8],
        trace: &ScanTrace,
        prover: &dyn RangeProver,
    ) -> Result<(), VerificationFailure> {
        let snapshot = self
            .commitments_at(trace.epoch)
            .ok_or(VerificationFailure::UnknownEpoch { epoch: trace.epoch })?;
        let epoch_levels = snapshot.len().saturating_sub(1).max(self.max_levels);
        let mut expected: u32 = 1;
        for range in &trace.levels {
            if range.level as u32 != expected {
                return Err(VerificationFailure::LevelSkipped { expected });
            }
            let commitment = snapshot
                .get(expected as usize)
                .copied()
                .unwrap_or_else(|| LevelCommitment::empty(expected));
            self.levels_checked.fetch_add(1, Ordering::Relaxed);
            if range.empty {
                if !commitment.is_empty() {
                    return Err(VerificationFailure::HiddenLevel { level: expected });
                }
                expected += 1;
                continue;
            }
            self.verify_level_range(&commitment, trace.epoch, from, to, range, prover)?;
            expected += 1;
        }
        if (expected as usize) <= epoch_levels {
            return Err(VerificationFailure::LevelSkipped { expected });
        }
        Ok(())
    }

    fn verify_level_range(
        &self,
        commitment: &LevelCommitment,
        epoch: u64,
        from: &[u8],
        to: &[u8],
        range: &lsm_store::LevelRange,
        prover: &dyn RangeProver,
    ) -> Result<(), VerificationFailure> {
        let level = commitment.level;
        let fail = |reason: &'static str| VerificationFailure::IncompleteRange { level, reason };

        // Group in-range records by key; compute each group's leaf hash
        // from the newest version's chain position.
        let mut leaf_seq: Vec<(u64, Digest)> = Vec::new();
        let mut idx = 0usize;
        while idx < range.records.len() {
            let newest = &range.records[idx];
            if newest.key[..] < *from || newest.key[..] > *to {
                return Err(fail("record outside the queried range"));
            }
            let (canonical, _, proof) = open_record(newest, level)?;
            let proof = proof.ok_or(VerificationFailure::MissingProof { level })?;
            if proof.leaf_count != commitment.leaf_count {
                return Err(fail("proof leaf count mismatch"));
            }
            if matches!(proof.chain, ChainPosition::Older { .. }) {
                return Err(VerificationFailure::StaleRecord { level, newer_versions: 1 });
            }
            self.platform.charge_hash(canonical.len());
            let leaf_hash = proof.chain.chain_head(&canonical);
            leaf_seq.push((proof.leaf_index, leaf_hash));
            // Verify the older versions of this key individually.
            let mut j = idx + 1;
            while j < range.records.len() && range.records[j].key == newest.key {
                let older = &range.records[j];
                if older.ts >= range.records[j - 1].ts {
                    return Err(fail("versions not in descending timestamp order"));
                }
                let (canon_old, _, proof_old) = open_record(older, level)?;
                let proof_old = proof_old.ok_or(VerificationFailure::MissingProof { level })?;
                self.check_proof(commitment, &proof_old, &canon_old)?;
                j += 1;
            }
            if j < range.records.len() && range.records[j].key < newest.key {
                return Err(fail("records not in ascending key order"));
            }
            idx = j;
        }

        // Boundary neighbors extend the proven leaf run by one on each side.
        if let Some(rec) = &range.left {
            if rec.key[..] >= *from {
                return Err(fail("left boundary not below range"));
            }
            let (canonical, _, proof) = open_record(rec, level)?;
            let proof = proof.ok_or(VerificationFailure::MissingProof { level })?;
            self.platform.charge_hash(canonical.len());
            leaf_seq.insert(0, (proof.leaf_index, proof.chain.chain_head(&canonical)));
        }
        if let Some(rec) = &range.right {
            if rec.key[..] <= *to {
                return Err(fail("right boundary not above range"));
            }
            let (canonical, _, proof) = open_record(rec, level)?;
            let proof = proof.ok_or(VerificationFailure::MissingProof { level })?;
            self.platform.charge_hash(canonical.len());
            leaf_seq.push((proof.leaf_index, proof.chain.chain_head(&canonical)));
        }

        if leaf_seq.is_empty() {
            return Err(fail("no leaves presented for a non-empty level"));
        }
        // Leaf indices must be one consecutive run.
        for w in leaf_seq.windows(2) {
            if w[1].0 != w[0].0 + 1 {
                return Err(fail("leaf indices not consecutive"));
            }
        }
        let lo = leaf_seq[0].0;
        let hi = leaf_seq[leaf_seq.len() - 1].0;
        // Edges: no left boundary means the run starts at leaf 0; no right
        // boundary means it ends at the last leaf.
        if range.left.is_none() && lo != 0 {
            return Err(fail("range start not anchored at the first leaf"));
        }
        if range.right.is_none() && hi + 1 != commitment.leaf_count {
            return Err(fail("range end not anchored at the last leaf"));
        }
        let proof = prover
            .prove_range(epoch, level, lo, hi)
            .ok_or(fail("host failed to produce a range proof"))?;
        let leaves: Vec<Digest> = leaf_seq.iter().map(|(_, d)| *d).collect();
        self.platform.charge_hash(64 * (leaves.len() + proof.len()));
        if !verify_range(
            commitment.root,
            commitment.leaf_count as usize,
            lo as usize,
            &leaves,
            &proof,
        ) {
            return Err(fail("range proof does not reach the committed root"));
        }
        Ok(())
    }
}

/// Convenience: interprets a verified GET trace as the final user-visible
/// answer (tombstones hide).
pub fn visible_result(trace: &GetTrace) -> Option<&Record> {
    let r = trace.memtable.as_ref().or(trace.result.as_ref())?;
    r.kind.is_value().then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commitment(level: u32, seed: u8, leaves: u64) -> LevelCommitment {
        LevelCommitment {
            level,
            root: elsm_crypto::sha256(&[seed, level as u8]),
            leaf_count: leaves,
        }
    }

    /// The incremental path must be indistinguishable from the full
    /// set/clear recompute — the snapshot digest (what replication
    /// announcements bind) is compared bit for bit.
    #[test]
    fn compaction_delta_matches_full_recompute_bit_identically() {
        let platform = Platform::with_defaults();
        let full = TrustedState::new(platform.clone(), 7);
        let delta = TrustedState::new(platform.clone(), 7);
        // Seed both with the same pre-compaction shape.
        for state in [&full, &delta] {
            state.set_commitment(commitment(1, 1, 10));
            state.set_commitment(commitment(2, 2, 100));
            state.set_commitment(commitment(3, 3, 1000));
            state.publish_epoch(1);
        }
        assert_eq!(full.snapshot_digest(1), delta.snapshot_digest(1));
        // One job merges levels 1+2 into 2, another rewrites level 3.
        let out2 = commitment(2, 9, 110);
        let out3 = commitment(3, 8, 1000);
        full.clear_commitment(1);
        full.set_commitment(out2);
        full.set_commitment(out3);
        full.publish_epoch(2);
        delta.apply_compaction_delta(&CompactionDelta {
            runs_removed: vec![1],
            runs_added: vec![out2],
        });
        delta.apply_compaction_delta(&CompactionDelta {
            runs_removed: vec![],
            runs_added: vec![out3],
        });
        delta.publish_epoch(2);
        let d_full = full.snapshot_digest(2).unwrap();
        let d_delta = delta.snapshot_digest(2).unwrap();
        assert_eq!(d_full, d_delta, "delta fold must be bit-identical to full recompute");
        assert_eq!(full.commitments(), delta.commitments());
        assert_eq!(full.dataset_digest(), delta.dataset_digest());
    }

    /// A delta that clears the output (empty merge result) and one that
    /// grows the level table behave like their set/clear counterparts.
    #[test]
    fn compaction_delta_clears_and_grows_like_setters() {
        let platform = Platform::with_defaults();
        let state = TrustedState::new(platform, 2);
        state.set_commitment(commitment(1, 1, 4));
        state.apply_compaction_delta(&CompactionDelta {
            runs_removed: vec![1],
            runs_added: vec![commitment(5, 2, 4)],
        });
        assert!(state.commitment(1).is_empty());
        assert_eq!(state.commitment(5).leaf_count, 4);
        assert!(state.commitment(3).is_empty(), "intermediate slots fill with empties");
        assert_eq!(state.max_levels(), 5);
        // An empty delta is free and changes nothing.
        let before = state.commitments();
        state.apply_compaction_delta(&CompactionDelta::default());
        assert_eq!(state.commitments(), before);
    }
}
