//! The authenticated-compaction listener: eLSM as a store add-on.
//!
//! This is the paper's Figure 4 realized through `lsm-store`'s RocksDB-style
//! callbacks, with **zero changes** to the storage engine:
//!
//! * `on_compaction_input` ↔ `auth_filter`: rebuilds each input level's
//!   Merkle tree incrementally (`MHT_add`),
//! * `transform_output` ↔ `auth_onTableFileCreated`: checks the rebuilt
//!   input roots against the enclave's commitments, builds the output
//!   level's digest, and embeds a proof in every output record,
//! * `on_compaction_end`: installs the output commitment in the enclave's
//!   *working* vector and the full digest in the untrusted store (and
//!   empties the consumed input level),
//! * `on_version_install`: publishes the working commitments/digests as
//!   the immutable snapshot for the installing version's epoch — the
//!   §5.5.2 root replacement, made atomic by versioning instead of a
//!   store-wide mutex,
//! * `on_versions_retired`: prunes snapshots whose readers drained,
//! * `on_wal_append`: maintains the in-enclave WAL digest (step w1).

use std::collections::HashMap;
use std::sync::Arc;

use lsm_store::{CompactionInfo, Record, RecordSource, StoreListener};
use merkle::{LevelDigest, LevelDigestBuilder};
use parking_lot::Mutex;
use sgx_sim::Platform;

use crate::digests::UntrustedDigests;
use crate::envelope::{open_record, wrap_with_proof};
use crate::trusted::TrustedState;

#[derive(Debug, Default)]
struct Scratch {
    input_builders: HashMap<u32, LevelDigestBuilder>,
    pending_output: Option<LevelDigest>,
}

/// eLSM's authentication layer, attached to the vanilla store as a
/// listener.
#[derive(Debug)]
pub struct AuthListener {
    platform: Arc<Platform>,
    trusted: Arc<TrustedState>,
    digests: Arc<UntrustedDigests>,
    scratch: Mutex<Scratch>,
}

impl AuthListener {
    /// Builds the listener around the enclave state and host digest store.
    pub fn new(
        platform: Arc<Platform>,
        trusted: Arc<TrustedState>,
        digests: Arc<UntrustedDigests>,
    ) -> Arc<Self> {
        Arc::new(AuthListener {
            platform,
            trusted,
            digests,
            scratch: Mutex::new(Scratch::default()),
        })
    }
}

impl StoreListener for AuthListener {
    fn on_wal_append(&self, record: &Record) {
        // Records enter the WAL with a plain envelope; digest bare bytes.
        if let Ok((canonical, _, _)) = open_record(record, 0) {
            self.trusted.absorb_wal(&canonical);
        }
    }

    fn on_wal_append_batch(&self, records: &[Record]) {
        // One digest-lock acquisition folds the whole commit group, in
        // commit order (the store's leader serializes groups). The digest
        // value is identical to per-record absorbs.
        let canonicals: Vec<Vec<u8>> = records
            .iter()
            .filter_map(|record| open_record(record, 0).ok().map(|(canonical, _, _)| canonical))
            .collect();
        self.trusted.absorb_wal_batch(canonicals.iter().map(Vec::as_slice));
    }

    fn on_compaction_input(&self, source: RecordSource, record: &Record) {
        // Rebuild the source level's tree from the streamed records
        // (Figure 4, auth_filter → MHT_add on the input trees).
        let level = source.level as u32;
        let Ok((canonical, _, _)) = open_record(record, level) else {
            // Malformed envelope in an input: the level can never match.
            self.trusted.poison();
            return;
        };
        self.platform.charge_hash(canonical.len());
        let mut scratch = self.scratch.lock();
        scratch
            .input_builders
            .entry(level)
            .or_insert_with(|| LevelDigestBuilder::new(level))
            .add(&record.key, canonical);
    }

    fn transform_output(&self, output_level: usize, records: Vec<Record>) -> Vec<Record> {
        let mut scratch = self.scratch.lock();
        // 1. Verify every input level's rebuilt root against the enclave
        //    commitment (Figure 4 lines 31-33).
        for (level, builder) in scratch.input_builders.drain() {
            let rebuilt = builder.finish().commitment();
            if rebuilt != self.trusted.commitment(level) {
                self.trusted.poison();
            }
        }
        // 2. Build the output level's digest over canonical record bytes.
        let mut builder = LevelDigestBuilder::new(output_level as u32);
        let mut opened = Vec::with_capacity(records.len());
        for record in &records {
            match open_record(record, output_level as u32) {
                Ok((canonical, value, _old_proof)) => {
                    self.platform.charge_hash(canonical.len());
                    builder.add(&record.key, canonical);
                    opened.push(value);
                }
                Err(_) => {
                    self.trusted.poison();
                    opened.push(record.value.clone());
                }
            }
        }
        let digest = builder.finish();
        // 3. Embed a fresh proof in every output record
        //    (auth_onTableFileCreated).
        let mut out = Vec::with_capacity(records.len());
        let mut leaf_idx = 0usize;
        let mut version_idx = 0usize;
        let mut prev_key: Option<&[u8]> = None;
        for (record, value) in records.iter().zip(&opened) {
            match prev_key {
                Some(k) if k == &record.key[..] => version_idx += 1,
                Some(_) => {
                    leaf_idx += 1;
                    version_idx = 0;
                }
                None => {}
            }
            prev_key = Some(&record.key[..]);
            // Proof material was already hashed while building the tree;
            // serialization is a plain memory copy.
            let proof = digest.prove_version(leaf_idx, version_idx);
            self.platform.dram_access(proof.encoded_len());
            out.push(Record {
                key: record.key.clone(),
                ts: record.ts,
                kind: record.kind,
                value: wrap_with_proof(value, &proof),
            });
        }
        scratch.pending_output = Some(digest);
        out
    }

    fn on_compaction_end(&self, info: &CompactionInfo) {
        let mut scratch = self.scratch.lock();
        let output_level = info.output_level as u32;
        // Install the output root in the enclave and the full digest in the
        // untrusted store; empty the consumed input level. Refuse to sign
        // when poisoned (the paper's "if the equality check passes, the
        // Merkle root hash for the output file takes effect").
        match scratch.pending_output.take() {
            Some(digest) if !self.trusted.is_poisoned() && digest.leaf_count() > 0 => {
                self.trusted.set_commitment(digest.commitment());
                self.digests.install(digest);
            }
            _ => {
                self.trusted.clear_commitment(output_level);
                self.digests.clear(output_level);
            }
        }
        if info.input_level >= 1 {
            self.trusted.clear_commitment(info.input_level as u32);
            self.digests.clear(info.input_level as u32);
        }
    }

    fn on_version_install(&self, epoch: u64) {
        self.trusted.publish_epoch(epoch);
        self.digests.publish_epoch(epoch);
    }

    fn on_versions_retired(&self, live_epochs: &[u64]) {
        self.trusted.prune_epochs(live_epochs);
        self.digests.prune_epochs(live_epochs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::wrap_plain;
    use bytes::Bytes;

    fn record(key: &str, ts: u64, value: &str) -> Record {
        Record::put(Bytes::copy_from_slice(key.as_bytes()), wrap_plain(value.as_bytes()), ts)
    }

    fn setup() -> (Arc<AuthListener>, Arc<TrustedState>, Arc<UntrustedDigests>) {
        let platform = Platform::with_defaults();
        let trusted = TrustedState::new(platform.clone(), 4);
        let digests = UntrustedDigests::new(platform.clone());
        (AuthListener::new(platform, trusted.clone(), digests.clone()), trusted, digests)
    }

    #[test]
    fn flush_installs_level_commitment() {
        let (listener, trusted, digests) = setup();
        let records = vec![record("a", 2, "va"), record("b", 1, "vb")];
        let out = listener.transform_output(1, records);
        listener.on_compaction_end(&CompactionInfo {
            input_level: 0,
            output_level: 1,
            input_records: 2,
            output_records: 2,
            output_files: vec![1],
        });
        assert!(!trusted.commitment(1).is_empty());
        assert_eq!(trusted.commitment(1).leaf_count, 2);
        assert_eq!(digests.len(), 1);
        // Output records now carry proofs.
        for r in &out {
            let (_, _, proof) = open_record(r, 1).unwrap();
            assert!(proof.is_some());
        }
        assert!(!trusted.is_poisoned());
    }

    #[test]
    fn matching_input_roots_keep_store_healthy() {
        let (listener, trusted, _) = setup();
        // First "flush" installs level 1.
        let out1 = listener.transform_output(1, vec![record("a", 2, "va"), record("b", 1, "vb")]);
        listener.on_compaction_end(&CompactionInfo {
            input_level: 0,
            output_level: 1,
            input_records: 2,
            output_records: 2,
            output_files: vec![1],
        });
        // Now compact level 1 → 2, replaying the honest level-1 records.
        for r in &out1 {
            listener.on_compaction_input(RecordSource { level: 1, file_no: 1 }, r);
        }
        let _out2 = listener.transform_output(2, out1.clone());
        listener.on_compaction_end(&CompactionInfo {
            input_level: 1,
            output_level: 2,
            input_records: 2,
            output_records: 2,
            output_files: vec![2],
        });
        assert!(!trusted.is_poisoned());
        assert!(trusted.commitment(1).is_empty(), "input level emptied");
        assert!(!trusted.commitment(2).is_empty());
    }

    #[test]
    fn tampered_input_poisons_store() {
        let (listener, trusted, _) = setup();
        let out1 = listener.transform_output(1, vec![record("a", 2, "va"), record("b", 1, "vb")]);
        listener.on_compaction_end(&CompactionInfo {
            input_level: 0,
            output_level: 1,
            input_records: 2,
            output_records: 2,
            output_files: vec![1],
        });
        // Adversary feeds a modified record stream into the compaction.
        let mut tampered = out1.clone();
        tampered[0] = record("a", 2, "EVIL");
        for r in &tampered {
            listener.on_compaction_input(RecordSource { level: 1, file_no: 1 }, r);
        }
        listener.transform_output(2, tampered);
        assert!(trusted.is_poisoned(), "input digest mismatch must poison");
    }

    #[test]
    fn wal_digest_changes_per_append() {
        let (listener, trusted, _) = setup();
        let d0 = trusted.wal_digest();
        listener.on_wal_append(&record("k", 1, "v"));
        let d1 = trusted.wal_digest();
        listener.on_wal_append(&record("k", 2, "v2"));
        let d2 = trusted.wal_digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }

    #[test]
    fn empty_output_clears_level() {
        let (listener, trusted, digests) = setup();
        listener.transform_output(1, vec![record("a", 1, "v")]);
        listener.on_compaction_end(&CompactionInfo {
            input_level: 0,
            output_level: 1,
            input_records: 1,
            output_records: 1,
            output_files: vec![1],
        });
        // A later compaction drops everything (e.g. tombstone purge).
        let out = listener.transform_output(2, Vec::new());
        assert!(out.is_empty());
        listener.on_compaction_end(&CompactionInfo {
            input_level: 1,
            output_level: 2,
            input_records: 1,
            output_records: 0,
            output_files: vec![],
        });
        assert!(trusted.commitment(2).is_empty());
        assert!(trusted.commitment(1).is_empty());
        assert_eq!(digests.len(), 0);
    }
}
