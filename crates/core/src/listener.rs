//! The authenticated-compaction listener: eLSM as a store add-on.
//!
//! This is the paper's Figure 4 realized through `lsm-store`'s RocksDB-style
//! callbacks, with **zero changes** to the storage engine:
//!
//! * `on_compaction_input` ↔ `auth_filter`: rebuilds each input level's
//!   Merkle tree incrementally (`MHT_add`),
//! * `transform_output_tagged` ↔ `auth_onTableFileCreated`: builds the
//!   output level's digest and embeds a proof in every output record;
//!   in incremental mode, records whose whole key chain survived from a
//!   single input run reuse their stored leaf work instead of rehashing,
//! * `on_compaction_end` (merging thread, possibly a scheduler worker):
//!   checks the rebuilt input roots against the enclave's commitments and
//!   **stages** the job's [`CompactionDelta`] keyed by output level — a
//!   parallel wave's jobs never share a level, so staging is race-free
//!   and the expensive digest work overlaps across jobs,
//! * `on_compaction_install` (store write lock, deterministic job order):
//!   folds the staged delta into the enclave's *working* vector
//!   ([`TrustedState::apply_compaction_delta`]) and the untrusted digest
//!   store — O(levels-in-job), not a full recompute,
//! * `on_version_install`: publishes the working commitments/digests as
//!   the immutable snapshot for the installing version's epoch — the
//!   §5.5.2 root replacement, made atomic by versioning instead of a
//!   store-wide mutex,
//! * `on_versions_retired`: prunes snapshots whose readers drained,
//! * `on_wal_append`: maintains the in-enclave WAL digest (step w1).

use std::collections::HashMap;
use std::sync::Arc;

use lsm_store::{CompactionInfo, Record, RecordSource, StoreListener};
use merkle::{LevelDigest, LevelDigestBuilder};
use parking_lot::Mutex;
use sgx_sim::Platform;

use crate::cache::VerifiedCache;
use crate::digests::UntrustedDigests;
use crate::envelope::{open_record, wrap_plain, wrap_with_proof};
use crate::trusted::{CompactionDelta, TrustedState};

/// State a finished merge stages for its install (commit happens under
/// the store's write lock, in job order).
#[derive(Debug)]
struct StagedCommit {
    /// The enclave-side commitment mutation.
    delta: CompactionDelta,
    /// Full output digest for the untrusted store (`None`: the output is
    /// empty — or refused — and the level clears).
    output_digest: Option<LevelDigest>,
    /// Untrusted-store levels to clear (consumed inputs, empty outputs).
    digest_clears: Vec<u32>,
}

#[derive(Debug, Default)]
struct Scratch {
    /// Input-tree builders keyed by source level. Concurrent jobs of a
    /// wave never share a level, so per-level keying is race-free.
    input_builders: HashMap<u32, LevelDigestBuilder>,
    /// Output digests built by the transform, keyed by output level,
    /// consumed by `on_compaction_end`.
    pending_outputs: HashMap<usize, LevelDigest>,
    /// Deltas staged by `on_compaction_end`, committed at install.
    staged: HashMap<usize, StagedCommit>,
}

/// eLSM's authentication layer, attached to the vanilla store as a
/// listener.
#[derive(Debug)]
pub struct AuthListener {
    platform: Arc<Platform>,
    trusted: Arc<TrustedState>,
    digests: Arc<UntrustedDigests>,
    /// Reuse stored leaf work for compaction outputs whose key chain is
    /// bit-identical to a single input run's (no version dropped or
    /// filtered): the enclave charges a 32-byte digest move per such
    /// record instead of rehashing the canonical bytes. Digest *values*
    /// are identical either way — this is purely the amortized
    /// integrity-metadata maintenance cost lever.
    incremental: bool,
    /// Epoch-aware verified read cache to keep coherent with writes and
    /// epoch installs (`None`: caching disabled).
    cache: Option<Arc<VerifiedCache>>,
    scratch: Mutex<Scratch>,
}

impl AuthListener {
    /// Builds the listener around the enclave state and host digest store
    /// (full rehash on every compaction output — the paper's baseline).
    pub fn new(
        platform: Arc<Platform>,
        trusted: Arc<TrustedState>,
        digests: Arc<UntrustedDigests>,
    ) -> Arc<Self> {
        Self::with_incremental(platform, trusted, digests, false)
    }

    /// Like [`AuthListener::new`], selecting incremental commitment
    /// recomputation for unchanged compaction outputs.
    pub fn with_incremental(
        platform: Arc<Platform>,
        trusted: Arc<TrustedState>,
        digests: Arc<UntrustedDigests>,
        incremental: bool,
    ) -> Arc<Self> {
        Self::with_cache(platform, trusted, digests, incremental, None)
    }

    /// Like [`AuthListener::with_incremental`], additionally keeping a
    /// [`VerifiedCache`] coherent: writes invalidate their keys, epoch
    /// installs and retirements drop superseded entries.
    pub fn with_cache(
        platform: Arc<Platform>,
        trusted: Arc<TrustedState>,
        digests: Arc<UntrustedDigests>,
        incremental: bool,
        cache: Option<Arc<VerifiedCache>>,
    ) -> Arc<Self> {
        Arc::new(AuthListener {
            platform,
            trusted,
            digests,
            incremental,
            cache,
            scratch: Mutex::new(Scratch::default()),
        })
    }

    /// Shared transform body; `unchanged` may be shorter than `records`
    /// (missing tags mean "changed").
    fn transform(
        &self,
        output_level: usize,
        records: Vec<Record>,
        unchanged: &[bool],
    ) -> Vec<Record> {
        // Trusted-side work on a flush/compaction worker thread: attribute
        // the hashing to the enclave in the platform's time split.
        let _world = sgx_sim::enclave_scope();
        // 1. Build the output level's digest over canonical record bytes.
        //    Unchanged records (incremental mode) reuse their stored leaf
        //    work: the enclave pays a digest move, not a rehash.
        let mut builder = LevelDigestBuilder::new(output_level as u32);
        let mut opened = Vec::with_capacity(records.len());
        for (i, record) in records.iter().enumerate() {
            match open_record(record, output_level as u32) {
                Ok((canonical, value, _old_proof)) => {
                    if self.incremental && unchanged.get(i).copied().unwrap_or(false) {
                        self.platform.dram_access(32);
                    } else {
                        self.platform.charge_hash(canonical.len());
                    }
                    builder.add(&record.key, canonical);
                    opened.push(value);
                }
                Err(_) => {
                    self.trusted.poison();
                    opened.push(record.value.clone());
                }
            }
        }
        let digest = builder.finish();
        // 2. Embed a fresh proof in every output record
        //    (auth_onTableFileCreated).
        let mut out = Vec::with_capacity(records.len());
        let mut leaf_idx = 0usize;
        let mut version_idx = 0usize;
        let mut prev_key: Option<&[u8]> = None;
        for (record, value) in records.iter().zip(&opened) {
            match prev_key {
                Some(k) if k == &record.key[..] => version_idx += 1,
                Some(_) => {
                    leaf_idx += 1;
                    version_idx = 0;
                }
                None => {}
            }
            prev_key = Some(&record.key[..]);
            // Proof material was already hashed while building the tree;
            // serialization is a plain memory copy.
            let proof = digest.prove_version(leaf_idx, version_idx);
            self.platform.dram_access(proof.encoded_len());
            out.push(Record {
                key: record.key.clone(),
                ts: record.ts,
                kind: record.kind,
                value: wrap_with_proof(value, &proof),
            });
        }
        self.scratch.lock().pending_outputs.insert(output_level, digest);
        out
    }
}

impl StoreListener for AuthListener {
    fn on_wal_append(&self, record: &Record) {
        // Records enter the WAL with a plain envelope; digest bare bytes.
        if let Ok((canonical, _, _)) = open_record(record, 0) {
            self.trusted.absorb_wal(&canonical);
        }
        if let Some(cache) = &self.cache {
            cache.invalidate_key(&record.key);
        }
    }

    fn on_wal_append_batch(&self, records: &[Record]) {
        // One digest-lock acquisition folds the whole commit group, in
        // commit order (the store's leader serializes groups). The digest
        // value is identical to per-record absorbs.
        let canonicals: Vec<Vec<u8>> = records
            .iter()
            .filter_map(|record| open_record(record, 0).ok().map(|(canonical, _, _)| canonical))
            .collect();
        self.trusted.absorb_wal_batch(canonicals.iter().map(Vec::as_slice));
        if let Some(cache) = &self.cache {
            for record in records {
                cache.invalidate_key(&record.key);
            }
        }
    }

    fn vlog_mac(&self, record: &Record) -> [u8; lsm_store::vlog::MAC_BYTES] {
        vlog_entry_mac(&self.platform, &record.key, record.ts, &record.value)
    }

    fn wrap_vlog_pointer(&self, pointer: Vec<u8>) -> bytes::Bytes {
        // Pointer records flow through the same envelope as plain values,
        // so compaction proofs embed identically.
        wrap_plain(&pointer)
    }

    fn unwrap_vlog_pointer(&self, stored: &[u8]) -> Option<bytes::Bytes> {
        crate::envelope::unwrap(stored).map(|(value, _)| value)
    }

    fn on_compaction_input(&self, source: RecordSource, record: &Record) {
        // Rebuild the source level's tree from the streamed records
        // (Figure 4, auth_filter → MHT_add on the input trees).
        let _world = sgx_sim::enclave_scope();
        let level = source.level as u32;
        let Ok((canonical, _, _)) = open_record(record, level) else {
            // Malformed envelope in an input: the level can never match.
            self.trusted.poison();
            return;
        };
        self.platform.charge_hash(canonical.len());
        let mut scratch = self.scratch.lock();
        scratch
            .input_builders
            .entry(level)
            .or_insert_with(|| LevelDigestBuilder::new(level))
            .add(&record.key, canonical);
    }

    fn transform_output(&self, output_level: usize, records: Vec<Record>) -> Vec<Record> {
        self.transform(output_level, records, &[])
    }

    fn transform_output_tagged(
        &self,
        output_level: usize,
        records: Vec<Record>,
        unchanged: &[bool],
    ) -> Vec<Record> {
        self.transform(output_level, records, unchanged)
    }

    fn on_compaction_end(&self, info: &CompactionInfo) {
        let _world = sgx_sim::enclave_scope();
        let mut scratch = self.scratch.lock();
        // 1. Verify every input level's rebuilt root against the enclave
        //    commitment (Figure 4 lines 31-33). A missing builder is only
        //    legal when the enclave also believes the level is empty —
        //    otherwise the host hid an input level's records.
        for &level in &info.input_levels {
            if level == 0 {
                continue; // memtable: trusted enclave memory
            }
            let level = level as u32;
            match scratch.input_builders.remove(&level) {
                Some(builder) => {
                    let rebuilt = builder.finish().commitment();
                    if rebuilt != self.trusted.commitment(level) {
                        self.trusted.poison();
                    }
                }
                None => {
                    if !self.trusted.commitment(level).is_empty() {
                        self.trusted.poison();
                    }
                }
            }
        }
        // 2. Stage the job's delta. Refuse to sign when poisoned (the
        //    paper's "if the equality check passes, the Merkle root hash
        //    for the output file takes effect").
        let output_level = info.output_level as u32;
        let mut delta = CompactionDelta::default();
        let mut digest_clears = Vec::new();
        let output_digest = match scratch.pending_outputs.remove(&info.output_level) {
            Some(digest) if !self.trusted.is_poisoned() && digest.leaf_count() > 0 => {
                delta.runs_added.push(digest.commitment());
                Some(digest)
            }
            _ => {
                delta.runs_removed.push(output_level);
                digest_clears.push(output_level);
                None
            }
        };
        for &level in &info.input_levels {
            if level >= 1 && level != info.output_level {
                delta.runs_removed.push(level as u32);
                digest_clears.push(level as u32);
            }
        }
        scratch
            .staged
            .insert(info.output_level, StagedCommit { delta, output_digest, digest_clears });
    }

    fn on_compaction_install(&self, info: &CompactionInfo) {
        let _world = sgx_sim::enclave_scope();
        let Some(staged) = self.scratch.lock().staged.remove(&info.output_level) else {
            return;
        };
        // Commit under the store's write lock, in deterministic job
        // order: the incremental delta fold replaces the full recompute.
        self.trusted.apply_compaction_delta(&staged.delta);
        for level in staged.digest_clears {
            self.digests.clear(level);
        }
        if let Some(digest) = staged.output_digest {
            self.digests.install(digest);
        }
    }

    fn on_version_install(&self, epoch: u64) {
        self.trusted.publish_epoch(epoch);
        self.digests.publish_epoch(epoch);
        if let Some(cache) = &self.cache {
            cache.install_epoch(epoch);
        }
    }

    fn on_versions_retired(&self, live_epochs: &[u64]) {
        self.trusted.prune_epochs(live_epochs);
        self.digests.prune_epochs(live_epochs);
        if let Some(cache) = &self.cache {
            cache.retire_epochs(live_epochs);
        }
    }
}

/// The authenticated value log's entry digest: binds key ‖ ts ‖ stored
/// (enveloped) value. Deliberately a *keyless* domain-tagged hash:
/// replicas re-derive pointer records during replayed flushes, and a
/// node-local key would make their level commitments diverge from the
/// primary's. The digest rides inside the pointer record, which the
/// per-level Merkle commitment covers — the commitment supplies the
/// authenticity, the hash supplies the binding to the log entry.
pub fn vlog_entry_mac(
    platform: &Platform,
    key: &[u8],
    ts: u64,
    stored_value: &[u8],
) -> [u8; lsm_store::vlog::MAC_BYTES] {
    platform.charge_hash(key.len() + stored_value.len() + 16);
    let mac = elsm_crypto::sha256_concat(&[
        b"elsm/vlog-entry v1",
        &(key.len() as u64).to_le_bytes(),
        key,
        &ts.to_le_bytes(),
        stored_value,
    ]);
    *mac.as_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::wrap_plain;
    use bytes::Bytes;

    fn record(key: &str, ts: u64, value: &str) -> Record {
        Record::put(Bytes::copy_from_slice(key.as_bytes()), wrap_plain(value.as_bytes()), ts)
    }

    fn info(input_levels: Vec<usize>, output_level: usize, records: u64) -> CompactionInfo {
        CompactionInfo {
            input_levels,
            output_level,
            input_records: records,
            output_records: records,
            output_files: if records > 0 { vec![1] } else { vec![] },
        }
    }

    fn setup() -> (Arc<AuthListener>, Arc<TrustedState>, Arc<UntrustedDigests>) {
        let platform = Platform::with_defaults();
        let trusted = TrustedState::new(platform.clone(), 4);
        let digests = UntrustedDigests::new(platform.clone());
        (AuthListener::new(platform, trusted.clone(), digests.clone()), trusted, digests)
    }

    /// Runs the end→install pair the way the store does.
    fn finish(listener: &AuthListener, info: &CompactionInfo) {
        listener.on_compaction_end(info);
        listener.on_compaction_install(info);
    }

    #[test]
    fn flush_installs_level_commitment() {
        let (listener, trusted, digests) = setup();
        let records = vec![record("a", 2, "va"), record("b", 1, "vb")];
        let out = listener.transform_output(1, records);
        finish(&listener, &info(vec![0], 1, 2));
        assert!(!trusted.commitment(1).is_empty());
        assert_eq!(trusted.commitment(1).leaf_count, 2);
        assert_eq!(digests.len(), 1);
        // Output records now carry proofs.
        for r in &out {
            let (_, _, proof) = open_record(r, 1).unwrap();
            assert!(proof.is_some());
        }
        assert!(!trusted.is_poisoned());
    }

    #[test]
    fn staged_delta_commits_only_at_install() {
        let (listener, trusted, digests) = setup();
        listener.transform_output(1, vec![record("a", 2, "va")]);
        let job = info(vec![0], 1, 1);
        listener.on_compaction_end(&job);
        // Merge done, not yet installed: readers still see the old state.
        assert!(trusted.commitment(1).is_empty());
        assert_eq!(digests.len(), 0);
        listener.on_compaction_install(&job);
        assert!(!trusted.commitment(1).is_empty());
        assert_eq!(digests.len(), 1);
    }

    #[test]
    fn matching_input_roots_keep_store_healthy() {
        let (listener, trusted, _) = setup();
        // First "flush" installs level 1.
        let out1 = listener.transform_output(1, vec![record("a", 2, "va"), record("b", 1, "vb")]);
        finish(&listener, &info(vec![0], 1, 2));
        // Now compact level 1 → 2, replaying the honest level-1 records.
        for r in &out1 {
            listener.on_compaction_input(RecordSource { level: 1, file_no: 1 }, r);
        }
        let _out2 = listener.transform_output(2, out1.clone());
        finish(&listener, &info(vec![1, 2], 2, 2));
        assert!(!trusted.is_poisoned());
        assert!(trusted.commitment(1).is_empty(), "input level emptied");
        assert!(!trusted.commitment(2).is_empty());
    }

    #[test]
    fn tampered_input_poisons_store() {
        let (listener, trusted, _) = setup();
        let out1 = listener.transform_output(1, vec![record("a", 2, "va"), record("b", 1, "vb")]);
        finish(&listener, &info(vec![0], 1, 2));
        // Adversary feeds a modified record stream into the compaction.
        let mut tampered = out1.clone();
        tampered[0] = record("a", 2, "EVIL");
        for r in &tampered {
            listener.on_compaction_input(RecordSource { level: 1, file_no: 1 }, r);
        }
        listener.transform_output(2, tampered);
        listener.on_compaction_end(&info(vec![1, 2], 2, 2));
        assert!(trusted.is_poisoned(), "input digest mismatch must poison");
    }

    #[test]
    fn hidden_input_level_poisons_store() {
        let (listener, trusted, _) = setup();
        listener.transform_output(1, vec![record("a", 2, "va")]);
        finish(&listener, &info(vec![0], 1, 1));
        // The host claims to compact level 1 but streams none of its
        // records — the silent-drop attack.
        listener.transform_output(2, Vec::new());
        listener.on_compaction_end(&info(vec![1, 2], 2, 0));
        assert!(trusted.is_poisoned(), "hiding a non-empty input level must poison");
    }

    #[test]
    fn wal_digest_changes_per_append() {
        let (listener, trusted, _) = setup();
        let d0 = trusted.wal_digest();
        listener.on_wal_append(&record("k", 1, "v"));
        let d1 = trusted.wal_digest();
        listener.on_wal_append(&record("k", 2, "v2"));
        let d2 = trusted.wal_digest();
        assert_ne!(d0, d1);
        assert_ne!(d1, d2);
    }

    #[test]
    fn empty_output_clears_level() {
        let (listener, trusted, digests) = setup();
        let out1 = listener.transform_output(1, vec![record("a", 1, "v")]);
        finish(&listener, &info(vec![0], 1, 1));
        // A later compaction reads the level honestly but drops everything
        // (e.g. tombstone purge).
        for r in &out1 {
            listener.on_compaction_input(RecordSource { level: 1, file_no: 1 }, r);
        }
        let out = listener.transform_output(2, Vec::new());
        assert!(out.is_empty());
        finish(
            &listener,
            &CompactionInfo {
                input_levels: vec![1, 2],
                output_level: 2,
                input_records: 1,
                output_records: 0,
                output_files: vec![],
            },
        );
        assert!(!trusted.is_poisoned());
        assert!(trusted.commitment(2).is_empty());
        assert!(trusted.commitment(1).is_empty());
        assert_eq!(digests.len(), 0);
    }

    /// Incremental and full-rehash listeners must produce identical
    /// commitments and proofs — the tags change what the enclave is
    /// *charged*, never what it commits to.
    #[test]
    fn incremental_mode_produces_identical_digests_for_less_work() {
        let platform_full = Platform::with_defaults();
        let platform_inc = Platform::with_defaults();
        let records: Vec<Record> =
            (0..64).map(|i| record(&format!("key{i:03}"), i + 1, "value-payload")).collect();
        let unchanged = vec![true; records.len()];
        let mut outputs = Vec::new();
        let mut commitments = Vec::new();
        for (platform, incremental) in
            [(platform_full.clone(), false), (platform_inc.clone(), true)]
        {
            let trusted = TrustedState::new(platform.clone(), 4);
            let digests = UntrustedDigests::new(platform.clone());
            let listener =
                AuthListener::with_incremental(platform, trusted.clone(), digests, incremental);
            let out = listener.transform_output_tagged(2, records.clone(), &unchanged);
            finish(&listener, &info(vec![1, 2], 2, records.len() as u64));
            outputs.push(out);
            commitments.push(trusted.commitment(2));
        }
        assert_eq!(outputs[0], outputs[1], "proof-carrying outputs must match");
        assert_eq!(commitments[0], commitments[1], "commitments must match");
        let full_hashed = platform_full.stats().hash_blocks;
        let inc_hashed = platform_inc.stats().hash_blocks;
        assert!(
            inc_hashed < full_hashed,
            "incremental mode must hash fewer bytes ({inc_hashed} vs {full_hashed})"
        );
    }
}
