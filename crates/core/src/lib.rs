//! # elsm
//!
//! The paper's primary contribution: **authenticated LSM-tree key-value
//! stores with hardware enclaves** ("Authenticated Key-Value Stores with
//! Hardware Enclaves", Tang et al., MIDDLEWARE 2021).
//!
//! Two designs are provided (Table 1 of the paper):
//!
//! * [`ElsmP1`] — the strawman: the whole store inside the enclave, files
//!   sealed at file granularity; fast writes, but reads collapse once the
//!   in-enclave buffer exceeds the 128 MB EPC (§4).
//! * [`ElsmP2`] — the real design: code inside, read path outside; one
//!   Merkle tree per LSM level with temporal hash chains for versions
//!   (§5.2), proofs embedded in records, early-stop GET verification
//!   (Theorem 5.3), segment-tree range completeness (§5.4),
//!   authenticated compaction through store callbacks (Figure 4, **zero
//!   storage-engine changes**), and monotonic-counter rollback defence
//!   (§5.6.1).
//!
//! [`ConfidentialStore`] adds the §5.6.2 confidentiality layer (DE keys,
//! OPE range tags, AEAD values). The [`adversary`] module mounts every
//! attack from the §3.3 threat model; the test suite shows each one
//! detected.
//!
//! # Examples
//!
//! ```
//! use elsm::{AuthenticatedKv, ElsmP2, P2Options};
//! use sgx_sim::Platform;
//!
//! # fn main() -> Result<(), elsm::ElsmError> {
//! let store = ElsmP2::open(Platform::with_defaults(), P2Options::default())?;
//! let ts = store.put(b"k", b"v")?;             // ts = PUT(k, v)
//! let rec = store.get(b"k")?.expect("present"); // ⟨k, v, ts⟩ = GET(k)
//! assert_eq!((rec.value(), rec.ts()), (b"v".as_slice(), ts));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod api;
pub mod cache;
pub mod confidential;
pub mod digests;
pub mod envelope;
pub mod error;
pub mod listener;
pub mod p1;
pub mod p2;
pub mod replication;
pub mod trusted;

pub use api::{AuthenticatedKv, VerifiedRecord};
pub use cache::{CacheStats, VerifiedCache};
pub use confidential::ConfidentialStore;
pub use digests::UntrustedDigests;
pub use error::{ElsmError, VerificationFailure, WRONG_SHARD_UNSHARDED};
pub use listener::AuthListener;
pub use p1::{ElsmP1, P1Options};
pub use p2::{ElsmP2, P2Options, ReadMode, RollbackOptions};
pub use replication::{Announcement, SessionKey};
pub use trusted::{CompactionDelta, RangeProver, TrustedState, VerifyStats};
