//! Epoch-aware verified read cache.
//!
//! Verified GET answers are expensive: an ECall, block reads through
//! untrusted memory, proof decoding and Merkle verification against the
//! epoch's commitments — and, for key-value-separated records, a second
//! host read to fetch the value-log entry. Once a record has been
//! verified under an epoch's commitment set, re-verifying the identical
//! bytes for the next hot read is pure overhead: nothing it could detect
//! has had a chance to change.
//!
//! [`VerifiedCache`] memoizes those verified answers *inside the trust
//! boundary*:
//!
//! * **Record entries** are keyed by user key and tagged with the
//!   commitment epoch the verification ran under. A lookup hits only
//!   when the entry's epoch equals the store's current epoch — an entry
//!   verified under a superseded commitment set is structurally unable
//!   to answer (freshness by construction, not by invalidation
//!   discipline). Writes invalidate their key eagerly; epoch installs
//!   drop every entry of the outgoing epoch
//!   ([`VerifiedCache::install_epoch`]).
//! * **Value-log slots** are keyed by `(file, offset)` and hold the
//!   payload of a value-log entry whose MAC has been checked. A hit
//!   must present the pointer MAC from a *verified* pointer record and
//!   is re-authenticated against the slot's tag, so a hit costs one MAC
//!   instead of an OCall + disk read + MAC.
//!
//! Every entry carries an HMAC tag under a per-cache private key
//! (standing in for an enclave-held MAC key), computed over the entry's
//! content *and its epoch*. The backing memory is modeled as scribbling
//! territory: a tag mismatch on hit means the entry was tampered with —
//! it is counted, discarded and the query falls back to the verified
//! disk path ([`crate::error::VerificationFailure::CacheTampered`] names
//! the failure for callers that want to surface it).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use elsm_crypto::hmac::hmac_sha256;
use elsm_crypto::Digest;
use lsm_store::Timestamp;
use parking_lot::Mutex;
use sgx_sim::Platform;
use telemetry::{AuditEvent, Counter, Telemetry};

use crate::error::VerificationFailure;

/// Hit/miss/tamper counters of a [`VerifiedCache`] (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Record-entry lookups answered from the cache.
    pub record_hits: u64,
    /// Record-entry lookups that fell through to the verified disk path.
    pub record_misses: u64,
    /// Value-log slot hits.
    pub vlog_hits: u64,
    /// Value-log slot misses.
    pub vlog_misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Entries dropped because a write or epoch change superseded them.
    pub invalidations: u64,
    /// Entries whose integrity tag failed on hit — detected, discarded,
    /// never served.
    pub tamper_detected: u64,
}

impl CacheStats {
    /// Record-entry hit ratio in `[0, 1]` (0 when no lookups ran).
    pub fn record_hit_ratio(&self) -> f64 {
        let total = self.record_hits + self.record_misses;
        if total == 0 {
            0.0
        } else {
            self.record_hits as f64 / total as f64
        }
    }
}

/// A cached verified GET answer.
#[derive(Debug)]
struct RecordEntry {
    epoch: u64,
    ts: Timestamp,
    value: Bytes,
    tag: Digest,
    tick: u64,
    bytes: usize,
}

/// A cached authenticated value-log payload.
#[derive(Debug)]
struct VlogSlot {
    mac: [u8; 32],
    payload: Bytes,
    tag: Digest,
    tick: u64,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Inner {
    epoch: u64,
    records: HashMap<Vec<u8>, RecordEntry>,
    record_lru: BTreeMap<u64, Vec<u8>>,
    vlog: HashMap<(u64, u64), VlogSlot>,
    vlog_lru: BTreeMap<u64, (u64, u64)>,
    bytes: usize,
    tick: u64,
}

/// The cache's counters, living in the telemetry registry (the
/// `cache.*` series). [`VerifiedCache::stats`] snapshots them back into
/// the original [`CacheStats`] shape for existing callers.
#[derive(Debug)]
struct CacheMetrics {
    record_hits: Counter,
    record_misses: Counter,
    vlog_hits: Counter,
    vlog_misses: Counter,
    evictions: Counter,
    invalidations: Counter,
    tamper_detected: Counter,
}

impl CacheMetrics {
    fn new(telemetry: &Telemetry) -> Self {
        CacheMetrics {
            record_hits: telemetry.counter("cache.record_hits"),
            record_misses: telemetry.counter("cache.record_misses"),
            vlog_hits: telemetry.counter("cache.vlog_hits"),
            vlog_misses: telemetry.counter("cache.vlog_misses"),
            evictions: telemetry.counter("cache.evictions"),
            invalidations: telemetry.counter("cache.invalidations"),
            tamper_detected: telemetry.counter("cache.tamper_detected"),
        }
    }
}

/// Fixed per-entry overhead charged against the byte budget.
const ENTRY_OVERHEAD: usize = 64;

/// The epoch-aware verified read cache. See the module docs.
#[derive(Debug)]
pub struct VerifiedCache {
    platform: Arc<Platform>,
    mac_key: Digest,
    capacity: usize,
    inner: Mutex<Inner>,
    metrics: CacheMetrics,
    telemetry: Telemetry,
}

impl VerifiedCache {
    /// Builds a cache bounded to `capacity` bytes of entry payload, with
    /// counters on a private disabled registry.
    pub fn new(platform: Arc<Platform>, capacity: usize) -> Arc<Self> {
        Self::with_telemetry(platform, capacity, &Telemetry::default())
    }

    /// Builds a cache whose `cache.*` counters live in `telemetry` and
    /// whose tamper detections feed its audit stream.
    pub fn with_telemetry(
        platform: Arc<Platform>,
        capacity: usize,
        telemetry: &Telemetry,
    ) -> Arc<Self> {
        // Stands in for a key derived inside the enclave at startup; the
        // host never holds it, so it cannot forge entry tags.
        let mac_key = elsm_crypto::sha256(b"elsm/verified-cache key v1");
        Arc::new(VerifiedCache {
            platform,
            mac_key,
            capacity,
            inner: Mutex::new(Inner::default()),
            metrics: CacheMetrics::new(telemetry),
            telemetry: telemetry.clone(),
        })
    }

    fn record_tag(&self, key: &[u8], epoch: u64, ts: Timestamp, value: &[u8]) -> Digest {
        self.platform.charge_hash(key.len() + value.len() + 16);
        let mut msg = Vec::with_capacity(key.len() + value.len() + 17);
        msg.push(0x01); // domain: record entry
        msg.extend_from_slice(&epoch.to_le_bytes());
        msg.extend_from_slice(&ts.to_le_bytes());
        msg.extend_from_slice(key);
        msg.extend_from_slice(value);
        hmac_sha256(self.mac_key.as_bytes(), &msg)
    }

    fn vlog_tag(&self, file_no: u64, offset: u64, mac: &[u8; 32], payload: &[u8]) -> Digest {
        self.platform.charge_hash(payload.len() + 48);
        let mut msg = Vec::with_capacity(payload.len() + 49);
        msg.push(0x02); // domain: value-log slot
        msg.extend_from_slice(&file_no.to_le_bytes());
        msg.extend_from_slice(&offset.to_le_bytes());
        msg.extend_from_slice(mac);
        msg.extend_from_slice(payload);
        hmac_sha256(self.mac_key.as_bytes(), &msg)
    }

    /// Looks up the verified answer for `key` under `epoch`.
    ///
    /// `Ok(Some((ts, value)))` is a hit: the entry was verified under
    /// exactly this epoch and its tag checks out. `Ok(None)` is a miss
    /// (absent, or tagged with a different epoch — a stale entry is a
    /// miss, never an answer).
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::CacheTampered`] when the entry's
    /// integrity tag fails: the backing memory was scribbled over. The
    /// entry is discarded; callers fall back to the verified disk path.
    pub fn lookup_record(
        &self,
        key: &[u8],
        epoch: u64,
    ) -> Result<Option<(Timestamp, Bytes)>, VerificationFailure> {
        let inner = self.inner.lock();
        let Some(entry) = inner.records.get(key) else {
            self.metrics.record_misses.inc();
            return Ok(None);
        };
        if entry.epoch != epoch {
            self.metrics.record_misses.inc();
            return Ok(None);
        }
        let (epoch, ts, value) = (entry.epoch, entry.ts, entry.value.clone());
        drop(inner);
        let expect = self.record_tag(key, epoch, ts, &value);
        let mut inner = self.inner.lock();
        let Some(entry) = inner.records.get(key) else {
            self.metrics.record_misses.inc();
            return Ok(None);
        };
        if entry.tag != expect {
            let tick = entry.tick;
            let bytes = entry.bytes;
            inner.records.remove(key);
            inner.record_lru.remove(&tick);
            inner.bytes -= bytes;
            drop(inner);
            self.metrics.tamper_detected.inc();
            let failure = VerificationFailure::CacheTampered { epoch };
            self.telemetry.audit(
                AuditEvent::new(failure.kind(), "cache")
                    .detail(failure.to_string())
                    .epoch(epoch)
                    .at_ns(self.platform.clock().now_ns()),
            );
            return Err(failure);
        }
        let old_tick = entry.tick;
        inner.tick += 1;
        let tick = inner.tick;
        inner.record_lru.remove(&old_tick);
        inner.record_lru.insert(tick, key.to_vec());
        inner.records.get_mut(key).expect("checked above").tick = tick;
        self.metrics.record_hits.inc();
        Ok(Some((ts, value)))
    }

    /// Memoizes a verified GET answer for `key` under `epoch`.
    pub fn insert_record(&self, key: &[u8], epoch: u64, ts: Timestamp, value: Bytes) {
        let bytes = key.len() + value.len() + ENTRY_OVERHEAD;
        if bytes > self.capacity {
            return;
        }
        let tag = self.record_tag(key, epoch, ts, &value);
        let mut inner = self.inner.lock();
        self.remove_record_locked(&mut inner, key);
        inner.tick += 1;
        let tick = inner.tick;
        inner.records.insert(key.to_vec(), RecordEntry { epoch, ts, value, tag, tick, bytes });
        inner.record_lru.insert(tick, key.to_vec());
        inner.bytes += bytes;
        self.evict_locked(&mut inner);
    }

    /// Looks up the payload of value-log entry `(file_no, offset)`,
    /// authenticated against `mac` (the pointer MAC from an
    /// already-verified pointer record).
    pub fn lookup_vlog(&self, file_no: u64, offset: u64, mac: &[u8; 32]) -> Option<Bytes> {
        let inner = self.inner.lock();
        let Some(slot) = inner.vlog.get(&(file_no, offset)) else {
            self.metrics.vlog_misses.inc();
            return None;
        };
        if &slot.mac != mac {
            self.metrics.vlog_misses.inc();
            return None;
        }
        let payload = slot.payload.clone();
        drop(inner);
        let expect = self.vlog_tag(file_no, offset, mac, &payload);
        let mut inner = self.inner.lock();
        let Some(slot) = inner.vlog.get(&(file_no, offset)) else {
            self.metrics.vlog_misses.inc();
            return None;
        };
        if slot.tag != expect {
            let (tick, bytes) = (slot.tick, slot.bytes);
            inner.vlog.remove(&(file_no, offset));
            inner.vlog_lru.remove(&tick);
            inner.bytes -= bytes;
            drop(inner);
            self.metrics.tamper_detected.inc();
            let epoch = self.inner.lock().epoch;
            let failure = VerificationFailure::CacheTampered { epoch };
            self.telemetry.audit(
                AuditEvent::new(failure.kind(), "cache")
                    .detail(format!("value-log slot ({file_no}, {offset}) failed its tag"))
                    .epoch(epoch)
                    .at_ns(self.platform.clock().now_ns()),
            );
            return None;
        }
        let old_tick = slot.tick;
        inner.tick += 1;
        let tick = inner.tick;
        inner.vlog_lru.remove(&old_tick);
        inner.vlog_lru.insert(tick, (file_no, offset));
        inner.vlog.get_mut(&(file_no, offset)).expect("checked above").tick = tick;
        self.metrics.vlog_hits.inc();
        Some(payload)
    }

    /// Memoizes an authenticated value-log payload.
    pub fn insert_vlog(&self, file_no: u64, offset: u64, mac: [u8; 32], payload: Bytes) {
        let bytes = payload.len() + ENTRY_OVERHEAD;
        if bytes > self.capacity {
            return;
        }
        let tag = self.vlog_tag(file_no, offset, &mac, &payload);
        let mut inner = self.inner.lock();
        if let Some(old) = inner.vlog.remove(&(file_no, offset)) {
            inner.vlog_lru.remove(&old.tick);
            inner.bytes -= old.bytes;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.vlog.insert((file_no, offset), VlogSlot { mac, payload, tag, tick, bytes });
        inner.vlog_lru.insert(tick, (file_no, offset));
        inner.bytes += bytes;
        self.evict_locked(&mut inner);
    }

    /// Drops the record entry for `key` (a write superseded it).
    pub fn invalidate_key(&self, key: &[u8]) {
        let mut inner = self.inner.lock();
        if self.remove_record_locked(&mut inner, key) {
            self.metrics.invalidations.inc();
        }
    }

    /// A new commitment epoch took effect: entries verified under any
    /// other epoch can no longer answer, so drop them.
    pub fn install_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.epoch = epoch;
        let stale: Vec<Vec<u8>> = inner
            .records
            .iter()
            .filter(|(_, e)| e.epoch != epoch)
            .map(|(k, _)| k.clone())
            .collect();
        for key in stale {
            if self.remove_record_locked(&mut inner, &key) {
                self.metrics.invalidations.inc();
            }
        }
    }

    /// Epoch snapshots were pruned; entries of dead epochs go with them.
    pub fn retire_epochs(&self, live_epochs: &[u64]) {
        let mut inner = self.inner.lock();
        let stale: Vec<Vec<u8>> = inner
            .records
            .iter()
            .filter(|(_, e)| !live_epochs.contains(&e.epoch))
            .map(|(k, _)| k.clone())
            .collect();
        for key in stale {
            if self.remove_record_locked(&mut inner, &key) {
                self.metrics.invalidations.inc();
            }
        }
    }

    /// Counter snapshot, reconstructed from the registry-backed
    /// `cache.*` counters (the pre-telemetry accessor shape).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            record_hits: self.metrics.record_hits.value(),
            record_misses: self.metrics.record_misses.value(),
            vlog_hits: self.metrics.vlog_hits.value(),
            vlog_misses: self.metrics.vlog_misses.value(),
            evictions: self.metrics.evictions.value(),
            invalidations: self.metrics.invalidations.value(),
            tamper_detected: self.metrics.tamper_detected.value(),
        }
    }

    /// Bytes currently held (tests / gauges).
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Test seam: scribbles over a cached record's value bytes without
    /// fixing its tag — the simulated host attacking the cache's backing
    /// memory. Returns whether the key was cached.
    pub fn corrupt_record(&self, key: &[u8]) -> bool {
        let mut inner = self.inner.lock();
        match inner.records.get_mut(key) {
            Some(entry) => {
                let mut bytes = entry.value.to_vec();
                match bytes.first_mut() {
                    Some(b) => *b ^= 0xFF,
                    None => bytes.push(0xFF),
                }
                entry.value = Bytes::from(bytes);
                true
            }
            None => false,
        }
    }

    /// Test seam: re-tags a cached record as verified under `epoch`,
    /// with the tag the enclave *would* have computed then — the
    /// strongest stale-replay an adversary with a recorded old entry
    /// could mount. Returns whether the key was cached.
    pub fn force_record_epoch(&self, key: &[u8], epoch: u64) -> bool {
        let tagged = {
            let inner = self.inner.lock();
            inner.records.get(key).map(|e| (e.ts, e.value.clone()))
        };
        match tagged {
            Some((ts, value)) => {
                let tag = self.record_tag(key, epoch, ts, &value);
                let mut inner = self.inner.lock();
                match inner.records.get_mut(key) {
                    Some(entry) => {
                        entry.epoch = epoch;
                        entry.tag = tag;
                        true
                    }
                    None => false,
                }
            }
            None => false,
        }
    }

    fn remove_record_locked(&self, inner: &mut Inner, key: &[u8]) -> bool {
        match inner.records.remove(key) {
            Some(entry) => {
                inner.record_lru.remove(&entry.tick);
                inner.bytes -= entry.bytes;
                true
            }
            None => false,
        }
    }

    fn evict_locked(&self, inner: &mut Inner) {
        while inner.bytes > self.capacity {
            let rec = inner.record_lru.iter().next().map(|(&t, _)| t);
            let slot = inner.vlog_lru.iter().next().map(|(&t, _)| t);
            match (rec, slot) {
                (Some(r), s) if s.map_or(true, |s| r < s) => {
                    let key = inner.record_lru.remove(&r).expect("present");
                    let entry = inner.records.remove(&key).expect("maps in sync");
                    inner.bytes -= entry.bytes;
                    self.metrics.evictions.inc();
                }
                (_, Some(s)) => {
                    let loc = inner.vlog_lru.remove(&s).expect("present");
                    let entry = inner.vlog.remove(&loc).expect("maps in sync");
                    inner.bytes -= entry.bytes;
                    self.metrics.evictions.inc();
                }
                (None, None) => break,
                _ => unreachable!("first arm covers rec=Some, slot=None"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> Arc<VerifiedCache> {
        VerifiedCache::new(Platform::with_defaults(), capacity)
    }

    #[test]
    fn hit_requires_exact_epoch() {
        let c = cache(4096);
        c.insert_record(b"k", 7, 42, Bytes::from_static(b"v"));
        assert_eq!(c.lookup_record(b"k", 7).unwrap(), Some((42, Bytes::from_static(b"v"))));
        assert_eq!(c.lookup_record(b"k", 8).unwrap(), None, "newer epoch must miss");
        assert_eq!(c.lookup_record(b"k", 6).unwrap(), None, "older epoch must miss");
        let s = c.stats();
        assert_eq!((s.record_hits, s.record_misses), (1, 2));
    }

    #[test]
    fn writes_and_epoch_installs_invalidate() {
        let c = cache(4096);
        c.insert_record(b"a", 1, 1, Bytes::from_static(b"va"));
        c.insert_record(b"b", 1, 2, Bytes::from_static(b"vb"));
        c.invalidate_key(b"a");
        assert_eq!(c.lookup_record(b"a", 1).unwrap(), None);
        assert!(c.lookup_record(b"b", 1).unwrap().is_some());
        c.install_epoch(2);
        assert_eq!(c.lookup_record(b"b", 2).unwrap(), None, "epoch install drops old entries");
        assert_eq!(c.stats().invalidations, 2);
    }

    #[test]
    fn tampered_entry_is_detected_not_served() {
        let c = cache(4096);
        c.insert_record(b"k", 3, 9, Bytes::from_static(b"honest"));
        assert!(c.corrupt_record(b"k"));
        let err = c.lookup_record(b"k", 3).unwrap_err();
        assert_eq!(err, VerificationFailure::CacheTampered { epoch: 3 });
        // Discarded: the next lookup is a clean miss.
        assert_eq!(c.lookup_record(b"k", 3).unwrap(), None);
        assert_eq!(c.stats().tamper_detected, 1);
    }

    #[test]
    fn stale_epoch_replay_misses_even_with_a_valid_old_tag() {
        let c = cache(4096);
        c.insert_record(b"k", 5, 1, Bytes::from_static(b"old"));
        c.install_epoch(6);
        c.insert_record(b"k", 6, 2, Bytes::from_static(b"new"));
        // Adversary replays the recorded epoch-5 entry (tag valid for 5).
        assert!(c.force_record_epoch(b"k", 5));
        assert_eq!(c.lookup_record(b"k", 6).unwrap(), None, "stale entry must not answer");
    }

    #[test]
    fn vlog_slots_check_the_pointer_mac() {
        let c = cache(4096);
        let mac = [0xAA; 32];
        c.insert_vlog(3, 128, mac, Bytes::from_static(b"payload"));
        assert_eq!(c.lookup_vlog(3, 128, &mac), Some(Bytes::from_static(b"payload")));
        assert_eq!(c.lookup_vlog(3, 128, &[0xBB; 32]), None, "wrong mac must miss");
        assert_eq!(c.lookup_vlog(3, 64, &mac), None, "wrong offset must miss");
        let s = c.stats();
        assert_eq!((s.vlog_hits, s.vlog_misses), (1, 2));
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let c = cache(3 * (1 + 10 + ENTRY_OVERHEAD));
        for (i, key) in [b"a", b"b", b"c"].iter().enumerate() {
            c.insert_record(*key, 1, i as u64, Bytes::from(vec![0u8; 10]));
        }
        // Touch `a` so `b` is the coldest, then overflow.
        assert!(c.lookup_record(b"a", 1).unwrap().is_some());
        c.insert_record(b"d", 1, 9, Bytes::from(vec![0u8; 10]));
        assert_eq!(c.lookup_record(b"b", 1).unwrap(), None, "coldest entry evicted");
        assert!(c.lookup_record(b"a", 1).unwrap().is_some());
        assert!(c.lookup_record(b"d", 1).unwrap().is_some());
        assert_eq!(c.stats().evictions, 1);
        assert!(c.bytes() <= 3 * (1 + 10 + ENTRY_OVERHEAD));
    }

    #[test]
    fn oversized_values_are_never_cached() {
        let c = cache(128);
        c.insert_record(b"k", 1, 1, Bytes::from(vec![0u8; 4096]));
        assert_eq!(c.lookup_record(b"k", 1).unwrap(), None);
        assert_eq!(c.bytes(), 0);
    }
}
