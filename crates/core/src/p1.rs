//! eLSM-P1: the strawman design (§4).
//!
//! The entire store — code *and* data — lives inside the enclave: the read
//! buffer is enclave memory (suffering EPC paging beyond 128 MB), and
//! SSTable/WAL files outside the enclave are protected at *file
//! granularity* by SDK-style sealing (Table 1). There is no Merkle forest:
//! integrity comes from hardware memory protection plus authenticated
//! encryption of every file block.

use std::sync::Arc;

use lsm_store::{Db, EnvConfig, Options, StorageEnv, Timestamp, ValueKind};
use sgx_sim::{Platform, Sealer};
use sim_disk::{Placement, SimDisk, SimFs};

use crate::api::{AuthenticatedKv, VerifiedRecord};
use crate::error::{ElsmError, VerificationFailure};

/// Configuration of an eLSM-P1 store.
#[derive(Debug, Clone)]
pub struct P1Options {
    /// In-enclave read-buffer capacity (the paging-sensitive knob of
    /// Figures 2 and 6c).
    pub buffer_bytes: usize,
    /// Memtable size triggering a flush.
    pub write_buffer_bytes: usize,
    /// Level-1 size budget.
    pub level1_max_bytes: u64,
    /// Geometric level growth factor.
    pub level_multiplier: u64,
    /// Number of on-disk levels.
    pub max_levels: usize,
    /// Target SSTable file size.
    pub target_file_bytes: u64,
    /// SSTable block size.
    pub block_size: usize,
    /// Bloom bits per key.
    pub bloom_bits_per_key: usize,
    /// Automatic compaction.
    pub compaction_enabled: bool,
}

impl Default for P1Options {
    fn default() -> Self {
        P1Options {
            buffer_bytes: 512 * 1024,
            write_buffer_bytes: 64 * 1024,
            level1_max_bytes: 256 * 1024,
            level_multiplier: 10,
            max_levels: 7,
            target_file_bytes: 128 * 1024,
            block_size: 4096,
            bloom_bits_per_key: 10,
            compaction_enabled: true,
        }
    }
}

/// The eLSM-P1 store: everything in the enclave, files sealed.
///
/// # Examples
///
/// ```
/// use elsm::{AuthenticatedKv, ElsmP1, P1Options};
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), elsm::ElsmError> {
/// let store = ElsmP1::open(Platform::with_defaults(), P1Options::default())?;
/// store.put(b"k", b"v")?;
/// assert_eq!(store.get(b"k")?.unwrap().value(), b"v");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ElsmP1 {
    platform: Arc<Platform>,
    fs: Arc<SimFs>,
    db: Arc<Db>,
}

impl ElsmP1 {
    /// Opens a fresh store on a new simulated filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open(platform: Arc<Platform>, options: P1Options) -> Result<Self, ElsmError> {
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        Self::open_with(platform, fs, options)
    }

    /// Opens (or recovers) a store on an existing filesystem.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure; tampered sealed blocks surface
    /// as IO errors on access (the SDK's authenticated decryption fails).
    pub fn open_with(
        platform: Arc<Platform>,
        fs: Arc<SimFs>,
        options: P1Options,
    ) -> Result<Self, ElsmError> {
        let sealer = Sealer::new(elsm_crypto::sha256(b"elsm-p1 enclave v1"), b"machine-0");
        let env = StorageEnv::new(
            platform.clone(),
            fs.clone(),
            EnvConfig {
                in_enclave: true,
                use_mmap: false, // P1 cannot mmap: data must stay inside (§6.3)
                cache_placement: Placement::Enclave,
                block_cache_bytes: options.buffer_bytes,
                block_slot_bytes: options.block_size * 2 + 64,
                sealed_files: true,
            },
            Some(sealer),
        );
        let db_options = Options {
            env: env.config().clone(),
            table: lsm_store::TableOptions {
                block_size: options.block_size,
                bloom_bits_per_key: options.bloom_bits_per_key,
            },
            write_buffer_bytes: options.write_buffer_bytes,
            target_file_bytes: options.target_file_bytes,
            level1_max_bytes: options.level1_max_bytes,
            level_multiplier: options.level_multiplier,
            max_levels: options.max_levels,
            compaction_enabled: options.compaction_enabled,
            purge_tombstones_at_bottom: true,
            keep_old_versions: true,
            ..Options::default()
        };
        let db = Arc::new(Db::open(env, db_options, None)?);
        Ok(ElsmP1 { platform, fs, db })
    }

    /// The platform this store charges against.
    pub fn platform(&self) -> &Arc<Platform> {
        &self.platform
    }

    /// The simulated filesystem (for adversary tests).
    pub fn fs(&self) -> &Arc<SimFs> {
        &self.fs
    }

    /// The underlying store (for benchmarks).
    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }
}

impl AuthenticatedKv for ElsmP1 {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError> {
        Ok(self.platform.ecall_with_payload(key.len() + value.len(), || self.db.put(key, value))?)
    }

    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError> {
        Ok(self.platform.ecall_with_payload(key.len(), || self.db.delete(key))?)
    }

    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        // One enclave transition per batch; the store group-commits the
        // whole frame (P1's write buffer lives in enclave memory, so the
        // saved transitions are the whole win here). P1 stores bare
        // values, so the batch's payload is exactly the marshalled bytes.
        let mut batch = lsm_store::WriteBatch::with_capacity(items.len());
        for (key, value) in items {
            batch.put(bytes::Bytes::copy_from_slice(key), bytes::Bytes::copy_from_slice(value));
        }
        Ok(self
            .platform
            .ecall_with_payload(batch.payload_bytes(), || self.db.write_batch(batch))?)
    }

    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let mut batch = lsm_store::WriteBatch::with_capacity(keys.len());
        for key in keys {
            batch.delete(bytes::Bytes::copy_from_slice(key));
        }
        Ok(self
            .platform
            .ecall_with_payload(batch.payload_bytes(), || self.db.write_batch(batch))?)
    }

    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        let result = self.platform.ecall(|| self.db.get(key));
        match result {
            Ok(Some(r)) => {
                debug_assert_eq!(r.kind, ValueKind::Put);
                Ok(Some(VerifiedRecord::new(r.key.clone(), r.value.clone(), r.ts, 0, 0)))
            }
            Ok(None) => Ok(None),
            // Sealed-block authentication failure = detected tampering.
            Err(e) if unseal_failure(&e) => {
                Err(ElsmError::Verification(VerificationFailure::ForgedRecord {
                    level: 0,
                    source: merkle::VerifyError::BadAuditPath,
                }))
            }
            Err(e) => Err(ElsmError::Io(e)),
        }
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        let records = self.platform.ecall(|| self.db.scan(from, to))?;
        Ok(records
            .into_iter()
            .map(|r| VerifiedRecord::new(r.key.clone(), r.value.clone(), r.ts, 0, 0))
            .collect())
    }
}

/// Distinguishes "authentication failed" IO errors (unsealing rejected a
/// tampered block) from plain missing-file errors.
fn unseal_failure(e: &sim_disk::FsError) -> bool {
    matches!(e, sim_disk::FsError::OutOfBounds { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ElsmP1 {
        ElsmP1::open(
            Platform::with_defaults(),
            P1Options {
                write_buffer_bytes: 4 * 1024,
                level1_max_bytes: 16 * 1024,
                ..P1Options::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let s = store();
        s.put(b"a", b"1").unwrap();
        assert_eq!(s.get(b"a").unwrap().unwrap().value(), b"1");
        assert!(s.get(b"b").unwrap().is_none());
    }

    #[test]
    fn data_on_disk_is_sealed() {
        let s = store();
        for i in 0..300 {
            s.put(format!("key{i:04}").as_bytes(), b"secret-value").unwrap();
        }
        s.db().flush().unwrap();
        // No SSTable file may contain the plaintext value.
        for name in s.fs().list() {
            if !name.ends_with(".sst") {
                continue;
            }
            let f = s.fs().open(&name).unwrap();
            let bytes = f.peek(0, f.len()).unwrap();
            assert!(
                !bytes.windows(12).any(|w| w == b"secret-value"),
                "plaintext leaked into {name}"
            );
        }
    }

    #[test]
    fn tampered_sstable_detected() {
        let s = store();
        for i in 0..300 {
            s.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
        }
        s.db().flush().unwrap();
        // Corrupt the first data block of some SSTable.
        let sst = s.fs().list().into_iter().find(|n| n.ends_with(".sst")).expect("an sstable");
        s.fs().open(&sst).unwrap().corrupt(40, 0xff);
        // Some read must hit the corrupt block and fail authentication.
        let mut detected = false;
        for i in 0..300 {
            if s.get(format!("key{i:04}").as_bytes()).is_err() {
                detected = true;
                break;
            }
        }
        assert!(detected, "corruption must be detected by unsealing");
    }

    #[test]
    fn reads_use_enclave_buffer() {
        let s = store();
        for i in 0..300 {
            s.put(format!("key{i:04}").as_bytes(), b"v").unwrap();
        }
        s.db().flush().unwrap();
        for i in 0..300 {
            s.get(format!("key{i:04}").as_bytes()).unwrap();
        }
        let stats = s.platform().stats();
        assert!(stats.epc_page_ins > 0, "P1 reads must touch the EPC");
        assert!(stats.cross_copy_bytes > 0, "fills cross the boundary");
    }

    #[test]
    fn deletes_work() {
        let s = store();
        s.put(b"k", b"v").unwrap();
        s.delete(b"k").unwrap();
        assert!(s.get(b"k").unwrap().is_none());
    }

    #[test]
    fn scan_returns_sorted_live_records() {
        let s = store();
        s.put(b"c", b"3").unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        s.delete(b"b").unwrap();
        let got = s.scan(b"a", b"z").unwrap();
        let keys: Vec<&[u8]> = got.iter().map(|r| r.key()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"c".as_slice()]);
    }
}
