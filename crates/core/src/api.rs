//! The public authenticated key-value interface (Equation 1 of the paper).

use bytes::Bytes;
use lsm_store::Timestamp;

use crate::error::ElsmError;

/// A record whose authenticity the enclave has verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedRecord {
    key: Bytes,
    value: Bytes,
    ts: Timestamp,
    proof_bytes: usize,
    levels_checked: usize,
}

impl VerifiedRecord {
    /// Assembles a verified record (crate-internal).
    pub(crate) fn new(
        key: Bytes,
        value: Bytes,
        ts: Timestamp,
        proof_bytes: usize,
        levels_checked: usize,
    ) -> Self {
        VerifiedRecord { key, value, ts, proof_bytes, levels_checked }
    }

    /// The record's key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The record's (bare, application-level) value.
    pub fn value(&self) -> &[u8] {
        &self.value
    }

    /// The timestamp assigned by the enclave's timestamp manager.
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// Serialized size of the proofs checked for this answer (0 when the
    /// answer came from trusted enclave memory).
    pub fn proof_bytes(&self) -> usize {
        self.proof_bytes
    }

    /// Number of LSM levels inspected (the early stop keeps this small).
    pub fn levels_checked(&self) -> usize {
        self.levels_checked
    }
}

/// The paper's authenticated store interface (§3.2, Equation 1):
/// `ts = PUT(k, v)`, `⟨k, v, ts⟩ = GET(k)`, `{⟨k, v, ts⟩} = SCAN(k1, k2)`.
pub trait AuthenticatedKv {
    /// Writes a key-value record; returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or when the store is poisoned.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError>;

    /// Reads the freshest record for `key`, verifying integrity,
    /// completeness and freshness.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] when the host's answer fails
    /// authentication.
    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError>;

    /// Deletes `key` (writes a tombstone); returns its timestamp.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or when the store is poisoned.
    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError>;

    /// Range query over `[from, to]` with completeness verification.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] when any level's answer fails
    /// authentication.
    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError>;

    /// Writes a whole batch of records atomically; returns one timestamp
    /// per record, in batch order.
    ///
    /// The default forwards record by record — each paying a full enclave
    /// transition, with **no** crash atomicity (a crash mid-loop persists
    /// a prefix). The enclave-backed stores in this crate override it with
    /// their group-commit entry point: one ECall for the whole batch, one
    /// WAL frame, one trusted-state fold — and there the frame is the
    /// crash-atomicity unit, so recovery replays the batch whole or drops
    /// it whole. Implementors advertising atomicity must override.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or when the store is poisoned.
    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        items.iter().map(|(key, value)| self.put(key, value)).collect()
    }

    /// Deletes a whole batch of keys atomically (tombstones); returns one
    /// timestamp per key. Same contract as [`AuthenticatedKv::put_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or when the store is poisoned.
    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        keys.iter().map(|key| self.delete(key)).collect()
    }
}
