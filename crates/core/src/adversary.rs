//! Malicious-host simulation (§3.3's threat model, made executable).
//!
//! The adversary controls everything outside the enclave: file bytes, the
//! answers the storage layer returns, and — across power cycles — which
//! (older) version of the storage it presents. This module provides
//! helpers that mount each attack class; the security test suite asserts
//! every one is detected by the VRFY algorithms.

use bytes::Bytes;
use lsm_store::{GetTrace, LevelOutcome, Record, ScanTrace};

/// Replaces the hit record's value bytes (query-integrity attack).
pub fn forge_hit_value(trace: &mut GetTrace, forged_value: &[u8]) {
    for search in &mut trace.levels {
        if let LevelOutcome::Hit(record) = &mut search.outcome {
            record.value = crate::envelope::wrap_plain(forged_value);
            trace.result = Some(record.clone());
        }
    }
}

/// Replaces the hit record entirely with an attacker-chosen record that
/// keeps the original (valid) embedded proof — a splice attack.
pub fn splice_hit_record(trace: &mut GetTrace, new_ts: u64) {
    for search in &mut trace.levels {
        if let LevelOutcome::Hit(record) = &mut search.outcome {
            record.ts = new_ts;
            trace.result = Some(record.clone());
        }
    }
}

/// Converts the hit at some level into a fabricated miss, presenting the
/// hit record itself as the left "neighbor" (completeness attack: a
/// legitimate record is excluded from the result).
pub fn suppress_hit(trace: &mut GetTrace) {
    for search in &mut trace.levels {
        if let LevelOutcome::Hit(record) = &search.outcome {
            let left = Some(record.clone());
            search.outcome = LevelOutcome::Miss { left, right: None };
        }
    }
    trace.result = None;
}

/// Claims a searched level was empty (hides an entire level).
pub fn hide_level(trace: &mut GetTrace, level: usize) {
    for search in &mut trace.levels {
        if search.level == level {
            search.outcome = LevelOutcome::Empty;
        }
    }
    trace.result = None;
}

/// Replaces the result with an older version of the same key, using that
/// older version's own (honestly generated) proof — the paper's ⟨Z,6⟩
/// freshness attack. The caller supplies the stale record as stored at the
/// same level.
pub fn substitute_stale(trace: &mut GetTrace, stale: Record) {
    for search in &mut trace.levels {
        if matches!(search.outcome, LevelOutcome::Hit(_)) {
            search.outcome = LevelOutcome::Hit(stale.clone());
            trace.result = Some(stale.clone());
        }
    }
}

/// Drops one record (all its versions) from a scan's level slice — a
/// range-completeness attack.
pub fn drop_from_scan(trace: &mut ScanTrace, level: usize, key: &[u8]) {
    for l in &mut trace.levels {
        if l.level == level {
            l.records.retain(|r| r.key != key);
        }
    }
    trace.merged.retain(|r| r.key != key);
}

/// Truncates a scan's level slice after `keep` records and drops the right
/// boundary (pretends the range ended early).
pub fn truncate_scan(trace: &mut ScanTrace, level: usize, keep: usize) {
    for l in &mut trace.levels {
        if l.level == level {
            l.records.truncate(keep);
            l.right = None;
        }
    }
}

/// Swaps the merged scan output's values between two indices (tampering
/// with the aggregation the trusted code would otherwise do — only
/// possible if the host could intercept it; verification of merged output
/// derives from level data, so this models an in-transit tamper).
pub fn swap_merged_values(trace: &mut ScanTrace, i: usize, j: usize) {
    if i < trace.merged.len() && j < trace.merged.len() {
        let vi = trace.merged[i].value.clone();
        let vj = trace.merged[j].value.clone();
        trace.merged[i].value = vj;
        trace.merged[j].value = vi;
    }
}

/// Fabricates a record with a plain envelope (no proof at all).
pub fn proofless_record(key: &[u8], value: &[u8], ts: u64) -> Record {
    Record::put(Bytes::copy_from_slice(key), crate::envelope::wrap_plain(value), ts)
}

#[cfg(test)]
mod tests {
    //! End-to-end attack detection: every §3.3 attack class against a real
    //! store, every one detected.

    use super::*;
    use crate::api::AuthenticatedKv;
    use crate::error::{ElsmError, VerificationFailure};
    use crate::p2::{ElsmP2, P2Options};
    use sgx_sim::Platform;

    fn store_with_data() -> ElsmP2 {
        let store = ElsmP2::open(
            Platform::with_defaults(),
            P2Options {
                write_buffer_bytes: 4 * 1024,
                level1_max_bytes: 16 * 1024,
                level_multiplier: 4,
                max_levels: 4,
                ..P2Options::default()
            },
        )
        .unwrap();
        for i in 0..400u32 {
            let key = format!("key{:04}", i % 200);
            store.put(key.as_bytes(), format!("value-{i}").as_bytes()).unwrap();
        }
        store.db().flush().unwrap();
        store
    }

    #[test]
    fn benign_queries_verify() {
        let store = store_with_data();
        // Protocol correctness (Definition 5.2): honest answers verify.
        for i in (0..200).step_by(11) {
            let key = format!("key{i:04}");
            assert!(store.get(key.as_bytes()).unwrap().is_some(), "{key}");
        }
        assert!(store.get(b"absent-key").unwrap().is_none());
        assert!(!store.scan(b"key0010", b"key0020").unwrap().is_empty());
    }

    #[test]
    fn forged_value_detected() {
        let store = store_with_data();
        let mut trace = store.raw_get_trace(b"key0007").unwrap();
        forge_hit_value(&mut trace, b"forged!");
        let err = store.verify_get_trace(b"key0007", &trace).unwrap_err();
        assert!(
            matches!(
                err,
                VerificationFailure::ForgedRecord { .. } | VerificationFailure::MissingProof { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn spliced_timestamp_detected() {
        let store = store_with_data();
        let mut trace = store.raw_get_trace(b"key0007").unwrap();
        splice_hit_record(&mut trace, 999_999);
        assert!(store.verify_get_trace(b"key0007", &trace).is_err());
    }

    #[test]
    fn suppressed_hit_detected() {
        let store = store_with_data();
        let mut trace = store.raw_get_trace(b"key0007").unwrap();
        suppress_hit(&mut trace);
        let err = store.verify_get_trace(b"key0007", &trace).unwrap_err();
        assert!(
            matches!(err, VerificationFailure::BadNonMembership { .. }),
            "hiding a record must break non-membership: {err:?}"
        );
    }

    #[test]
    fn hidden_level_detected() {
        let store = store_with_data();
        let trace = store.raw_get_trace(b"key0007").unwrap();
        let hit_level = trace
            .levels
            .iter()
            .find_map(|l| matches!(l.outcome, LevelOutcome::Hit(_)).then_some(l.level))
            .expect("a hit level");
        let mut tampered = trace;
        hide_level(&mut tampered, hit_level);
        let err = store.verify_get_trace(b"key0007", &tampered).unwrap_err();
        assert!(matches!(err, VerificationFailure::HiddenLevel { .. }), "got {err:?}");
    }

    #[test]
    fn stale_version_detected() {
        // Two versions of one key, both compacted to the same level; the
        // adversary answers with the older one and its honest proof.
        let store = ElsmP2::open(
            Platform::with_defaults(),
            P2Options {
                write_buffer_bytes: 1024 * 1024,
                compaction_enabled: false,
                ..P2Options::default()
            },
        )
        .unwrap();
        store.put(b"zkey", b"old-value").unwrap();
        store.put(b"zkey", b"new-value").unwrap();
        for i in 0..50 {
            store.put(format!("fill{i:03}").as_bytes(), b"x").unwrap();
        }
        store.db().flush().unwrap();
        // Honest answer is the new version.
        assert_eq!(store.get(b"zkey").unwrap().unwrap().value(), b"new-value");
        // Fetch the stale version as stored (with its own embedded proof).
        let all = store.db().level_record_dump(1).unwrap();
        let stale = all
            .iter()
            .filter(|r| &r.key[..] == b"zkey")
            .min_by_key(|r| r.ts)
            .expect("old version on disk")
            .clone();
        let mut trace = store.raw_get_trace(b"zkey").unwrap();
        substitute_stale(&mut trace, stale);
        let err = store.verify_get_trace(b"zkey", &trace).unwrap_err();
        assert!(
            matches!(err, VerificationFailure::StaleRecord { .. }),
            "freshness violation must be detected: {err:?}"
        );
    }

    #[test]
    fn dropped_scan_record_detected() {
        let store = store_with_data();
        let mut trace = store.raw_scan_trace(b"key0010", b"key0030").unwrap();
        // Drop key0020 from whichever level actually stores it.
        let victim_level = trace
            .levels
            .iter()
            .find(|l| l.records.iter().any(|r| &r.key[..] == b"key0020"))
            .map(|l| l.level)
            .expect("key0020 stored at some level");
        drop_from_scan(&mut trace, victim_level, b"key0020");
        let err = store.verify_scan_trace(b"key0010", b"key0030", &trace).unwrap_err();
        assert!(matches!(err, VerificationFailure::IncompleteRange { .. }), "got {err:?}");
    }

    #[test]
    fn truncated_scan_detected() {
        let store = store_with_data();
        let mut trace = store.raw_scan_trace(b"key0010", b"key0030").unwrap();
        let victim_level = trace
            .levels
            .iter()
            .find(|l| l.records.len() > 3)
            .map(|l| l.level)
            .expect("a level with records in range");
        truncate_scan(&mut trace, victim_level, 3);
        assert!(store.verify_scan_trace(b"key0010", b"key0030", &trace).is_err());
    }

    #[test]
    fn sstable_corruption_detected_end_to_end() {
        let store = store_with_data();
        let sst = store
            .fs()
            .list()
            .into_iter()
            .filter(|n| n.ends_with(".sst"))
            .max()
            .expect("an sstable");
        let f = store.fs().open(&sst).unwrap();
        // Flip a byte inside the first data block.
        f.corrupt(64, 0x01);
        let mut detected = 0;
        for i in 0..200 {
            let key = format!("key{i:04}");
            if store.get(key.as_bytes()).is_err() {
                detected += 1;
            }
        }
        assert!(detected > 0, "on-disk corruption must surface as verification failures");
    }

    #[test]
    fn proofless_record_rejected() {
        let store = store_with_data();
        let mut trace = store.raw_get_trace(b"key0007").unwrap();
        for search in &mut trace.levels {
            if matches!(search.outcome, LevelOutcome::Hit(_)) {
                search.outcome = LevelOutcome::Hit(proofless_record(b"key0007", b"v", 123));
            }
        }
        let err = store.verify_get_trace(b"key0007", &trace).unwrap_err();
        assert!(matches!(err, VerificationFailure::MissingProof { .. }), "got {err:?}");
    }

    #[test]
    fn rollback_attack_detected() {
        use sgx_sim::MonotonicCounter;
        use sim_disk::{SimDisk, SimFs};

        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let counter = MonotonicCounter::new(platform.clone());
        let options = P2Options {
            write_buffer_bytes: 4 * 1024,
            rollback: Some(crate::p2::RollbackOptions { counter_write_buffer: 1 }),
            ..P2Options::default()
        };
        // Epoch 1: some data, clean close.
        {
            let store = ElsmP2::open_with(
                platform.clone(),
                fs.clone(),
                options.clone(),
                Some(counter.clone()),
            )
            .unwrap();
            for i in 0..100 {
                store.put(format!("k{i:03}").as_bytes(), b"v1").unwrap();
            }
            store.close().unwrap();
        }
        // Adversary snapshots the (authentic) epoch-1 state.
        let old_state = fs.snapshot();
        // Epoch 2: more writes, clean close — counter advances.
        {
            let store = ElsmP2::open_with(
                platform.clone(),
                fs.clone(),
                options.clone(),
                Some(counter.clone()),
            )
            .unwrap();
            for i in 0..100 {
                store.put(format!("k{i:03}").as_bytes(), b"v2").unwrap();
            }
            store.close().unwrap();
        }
        // Attack: restore the old storage and restart the enclave.
        fs.restore(&old_state);
        let result = ElsmP2::open_with(platform, fs, options, Some(counter));
        assert!(
            matches!(result, Err(ElsmError::Verification(VerificationFailure::RolledBack))),
            "rollback must be detected at restart: {result:?}"
        );
    }

    #[test]
    fn benign_restart_verifies() {
        use sgx_sim::MonotonicCounter;
        use sim_disk::{SimDisk, SimFs};

        let platform = Platform::with_defaults();
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let counter = MonotonicCounter::new(platform.clone());
        let options = P2Options {
            write_buffer_bytes: 4 * 1024,
            rollback: Some(crate::p2::RollbackOptions { counter_write_buffer: 1 }),
            ..P2Options::default()
        };
        {
            let store = ElsmP2::open_with(
                platform.clone(),
                fs.clone(),
                options.clone(),
                Some(counter.clone()),
            )
            .unwrap();
            for i in 0..150 {
                store.put(format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            store.close().unwrap();
        }
        let store = ElsmP2::open_with(platform, fs, options, Some(counter)).unwrap();
        for i in (0..150).step_by(7) {
            let key = format!("k{i:03}");
            assert_eq!(
                store.get(key.as_bytes()).unwrap().unwrap().value(),
                format!("v{i}").as_bytes(),
                "{key} lost or unverifiable after restart"
            );
        }
    }
}
