//! One replication group: a primary, N replicas, and the shared fence.
//!
//! [`ReplicationGroup`] is the deployment unit the sharded router places
//! behind every partition: writes go to the primary (whose store ships
//! them to every replica channel before acknowledging), verified reads
//! are served by the replicas round-robin — that is the horizontal *read*
//! axis replication adds — and failover runs the fenced promotion
//! protocol of [`Replica::promote`].
//!
//! Each node lives on its own [`Platform`] (its own machine: enclave,
//! clock, filesystem), derived from the primary's cost model, so the
//! scheduler in `ycsb` can model replicas as independent machines.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use elsm::replication::SessionKey;
use elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options, VerifiedRecord};
use lsm_store::Timestamp;
use parking_lot::RwLock;
use sgx_sim::{FencingCounter, Platform};

use crate::channel::Channel;
use crate::primary::{Primary, ReplicationOptions};
use crate::replica::{FreshnessToken, Membership, Replica};

#[derive(Debug)]
struct Nodes {
    primary: Option<Primary>,
    replicas: Vec<Replica>,
}

/// A primary plus its replicas (see the module docs).
#[derive(Debug)]
pub struct ReplicationGroup {
    nodes: RwLock<Nodes>,
    fencing: Arc<FencingCounter>,
    key: SessionKey,
    options: ReplicationOptions,
    rr: AtomicUsize,
}

impl ReplicationGroup {
    /// Opens a fresh group: the primary on `platform`, each replica on
    /// its own platform with the same cost model and the **same store
    /// options** (replay determinism requires it). The fencing counter
    /// charges to the primary's platform.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn open(
        platform: Arc<Platform>,
        store_options: P2Options,
        options: ReplicationOptions,
    ) -> Result<Self, ElsmError> {
        let fencing = FencingCounter::new(platform.clone());
        // Every group gets its own session key (a process-unique instance
        // id stands in for the per-group attested key exchange): two
        // coexisting groups must never share a key, or the host could
        // splice one group's authentic envelopes into another's channel.
        static GROUP_INSTANCE: AtomicU64 = AtomicU64::new(0);
        let instance = GROUP_INSTANCE.fetch_add(1, Ordering::Relaxed).to_le_bytes();
        let shard_tag = store_options.shard_id.unwrap_or(u32::MAX).to_le_bytes();
        let key =
            SessionKey::derive(&[b"replication group/", &shard_tag[..], &instance[..]].concat());
        let channels: Vec<Arc<Channel>> = (0..options.replicas).map(|_| Channel::new()).collect();
        // Every node reports into the caller's registry under its own
        // scope, so per-store series ("db.puts", "replica.lag_epochs")
        // never collide across the group's nodes.
        let primary_options = P2Options {
            telemetry: store_options.telemetry.scoped("primary"),
            ..store_options.clone()
        };
        let primary = Primary::open(
            platform.clone(),
            primary_options,
            &options,
            fencing.clone(),
            key.clone(),
            channels.clone(),
        )?;
        let generation = primary.generation();
        let replicas = channels
            .iter()
            .enumerate()
            .map(|(i, channel)| {
                let replica_options = P2Options {
                    telemetry: store_options.telemetry.scoped(&format!("replica{}", i + 1)),
                    ..store_options.clone()
                };
                Replica::open(
                    Platform::new(platform.cost().clone()),
                    replica_options,
                    channel.clone(),
                    Membership {
                        fencing: fencing.clone(),
                        key: key.clone(),
                        node: (i + 1) as u32,
                        generation,
                        max_lag_epochs: options.max_lag_epochs,
                    },
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplicationGroup {
            nodes: RwLock::new(Nodes { primary: Some(primary), replicas }),
            fencing,
            key,
            options,
            rr: AtomicUsize::new(0),
        })
    }

    /// The group's session key (tests and auditors sign/verify with it).
    pub fn session_key(&self) -> &SessionKey {
        &self.key
    }

    /// The shared fencing counter.
    pub fn fencing(&self) -> &Arc<FencingCounter> {
        &self.fencing
    }

    /// Number of replicas currently in the group.
    pub fn replica_count(&self) -> usize {
        self.nodes.read().replicas.len()
    }

    /// The acting primary's store.
    ///
    /// # Panics
    ///
    /// Panics when the primary was killed and nobody was promoted.
    pub fn primary_store(&self) -> Arc<ElsmP2> {
        self.nodes.read().primary.as_ref().expect("group has no primary").store().clone()
    }

    /// Replica `i`'s store (each on its own platform).
    pub fn replica_store(&self, i: usize) -> Arc<ElsmP2> {
        self.nodes.read().replicas[i].store().clone()
    }

    /// Replica `i`'s platform (the machine fig12's scheduler binds
    /// cores to).
    pub fn replica_platform(&self, i: usize) -> Arc<Platform> {
        self.nodes.read().replicas[i].store().platform().clone()
    }

    /// Runs `f` over replica `i` (tests reach channels and progress
    /// through this).
    pub fn with_replica<T>(&self, i: usize, f: impl FnOnce(&Replica) -> T) -> T {
        f(&self.nodes.read().replicas[i])
    }

    /// Drains and applies every replica's channel. Per-replica stream
    /// failures are sticky inside the replica and surface on its reads;
    /// IO errors propagate.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Io`] on replay IO failure.
    pub fn sync(&self) -> Result<(), ElsmError> {
        let nodes = self.nodes.read();
        for replica in &nodes.replicas {
            match replica.sync() {
                Ok(_) | Err(ElsmError::Verification(_)) => {}
                Err(error) => return Err(error),
            }
        }
        Ok(())
    }

    /// Flushes the primary (the marker replays on the replicas) and
    /// syncs.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure.
    pub fn flush(&self) -> Result<(), ElsmError> {
        self.nodes.read().primary.as_ref().expect("group has no primary").store().db().flush()?;
        self.sync()
    }

    /// Binds the primary's current replication progress and dataset
    /// digest to the fencing counter (the periodic §5.6.1 write a later
    /// promotion is validated against).
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] when the primary was deposed.
    pub fn fence(&self) -> Result<(), ElsmError> {
        self.nodes.read().primary.as_ref().expect("group has no primary").fence()
    }

    /// Fences and seals every node — the clean-shutdown path.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or a deposed primary.
    pub fn close(&self) -> Result<(), ElsmError> {
        let nodes = self.nodes.read();
        if let Some(primary) = &nodes.primary {
            primary.close()?;
        }
        for replica in &nodes.replicas {
            replica.store().close()?;
        }
        Ok(())
    }

    /// Simulates a primary crash: the node is removed from the group and
    /// returned (a resurrection attempt is the returned handle writing
    /// again). Everything it shipped before dying stays queued in the
    /// replica channels.
    pub fn kill_primary(&self) -> Option<Primary> {
        self.nodes.write().primary.take()
    }

    /// Promotes replica `index` through the fenced protocol; on success
    /// it becomes the group's primary, shipping to the remaining
    /// replicas.
    ///
    /// # Errors
    ///
    /// See [`Replica::promote`]. On error the candidate is dropped from
    /// the group (its state is suspect by construction).
    pub fn promote(&self, index: usize) -> Result<(), ElsmError> {
        let mut nodes = self.nodes.write();
        assert!(nodes.primary.is_none(), "kill the primary before promoting");
        let candidate = nodes.replicas.remove(index);
        let peers = nodes.replicas.iter().map(|r| r.channel().clone()).collect();
        let primary = candidate.promote(&self.options, peers)?;
        nodes.primary = Some(primary);
        Ok(())
    }

    /// Round-robin pick of a healthy replica index, if any.
    fn pick_replica(&self, nodes: &Nodes) -> Option<usize> {
        let n = nodes.replicas.len();
        if n == 0 {
            return None;
        }
        let start = self.rr.fetch_add(1, Ordering::Relaxed);
        (0..n).map(|k| (start + k) % n).find(|&i| nodes.replicas[i].failure().is_none())
    }

    /// Verified read with its freshness token: replicas round-robin,
    /// primary only when no healthy replica exists.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Verification`] on a stale or failed serving
    /// replica, or any ordinary read verification failure.
    pub fn get_with_token(
        &self,
        key: &[u8],
    ) -> Result<(Option<VerifiedRecord>, Option<FreshnessToken>), ElsmError> {
        let nodes = self.nodes.read();
        match self.pick_replica(&nodes) {
            Some(i) => {
                let (record, token) = nodes.replicas[i].get(key)?;
                Ok((record, Some(token)))
            }
            None => {
                let primary = nodes.primary.as_ref().expect("group has no node to read from");
                Ok((primary.get(key)?, None))
            }
        }
    }

    /// Verified scan with its freshness token, routed like
    /// [`ReplicationGroup::get_with_token`].
    ///
    /// # Errors
    ///
    /// See [`ReplicationGroup::get_with_token`].
    pub fn scan_with_token(
        &self,
        from: &[u8],
        to: &[u8],
    ) -> Result<(Vec<VerifiedRecord>, Option<FreshnessToken>), ElsmError> {
        let nodes = self.nodes.read();
        match self.pick_replica(&nodes) {
            Some(i) => {
                let (records, token) = nodes.replicas[i].scan(from, to)?;
                Ok((records, Some(token)))
            }
            None => {
                let primary = nodes.primary.as_ref().expect("group has no node to read from");
                Ok((primary.scan(from, to)?, None))
            }
        }
    }

    fn write_through<T>(
        &self,
        op: impl FnOnce(&Primary) -> Result<T, ElsmError>,
    ) -> Result<T, ElsmError> {
        let result = {
            let nodes = self.nodes.read();
            op(nodes.primary.as_ref().expect("group has no primary"))?
        };
        // Semi-synchronous replication: the frames are already in every
        // channel (shipped under the primary's write lock); draining here
        // keeps replicas read-your-writes fresh.
        self.sync()?;
        Ok(result)
    }
}

impl AuthenticatedKv for ReplicationGroup {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError> {
        self.write_through(|p| p.put(key, value))
    }

    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError> {
        self.write_through(|p| p.delete(key))
    }

    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        self.write_through(|p| p.put_batch(items))
    }

    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        self.write_through(|p| p.delete_batch(keys))
    }

    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        Ok(self.get_with_token(key)?.0)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        Ok(self.scan_with_token(from, to)?.0)
    }
}
