//! Wire encoding of shipped replication events.
//!
//! Every payload starts with the sender's **leadership generation**
//! (little-endian `u64`), then the sender's [`TraceContext`] (16 bytes,
//! all-zero when untraced — the field is always present so envelope sizes
//! never depend on whether tracing is enabled), followed by a one-byte
//! tag and the event body. The generation rides in every event so a
//! deposed primary's shipments are rejectable the moment a replica has
//! learned of a newer one — without waiting for the deposed node to
//! notice its own fencing. The trace context lets replica-side
//! replay/verification spans join the primary's request tree.
//!
//! A `Frame` body is byte-for-byte the WAL batch frame of
//! [`lsm_store::encode_frame`]: the shipped unit *is* the crash-atomicity
//! unit, checksummed encoding included.

use elsm::replication::Announcement;
use lsm_store::{decode_frame, encode_frame, CompactionJob, Record, VlogGcJob};
use telemetry::TraceContext;

const TAG_FRAME: u8 = 1;
const TAG_FLUSH: u8 = 2;
const TAG_COMPACT: u8 = 3;
const TAG_ANNOUNCE: u8 = 4;
const TAG_PROMOTE: u8 = 5;
const TAG_VLOG_GC: u8 = 6;

/// One decoded replication shipment.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A committed WAL batch frame to replay whole.
    Frame(Vec<Record>),
    /// "Flush now": the primary froze its memtable at this stream point
    /// (replayed *without* chasing compaction — the primary ships every
    /// job it ran as its own `Compact` event).
    Flush,
    /// "Run this job now": the strategy-deterministic description of one
    /// compaction job the primary installed, replayed bit-identically
    /// instead of letting the replica re-decide compaction.
    Compact(CompactionJob),
    /// A signed version-install announcement (the per-epoch cross-check).
    Announce(Announcement),
    /// A promotion: the generation in the header is the *new* generation,
    /// which replicas accept only after checking the fencing counter.
    Promote,
    /// "Collect these value-log files now": the primary's value-log GC —
    /// a merge job plus the victim file set, replayed bit-identically so
    /// both logs rewrite surviving entries in the same order and end with
    /// the same file sets.
    VlogGc(VlogGcJob),
}

/// Encodes an event under `generation`, carrying the sender's `trace`
/// context ([`TraceContext::NONE`] when untraced; see the module docs).
pub fn encode_event(generation: u64, trace: TraceContext, event: &WireEvent) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&generation.to_le_bytes());
    out.extend_from_slice(&trace.encode());
    match event {
        WireEvent::Frame(records) => {
            out.push(TAG_FRAME);
            out.extend_from_slice(&encode_frame(records));
        }
        WireEvent::Flush => out.push(TAG_FLUSH),
        WireEvent::Compact(job) => {
            out.push(TAG_COMPACT);
            job.encode(&mut out);
        }
        WireEvent::Announce(a) => {
            out.push(TAG_ANNOUNCE);
            out.extend_from_slice(&a.encode());
        }
        WireEvent::Promote => out.push(TAG_PROMOTE),
        WireEvent::VlogGc(gc) => {
            out.push(TAG_VLOG_GC);
            gc.encode(&mut out);
        }
    }
    out
}

/// Decodes a payload back into `(generation, trace, event)`. `None`
/// means a malformed shipment (the caller treats it as channel tampering
/// — an authenticated sender never produces one).
pub fn decode_event(payload: &[u8]) -> Option<(u64, TraceContext, WireEvent)> {
    let generation = u64::from_le_bytes(payload.get(0..8)?.try_into().ok()?);
    let trace = TraceContext::decode(payload.get(8..24)?)?;
    let tag = *payload.get(24)?;
    let body = &payload[25..];
    let event = match tag {
        TAG_FRAME => WireEvent::Frame(decode_frame(body)?),
        TAG_FLUSH if body.is_empty() => WireEvent::Flush,
        TAG_COMPACT => WireEvent::Compact(CompactionJob::decode(body)?),
        TAG_ANNOUNCE => WireEvent::Announce(Announcement::decode(body)?),
        TAG_PROMOTE if body.is_empty() => WireEvent::Promote,
        TAG_VLOG_GC => WireEvent::VlogGc(VlogGcJob::decode(body)?),
        _ => return None,
    };
    Some((generation, trace, event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes_like_records::sample;

    mod bytes_like_records {
        use lsm_store::Record;

        pub fn sample() -> Vec<Record> {
            (0..5)
                .map(|i| {
                    Record::put(
                        format!("key{i}").into_bytes(),
                        format!("value{i}").into_bytes(),
                        i + 1,
                    )
                })
                .collect()
        }
    }

    #[test]
    fn events_round_trip() {
        let records = sample();
        for (generation, trace, event) in [
            (1, TraceContext { trace_id: 11, span_id: 13 }, WireEvent::Frame(records)),
            (2, TraceContext::NONE, WireEvent::Flush),
            (
                3,
                TraceContext { trace_id: 5, span_id: 6 },
                WireEvent::Compact(CompactionJob {
                    input_levels: vec![2, 3, 4],
                    output_level: 2,
                    purge: true,
                }),
            ),
            (7, TraceContext::NONE, WireEvent::Promote),
            (
                8,
                TraceContext::NONE,
                WireEvent::VlogGc(VlogGcJob {
                    job: CompactionJob { input_levels: vec![1, 2], output_level: 2, purge: false },
                    rewrite_files: vec![3, 7],
                }),
            ),
        ] {
            let encoded = encode_event(generation, trace, &event);
            assert_eq!(decode_event(&encoded), Some((generation, trace, event)));
        }
    }

    #[test]
    fn trace_context_is_fixed_width() {
        let traced = encode_event(1, TraceContext { trace_id: 9, span_id: 10 }, &WireEvent::Flush);
        let untraced = encode_event(1, TraceContext::NONE, &WireEvent::Flush);
        assert_eq!(
            traced.len(),
            untraced.len(),
            "envelope size must not depend on tracing (per-byte charges stay identical)"
        );
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_event(&[]).is_none());
        assert!(decode_event(&[0; 8]).is_none(), "missing trace context");
        assert!(decode_event(&[0; 24]).is_none(), "missing tag");
        let mut bad = encode_event(1, TraceContext::NONE, &WireEvent::Flush);
        bad.push(0);
        assert!(decode_event(&bad).is_none(), "trailing bytes");
        let mut frame = encode_event(1, TraceContext::NONE, &WireEvent::Frame(sample()));
        let last = frame.len() - 1;
        frame[last] ^= 0x10;
        assert!(decode_event(&frame).is_none(), "frame CRC must reject");
        let unknown = [&1u64.to_le_bytes()[..], &[0u8; 16], &[99u8]].concat();
        assert!(decode_event(&unknown).is_none());
        let job = CompactionJob { input_levels: vec![1, 2], output_level: 2, purge: false };
        let mut compact = encode_event(1, TraceContext::NONE, &WireEvent::Compact(job.clone()));
        compact.pop();
        assert!(decode_event(&compact).is_none(), "truncated job must reject");
        let gc = VlogGcJob { job, rewrite_files: vec![4] };
        let mut shipped = encode_event(1, TraceContext::NONE, &WireEvent::VlogGc(gc));
        shipped.pop();
        assert!(decode_event(&shipped).is_none(), "truncated gc job must reject");
    }
}
