//! The simulated authenticated channel between a primary and one replica.
//!
//! The *transport* — the queue itself — is untrusted host territory: the
//! adversarial host can reorder, drop, duplicate, truncate or rewrite
//! queued envelopes at will ([`Channel::tamper`] is its hands). What makes
//! the channel *authenticated* is enclave-side: the sender MACs every
//! envelope under the group [`SessionKey`] **with its sequence number
//! under the MAC**, and the receiver accepts an envelope only if the MAC
//! verifies for exactly the next expected sequence number. Any
//! manipulation therefore surfaces as
//! [`VerificationFailure::ChannelTampered`] — reordering and replay are
//! not a separate case, they are just MACs that no longer match their
//! position.
//!
//! The queue also plays the role a real deployment's in-flight buffers
//! play for failover: envelopes the dead primary already shipped survive
//! in the queue, so a promoted replica drains them before taking over —
//! that is where "zero acknowledged-write loss" comes from.

use std::collections::VecDeque;
use std::sync::Arc;

use elsm::replication::SessionKey;
use elsm::VerificationFailure;
use elsm_crypto::Digest;
use parking_lot::Mutex;
use sgx_sim::Platform;

/// One shipped message: sequence number, opaque payload, transport MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Position in the stream (assigned by the sender, covered by the MAC).
    pub seq: u64,
    /// The wire-encoded replication event.
    pub payload: Vec<u8>,
    /// `HMAC(session key, 0x01 ‖ seq ‖ payload)`.
    pub mac: Digest,
}

#[derive(Debug, Default)]
struct ChannelInner {
    next_seq: u64,
    queue: VecDeque<Envelope>,
}

/// A primary→replica shipping queue (see the module docs for the trust
/// split).
#[derive(Debug, Default)]
pub struct Channel {
    inner: Mutex<ChannelInner>,
}

impl Channel {
    /// Creates an empty channel.
    pub fn new() -> Arc<Self> {
        Arc::new(Channel::default())
    }

    /// MACs and enqueues one payload. The sequence number is assigned
    /// under the channel lock, so send order and sequence order agree
    /// even across racing callers. MAC cost is charged to `platform`
    /// (the sender's enclave).
    pub fn send(&self, platform: &Platform, key: &SessionKey, payload: Vec<u8>) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mac = key.mac_envelope(platform, seq, &payload);
        inner.queue.push_back(Envelope { seq, payload, mac });
    }

    /// Takes everything currently queued, in order.
    pub fn drain(&self) -> Vec<Envelope> {
        self.inner.lock().queue.drain(..).collect()
    }

    /// Puts drained-but-unapplied envelopes back at the head of the
    /// queue, in order — the receiver's retry path after a transient
    /// replay IO error. Not a transport operation: honest receivers own
    /// their undelivered suffix.
    pub fn requeue_front(&self, envelopes: Vec<Envelope>) {
        let mut inner = self.inner.lock();
        for envelope in envelopes.into_iter().rev() {
            inner.queue.push_front(envelope);
        }
    }

    /// Number of queued envelopes.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }

    /// The adversarial host's hands: arbitrary access to the queued
    /// envelopes (reorder, drop, rewrite, inject). Honest transports
    /// never call this; the security tests do.
    pub fn tamper(&self, f: impl FnOnce(&mut VecDeque<Envelope>)) {
        f(&mut self.inner.lock().queue)
    }
}

/// Receiver-side envelope check: the MAC must verify for exactly
/// `expected_seq`. Verification cost is charged to `platform` (the
/// receiver's enclave).
///
/// # Errors
///
/// Returns [`VerificationFailure::ChannelTampered`] on any mismatch —
/// rewritten bytes, a reordered/replayed/dropped envelope (sequence gap),
/// or a forged MAC.
pub fn open_envelope<'a>(
    platform: &Platform,
    key: &SessionKey,
    envelope: &'a Envelope,
    expected_seq: u64,
) -> Result<&'a [u8], VerificationFailure> {
    let tampered = VerificationFailure::ChannelTampered { seq: expected_seq };
    if envelope.seq != expected_seq {
        return Err(tampered);
    }
    if key.mac_envelope(platform, envelope.seq, &envelope.payload) != envelope.mac {
        return Err(tampered);
    }
    Ok(&envelope.payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<Platform>, SessionKey, Arc<Channel>) {
        (Platform::with_defaults(), SessionKey::derive(b"test group"), Channel::new())
    }

    #[test]
    fn honest_stream_opens_in_order() {
        let (p, key, ch) = setup();
        ch.send(&p, &key, b"one".to_vec());
        ch.send(&p, &key, b"two".to_vec());
        let envs = ch.drain();
        assert_eq!(open_envelope(&p, &key, &envs[0], 0).unwrap(), b"one");
        assert_eq!(open_envelope(&p, &key, &envs[1], 1).unwrap(), b"two");
        assert!(ch.is_empty());
    }

    #[test]
    fn tampered_payload_rejected() {
        let (p, key, ch) = setup();
        ch.send(&p, &key, b"payload".to_vec());
        ch.tamper(|q| q[0].payload[0] ^= 1);
        let envs = ch.drain();
        assert_eq!(
            open_envelope(&p, &key, &envs[0], 0),
            Err(VerificationFailure::ChannelTampered { seq: 0 })
        );
    }

    #[test]
    fn reordered_envelopes_rejected() {
        let (p, key, ch) = setup();
        ch.send(&p, &key, b"a".to_vec());
        ch.send(&p, &key, b"b".to_vec());
        ch.tamper(|q| q.swap(0, 1));
        let envs = ch.drain();
        // Each envelope's own MAC still verifies — but not at this
        // position in the stream.
        assert!(open_envelope(&p, &key, &envs[0], 0).is_err());
    }

    #[test]
    fn dropped_envelope_breaks_continuity() {
        let (p, key, ch) = setup();
        ch.send(&p, &key, b"a".to_vec());
        ch.send(&p, &key, b"b".to_vec());
        ch.tamper(|q| {
            q.pop_front();
        });
        let envs = ch.drain();
        assert!(open_envelope(&p, &key, &envs[0], 0).is_err(), "selective drop must be detected");
    }

    #[test]
    fn wrong_key_rejected() {
        let (p, key, ch) = setup();
        ch.send(&p, &key, b"x".to_vec());
        let envs = ch.drain();
        assert!(open_envelope(&p, &SessionKey::derive(b"other"), &envs[0], 0).is_err());
    }
}
