//! The primary node: an eLSM-P2 store that ships its write path.
//!
//! A [`Primary`] wraps a store whose [`lsm_store::ReplicationSink`] seam
//! broadcasts every committed WAL batch frame, every flush/compaction
//! marker and a **signed announcement for every version install** to the
//! group's replica channels — the shipment happens under the store's
//! write lock, so an acknowledged write's frame is in every channel
//! before the writer's call returns (that is the zero-acknowledged-loss
//! invariant failover relies on).
//!
//! Leadership is fenced by the group's [`FencingCounter`] (§5.6.1 applied
//! to failover): the primary holds the generation it claimed at
//! open/promotion, re-checks it against the hardware every
//! [`ReplicationOptions::leader_check_interval`] writes, and binds its
//! replication progress + dataset digest with [`Primary::fence`] — the
//! record a later promotion is validated against.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use elsm::replication::{Announcement, SessionKey};
use elsm::{
    AuthenticatedKv, ElsmError, ElsmP2, P2Options, TrustedState, VerificationFailure,
    VerifiedRecord,
};
use lsm_store::{ReplicationEvent, ReplicationSink, Timestamp};
use parking_lot::Mutex;
use sgx_sim::{FencingCounter, Platform};

use crate::channel::Channel;
use crate::wire::{encode_event, WireEvent};

/// Configuration of one replication group.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationOptions {
    /// Number of replicas behind the primary.
    pub replicas: usize,
    /// Freshness bound: a replica refuses reads once it lags the
    /// primary's last known epoch by more than this many epochs
    /// ([`VerificationFailure::ReplicaStale`]).
    pub max_lag_epochs: u64,
    /// Writes between the primary's hardware checks of its own
    /// generation. Counter reads are slow (the same §5.6.1 argument that
    /// buffers counter *writes*), so the check amortizes — at the cost
    /// of a bounded window: a deposed primary can locally acknowledge up
    /// to this many writes before noticing its fencing. Replicas drop
    /// its shipments once the new primary's promotion record reaches
    /// their channel; shipments that land in the gap between the
    /// hardware generation bump and that record still replicate (the
    /// classic asynchronous-fencing window — closing it entirely would
    /// take a hardware read per applied event).
    pub leader_check_interval: u64,
}

impl Default for ReplicationOptions {
    fn default() -> Self {
        ReplicationOptions { replicas: 1, max_lag_epochs: 4, leader_check_interval: 128 }
    }
}

/// The [`ReplicationSink`] broadcasting a store's event stream to the
/// group's channels.
#[derive(Debug)]
pub(crate) struct Shipper {
    platform: Arc<Platform>,
    trusted: Arc<TrustedState>,
    key: SessionKey,
    node: u32,
    generation: AtomicU64,
    channels: Mutex<Vec<Arc<Channel>>>,
    events: AtomicU64,
}

impl Shipper {
    pub(crate) fn new(
        platform: Arc<Platform>,
        trusted: Arc<TrustedState>,
        key: SessionKey,
        node: u32,
        generation: u64,
        channels: Vec<Arc<Channel>>,
        events_shipped: u64,
    ) -> Arc<Self> {
        Arc::new(Shipper {
            platform,
            trusted,
            key,
            node,
            generation: AtomicU64::new(generation),
            channels: Mutex::new(channels),
            events: AtomicU64::new(events_shipped),
        })
    }

    /// Total events shipped — the group's replication *progress*, the
    /// quantity the fencing counter binds.
    pub(crate) fn events_shipped(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    fn broadcast(&self, event: &WireEvent) {
        // Stamp the sender's innermost active trace span (the group-commit
        // span when a Frame is emitted under the write lock) so replica
        // replay joins the primary's trace tree. Always 16 bytes — NONE
        // when untraced — so envelope sizes and per-byte charges never
        // depend on whether tracing is enabled.
        let trace = telemetry::trace::current_context();
        let payload = encode_event(self.generation.load(Ordering::SeqCst), trace, event);
        self.events.fetch_add(1, Ordering::SeqCst);
        let channels = self.channels.lock();
        // This runs under the store's write lock: clone for all but the
        // last channel, which takes the buffer itself.
        if let Some((last, rest)) = channels.split_last() {
            for channel in rest {
                channel.send(&self.platform, &self.key, payload.clone());
            }
            last.send(&self.platform, &self.key, payload);
        }
    }

    /// Ships the promotion record itself (the first event of a new
    /// generation).
    pub(crate) fn ship_promotion(&self) {
        self.broadcast(&WireEvent::Promote);
    }
}

impl ReplicationSink for Shipper {
    fn on_event(&self, event: ReplicationEvent<'_>) {
        match event {
            ReplicationEvent::Frame { records } => {
                self.broadcast(&WireEvent::Frame(records.to_vec()));
            }
            ReplicationEvent::Flush => self.broadcast(&WireEvent::Flush),
            ReplicationEvent::Compact { job } => {
                self.broadcast(&WireEvent::Compact(job.clone()));
            }
            ReplicationEvent::VlogGc { gc } => {
                self.broadcast(&WireEvent::VlogGc(gc.clone()));
            }
            ReplicationEvent::Install { epoch } => {
                // Sign the installing epoch's commitment snapshot — it
                // was published just before this event fired, so it is
                // always available here.
                let Some(announcement) =
                    Announcement::sign(&self.platform, &self.trusted, self.node, epoch, &self.key)
                else {
                    return;
                };
                self.broadcast(&WireEvent::Announce(announcement));
            }
        }
    }
}

/// The acting primary of a replication group.
#[derive(Debug)]
pub struct Primary {
    store: Arc<ElsmP2>,
    shipper: Arc<Shipper>,
    fencing: Arc<FencingCounter>,
    generation: u64,
    check_interval: u64,
    writes: AtomicU64,
    /// Sticky once a hardware check found a newer generation.
    fenced_by: AtomicU64,
    fenced: AtomicBool,
}

impl Primary {
    /// Opens a fresh primary, claiming leadership: the fencing counter's
    /// generation is advanced from its current value, so a stale founder
    /// racing an existing group is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::FencedOut`] when the claim loses a
    /// race, or [`ElsmError::Io`] on store-open failure.
    pub fn open(
        platform: Arc<Platform>,
        options: P2Options,
        ropts: &ReplicationOptions,
        fencing: Arc<FencingCounter>,
        key: SessionKey,
        channels: Vec<Arc<Channel>>,
    ) -> Result<Self, ElsmError> {
        let store = Arc::new(ElsmP2::open(platform, options)?);
        let state = fencing.read();
        let digest = store.trusted().dataset_digest();
        let generation = fencing.advance(state.generation, 0, digest).map_err(|current| {
            VerificationFailure::FencedOut {
                generation: state.generation,
                active: current.generation,
            }
        })?;
        Ok(Self::adopt(store, generation, ropts, fencing, key, channels, 0))
    }

    /// Wraps an existing store as the primary of generation `generation`
    /// (the promotion path — the caller already advanced the fencing
    /// counter). `events_shipped` seeds the progress counter so later
    /// fences stay monotone.
    pub(crate) fn adopt(
        store: Arc<ElsmP2>,
        generation: u64,
        ropts: &ReplicationOptions,
        fencing: Arc<FencingCounter>,
        key: SessionKey,
        channels: Vec<Arc<Channel>>,
        events_shipped: u64,
    ) -> Self {
        let shipper = Shipper::new(
            store.platform().clone(),
            store.trusted().clone(),
            key,
            0,
            generation,
            channels,
            events_shipped,
        );
        store.db().set_replication_sink(shipper.clone());
        Primary {
            store,
            shipper,
            fencing,
            generation,
            check_interval: ropts.leader_check_interval.max(1),
            writes: AtomicU64::new(0),
            fenced_by: AtomicU64::new(0),
            fenced: AtomicBool::new(false),
        }
    }

    /// The wrapped store (also a verified reader).
    pub fn store(&self) -> &Arc<ElsmP2> {
        &self.store
    }

    /// The leadership generation this node holds.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Replication progress: events shipped so far.
    pub fn events_shipped(&self) -> u64 {
        self.shipper.events_shipped()
    }

    /// Ships the promotion record announcing this primary's generation
    /// to its channels (called once by the promotion path).
    pub(crate) fn announce_promotion(&self) {
        self.shipper.ship_promotion();
    }

    /// Checks the hardware fencing counter: an error means another node
    /// was promoted and this primary is permanently deposed.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::FencedOut`] naming both generations.
    pub fn ensure_leadership(&self) -> Result<(), ElsmError> {
        if self.fenced.load(Ordering::SeqCst) {
            return Err(VerificationFailure::FencedOut {
                generation: self.generation,
                active: self.fenced_by.load(Ordering::SeqCst),
            }
            .into());
        }
        let state = self.fencing.read();
        if state.generation != self.generation {
            self.fenced_by.store(state.generation, Ordering::SeqCst);
            self.fenced.store(true, Ordering::SeqCst);
            return Err(VerificationFailure::FencedOut {
                generation: self.generation,
                active: state.generation,
            }
            .into());
        }
        Ok(())
    }

    /// Binds the current replication progress and dataset digest to the
    /// fencing counter under this primary's generation — the §5.6.1
    /// counter write that a later promotion is validated against.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::FencedOut`] when the generation
    /// moved (this node was deposed between checks).
    pub fn fence(&self) -> Result<(), ElsmError> {
        let digest = self.store.trusted().dataset_digest();
        self.fencing.bind(self.generation, self.events_shipped(), digest).map_err(|current| {
            self.fenced_by.store(current.generation, Ordering::SeqCst);
            self.fenced.store(true, Ordering::SeqCst);
            ElsmError::from(VerificationFailure::FencedOut {
                generation: self.generation,
                active: current.generation,
            })
        })
    }

    /// Fences the final state and seals the store — the clean-shutdown
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError`] on IO failure or when already deposed.
    pub fn close(&self) -> Result<(), ElsmError> {
        self.fence()?;
        self.store.close()
    }

    /// Per-write leadership gate: cheap while within the check interval,
    /// a hardware read at the boundary.
    fn before_write(&self) -> Result<(), ElsmError> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        if self.fenced.load(Ordering::SeqCst) || n % self.check_interval == 0 {
            self.ensure_leadership()?;
        }
        Ok(())
    }
}

impl AuthenticatedKv for Primary {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<Timestamp, ElsmError> {
        self.before_write()?;
        self.store.put(key, value)
    }

    fn delete(&self, key: &[u8]) -> Result<Timestamp, ElsmError> {
        self.before_write()?;
        self.store.delete(key)
    }

    fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<Timestamp>, ElsmError> {
        self.before_write()?;
        self.store.put_batch(items)
    }

    fn delete_batch(&self, keys: &[&[u8]]) -> Result<Vec<Timestamp>, ElsmError> {
        self.before_write()?;
        self.store.delete_batch(keys)
    }

    fn get(&self, key: &[u8]) -> Result<Option<VerifiedRecord>, ElsmError> {
        self.store.get(key)
    }

    fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<VerifiedRecord>, ElsmError> {
        self.store.scan(from, to)
    }
}
