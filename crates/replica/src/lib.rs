//! # elsm-replica
//!
//! Verified primary/replica replication for the eLSM stack: the
//! availability and read-scaling axis the single-enclave store (and each
//! partition of the sharded cluster) lacks.
//!
//! The design composes three existing primitives:
//!
//! * **Authenticated WAL shipping** ([`channel`], [`Primary`]): the
//!   primary ships its WAL batch frames — the group-commit
//!   crash-atomicity unit — over a MAC'd, sequence-numbered channel,
//!   under the store's write lock, so every *acknowledged* write is in
//!   every replica's channel before its writer returns. The transport
//!   host can reorder, drop or rewrite shipments; all of it surfaces as
//!   [`elsm::VerificationFailure::ChannelTampered`].
//! * **Deterministic verified replay** ([`Replica`]): each replica is a
//!   full eLSM-P2 store on its own platform that replays the frame
//!   stream (flush/compaction boundaries included, as explicit markers),
//!   folds its **own** WAL digest, builds its **own** epoch-tagged level
//!   commitments — and cross-checks them against the primary's signed
//!   version-install announcements. A forked primary is caught per
//!   epoch ([`elsm::VerificationFailure::ForkedPrimary`]); reads are
//!   served from local state through the ordinary snapshot-verification
//!   path with an explicit [`FreshnessToken`], refused beyond the lag
//!   bound ([`elsm::VerificationFailure::ReplicaStale`]).
//! * **Fenced failover** ([`Replica::promote`], [`sgx_sim::FencingCounter`]):
//!   promotion binds the candidate's replication progress and dataset
//!   digest to a hardware-atomic generation bump (the paper's §5.6.1
//!   monotonic counter, applied to leadership). A rolled-back or stale
//!   candidate is rejected, a racing promotion loses the generation CAS,
//!   and a resurrected old primary is fenced out — split-brain is
//!   structurally impossible.
//!
//! [`ReplicationGroup`] bundles the nodes for deployment behind the
//! sharded router.
//!
//! # Examples
//!
//! ```
//! use elsm::AuthenticatedKv;
//! use elsm_replica::{ReplicationGroup, ReplicationOptions};
//! use sgx_sim::Platform;
//!
//! # fn main() -> Result<(), elsm::ElsmError> {
//! let group = ReplicationGroup::open(
//!     Platform::with_defaults(),
//!     Default::default(),
//!     ReplicationOptions { replicas: 2, ..Default::default() },
//! )?;
//! group.put(b"k", b"v")?;
//! // Served by a replica from replayed, verified local state:
//! let (record, token) = group.get_with_token(b"k")?;
//! assert_eq!(record.expect("present").value(), b"v");
//! assert_eq!(token.expect("replica-served").lag_epochs(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod group;
pub mod primary;
pub mod replica;
pub mod wire;

pub use channel::{open_envelope, Channel, Envelope};
pub use group::ReplicationGroup;
pub use primary::{Primary, ReplicationOptions};
pub use replica::{FreshnessToken, Membership, Replica};
pub use wire::{decode_event, encode_event, WireEvent};
