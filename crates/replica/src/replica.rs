//! The replica node: deterministic replay plus per-epoch cross-checks.
//!
//! A [`Replica`] owns a full eLSM-P2 store on its **own**
//! [`Platform`] (its own enclave, trusted state, WAL digest, filesystem
//! and virtual clock) and builds that store exclusively by replaying the
//! primary's shipped event stream:
//!
//! * **frames** apply through
//!   [`lsm_store::Db::apply_replicated_batch`] — appended to the
//!   replica's own WAL, folded into its own enclave WAL digest;
//! * **flush/compact markers** replay as the replica's own maintenance,
//!   which makes its version/epoch sequence — and therefore its level
//!   commitments — bit-identical to the primary's;
//! * **signed install announcements** are checked against the replica's
//!   own [`TrustedState::snapshot_digest`] for the same epoch: a primary
//!   that announces state its own frame stream does not produce is
//!   caught as [`VerificationFailure::ForkedPrimary`].
//!
//! Reads are served from local state through the ordinary snapshot
//! verification path (a replica's host is as untrusted as a primary's),
//! and every answer carries a [`FreshnessToken`]; reads are refused with
//! [`VerificationFailure::ReplicaStale`] once the replica lags the
//! primary's last known epoch beyond the configured bound.
//!
//! [`TrustedState::snapshot_digest`]: elsm::TrustedState::snapshot_digest

use std::sync::Arc;

use elsm::replication::{Announcement, SessionKey};
use elsm::{AuthenticatedKv, ElsmError, ElsmP2, P2Options, VerificationFailure, VerifiedRecord};
use elsm_crypto::Digest;
use parking_lot::Mutex;
use sgx_sim::{FencingCounter, Platform};

use crate::channel::{open_envelope, Channel, Envelope};
use crate::primary::{Primary, ReplicationOptions};
use crate::wire::{decode_event, WireEvent};

/// The freshness claim attached to every replica read: how far the
/// replica's replayed state is from the primary's newest epoch **as far
/// as the replica can know**. Announcements are signed, so clients and
/// auditors can relay fresher ones to the replica out of band
/// ([`Replica::observe_announcement`]) — a host that withholds the
/// stream cannot also keep the replica's staleness hidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreshnessToken {
    /// Newest primary epoch the replica has seen announced.
    pub primary_epoch: u64,
    /// The replica's own replayed epoch.
    pub replica_epoch: u64,
    /// The configured refusal bound.
    pub bound: u64,
}

impl FreshnessToken {
    /// Epochs the replica lags the announced head (0 when fully caught
    /// up — the replica's own epoch can transiently lead the newest
    /// announcement it processed, which also reads as 0).
    pub fn lag_epochs(&self) -> u64 {
        self.primary_epoch.saturating_sub(self.replica_epoch)
    }
}

/// A replica's group-membership parameters: the shared fence, the
/// attested session key, its node id, the generation it joins under,
/// and its freshness bound.
#[derive(Debug, Clone)]
pub struct Membership {
    /// The group's shared fencing counter.
    pub fencing: Arc<FencingCounter>,
    /// The attestation-established group key.
    pub key: SessionKey,
    /// This node's id (the founding primary is 0; replicas follow).
    pub node: u32,
    /// The leadership generation in effect when this replica joined.
    pub generation: u64,
    /// Freshness bound for [`Replica::freshness`].
    pub max_lag_epochs: u64,
}

#[derive(Debug)]
struct Progress {
    expected_seq: u64,
    applied_events: u64,
    generation: u64,
    primary_epoch: u64,
    fenced_drops: u64,
}

/// Registry-backed replication health metrics (the `replica.*` series of
/// the store's telemetry handle, so a group-scoped handle isolates them
/// per node).
#[derive(Debug)]
struct ReplicaMetrics {
    /// Epochs this node lags the newest announced primary head
    /// (refreshed on every freshness check).
    lag_epochs: telemetry::Gauge,
    /// Reads refused because the lag exceeded the freshness bound.
    freshness_refusals: telemetry::Counter,
    /// Shipments dropped for carrying a deposed generation.
    fenced_drops: telemetry::Counter,
    /// Replicated events applied.
    applied_events: telemetry::Counter,
}

impl ReplicaMetrics {
    fn new(telemetry: &telemetry::Telemetry) -> Self {
        ReplicaMetrics {
            lag_epochs: telemetry.gauge("replica.lag_epochs"),
            freshness_refusals: telemetry.counter("replica.freshness_refusals"),
            fenced_drops: telemetry.counter("replica.fenced_drops"),
            applied_events: telemetry.counter("replica.applied_events"),
        }
    }
}

/// One replica node (see the module docs).
#[derive(Debug)]
pub struct Replica {
    store: Arc<ElsmP2>,
    channel: Arc<Channel>,
    fencing: Arc<FencingCounter>,
    key: SessionKey,
    node: u32,
    max_lag_epochs: u64,
    progress: Mutex<Progress>,
    metrics: ReplicaMetrics,
    /// Sticky detection verdict: once the stream failed verification the
    /// replica refuses service (its state can no longer be trusted to
    /// track the primary).
    failed: Mutex<Option<VerificationFailure>>,
}

impl Replica {
    /// Opens a fresh replica joining a group at `generation`, fed by
    /// `channel`. The store opens with the **same options** as the
    /// primary's — replay determinism depends on it.
    ///
    /// # Errors
    ///
    /// Returns [`ElsmError::Io`] on store-open failure.
    pub fn open(
        platform: Arc<Platform>,
        options: P2Options,
        channel: Arc<Channel>,
        membership: Membership,
    ) -> Result<Self, ElsmError> {
        let store = Arc::new(ElsmP2::open(platform, options)?);
        let metrics = ReplicaMetrics::new(store.telemetry());
        Ok(Replica {
            store,
            channel,
            metrics,
            fencing: membership.fencing,
            key: membership.key,
            node: membership.node,
            max_lag_epochs: membership.max_lag_epochs,
            progress: Mutex::new(Progress {
                expected_seq: 0,
                applied_events: 0,
                generation: membership.generation,
                primary_epoch: 0,
                fenced_drops: 0,
            }),
            failed: Mutex::new(None),
        })
    }

    /// The replica's store (its platform carries the node's clock).
    pub fn store(&self) -> &Arc<ElsmP2> {
        &self.store
    }

    /// This replica's inbound channel (the group wires a new primary's
    /// shipper to it across a failover).
    pub fn channel(&self) -> &Arc<Channel> {
        &self.channel
    }

    /// Events applied so far (the progress a promotion is validated by).
    pub fn applied_events(&self) -> u64 {
        self.progress.lock().applied_events
    }

    /// Shipments dropped because they carried a deposed generation (a
    /// resurrected old primary still writing into the channel).
    pub fn fenced_drops(&self) -> u64 {
        self.progress.lock().fenced_drops
    }

    /// Whether the replica detected stream tampering or a fork and
    /// refuses service; holds the verdict.
    pub fn failure(&self) -> Option<VerificationFailure> {
        self.failed.lock().clone()
    }

    fn check_failed(&self) -> Result<(), ElsmError> {
        match self.failed.lock().clone() {
            Some(failure) => Err(failure.into()),
            None => Ok(()),
        }
    }

    /// Records a replication-layer verification failure on the audit
    /// stream, stamped with this node's id and replayed epoch.
    fn audit_failure(&self, failure: &VerificationFailure) {
        self.store.telemetry().audit(
            telemetry::AuditEvent::new(failure.kind(), "replica")
                .detail(failure.to_string())
                .epoch(self.store.db().current_epoch())
                .replica(self.node)
                .at_ns(self.store.platform().clock().now_ns()),
        );
    }

    /// Drains the channel and applies everything, in order. Returns the
    /// number of envelopes processed.
    ///
    /// # Errors
    ///
    /// Returns the detected [`VerificationFailure`] (sticky — the
    /// replica refuses further service) or [`ElsmError::Io`] on replay
    /// IO failure.
    pub fn sync(&self) -> Result<usize, ElsmError> {
        self.check_failed()?;
        let mut envelopes = self.channel.drain();
        let n = envelopes.len();
        for i in 0..n {
            if let Err(error) = self.apply(&envelopes[i]) {
                match &error {
                    ElsmError::Verification(failure) => {
                        self.audit_failure(failure);
                        *self.failed.lock() = Some(failure.clone());
                    }
                    // A transient replay IO error must not eat the
                    // undelivered suffix: put it back (failed envelope
                    // included — it was not applied) so a retry resumes
                    // at the right sequence number.
                    _ => self.channel.requeue_front(envelopes.split_off(i)),
                }
                return Err(error);
            }
        }
        Ok(n)
    }

    fn apply(&self, envelope: &Envelope) -> Result<(), ElsmError> {
        let mut progress = self.progress.lock();
        let seq = progress.expected_seq;
        let payload = open_envelope(self.store.platform(), &self.key, envelope, seq)?;
        let (generation, trace, event) =
            decode_event(payload).ok_or(VerificationFailure::ChannelTampered { seq })?;
        if generation < progress.generation {
            // A deposed primary still shipping: authenticated, ordered —
            // and fenced. Skip, count, keep serving the live stream.
            progress.expected_seq += 1;
            progress.fenced_drops += 1;
            self.metrics.fenced_drops.inc();
            let fenced = VerificationFailure::FencedOut { generation, active: progress.generation };
            drop(progress);
            self.audit_failure(&fenced);
            return Ok(());
        }
        if generation > progress.generation {
            // Only a promotion may raise the generation, and only if the
            // hardware fence actually moved there.
            let hardware = self.fencing.read();
            if !matches!(event, WireEvent::Promote) || hardware.generation != generation {
                return Err(VerificationFailure::ChannelTampered { seq }.into());
            }
        }
        match event {
            // Flush replay must not chase compaction: the primary ships
            // every job it actually ran as its own `Compact` event, and
            // replaying that exact job keeps the replica's epoch/level
            // sequence bit-identical regardless of either side's
            // scheduler parallelism.
            WireEvent::Frame(records) => {
                // Replay joins the primary's trace tree as a remote child
                // of the shipped group-commit span; the nested replay ops
                // (and any chained re-broadcast) hang off it via the
                // thread-local stack.
                let _trace = self.store.telemetry().trace_child_of(trace, "replay.frame", "replay");
                self.store.db().apply_replicated_batch(&records)?
            }
            WireEvent::Flush => self.store.db().apply_replicated_flush()?,
            WireEvent::Compact(job) => self.store.db().apply_compaction_job(&job)?,
            WireEvent::VlogGc(gc) => self.store.db().apply_vlog_gc(&gc)?,
            WireEvent::Announce(announcement) => {
                self.check_announcement(&mut progress, &announcement)?;
            }
            WireEvent::Promote => progress.generation = generation,
        }
        // Counters advance only once the event actually applied, so a
        // transient IO failure leaves the stream position unchanged and
        // a retried sync resumes exactly here.
        progress.expected_seq += 1;
        progress.applied_events += 1;
        self.metrics.applied_events.inc();
        Ok(())
    }

    /// Cross-checks one signed announcement against the replica's own
    /// replayed state for the same epoch.
    fn check_announcement(
        &self,
        progress: &mut Progress,
        announcement: &Announcement,
    ) -> Result<(), ElsmError> {
        if !announcement.verify(self.store.platform(), &self.key) {
            // A MAC-valid envelope carrying an unverifiable signature can
            // only come from the primary itself: equivocation material.
            return Err(VerificationFailure::ForkedPrimary { epoch: announcement.epoch }.into());
        }
        if let Some(own) = self.store.trusted().snapshot_digest(announcement.epoch) {
            if own != announcement.commitments {
                return Err(VerificationFailure::ForkedPrimary { epoch: announcement.epoch }.into());
            }
        }
        progress.primary_epoch = progress.primary_epoch.max(announcement.epoch);
        Ok(())
    }

    /// Feeds the replica an announcement relayed out of band (by a
    /// client, auditor or gossip). Verifies the signature, advances the
    /// known primary head, and cross-checks the epoch if the replica
    /// still holds a snapshot for it — so relaying also doubles as a
    /// fork probe.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::ChannelTampered`] for an invalid
    /// signature (the relay tampered; `seq` is 0 — there is no stream
    /// position), or [`VerificationFailure::ForkedPrimary`] on an epoch
    /// mismatch.
    pub fn observe_announcement(&self, announcement: &Announcement) -> Result<(), ElsmError> {
        self.check_failed()?;
        if !announcement.verify(self.store.platform(), &self.key) {
            let failure = VerificationFailure::ChannelTampered { seq: 0 };
            self.audit_failure(&failure);
            return Err(failure.into());
        }
        let mut progress = self.progress.lock();
        if let Some(own) = self.store.trusted().snapshot_digest(announcement.epoch) {
            if own != announcement.commitments {
                let failure = VerificationFailure::ForkedPrimary { epoch: announcement.epoch };
                self.audit_failure(&failure);
                *self.failed.lock() = Some(failure.clone());
                return Err(failure.into());
            }
        }
        progress.primary_epoch = progress.primary_epoch.max(announcement.epoch);
        Ok(())
    }

    /// Signs this replica's own commitment snapshot at its current
    /// epoch — the material an auditor (the ct-log fork monitor)
    /// cross-checks against the primary's announcements for the same
    /// epoch to detect forks.
    pub fn announce_current(&self) -> Option<Announcement> {
        let epoch = self.store.db().current_epoch();
        Announcement::sign(self.store.platform(), self.store.trusted(), self.node, epoch, &self.key)
    }

    /// The freshness claim a read would carry right now.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::ReplicaStale`] when the lag
    /// exceeds the bound.
    pub fn freshness(&self) -> Result<FreshnessToken, ElsmError> {
        let progress = self.progress.lock();
        let token = FreshnessToken {
            primary_epoch: progress.primary_epoch,
            replica_epoch: self.store.db().current_epoch(),
            bound: self.max_lag_epochs,
        };
        drop(progress);
        self.metrics.lag_epochs.set(token.lag_epochs());
        if token.lag_epochs() > self.max_lag_epochs {
            self.metrics.freshness_refusals.inc();
            let failure = VerificationFailure::ReplicaStale {
                lag_epochs: token.lag_epochs(),
                bound: self.max_lag_epochs,
            };
            self.audit_failure(&failure);
            return Err(failure.into());
        }
        Ok(token)
    }

    /// Verified point read from local replayed state, with the freshness
    /// token.
    ///
    /// # Errors
    ///
    /// Returns [`VerificationFailure::ReplicaStale`] beyond the lag
    /// bound, the sticky stream failure if one was detected, or any
    /// ordinary verification failure of the local read.
    pub fn get(&self, key: &[u8]) -> Result<(Option<VerifiedRecord>, FreshnessToken), ElsmError> {
        self.check_failed()?;
        let token = self.freshness()?;
        Ok((self.store.get(key)?, token))
    }

    /// Verified range read from local replayed state, with the freshness
    /// token. Same contract as [`Replica::get`].
    ///
    /// # Errors
    ///
    /// See [`Replica::get`].
    pub fn scan(
        &self,
        from: &[u8],
        to: &[u8],
    ) -> Result<(Vec<VerifiedRecord>, FreshnessToken), ElsmError> {
        self.check_failed()?;
        let token = self.freshness()?;
        Ok((self.store.scan(from, to)?, token))
    }

    /// Promotes this replica to primary — the §5.6.1-fenced failover.
    ///
    /// The candidate first drains its channel (picking up everything the
    /// dead primary already shipped — acknowledged writes are in there
    /// by construction), then validates itself against the hardware
    /// fence: its applied progress must reach the fenced progress, and
    /// where progress matches exactly, its dataset digest must match the
    /// fenced digest. Only then does it atomically bump the generation,
    /// binding its own digest — after which the old primary (and any
    /// racing candidate) is structurally fenced out. `peers` are the
    /// remaining replicas' channels; the new primary announces itself
    /// there and ships its writes to them from then on.
    ///
    /// # Errors
    ///
    /// * [`VerificationFailure::RolledBack`] — the candidate's state is
    ///   older than the fenced progress (a stale replica, or one whose
    ///   host rolled its state back);
    /// * [`VerificationFailure::ForkedPrimary`] — progress matches but
    ///   the dataset digest does not;
    /// * [`VerificationFailure::FencedOut`] — a racing promotion won;
    /// * any sticky stream failure already detected.
    pub fn promote(
        self,
        ropts: &ReplicationOptions,
        peers: Vec<Arc<Channel>>,
    ) -> Result<Primary, ElsmError> {
        self.sync()?;
        let (applied, generation) = {
            let progress = self.progress.lock();
            (progress.applied_events, progress.generation)
        };
        let fenced = self.fencing.read();
        if applied < fenced.progress {
            let failure = VerificationFailure::RolledBack;
            self.audit_failure(&failure);
            return Err(failure.into());
        }
        let digest = self.store.trusted().dataset_digest();
        if applied == fenced.progress && fenced.digest != Digest::ZERO && digest != fenced.digest {
            let failure =
                VerificationFailure::ForkedPrimary { epoch: self.store.db().current_epoch() };
            self.audit_failure(&failure);
            return Err(failure.into());
        }
        let new_generation =
            self.fencing.advance(fenced.generation, applied, digest).map_err(|current| {
                let failure =
                    VerificationFailure::FencedOut { generation, active: current.generation };
                self.audit_failure(&failure);
                failure
            })?;
        let primary = Primary::adopt(
            self.store,
            new_generation,
            ropts,
            self.fencing,
            self.key,
            peers,
            applied,
        );
        primary.announce_promotion();
        Ok(primary)
    }
}
