//! Criterion micro-benchmarks for the building blocks: crypto primitives,
//! Merkle structures, the LSM engine and the authenticated store. These
//! measure *wall-clock* cost of the real implementations (unlike the
//! figure binaries, which report simulated time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use elsm::{AuthenticatedKv, ElsmP2, P2Options};
use elsm_crypto::{sha256, AeadKey, DetKey, OpeKey};
use merkle::{prove_range, verify_range, LevelDigest, MerkleTree};
use sgx_sim::Platform;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data4k = vec![0xabu8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("sha256_4k", |b| b.iter(|| sha256(std::hint::black_box(&data4k))));
    let aead = AeadKey::derive(b"bench");
    let nonce = elsm_crypto::aead::nonce_from_u64s(1, 2);
    g.bench_function("aead_seal_4k", |b| {
        b.iter(|| aead.seal(&nonce, b"", std::hint::black_box(&data4k)))
    });
    let det = DetKey::derive(b"bench");
    g.throughput(Throughput::Bytes(16));
    g.bench_function("det_encrypt_16b_key", |b| {
        b.iter(|| det.encrypt(std::hint::black_box(b"user000000000042")))
    });
    let ope = OpeKey::derive(b"bench");
    g.bench_function("ope_encode", |b| b.iter(|| ope.encode(std::hint::black_box(0xdead_beef))));
    g.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut g = c.benchmark_group("merkle");
    let leaves: Vec<_> = (0..4096u32).map(|i| sha256(&i.to_le_bytes())).collect();
    g.bench_function("tree_build_4k_leaves", |b| {
        b.iter_batched(|| leaves.clone(), MerkleTree::from_leaves, BatchSize::SmallInput)
    });
    let tree = MerkleTree::from_leaves(leaves.clone());
    g.bench_function("audit_path_4k", |b| b.iter(|| tree.audit_path(std::hint::black_box(2049))));
    let path = tree.audit_path(2049);
    g.bench_function("verify_path_4k", |b| {
        b.iter(|| MerkleTree::verify(tree.root(), 4096, 2049, leaves[2049], &path))
    });
    let rp = prove_range(&tree, 1000, 1100);
    g.bench_function("verify_range_100_of_4k", |b| {
        b.iter(|| verify_range(tree.root(), 4096, 1000, &leaves[1000..=1100], &rp))
    });
    // Level digest over a realistic compaction output.
    let records: Vec<(Vec<u8>, Vec<u8>)> =
        (0..2000u32).map(|i| (format!("key{i:06}").into_bytes(), vec![0u8; 116])).collect();
    g.bench_function("level_digest_2k_records", |b| {
        b.iter(|| {
            LevelDigest::from_records(3, records.iter().map(|(k, v)| (k.as_slice(), v.clone())))
        })
    });
    g.finish();
}

fn bench_lsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("lsm");
    g.bench_function("memtable_insert_1k", |b| {
        b.iter_batched(
            lsm_store::memtable::MemTable::new,
            |mut mt| {
                for i in 0..1000u32 {
                    mt.insert(lsm_store::Record::put(
                        format!("key{i:06}").into_bytes(),
                        vec![0u8; 100],
                        u64::from(i) + 1,
                    ));
                }
                mt
            },
            BatchSize::SmallInput,
        )
    });
    let mut block = lsm_store::block::BlockBuilder::new();
    for i in 0..100u32 {
        let ik = lsm_store::InternalKey::new(
            format!("key{i:04}").as_bytes(),
            u64::from(i) + 1,
            lsm_store::ValueKind::Put,
        );
        block.add(ik.encoded(), &[0u8; 100]);
    }
    let parsed = lsm_store::block::Block::parse(bytes::Bytes::from(block.finish())).unwrap();
    let target = lsm_store::InternalKey::seek_to(b"key0050");
    g.bench_function("block_seek", |b| {
        b.iter(|| parsed.seek(std::hint::black_box(target.encoded())).next())
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("elsm_p2");
    g.sample_size(20);
    let store = ElsmP2::open(
        Platform::with_defaults(),
        P2Options { write_buffer_bytes: 64 * 1024, ..P2Options::default() },
    )
    .unwrap();
    for i in 0..5000u32 {
        store.put(format!("key{i:06}").as_bytes(), &[0u8; 100]).unwrap();
    }
    store.db().flush().unwrap();
    let mut i = 0u32;
    g.bench_function("verified_get", |b| {
        b.iter(|| {
            i = (i + 2654435761u32 % 5000) % 5000;
            store.get(format!("key{i:06}").as_bytes()).unwrap()
        })
    });
    let mut j = 0u32;
    g.bench_function("put", |b| {
        b.iter(|| {
            j += 1;
            store.put(format!("new{j:08}").as_bytes(), &[0u8; 100]).unwrap()
        })
    });
    g.bench_function("verified_scan_20", |b| {
        b.iter(|| store.scan(b"key000100", b"key000120").unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_merkle, bench_lsm, bench_store);
criterion_main!(benches);
