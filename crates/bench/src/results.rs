//! Machine-readable benchmark results.
//!
//! Every YCSB measurement the figure functions take is also recorded here
//! and written to `BENCH_results.json` by the figure binaries and
//! `run_all`, so the performance trajectory of the repository is tracked
//! by commits and CI artifacts rather than by eyeballing text tables. The
//! committed `BENCH_results.json` at the repository root is the baseline
//! from the `--smoke` sweep; regenerate and compare before landing
//! performance-sensitive changes.

use std::fmt::Write as _;
use std::sync::Mutex;

use ycsb::{ConcurrentReport, RunReport};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ResultEntry {
    /// Figure/ablation the measurement belongs to.
    pub figure: String,
    /// Configuration label (deterministic per figure: the n-th measurement
    /// of a figure is always the same configuration for a given mode).
    pub config: String,
    /// Workload name.
    pub workload: String,
    /// Throughput in operations per simulated second.
    pub ops_per_sec: f64,
    /// Median per-operation latency (simulated µs).
    pub p50_us: f64,
    /// 99th-percentile per-operation latency (simulated µs).
    pub p99_us: f64,
    /// 99.9th-percentile per-operation latency (simulated µs).
    pub p999_us: f64,
    /// Named gauges recorded with the entry (e.g. `debt_bytes`,
    /// `pending_jobs`, `vlog_bytes`, `cache_hits`), rendered verbatim
    /// and in order into the results JSON. How fig7 records compaction
    /// debt and fig14 tracks value-log residency and verified-cache hit
    /// ratios next to the throughput they explain.
    pub gauges: Vec<(String, u64)>,
}

struct Sink {
    figure: String,
    seq: u64,
    entries: Vec<ResultEntry>,
}

static SINK: Mutex<Sink> = Mutex::new(Sink { figure: String::new(), seq: 0, entries: Vec::new() });

/// Declares the figure subsequent [`note_run`] calls belong to.
pub fn set_figure(name: &str) {
    let mut s = SINK.lock().unwrap();
    s.figure = name.to_string();
    s.seq = 0;
}

/// Records a single-threaded run-phase measurement under the current
/// figure.
pub fn note_run(report: &RunReport) {
    note_run_gauges(report, &[]);
}

/// [`note_run`] plus extra named gauges (value-log residency, cache
/// hit/miss counters, …) attached to the same entry.
pub fn note_run_gauges(report: &RunReport, gauges: &[(&str, u64)]) {
    let ops_per_sec = if report.overall.mean_us > 0.0 { 1e6 / report.overall.mean_us } else { 0.0 };
    push_entry(None, &report.workload, ops_per_sec, &report.overall, gauges);
}

/// Records a multi-client thread-scaling measurement under the current
/// figure, labeled with the system under test and the thread count.
pub fn note_concurrent(system: &str, report: &ConcurrentReport) {
    note_concurrent_gauges(system, report, &[]);
}

/// [`note_concurrent`] plus the store's compaction-debt gauge at the end
/// of the measured phase — how the fig7 sweep records whether a
/// configuration kept up with its own write amplification. The gauge
/// rides the named-gauges vector like every other one.
pub fn note_concurrent_debt(
    system: &str,
    report: &ConcurrentReport,
    debt_bytes: u64,
    pending_jobs: u64,
) {
    note_concurrent_gauges(
        system,
        report,
        &[("debt_bytes", debt_bytes), ("pending_jobs", pending_jobs)],
    );
}

/// [`note_concurrent`] plus extra named gauges (value-log residency,
/// cache hit/miss counters, …) attached to the same entry.
pub fn note_concurrent_gauges(system: &str, report: &ConcurrentReport, gauges: &[(&str, u64)]) {
    let config = format!("{system}@{}threads", report.threads);
    push_entry(
        Some(config),
        &report.workload,
        report.kops_per_sec * 1_000.0,
        &report.overall,
        gauges,
    );
}

/// The one entry-recording path every `note_*` helper funnels through.
/// `config` is used verbatim when given; single-threaded runs pass
/// `None` and get the figure's sequence-numbered label.
fn push_entry(
    config: Option<String>,
    workload: &str,
    ops_per_sec: f64,
    latency: &ycsb::LatencySummary,
    gauges: &[(&str, u64)],
) {
    let mut s = SINK.lock().unwrap();
    let config = config.unwrap_or_else(|| {
        let c = format!("{}#{}", s.figure, s.seq);
        s.seq += 1;
        c
    });
    let figure = s.figure.clone();
    s.entries.push(ResultEntry {
        figure,
        config,
        workload: workload.to_string(),
        ops_per_sec,
        p50_us: latency.p50_us,
        p99_us: latency.p99_us,
        p999_us: latency.p999_us,
        gauges: gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders recorded entries from index `start` on as a JSON document.
fn render_json(mode: &str, start: usize) -> String {
    let s = SINK.lock().unwrap();
    let entries = s.entries.get(start..).unwrap_or(&[]);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"generated_by\": \"elsm-bench\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(mode));
    let _ = writeln!(out, "  \"results\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let mut gauges = String::new();
        for (name, value) in &e.gauges {
            let _ = write!(gauges, ", \"{}\": {value}", json_escape(name));
        }
        let _ = writeln!(
            out,
            "    {{\"figure\": \"{}\", \"config\": \"{}\", \"workload\": \"{}\", \
             \"ops_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}, \"p999_us\": \
             {:.3}{}}}{}",
            json_escape(&e.figure),
            json_escape(&e.config),
            json_escape(&e.workload),
            e.ops_per_sec,
            e.p50_us,
            e.p99_us,
            e.p999_us,
            gauges,
            comma
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders all recorded entries as a JSON document.
pub fn to_json(mode: &str) -> String {
    render_json(mode, 0)
}

/// Writes all recorded entries to `path` (called by the figure binaries
/// after printing their tables). Errors are reported, not fatal — result
/// tracking must never fail a benchmark run.
pub fn write_results(path: &str, mode: &str) {
    write_from(path, mode, 0);
}

/// Writes only the entries recorded from index `start` on — how
/// `run_all --only fig11,fig12` gives each selected figure its own
/// output file: snapshot [`len`] before running a figure, write its
/// slice after.
pub fn write_results_from(path: &str, mode: &str, start: usize) {
    write_from(path, mode, start);
}

fn write_from(path: &str, mode: &str, start: usize) {
    if let Err(e) = std::fs::write(path, render_json(mode, start)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("(machine-readable results written to {path})");
    }
}

/// Number of entries currently recorded (for tests).
pub fn len() -> usize {
    SINK.lock().unwrap().entries.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ycsb::LatencySummary;

    #[test]
    fn json_round_trip_shape() {
        set_figure("figX");
        let report = RunReport {
            workload: "C".into(),
            overall: LatencySummary {
                count: 10,
                mean_us: 2.0,
                p50_us: 1.5,
                p95_us: 3.0,
                p99_us: 4.0,
                p999_us: 4.5,
                max_us: 5.0,
            },
            reads: LatencySummary::default(),
            writes: LatencySummary::default(),
            ops: 10,
            read_hit_rate: 1.0,
        };
        note_run(&report);
        let json = to_json("test");
        assert!(json.contains("\"figure\": \"figX\""));
        assert!(json.contains("\"config\": \"figX#0\""));
        assert!(json.contains("\"ops_per_sec\": 500000.0"));
        assert!(len() >= 1);
    }

    #[test]
    fn debt_gauges_render_when_recorded() {
        set_figure("figY");
        let report = ConcurrentReport {
            workload: "A".into(),
            threads: 8,
            ops: 10,
            elapsed_us: 1.0,
            kops_per_sec: 5.0,
            overall: LatencySummary::default(),
            read_hit_rate: 1.0,
            serial_fraction: 0.1,
        };
        note_concurrent_debt("p2", &report, 4096, 2);
        let json = to_json("test");
        assert!(json.contains("\"debt_bytes\": 4096"));
        assert!(json.contains("\"pending_jobs\": 2"));
    }

    #[test]
    fn named_gauges_render_when_recorded() {
        set_figure("figZ");
        let report = ConcurrentReport {
            workload: "A".into(),
            threads: 4,
            ops: 10,
            elapsed_us: 1.0,
            kops_per_sec: 5.0,
            overall: LatencySummary::default(),
            read_hit_rate: 1.0,
            serial_fraction: 0.1,
        };
        note_concurrent_gauges("p2", &report, &[("vlog_bytes", 123_456), ("cache_hits", 77)]);
        let json = to_json("test");
        assert!(json.contains("\"vlog_bytes\": 123456"));
        assert!(json.contains("\"cache_hits\": 77"));
    }
}
