//! # elsm-bench
//!
//! The figure-regeneration harness: one function (and one binary) per
//! table/figure of the eLSM paper, plus ablation studies. See DESIGN.md §3
//! for the experiment index and EXPERIMENTS.md for recorded results.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drivers;
pub mod figures;
pub mod results;
pub mod scale;

pub use figures::FigOpts;
pub use scale::Scale;

/// Parses the common flags of the figure binaries: `--quick` (or its
/// alias `--smoke`) selects the reduced sweep used by CI; `--full` (the
/// default) regenerates the recorded figures.
pub fn opts_from_args() -> FigOpts {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    FigOpts { quick }
}
