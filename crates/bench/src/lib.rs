//! # elsm-bench
//!
//! The figure-regeneration harness: one function (and one binary) per
//! table/figure of the eLSM paper, plus ablation studies. See DESIGN.md §3
//! for the experiment index and EXPERIMENTS.md for recorded results.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drivers;
pub mod figures;
pub mod results;
pub mod scale;
pub mod telemetry;

pub use figures::FigOpts;
pub use scale::Scale;

/// Parses the common flags of the figure binaries: `--quick` (or its
/// alias `--smoke`) selects the reduced sweep used by CI; `--full` (the
/// default) regenerates the recorded figures.
pub fn opts_from_args() -> FigOpts {
    let quick = std::env::args().any(|a| a == "--quick" || a == "--smoke");
    FigOpts { quick }
}

/// The shared tail of every figure binary: prints the table (markdown
/// when `--markdown` was passed) and writes the machine-readable results
/// of the run to `path`.
pub fn emit_figure_to(table: &ycsb::Table, opts: FigOpts, path: &str) {
    if std::env::args().any(|a| a == "--markdown") {
        println!("{}", table.to_markdown());
    } else {
        table.print();
        println!();
    }
    results::write_results(path, if opts.quick { "smoke" } else { "full" });
}

/// [`emit_figure_to`] writing to `BENCH_results.<figure>.json` — the
/// same name `run_all --only <figure>` uses, so both ways of running one
/// figure produce one file. Only `run_all`'s full sweep writes the
/// committed `BENCH_results.json` baseline — a single figure is always
/// a partial result set and must never clobber it.
pub fn emit_figure(figure: &str, table: &ycsb::Table, opts: FigOpts) {
    emit_figure_to(table, opts, &format!("BENCH_results.{figure}.json"));
    telemetry::write_snapshot(figure);
    telemetry::write_traces(figure);
}
