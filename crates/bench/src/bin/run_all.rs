//! Regenerates every table and figure, printing both text and the markdown
//! blocks recorded in EXPERIMENTS.md. Pass `--quick` for a fast pass, or
//! `--only <figures>` with a comma-separated list (e.g. `--only
//! fig11,fig12`) to run a subset: each selected figure then writes its own
//! `BENCH_results.<figure>.json`, so a partial run never clobbers the
//! committed full baseline.

use elsm_bench::figures::*;
use elsm_bench::{opts_from_args, Scale};
use ycsb::Table;

fn main() {
    let scale = Scale::default();
    let opts = opts_from_args();
    let markdown = std::env::args().any(|a| a == "--markdown");
    type FigureFn = Box<dyn Fn() -> Table>;
    let figures: Vec<(&str, FigureFn)> = vec![
        ("table1", Box::new(table1)),
        ("fig2", Box::new(move || fig2(&scale, opts))),
        ("fig5a", Box::new(move || fig5a(&scale, opts))),
        ("fig5b", Box::new(move || fig5b(&scale, opts))),
        ("fig5c", Box::new(move || fig5c(&scale, opts))),
        ("fig6a", Box::new(move || fig6a(&scale, opts))),
        ("fig6b", Box::new(move || fig6b(&scale, opts))),
        ("fig6c", Box::new(move || fig6c(&scale, opts))),
        ("fig7a", Box::new(move || fig7a(&scale, opts))),
        ("fig7b", Box::new(move || fig7b(&scale, opts))),
        ("fig7", Box::new(move || fig7(&scale, opts))),
        ("fig8", Box::new(move || fig8(&scale, opts))),
        ("ablation_proofs", Box::new(move || ablation_proofs(&scale, opts))),
        ("ablation_bloom", Box::new(move || ablation_bloom(&scale, opts))),
        ("ablation_update_in_place", Box::new(move || ablation_update_in_place(&scale, opts))),
        ("ablation_rollback", Box::new(move || ablation_rollback(&scale, opts))),
        ("fig9", Box::new(move || fig9(&scale, opts))),
        ("fig10", Box::new(move || fig10(&scale, opts))),
        ("fig11", Box::new(move || fig11(&scale, opts))),
        ("fig12", Box::new(move || fig12(&scale, opts))),
        ("fig14", Box::new(move || fig14(&scale, opts))),
    ];
    let usage_and_exit = |problem: &str| -> ! {
        eprintln!("{problem}; available figures:");
        for (n, _) in &figures {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    };
    // `--only <list>` or `--only=<list>` with a comma-separated figure
    // list. Parsing is strict: a valueless flag, an empty element
    // (`fig11,,fig12`, a trailing comma) or an unknown name is an error —
    // never a silent fall-through to the full sweep.
    let mut only_arg: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--only" {
            match args.next() {
                Some(value) if !value.starts_with('-') => only_arg = Some(value),
                _ => usage_and_exit("--only requires a figure list"),
            }
        } else if let Some(value) = arg.strip_prefix("--only=") {
            only_arg = Some(value.to_string());
        }
    }
    let only: Option<Vec<String>> = only_arg.map(|list| {
        let mut names = Vec::new();
        for name in list.split(',') {
            if name.is_empty() {
                usage_and_exit(&format!("empty figure name in `--only {list}`"));
            }
            if !figures.iter().any(|(n, _)| n == &name) {
                usage_and_exit(&format!("unknown figure `{name}`"));
            }
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
        names
    });
    let mode = if opts.quick { "smoke" } else { "full" };
    let emit = |table: &Table| {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
            println!();
        }
    };
    match &only {
        // A subset: one output file per selected figure, holding exactly
        // that figure's entries.
        Some(names) => {
            for name in names {
                let (_, figure) = figures.iter().find(|(n, _)| n == name).expect("validated above");
                let start = elsm_bench::results::len();
                elsm_bench::telemetry::begin_figure();
                emit(&figure());
                elsm_bench::results::write_results_from(
                    &format!("BENCH_results.{name}.json"),
                    mode,
                    start,
                );
                elsm_bench::telemetry::write_snapshot(name);
                elsm_bench::telemetry::write_traces(name);
            }
        }
        // The full sweep owns the committed baseline. Telemetry still
        // rotates per figure: every bin gets its own registry and its
        // own TELEMETRY.<figure>.json snapshot (and TRACES dump).
        None => {
            for (name, figure) in &figures {
                elsm_bench::telemetry::begin_figure();
                emit(&figure());
                elsm_bench::telemetry::write_snapshot(name);
                elsm_bench::telemetry::write_traces(name);
            }
            elsm_bench::results::write_results("BENCH_results.json", mode);
        }
    }
}
