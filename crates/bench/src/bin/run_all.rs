//! Regenerates every table and figure, printing both text and the markdown
//! blocks recorded in EXPERIMENTS.md. Pass `--quick` for a fast pass.

use elsm_bench::figures::*;
use elsm_bench::{opts_from_args, Scale};

fn main() {
    let scale = Scale::default();
    let opts = opts_from_args();
    let markdown = std::env::args().any(|a| a == "--markdown");
    let tables = vec![
        table1(),
        fig2(&scale, opts),
        fig5a(&scale, opts),
        fig5b(&scale, opts),
        fig5c(&scale, opts),
        fig6a(&scale, opts),
        fig6b(&scale, opts),
        fig6c(&scale, opts),
        fig7a(&scale, opts),
        fig7b(&scale, opts),
        fig8(&scale, opts),
        ablation_proofs(&scale, opts),
        ablation_bloom(&scale, opts),
        ablation_update_in_place(&scale, opts),
        ablation_rollback(&scale, opts),
        fig9(&scale, opts),
        fig10(&scale, opts),
    ];
    for t in &tables {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            t.print();
            println!();
        }
    }
    elsm_bench::results::write_results(
        "BENCH_results.json",
        if opts.quick { "smoke" } else { "full" },
    );
}
