//! Regenerates every table and figure, printing both text and the markdown
//! blocks recorded in EXPERIMENTS.md. Pass `--quick` for a fast pass, or
//! `--only <figure>` to run a single figure (results then go to
//! `BENCH_results.<figure>.json` so the committed full baseline is never
//! clobbered by a partial run).

use elsm_bench::figures::*;
use elsm_bench::{opts_from_args, Scale};
use ycsb::Table;

fn main() {
    let scale = Scale::default();
    let opts = opts_from_args();
    let markdown = std::env::args().any(|a| a == "--markdown");
    type FigureFn = Box<dyn Fn() -> Table>;
    let figures: Vec<(&str, FigureFn)> = vec![
        ("table1", Box::new(table1)),
        ("fig2", Box::new(move || fig2(&scale, opts))),
        ("fig5a", Box::new(move || fig5a(&scale, opts))),
        ("fig5b", Box::new(move || fig5b(&scale, opts))),
        ("fig5c", Box::new(move || fig5c(&scale, opts))),
        ("fig6a", Box::new(move || fig6a(&scale, opts))),
        ("fig6b", Box::new(move || fig6b(&scale, opts))),
        ("fig6c", Box::new(move || fig6c(&scale, opts))),
        ("fig7a", Box::new(move || fig7a(&scale, opts))),
        ("fig7b", Box::new(move || fig7b(&scale, opts))),
        ("fig8", Box::new(move || fig8(&scale, opts))),
        ("ablation_proofs", Box::new(move || ablation_proofs(&scale, opts))),
        ("ablation_bloom", Box::new(move || ablation_bloom(&scale, opts))),
        ("ablation_update_in_place", Box::new(move || ablation_update_in_place(&scale, opts))),
        ("ablation_rollback", Box::new(move || ablation_rollback(&scale, opts))),
        ("fig9", Box::new(move || fig9(&scale, opts))),
        ("fig10", Box::new(move || fig10(&scale, opts))),
        ("fig11", Box::new(move || fig11(&scale, opts))),
    ];
    let usage_and_exit = |problem: &str| -> ! {
        eprintln!("{problem}; available figures:");
        for (n, _) in &figures {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    };
    // `--only <figure>` or `--only=<figure>`; a present-but-valueless
    // flag is an error, never a silent fall-through to the full sweep.
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--only" {
            match args.next() {
                Some(value) if !value.starts_with('-') => only = Some(value),
                _ => usage_and_exit("--only requires a figure name"),
            }
        } else if let Some(value) = arg.strip_prefix("--only=") {
            only = Some(value.to_string());
        }
    }
    let selected: Vec<&(&str, FigureFn)> = match &only {
        Some(name) => {
            let hit: Vec<_> = figures.iter().filter(|(n, _)| n == name).collect();
            if hit.is_empty() {
                usage_and_exit(&format!("unknown figure `{name}`"));
            }
            hit
        }
        None => figures.iter().collect(),
    };
    for (_, figure) in &selected {
        let t = figure();
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            t.print();
            println!();
        }
    }
    let path = match &only {
        Some(name) => format!("BENCH_results.{name}.json"),
        None => "BENCH_results.json".to_string(),
    };
    elsm_bench::results::write_results(&path, if opts.quick { "smoke" } else { "full" });
}
