//! Renders a request-tracing report for a small sharded + replicated
//! cluster: per-op-class latency distributions (p50/p99/p999 with
//! exemplar trace ids), the slow-op sampler, the critical path of the
//! slowest sampled trace, and a folded-stack (flamegraph-compatible)
//! critical-path breakdown aggregated across every trace in the ring.
//!
//! All durations are simulated nanoseconds on the virtual clock, so the
//! report is bit-identical run to run.

use std::collections::BTreeMap;

use elsm::{AuthenticatedKv, P2Options};
use elsm_shard::{ShardedKv, ShardedOptions};
use sgx_sim::Platform;
use telemetry::trace::analyze;

fn main() {
    let tel = elsm_bench::telemetry::begin_figure();
    let options = P2Options { telemetry: tel.clone(), ..Default::default() };
    let cluster = ShardedKv::open(
        Platform::with_defaults(),
        ShardedOptions::hash(2, options).with_replicas(2),
    )
    .expect("open sharded replicated cluster");

    // A small mixed workload: loads, skewed point reads, cross-shard
    // scans. Every op is verified end to end and mints one trace tree.
    for i in 0..256u32 {
        let key = format!("user{i:06}");
        cluster.put(key.as_bytes(), &[0xabu8; 64]).expect("put");
    }
    for i in 0..256u32 {
        let key = format!("user{:06}", (i * 37) % 256);
        cluster.get(key.as_bytes()).expect("get");
    }
    for i in 0..16u32 {
        let from = format!("user{:06}", i * 8);
        let to = format!("user{:06}", i * 8 + 32);
        cluster.scan(from.as_bytes(), to.as_bytes()).expect("scan");
    }

    println!("== op classes (virtual ns) ==");
    for c in tel.op_class_stats() {
        let exemplar =
            c.exemplar_at(0.999).map(|e| e.trace_id.to_string()).unwrap_or_else(|| "-".into());
        println!(
            "{:<10} n={:<6} p50={:<10} p99={:<10} p999={:<10} outlier_exemplar_trace={exemplar}",
            c.op_class,
            c.count,
            c.p50_ns(),
            c.p99_ns(),
            c.p999_ns(),
        );
    }

    let (top, reservoir) = tel.slow_traces();
    println!("\n== slow ops (top-{} exact, {} reservoir) ==", top.len(), reservoir.len());
    for s in &top {
        println!("trace={:<6} class={:<10} duration={}ns", s.trace_id, s.op_class, s.duration_ns);
    }

    let records = tel.trace_records();
    let trees = analyze::build_trees(&records);
    println!(
        "\n{} spans in ring across {} trace trees ({} dropped)",
        records.len(),
        trees.len(),
        tel.dropped_spans()
    );

    // The slowest sampled trace still resident in the ring gets its full
    // critical path rendered span by span.
    if let Some(slowest) = top.iter().find_map(|s| trees.iter().find(|t| t.trace_id == s.trace_id))
    {
        println!("\n== critical path of slowest resident trace (trace {}) ==", slowest.trace_id);
        print!("{}", analyze::render_critical_path(slowest));
    }

    // Folded stacks, aggregated by stack across every tree — pipe
    // straight into flamegraph.pl / inferno.
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for tree in &trees {
        for (stack, ns) in tree.folded_stacks() {
            *folded.entry(stack).or_insert(0) += ns;
        }
    }
    println!("\n== folded critical-path stacks (flamegraph-compatible) ==");
    for (stack, ns) in &folded {
        println!("{stack} {ns}");
    }
}
