//! Prints Table 1 (the design-choice matrix).

use elsm_bench::figures::table1;
use elsm_bench::{emit_figure, opts_from_args};

fn main() {
    emit_figure("table1", &table1(), opts_from_args());
}
