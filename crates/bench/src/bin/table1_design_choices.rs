//! Prints Table 1 (the design-choice matrix).

use elsm_bench::figures::table1;

fn main() {
    table1().print();
}
