//! Regenerates one figure of the paper; pass `--quick` for a fast subset.

use elsm_bench::figures::*;
use elsm_bench::{opts_from_args, Scale};

fn main() {
    let scale = Scale::default();
    let opts = opts_from_args();
    let table = fig6c(&scale, opts);
    table.print();
}
