//! CI perf-regression gate: diffs a freshly regenerated
//! `BENCH_results.json` against the committed baseline and fails (exit
//! code 1) when any configuration's throughput dropped below the
//! tolerance band. Because throughput is measured on the deterministic
//! virtual clock, any drop is a real code-path change, not noise — the
//! tolerance only absorbs intentional small shifts (e.g. a few extra
//! charged bytes on a wire format).
//!
//! Usage:
//! `perf_gate --baseline BENCH_baseline.json --fresh BENCH_results.json
//! [--tolerance 0.05]`

use std::collections::BTreeMap;

/// One measured row, keyed by (figure, config, workload).
type Key = (String, String, String);

fn usage_and_exit(problem: &str) -> ! {
    eprintln!("{problem}\nusage: perf_gate --baseline <path> --fresh <path> [--tolerance 0.05]");
    std::process::exit(2);
}

/// Pulls the string value of `"field": "..."` out of a results row line.
fn str_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Pulls the numeric value of `"field": 123.4` out of a results row line.
fn num_field(line: &str, field: &str) -> Option<f64> {
    let needle = format!("\"{field}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Line-oriented parse of the results JSON `elsm-bench` writes: one row
/// object per line, known field order. Duplicated keys keep the last row
/// (the writer never emits duplicates; a hand-edited file is on its own).
fn parse_results(path: &str) -> BTreeMap<Key, f64> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => usage_and_exit(&format!("could not read {path}: {e}")),
    };
    let mut rows = BTreeMap::new();
    for line in text.lines() {
        let (Some(figure), Some(config), Some(workload), Some(ops)) = (
            str_field(line, "figure"),
            str_field(line, "config"),
            str_field(line, "workload"),
            num_field(line, "ops_per_sec"),
        ) else {
            continue;
        };
        rows.insert((figure, config, workload), ops);
    }
    if rows.is_empty() {
        usage_and_exit(&format!("{path} contains no result rows"));
    }
    rows
}

fn main() {
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut tolerance = 0.05f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| usage_and_exit(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--fresh" => fresh_path = Some(value("--fresh")),
            "--tolerance" => {
                tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| usage_and_exit("--tolerance must be a number"));
            }
            other => usage_and_exit(&format!("unknown flag `{other}`")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| usage_and_exit("--baseline is required"));
    let fresh_path = fresh_path.unwrap_or_else(|| usage_and_exit("--fresh is required"));
    if !(0.0..1.0).contains(&tolerance) {
        usage_and_exit("--tolerance must be in [0, 1)");
    }

    let baseline = parse_results(&baseline_path);
    let fresh = parse_results(&fresh_path);

    // Every baseline row must still exist and hold its throughput. A row
    // vanishing is a failure too: a silently dropped measurement would
    // let a regression hide by deleting its own evidence. Exception:
    // `*_prechange` sections are historical anchors hand-preserved in
    // the committed baseline (captured before a pipeline change landed,
    // see fig10's notes) — the current sweep legitimately never
    // regenerates those, so their absence is reported, not failed.
    let mut deltas: Vec<(f64, Key, f64, f64)> = Vec::new();
    let mut missing = Vec::new();
    let mut historical = 0usize;
    for (key, &base_ops) in &baseline {
        match fresh.get(key) {
            None if key.0.ends_with("_prechange") => historical += 1,
            None => missing.push(key.clone()),
            Some(&fresh_ops) => {
                let rel = if base_ops > 0.0 { fresh_ops / base_ops - 1.0 } else { 0.0 };
                deltas.push((rel, key.clone(), base_ops, fresh_ops));
            }
        }
    }
    deltas.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite deltas"));

    let mut failed = !missing.is_empty();
    for key in &missing {
        println!("MISSING  {}/{} [{}]: row absent from {fresh_path}", key.0, key.1, key.2);
    }
    println!(
        "perf gate: {} rows compared, tolerance -{:.1}%; worst deltas first:",
        deltas.len(),
        tolerance * 100.0
    );
    for (rel, key, base, freshv) in deltas.iter().take(10) {
        let verdict = if *rel < -tolerance {
            failed = true;
            "FAIL"
        } else {
            "ok  "
        };
        println!(
            "{verdict} {:+7.2}%  {}/{} [{}]: {base:.1} -> {freshv:.1} ops/s",
            rel * 100.0,
            key.0,
            key.1,
            key.2
        );
    }
    let new_rows = fresh.keys().filter(|k| !baseline.contains_key(*k)).count();
    if new_rows > 0 {
        println!("({new_rows} new rows in {fresh_path} not present in baseline — not gated)");
    }
    if historical > 0 {
        println!(
            "({historical} historical *_prechange rows not regenerated by sweeps — not gated)"
        );
    }
    if failed {
        println!("perf gate FAILED: throughput regressed beyond tolerance (or rows vanished)");
        std::process::exit(1);
    }
    println!("perf gate passed");
}
