//! Regenerates one figure of the paper; pass `--quick` for a fast subset.

use elsm_bench::figures::*;
use elsm_bench::{emit_figure, opts_from_args, Scale};

fn main() {
    let scale = Scale::default();
    let opts = opts_from_args();
    emit_figure("fig14", &fig14(&scale, opts), opts);
}
