//! Regenerates the write-batching figure; pass `--quick` for a fast subset.

use elsm_bench::figures::*;
use elsm_bench::{opts_from_args, Scale};

fn main() {
    let scale = Scale::default();
    let opts = opts_from_args();
    let table = fig10(&scale, opts);
    table.print();
    elsm_bench::results::write_results(
        "BENCH_results.json",
        if opts.quick { "smoke" } else { "full" },
    );
}
