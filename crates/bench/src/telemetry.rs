//! Per-figure telemetry registries.
//!
//! Every store a figure builds reports into the **current** registry
//! ([`current`], handed out by `p2_options`), and `run_all` rotates it
//! with [`begin_figure`] before each figure bin so the bins don't bleed
//! into each other. After a figure runs, [`write_snapshot`] dumps the
//! registry — the enclave/host virtual-time split and ecall/ocall
//! transition counts of every platform the figure's stores attached,
//! plus all `db.*` / `cache.*` / `commit.*` / `ycsb.*` series — to
//! `TELEMETRY.<figure>.json`, next to the figure's
//! `BENCH_results*.json`.
//!
//! The registry is process-global for the same reason the results sink
//! is: figure functions build stores many layers below the binary that
//! knows which figure is running, and threading a handle through every
//! build helper would couple every figure signature to observability.

use std::sync::Mutex;

use telemetry::Telemetry;

static CURRENT: Mutex<Option<Telemetry>> = Mutex::new(None);

/// Starts a fresh enabled registry; subsequent [`current`] callers (all
/// stores built after this) report into it. Returns the new registry.
pub fn begin_figure() -> Telemetry {
    let tel = Telemetry::new();
    *CURRENT.lock().unwrap() = Some(tel.clone());
    tel
}

/// The registry of the figure currently running, lazily created enabled
/// on first use — a standalone figure binary gets instrumented stores
/// without calling [`begin_figure`] itself.
pub fn current() -> Telemetry {
    CURRENT.lock().unwrap().get_or_insert_with(Telemetry::new).clone()
}

/// Writes the current registry's JSON snapshot to
/// `TELEMETRY.<figure>.json`. Errors are reported, not fatal — like the
/// results sink, observability must never fail a benchmark run.
pub fn write_snapshot(figure: &str) {
    let path = format!("TELEMETRY.{figure}.json");
    if let Err(e) = std::fs::write(&path, current().to_json()) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("(telemetry snapshot written to {path})");
    }
}

/// Writes the current registry's trace dump (op-class latency
/// distributions with exemplar trace ids, the slow-op sampler, and the
/// span ring) to `TRACES.<figure>.json`, beside the telemetry snapshot.
pub fn write_traces(figure: &str) {
    let path = format!("TRACES.{figure}.json");
    if let Err(e) = std::fs::write(&path, current().traces_to_json()) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("(trace dump written to {path})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_rotates_the_current_registry() {
        let a = begin_figure();
        a.counter("x").inc();
        assert_eq!(current().counter_value("x"), 1);
        let b = begin_figure();
        assert_eq!(b.counter_value("x"), 0, "fresh registry per figure");
        assert_eq!(current().counter_value("x"), 0);
        assert_eq!(a.counter_value("x"), 1, "old bin keeps its data");
    }
}
