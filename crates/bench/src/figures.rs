//! One regeneration function per table/figure of the paper.
//!
//! Each function builds the systems under test on their own simulated
//! platform, loads the scaled dataset, drives the paper's workload and
//! returns a [`Table`] whose rows mirror the figure's series. Latencies
//! are *simulated microseconds* on the virtual clock; size axes are paper
//! units (see [`crate::scale::Scale`]).

use std::sync::Arc;

use elsm::{ElsmP1, ElsmP2, P1Options, P2Options, ReadMode};
use elsm_baselines::{
    EleosOptions, EleosStore, MbtStore, ReplicatedUnsecured, ShardedUnsecured, UnsecuredLsm,
    UnsecuredOptions,
};
use elsm_replica::{ReplicationGroup, ReplicationOptions};
use elsm_shard::{PartitionSpec, ShardedKv, ShardedOptions};
use sgx_sim::Platform;
use sim_disk::{SimDisk, SimFs};
use ycsb::{
    load_phase, run_phase_concurrent, run_phase_concurrent_with_telemetry,
    run_phase_with_telemetry, run_sharded_concurrent, run_write_batches_concurrent,
    BatchWritePhase, ShardPhase, Table, Workload,
};

use crate::drivers::{
    EleosDriver, MbtDriver, P1Driver, P2Driver, ReplicatedP2Driver, ReplicatedUnsecuredDriver,
    ShardedP2Driver, ShardedUnsecuredDriver, UnsecuredDriver,
};
use crate::scale::{Scale, VALUE_BYTES};

/// Run-size knobs (quick mode keeps CI fast; full mode for the record).
#[derive(Debug, Clone, Copy)]
pub struct FigOpts {
    /// Use fewer sweep points and operations.
    pub quick: bool,
}

impl FigOpts {
    fn ops(&self) -> u64 {
        if self.quick {
            1_500
        } else {
            6_000
        }
    }
}

fn p2_options(scale: &Scale, read_mode: ReadMode, cache_paper_mb: u64) -> P2Options {
    P2Options {
        telemetry: crate::telemetry::current(),
        read_mode,
        block_cache_bytes: scale.mb(cache_paper_mb) as usize,
        write_buffer_bytes: scale.write_buffer_bytes(),
        level1_max_bytes: scale.level1_bytes(),
        level_multiplier: 10,
        max_levels: 7,
        target_file_bytes: scale.file_bytes(),
        block_size: 4096,
        bloom_bits_per_key: 10,
        compaction_enabled: true,
        compaction_strategy: lsm_store::CompactionStrategyKind::Leveled,
        compaction_parallelism: 1,
        incremental_commitments: false,
        rollback: None,
        wal_sync: lsm_store::WalSyncPolicy::Always,
        retired_epoch_floor: 8,
        shard_id: None,
        vlog: None,
        verified_cache_bytes: 0,
    }
}

fn p1_options(scale: &Scale, buffer_paper_mb: u64) -> P1Options {
    P1Options {
        buffer_bytes: scale.mb(buffer_paper_mb) as usize,
        write_buffer_bytes: scale.write_buffer_bytes(),
        level1_max_bytes: scale.level1_bytes(),
        level_multiplier: 10,
        max_levels: 7,
        target_file_bytes: scale.file_bytes(),
        block_size: 4096,
        bloom_bits_per_key: 10,
        compaction_enabled: true,
    }
}

fn unsecured_options(
    scale: &Scale,
    in_enclave: bool,
    mmap: bool,
    cache_paper_mb: u64,
) -> UnsecuredOptions {
    UnsecuredOptions {
        in_enclave,
        use_mmap: mmap,
        block_cache_bytes: scale.mb(cache_paper_mb) as usize,
        write_buffer_bytes: scale.write_buffer_bytes(),
        level1_max_bytes: scale.level1_bytes(),
        level_multiplier: 10,
        max_levels: 7,
        target_file_bytes: scale.file_bytes(),
        compaction_enabled: true,
        vlog: None,
    }
}

fn eleos_options(scale: &Scale) -> EleosOptions {
    EleosOptions {
        capacity_limit_bytes: scale.gb(1.0) * 2, // 1 GB of live data ≈ 2× raw
        resident_bytes: scale.mb(128) as usize,
        page_bytes: 4096,
        monitor_ns: 150,
        persist_buffer_bytes: scale.write_buffer_bytes(),
        slack_percent: 30,
    }
}

/// Builds an eLSM-P2 store on a fresh platform.
pub fn build_p2(
    scale: &Scale,
    read_mode: ReadMode,
    cache_paper_mb: u64,
) -> (ElsmP2, Arc<Platform>) {
    let platform = Platform::new(scale.cost_model());
    let store = ElsmP2::open(platform.clone(), p2_options(scale, read_mode, cache_paper_mb))
        .expect("open p2");
    (store, platform)
}

/// Builds an eLSM-P1 store on a fresh platform.
pub fn build_p1(scale: &Scale, buffer_paper_mb: u64) -> (ElsmP1, Arc<Platform>) {
    let platform = Platform::new(scale.cost_model());
    let store =
        ElsmP1::open(platform.clone(), p1_options(scale, buffer_paper_mb)).expect("open p1");
    (store, platform)
}

fn measured_reads(
    driver: &dyn ycsb::KvDriver,
    platform: &Arc<Platform>,
    records: u64,
    ops: u64,
    dist: &str,
) -> f64 {
    let w = Workload::read_ratio(100).with_distribution(dist);
    let report = run_phase_with_telemetry(
        driver,
        platform,
        &w,
        records,
        ops,
        0xf16,
        &crate::telemetry::current(),
    );
    crate::results::note_run(&report);
    report.overall.mean_us
}

fn measured_mix(
    driver: &dyn ycsb::KvDriver,
    platform: &Arc<Platform>,
    w: &Workload,
    records: u64,
    ops: u64,
) -> f64 {
    let report = run_phase_with_telemetry(
        driver,
        platform,
        w,
        records,
        ops,
        0xf17,
        &crate::telemetry::current(),
    );
    crate::results::note_run(&report);
    report.overall.mean_us
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// Figure 2: read latency with the read buffer inside vs. outside the
/// enclave, 5 GB disk-resident dataset, buffer swept 4 MB → 2048 MB.
pub fn fig2(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig2");
    let buffers: &[u64] = if opts.quick {
        &[4, 32, 128, 600, 2000]
    } else {
        &[4, 8, 16, 32, 64, 128, 200, 400, 600, 800, 1000, 1500, 2000]
    };
    let records = scale.records_for_gb(5.0);
    let mut table = Table::new(
        "Figure 2: buffer placement, 5 GB disk-resident data (latency µs/op)",
        &["buffer_mb", "outside_enclave", "inside_enclave_p1"],
    );
    for &buf in buffers {
        // Outside: code in enclave, user-space buffer in untrusted memory.
        let outside = {
            let platform = Platform::new(scale.cost_model());
            let fs = SimFs::new(SimDisk::new(platform.clone()));
            fs.set_os_cache_limit(scale.mb(64)); // 5 GB ≫ memory: reads hit disk
            let store = UnsecuredLsm::open_with(
                platform.clone(),
                fs,
                unsecured_options(scale, true, false, buf),
            )
            .expect("open");
            let driver = UnsecuredDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        // Inside: eLSM-P1's enclave buffer (plus SDK file protection).
        let inside = {
            let platform = Platform::new(scale.cost_model());
            let fs = SimFs::new(SimDisk::new(platform.clone()));
            fs.set_os_cache_limit(scale.mb(64));
            let store =
                ElsmP1::open_with(platform.clone(), fs, p1_options(scale, buf)).expect("open");
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        table.row_f64(buf, &[outside, inside]);
    }
    table
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: the design-choice matrix (descriptive).
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: design choices of eLSM-P1 and eLSM-P2",
        &["design", "code placement", "data placement", "digest structure"],
    );
    t.row(vec![
        "eLSM-P1 (§4.1)".into(),
        "inside enclave".into(),
        "inside enclave".into(),
        "file granularity (sealed blocks)".into(),
    ]);
    t.row(vec![
        "eLSM-P2 (§5)".into(),
        "inside enclave".into(),
        "outside enclave".into(),
        "record granularity (Merkle forest)".into(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Figure 5a: operation latency vs. read percentage (uniform keys, 3 GB).
pub fn fig5a(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig5a");
    let points: &[u32] =
        if opts.quick { &[0, 30, 70, 100] } else { &[0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] };
    let data_gb = if opts.quick { 1.0 } else { 3.0 };
    let records = scale.records_for_gb(data_gb);
    let mut table = Table::new(
        "Figure 5a: latency vs read ratio, 3 GB uniform (µs/op)",
        &["read_pct", "elsm_p2_mmap", "elsm_p1", "leveldb_unsecure"],
    );
    for &pct in points {
        let w = Workload::read_ratio(pct);
        let p2 = {
            let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        let p1 = {
            let (store, platform) = build_p1(scale, 64);
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        let unsec = {
            let platform = Platform::new(scale.cost_model());
            let store =
                UnsecuredLsm::open(platform.clone(), unsecured_options(scale, false, true, 8))
                    .expect("open");
            let driver = UnsecuredDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        table.row_f64(pct, &[p2, p1, unsec]);
    }
    table
}

/// Figure 5b: latency vs. data size under YCSB-A (zipfian 50/50).
pub fn fig5b(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig5b");
    let sizes: &[f64] = if opts.quick { &[0.6, 1.0, 3.0] } else { &[0.6, 0.8, 1.0, 2.0, 3.0] };
    let mut table = Table::new(
        "Figure 5b: YCSB-A latency vs data size (µs/op)",
        &["data_gb", "elsm_p2_mmap", "elsm_p1", "eleos"],
    );
    let w = Workload::a();
    for &gb in sizes {
        let records = scale.records_for_gb(gb);
        let p2 = {
            let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        let p1 = {
            let (store, platform) = build_p1(scale, 64);
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        let eleos = if gb <= 1.0 {
            let platform = Platform::new(scale.cost_model());
            let fs = SimFs::new(SimDisk::new(platform.clone()));
            let store = EleosStore::new(platform.clone(), fs, eleos_options(scale));
            let driver = EleosDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            format!("{:.1}", measured_mix(&driver, &platform, &w, records, opts.ops()))
        } else {
            "n/a (>1GB)".to_string() // the paper: Eleos scales only to 1 GB
        };
        table.row(vec![format!("{gb:.1}"), format!("{p2:.1}"), format!("{p1:.1}"), eleos]);
    }
    table
}

/// Figure 5c: latency vs. key distribution (3 GB, 50/50 mix).
pub fn fig5c(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig5c");
    let data_gb = if opts.quick { 1.0 } else { 3.0 };
    let records = scale.records_for_gb(data_gb);
    let mut table = Table::new(
        "Figure 5c: latency vs key distribution, 3 GB (µs/op)",
        &["distribution", "elsm_p2_mmap", "elsm_p1"],
    );
    for dist in ["uniform", "zipfian", "latest"] {
        let w = Workload::read_ratio(50).with_distribution(dist);
        let p2 = {
            let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        let p1 = {
            let (store, platform) = build_p1(scale, 64);
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_mix(&driver, &platform, &w, records, opts.ops())
        };
        table.row_f64(dist, &[p2, p1]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// Figure 6a: read latency vs. data size, all systems.
pub fn fig6a(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig6a");
    let sizes_mb: &[u64] =
        if opts.quick { &[8, 128, 1024, 3072] } else { &[8, 64, 128, 256, 512, 1024, 2048, 3072] };
    let mut table = Table::new(
        "Figure 6a: read latency vs data size (µs/op)",
        &["data_mb", "elsm_p2_mmap", "elsm_p1", "eleos", "outside_unsecured"],
    );
    for &mb in sizes_mb {
        let records = scale.records_for_mb(mb).max(100);
        let p2 = {
            let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        let p1 = {
            // The paper gives P1 a buffer sized to the dataset (its design
            // keeps data in enclave memory).
            let (store, platform) = build_p1(scale, mb.max(8));
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        let eleos = if mb <= 1024 {
            let platform = Platform::new(scale.cost_model());
            let fs = SimFs::new(SimDisk::new(platform.clone()));
            let store = EleosStore::new(platform.clone(), fs, eleos_options(scale));
            let driver = EleosDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            format!("{:.1}", measured_reads(&driver, &platform, records, opts.ops(), "uniform"))
        } else {
            "n/a (>1GB)".to_string()
        };
        let ideal = {
            let platform = Platform::new(scale.cost_model());
            let store =
                UnsecuredLsm::open(platform.clone(), unsecured_options(scale, true, true, 8))
                    .expect("open");
            let driver = UnsecuredDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        table.row(vec![
            mb.to_string(),
            format!("{p2:.1}"),
            format!("{p1:.1}"),
            eleos,
            format!("{ideal:.1}"),
        ]);
    }
    table
}

/// Figure 6b: eLSM-P2 mmap vs. user-space buffer reads.
pub fn fig6b(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig6b");
    let sizes_mb: &[u64] = if opts.quick {
        &[8, 128, 1024, 3072]
    } else {
        &[8, 16, 64, 128, 256, 512, 1024, 2048, 3072]
    };
    let mut table = Table::new(
        "Figure 6b: eLSM-P2 mmap vs buffer reads (µs/op)",
        &["data_mb", "p2_mmap", "p2_buffer"],
    );
    for &mb in sizes_mb {
        let records = scale.records_for_mb(mb).max(100);
        let run = |mode: ReadMode| {
            let (store, platform) = build_p2(scale, mode, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        table.row_f64(mb, &[run(ReadMode::Mmap), run(ReadMode::Buffer)]);
    }
    table
}

/// Figure 6c: read latency vs. buffer size at fixed 2 GB data.
pub fn fig6c(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig6c");
    let buffers: &[u64] =
        if opts.quick { &[32, 128, 512, 2048] } else { &[32, 64, 128, 256, 512, 1024, 1536, 2048] };
    let data_gb = if opts.quick { 1.0 } else { 2.0 };
    let records = scale.records_for_gb(data_gb);
    let mut table = Table::new(
        "Figure 6c: read latency vs buffer size, 2 GB data (µs/op)",
        &["buffer_mb", "p2_buffer", "elsm_p1"],
    );
    for &buf in buffers {
        let p2 = {
            let (store, platform) = build_p2(scale, ReadMode::Buffer, buf);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        let p1 = {
            let (store, platform) = build_p1(scale, buf);
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            measured_reads(&driver, &platform, records, opts.ops(), "uniform")
        };
        table.row_f64(buf, &[p2, p1]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

fn write_only(
    driver: &dyn ycsb::KvDriver,
    platform: &Arc<Platform>,
    records: u64,
    ops: u64,
) -> f64 {
    let w = Workload::read_ratio(0);
    let report = run_phase_with_telemetry(
        driver,
        platform,
        &w,
        records,
        ops,
        0x717,
        &crate::telemetry::current(),
    );
    crate::results::note_run(&report);
    report.overall.mean_us
}

/// Figure 7a: write latency (with compaction) vs. data size.
pub fn fig7a(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig7a");
    let sizes: &[f64] = if opts.quick { &[0.2, 1.0, 2.0] } else { &[0.2, 1.0, 2.0, 3.0, 4.0] };
    let mut table = Table::new(
        "Figure 7a: write latency w/ compaction vs data size (µs/op)",
        &["data_gb", "elsm_p2_mmap", "elsm_p1", "eleos"],
    );
    for &gb in sizes {
        let records = scale.records_for_gb(gb);
        let p2 = {
            let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            write_only(&driver, &platform, records, opts.ops())
        };
        let p1 = {
            let (store, platform) = build_p1(scale, 64);
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            write_only(&driver, &platform, records, opts.ops())
        };
        let eleos = if gb <= 1.0 {
            let platform = Platform::new(scale.cost_model());
            let fs = SimFs::new(SimDisk::new(platform.clone()));
            let store = EleosStore::new(platform.clone(), fs, eleos_options(scale));
            let driver = EleosDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            format!("{:.1}", write_only(&driver, &platform, records, opts.ops()))
        } else {
            "n/a (>1GB)".to_string()
        };
        table.row(vec![format!("{gb:.1}"), format!("{p2:.1}"), format!("{p1:.1}"), eleos]);
    }
    table
}

/// Figure 7b: writes with vs. without compaction.
pub fn fig7b(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig7b");
    let sizes: &[f64] = if opts.quick { &[0.2, 1.0] } else { &[0.2, 1.0, 2.0, 3.0, 4.0] };
    let mut table = Table::new(
        "Figure 7b: write latency with/without compaction (µs/op)",
        &["data_gb", "p2_w_compaction", "p1_w_compaction", "p2_wo_compaction", "p1_wo_compaction"],
    );
    for &gb in sizes {
        let records = scale.records_for_gb(gb);
        let p2_run = |compaction: bool| {
            let platform = Platform::new(scale.cost_model());
            let mut options = p2_options(scale, ReadMode::Mmap, 8);
            options.compaction_enabled = compaction;
            let store = ElsmP2::open(platform.clone(), options).expect("open");
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            write_only(&driver, &platform, records, opts.ops())
        };
        let p1_run = |compaction: bool| {
            let platform = Platform::new(scale.cost_model());
            let mut options = p1_options(scale, 64);
            options.compaction_enabled = compaction;
            let store = ElsmP1::open(platform.clone(), options).expect("open");
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            write_only(&driver, &platform, records, opts.ops())
        };
        table.row_f64(
            format!("{gb:.1}"),
            &[p2_run(true), p1_run(true), p2_run(false), p1_run(false)],
        );
    }
    table
}

/// Figure 7 (extended): verified write throughput vs. compaction strategy
/// and wave parallelism, 8 concurrent clients.
///
/// The paper's Figure 7 shows compaction's write tax; this extension
/// sweeps what the compaction subsystem does about it. Each cell builds a
/// fresh eLSM-P2 store with one [`lsm_store::CompactionStrategyKind`]
/// (leveled vs. size-tiered) and one wave parallelism (1 vs. 4 enclave
/// compaction slots), with incremental level-commitment recomputation
/// ([`elsm::P2Options::incremental_commitments`]) on, then drives YCSB-A
/// (update-heavy) and YCSB-E (scan-heavy, inserts) with
/// [`ycsb::run_phase_concurrent`]. Parallel waves overlap merge IO and
/// hashing across compaction slots; the incremental path folds a
/// [`elsm::CompactionDelta`] instead of re-hashing every surviving
/// record, so the enclave's serial compaction time shrinks — which is
/// what lets writers keep flowing.
///
/// The `serial_full(pre)` row is the pre-change anchor — the serial
/// leveled compactor with full commitment recomputation, the code path
/// before the scheduler landed — recorded in `BENCH_results.json` as
/// `fig7_prechange`. Each row also records the store's end-of-phase
/// compaction-debt gauge ([`lsm_store::CompactionDebt`], via
/// `debt_bytes`/`pending_jobs` in the results JSON): a configuration
/// that wins throughput by letting debt pile up unboundedly has not
/// actually won anything.
pub fn fig7(scale: &Scale, opts: FigOpts) -> Table {
    const CLIENTS: usize = 8;
    let records = scale.records_for_mb(if opts.quick { 128 } else { 512 }).max(500);
    let ops = if opts.quick { 4_000 } else { 16_000 };
    let workloads = [Workload::a(), Workload::e()];

    // Each run returns (throughput, leftover debt bytes) and records the
    // measurement plus the debt gauge under the current figure.
    let run = |label: &str,
               strategy: lsm_store::CompactionStrategyKind,
               parallelism: usize,
               incremental: bool,
               w: &Workload| {
        let platform = Platform::new(scale.cost_model());
        let mut options = p2_options(scale, ReadMode::Mmap, 8);
        options.compaction_strategy = strategy;
        options.compaction_parallelism = parallelism;
        options.incremental_commitments = incremental;
        let store = ElsmP2::open(platform.clone(), options).expect("open");
        let driver = P2Driver(store);
        load_phase(&driver, records, VALUE_BYTES);
        let report = run_phase_concurrent_with_telemetry(
            &driver,
            &platform,
            w,
            records,
            ops,
            0xf07,
            CLIENTS,
            &crate::telemetry::current(),
        );
        let stats = driver.0.db().stats();
        crate::results::note_concurrent_debt(
            &format!("{label}_{}", w.name),
            &report,
            stats.debt_bytes,
            stats.pending_compaction_jobs,
        );
        (report.kops_per_sec, stats.debt_bytes)
    };

    use lsm_store::CompactionStrategyKind::{Leveled, Tiered};
    // Pre-change anchor: serial leveled compaction, full recompute.
    crate::results::set_figure("fig7_prechange");
    let anchor: Vec<f64> =
        workloads.iter().map(|w| run("serial_full", Leveled, 1, false, w).0).collect();

    crate::results::set_figure("fig7_compaction");
    let mut table = Table::new(
        "Figure 7 (ext): verified write throughput vs compaction strategy & parallelism, \
         8 clients (kops/s, simulated)",
        &["config", "ycsbA_kops", "A_vs_pre", "ycsbE_kops", "E_vs_pre", "debt_kb_A"],
    );
    table.row(vec![
        "serial_full(pre)".into(),
        format!("{:.1}", anchor[0]),
        "1.00x".into(),
        format!("{:.1}", anchor[1]),
        "1.00x".into(),
        "-".into(),
    ]);
    let configs: [(&str, lsm_store::CompactionStrategyKind, usize); 4] = [
        ("leveled_p1", Leveled, 1),
        ("leveled_p4", Leveled, 4),
        ("tiered_p1", Tiered(lsm_store::TieredConfig::default()), 1),
        ("tiered_p4", Tiered(lsm_store::TieredConfig::default()), 4),
    ];
    for (label, strategy, parallelism) in configs {
        let mut row = vec![label.to_string()];
        let mut debt_a = 0u64;
        for (i, w) in workloads.iter().enumerate() {
            let (kops, debt) = run(label, strategy.clone(), parallelism, true, w);
            if i == 0 {
                debt_a = debt;
            }
            row.push(format!("{kops:.1}"));
            row.push(format!("{:.2}x", kops / anchor[i].max(1e-9)));
        }
        row.push(format!("{:.1}", debt_a as f64 / 1024.0));
        table.row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 8 (Appendix C)
// ---------------------------------------------------------------------------

/// Figure 8: write-buffer placement — write-only latency vs. write-buffer
/// size, P1 vs. unsecured-outside.
pub fn fig8(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig8");
    let buffers: &[u64] =
        if opts.quick { &[4, 64, 512] } else { &[4, 8, 16, 32, 64, 128, 256, 512] };
    let records = scale.records_for_gb(0.5);
    let mut table = Table::new(
        "Figure 8: write-buffer placement (write-only, µs/op)",
        &["write_buffer_mb", "elsm_p1", "outside_unsecured"],
    );
    for &buf in buffers {
        let p1 = {
            let platform = Platform::new(scale.cost_model());
            let mut options = p1_options(scale, 64);
            options.write_buffer_bytes = scale.mb(buf) as usize;
            let store = ElsmP1::open(platform.clone(), options).expect("open");
            let driver = P1Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            write_only(&driver, &platform, records, opts.ops())
        };
        let outside = {
            let platform = Platform::new(scale.cost_model());
            let mut options = unsecured_options(scale, true, false, 8);
            options.write_buffer_bytes = scale.mb(buf) as usize;
            let store = UnsecuredLsm::open(platform.clone(), options).expect("open");
            let driver = UnsecuredDriver(store);
            load_phase(&driver, records, VALUE_BYTES);
            write_only(&driver, &platform, records, opts.ops())
        };
        table.row_f64(buf, &[p1, outside]);
    }
    table
}

// ---------------------------------------------------------------------------
// Ablations (extension work beyond the paper's figures)
// ---------------------------------------------------------------------------

/// Ablation: early-stop proofs (eLSM) vs. all-level verification
/// (Speicher-style) — measured as levels checked and proof bytes per GET.
pub fn ablation_proofs(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("ablation_proofs");
    let records = scale.records_for_gb(1.0);
    let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
    let driver = P2Driver(store);
    load_phase(&driver, records, VALUE_BYTES);
    driver.0.db().flush().expect("flush");
    let before = driver.0.verify_stats();
    let lat_hit = measured_reads(&driver, &platform, records, opts.ops(), "uniform");
    let after = driver.0.verify_stats();
    let gets = opts.ops().max(1);
    let proofs_per_get = (after.proofs_verified - before.proofs_verified) as f64 / gets as f64;
    let proof_bytes_per_get = (after.proof_bytes - before.proof_bytes) as f64 / gets as f64;
    // All-level (Speicher-style) verification checks every occupied level
    // per GET: two neighbor proofs per non-hit level plus the hit proof.
    let occupied_levels =
        driver.0.db().level_bytes().iter().skip(1).filter(|&&b| b > 0).count() as f64;
    let all_level_proofs = 2.0 * (occupied_levels - 1.0).max(0.0) + 1.0;
    let bytes_per_proof = proof_bytes_per_get / proofs_per_get.max(0.01);
    let mut table = Table::new(
        "Ablation: early-stop vs all-level proofs (per GET)",
        &["metric", "early_stop_elsm", "all_levels_speicher_style"],
    );
    table.row(vec![
        "proofs verified".into(),
        format!("{proofs_per_get:.2}"),
        format!("{all_level_proofs:.2}"),
    ]);
    table.row(vec![
        "proof bytes".into(),
        format!("{proof_bytes_per_get:.0}"),
        format!("{:.0}", bytes_per_proof * all_level_proofs),
    ]);
    table.row(vec!["GET latency µs".into(), format!("{lat_hit:.1}"), "-".into()]);
    table
}

/// Ablation: Bloom filters on/off for present and absent keys.
pub fn ablation_bloom(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("ablation_bloom");
    let records = scale.records_for_gb(0.5);
    let mut table = Table::new(
        "Ablation: Bloom filter effect on GET latency (µs/op)",
        &["config", "present_keys", "absent_keys"],
    );
    for (label, bits) in [("bloom_10bits", 10usize), ("bloom_off", 0)] {
        let platform = Platform::new(scale.cost_model());
        let mut options = p2_options(scale, ReadMode::Mmap, 8);
        options.bloom_bits_per_key = bits;
        let store = ElsmP2::open(platform.clone(), options).expect("open");
        let driver = P2Driver(store);
        load_phase(&driver, records, VALUE_BYTES);
        driver.0.db().flush().expect("flush");
        let present = measured_reads(&driver, &platform, records, opts.ops(), "uniform");
        // Absent keys: probe beyond the loaded keyspace.
        let sw = platform.clock().stopwatch();
        let absent_ops = opts.ops() / 2;
        for i in 0..absent_ops {
            // Absent keys *inside* the populated range, so table Bloom
            // filters actually get probed.
            ycsb::KvDriver::get(&driver, format!("user{:012}x", i % records).as_bytes());
        }
        let absent = sw.elapsed_us(platform.clock()) / absent_ops as f64;
        table.row_f64(label, &[present, absent]);
    }
    table
}

/// Ablation: the §3.4 motivation — update-in-place Merkle B-tree vs. LSM
/// writes.
pub fn ablation_update_in_place(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("ablation_update_in_place");
    let records = scale.records_for_gb(0.25);
    let mut table = Table::new(
        "Ablation: update-in-place ADS vs eLSM (write latency µs/op)",
        &["system", "write_latency_us"],
    );
    let mbt = {
        let platform = Platform::new(scale.cost_model());
        let driver = MbtDriver(MbtStore::new(platform.clone()));
        load_phase(&driver, records / 4, VALUE_BYTES);
        write_only(&driver, &platform, records / 4, opts.ops() / 4)
    };
    let p2 = {
        let (store, platform) = build_p2(scale, ReadMode::Mmap, 8);
        let driver = P2Driver(store);
        load_phase(&driver, records, VALUE_BYTES);
        write_only(&driver, &platform, records, opts.ops())
    };
    table.row_f64("merkle_btree_update_in_place", &[mbt]);
    table.row_f64("elsm_p2", &[p2]);
    table
}

/// Ablation: rollback-defence overhead vs. counter write-buffer size.
pub fn ablation_rollback(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("ablation_rollback");
    use sgx_sim::MonotonicCounter;
    let records = scale.records_for_gb(0.25);
    let mut table = Table::new(
        "Ablation: rollback defence overhead vs counter buffer (µs/write)",
        &["counter_buffer", "write_latency_us"],
    );
    for buffer in [0usize, 64, 512, 4096] {
        let platform = Platform::new(scale.cost_model());
        let fs = SimFs::new(SimDisk::new(platform.clone()));
        let mut options = p2_options(scale, ReadMode::Mmap, 8);
        let counter = if buffer > 0 {
            options.rollback = Some(elsm::RollbackOptions { counter_write_buffer: buffer });
            Some(MonotonicCounter::new(platform.clone()))
        } else {
            None
        };
        let store = ElsmP2::open_with(platform.clone(), fs, options, counter).expect("open");
        let driver = P2Driver(store);
        load_phase(&driver, records, VALUE_BYTES);
        let lat = write_only(&driver, &platform, records, opts.ops());
        let label = if buffer == 0 { "off".to_string() } else { buffer.to_string() };
        table.row_f64(label, &[lat]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 9 (new in this reproduction): thread scaling
// ---------------------------------------------------------------------------

/// Figure 9: read throughput vs. client threads, eLSM-P2 vs. the
/// unsecured baseline.
///
/// Uses the virtual-thread scheduler ([`ycsb::run_phase_concurrent`]):
/// virtual time charged inside store critical sections serializes across
/// clients, the rest overlaps. With snapshot-isolated reads the serial
/// fraction of a GET is only the brief snapshot acquisition, so
/// throughput scales near-linearly; a store holding a global mutex across
/// block IO and verification stays flat (the pre-snapshot baseline
/// recorded in `BENCH_results.json` under `fig9_prechange`).
pub fn fig9(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig9_thread_scaling");
    let records = scale.records_for_mb(if opts.quick { 512 } else { 2048 }).max(1_000);
    let ops = if opts.quick { 4_000 } else { 16_000 };
    let w = Workload::c();
    let mut table = Table::new(
        "Figure 9: read throughput vs client threads (kops/s, simulated)",
        &[
            "threads",
            "elsm_p2_kops",
            "p2_speedup",
            "unsecured_kops",
            "unsec_speedup",
            "p2_serial_pct",
        ],
    );
    // Build each system once: workload C is read-only, so every thread
    // count sweeps over an identical store state.
    let (p2_store, p2_platform) = build_p2(scale, ReadMode::Mmap, 8);
    let p2 = P2Driver(p2_store);
    load_phase(&p2, records, VALUE_BYTES);
    p2.0.db().flush().expect("flush");
    let unsec_platform = Platform::new(scale.cost_model());
    let unsec = UnsecuredDriver(
        UnsecuredLsm::open(unsec_platform.clone(), unsecured_options(scale, false, true, 8))
            .expect("open"),
    );
    load_phase(&unsec, records, VALUE_BYTES);
    unsec.0.db().flush().expect("flush");
    let mut p2_base = 0.0f64;
    let mut unsec_base = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let r_p2 = run_phase_concurrent(&p2, &p2_platform, &w, records, ops, 0xf19, threads);
        let r_un = run_phase_concurrent(&unsec, &unsec_platform, &w, records, ops, 0xf19, threads);
        crate::results::note_concurrent("elsm_p2_mmap", &r_p2);
        crate::results::note_concurrent("unsecured", &r_un);
        if threads == 1 {
            p2_base = r_p2.kops_per_sec;
            unsec_base = r_un.kops_per_sec;
        }
        table.row(vec![
            threads.to_string(),
            format!("{:.1}", r_p2.kops_per_sec),
            format!("{:.2}x", r_p2.kops_per_sec / p2_base.max(1e-9)),
            format!("{:.1}", r_un.kops_per_sec),
            format!("{:.2}x", r_un.kops_per_sec / unsec_base.max(1e-9)),
            format!("{:.1}%", r_p2.serial_fraction * 100.0),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 10 (new in this reproduction): write batching
// ---------------------------------------------------------------------------

/// Figure 10: write throughput (records/s) vs. batch size and writer
/// threads — the group-commit counterpart of fig9.
///
/// Each cell builds a fresh store, loads the keyspace, then drives a
/// write-only phase where every virtual client issues `put_batch` calls of
/// the given size ([`ycsb::run_write_batches_concurrent`]). The headline
/// eLSM-P2 series runs with compaction disabled so the figure isolates the
/// *write pipeline* — enclave transitions, WAL appends, trusted-state
/// updates and flush — whose per-operation taxes batching amortizes;
/// compaction write-amplification is an orthogonal cost measured by fig7.
/// The `p2_compact_1w` column keeps one compaction-on series for the
/// end-to-end picture, and `unsecured_1w` is the no-enclave roofline.
///
/// The committed `BENCH_results.json` carries a `fig10_prechange` section
/// captured before the group-commit pipeline landed: with every `put`
/// paying a full enclave transition, throughput was flat in batch size.
pub fn fig10(scale: &Scale, opts: FigOpts) -> Table {
    crate::results::set_figure("fig10_write_batching");
    let records = scale.records_for_mb(if opts.quick { 128 } else { 256 }).max(500);
    let total = if opts.quick { 3_000 } else { 8_000 };
    let batches: &[usize] = if opts.quick { &[1, 8, 32] } else { &[1, 4, 8, 32, 128] };
    let threads: &[usize] = if opts.quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut cols: Vec<String> = vec!["batch".into()];
    cols.extend(threads.iter().map(|t| format!("p2_{t}w_kops")));
    cols.push("p2_compact_1w".into());
    cols.push("unsecured_1w".into());
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 10: write throughput vs batch size and writer threads (krec/s, simulated)",
        &col_refs,
    );
    let phase = |batch: usize, nthreads: usize| BatchWritePhase {
        record_count: records,
        total_records: total,
        batch_size: batch,
        threads: nthreads,
        value_len: VALUE_BYTES,
        seed: 0xf10,
    };
    let run_p2 = |batch: usize, nthreads: usize, compaction: bool| {
        let platform = Platform::new(scale.cost_model());
        let mut options = p2_options(scale, ReadMode::Mmap, 8);
        options.compaction_enabled = compaction;
        let store = ElsmP2::open(platform.clone(), options).expect("open");
        let driver = P2Driver(store);
        load_phase(&driver, records, VALUE_BYTES);
        let report = run_write_batches_concurrent(&driver, &platform, &phase(batch, nthreads));
        let label = if compaction { "elsm_p2_compact" } else { "elsm_p2" };
        crate::results::note_concurrent(&format!("{label}_b{batch}"), &report);
        report.kops_per_sec
    };
    let run_unsec = |batch: usize| {
        let platform = Platform::new(scale.cost_model());
        let mut options = unsecured_options(scale, false, true, 8);
        options.compaction_enabled = false;
        let store = UnsecuredLsm::open(platform.clone(), options).expect("open");
        let driver = UnsecuredDriver(store);
        load_phase(&driver, records, VALUE_BYTES);
        let report = run_write_batches_concurrent(&driver, &platform, &phase(batch, 1));
        crate::results::note_concurrent(&format!("unsecured_b{batch}"), &report);
        report.kops_per_sec
    };
    for &batch in batches {
        let mut row = vec![batch.to_string()];
        for &t in threads {
            row.push(format!("{:.1}", run_p2(batch, t, false)));
        }
        row.push(format!("{:.1}", run_p2(batch, 1, true)));
        row.push(format!("{:.1}", run_unsec(batch)));
        table.row(row);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 11 (new in this reproduction): shard scaling
// ---------------------------------------------------------------------------

/// Figure 11: aggregate cluster throughput vs. shard count, YCSB A and C.
///
/// Each cell builds a fresh hash-partitioned cluster
/// ([`elsm_shard::ShardedKv`], one enclave platform per shard), loads the
/// keyspace through the router, and drives a fixed cluster-wide offered
/// load of 32 virtual clients with
/// [`ycsb::run_sharded_concurrent`]. Unlike fig9's single-machine model
/// (unbounded cores), each shard here is its own machine with
/// `CORES_PER_SHARD` enclave cores: a single store saturates at one
/// machine's capacity however many clients offer load — horizontal
/// partitioning is what adds capacity, which is exactly the LSKV-style
/// scale-out story this figure quantifies. YCSB-C shows the pure
/// capacity effect; YCSB-A additionally splits the write path's serial
/// sections (group commit, trusted folds, flushes/compactions) across
/// shard enclaves.
///
/// The `single(pre)` row is the pre-sharding anchor: a plain `ElsmP2`
/// (no router, no shard binding) under the same scheduler, recorded in
/// `BENCH_results.json` as `fig11_prechange` — it shows the shard
/// layer's 1-shard overhead (routing hash + stitching) is noise.
pub fn fig11(scale: &Scale, opts: FigOpts) -> Table {
    const CLIENTS: usize = 32;
    const CORES_PER_SHARD: usize = 4;
    let records = scale.records_for_mb(if opts.quick { 256 } else { 1024 }).max(1_000);
    let ops = if opts.quick { 6_000 } else { 24_000 };
    let phase = ShardPhase {
        record_count: records,
        total_ops: ops,
        threads: CLIENTS,
        cores_per_shard: CORES_PER_SHARD,
        seed: 0xf11,
    };
    let workloads = [Workload::c(), Workload::a()];

    let run_p2 = |shards: usize, w: &Workload| {
        let cluster = ShardedKv::open(
            Platform::new(scale.cost_model()),
            ShardedOptions::hash(shards, p2_options(scale, ReadMode::Mmap, 8)),
        )
        .expect("open sharded p2");
        let driver = ShardedP2Driver(cluster);
        load_phase(&driver, records, VALUE_BYTES);
        driver.0.flush().expect("flush");
        let report = run_sharded_concurrent(&driver, w, &phase);
        crate::results::note_concurrent(&format!("elsm_p2_{shards}s_{}", w.name), &report);
        report
    };
    let run_unsec = |shards: usize, w: &Workload| {
        let cluster = ShardedUnsecured::open(
            Platform::new(scale.cost_model()),
            PartitionSpec::Hash { shards },
            unsecured_options(scale, false, true, 8),
        )
        .expect("open sharded unsecured");
        let driver = ShardedUnsecuredDriver(cluster);
        load_phase(&driver, records, VALUE_BYTES);
        driver.0.flush().expect("flush");
        let report = run_sharded_concurrent(&driver, w, &phase);
        crate::results::note_concurrent(&format!("unsecured_{shards}s_{}", w.name), &report);
        report
    };

    // Pre-sharding anchor: the plain single store, same machine model.
    crate::results::set_figure("fig11_prechange");
    let anchor: Vec<f64> = workloads
        .iter()
        .map(|w| {
            let (store, _platform) = build_p2(scale, ReadMode::Mmap, 8);
            let driver = P2Driver(store);
            load_phase(&driver, records, VALUE_BYTES);
            driver.0.db().flush().expect("flush");
            let report = run_sharded_concurrent(&driver, w, &phase);
            crate::results::note_concurrent(&format!("single_store_{}", w.name), &report);
            report.kops_per_sec
        })
        .collect();

    crate::results::set_figure("fig11_shard_scaling");
    let mut table = Table::new(
        "Figure 11: aggregate throughput vs shards, 32 clients, 4 cores/shard (kops/s, simulated)",
        &[
            "shards",
            "p2_ycsbC_kops",
            "p2_C_speedup",
            "p2_ycsbA_kops",
            "p2_A_speedup",
            "unsec_C_kops",
            "unsec_A_kops",
        ],
    );
    let sweep: [usize; 4] = [1, 2, 4, 8];
    let mut base = [0.0f64; 2];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for shards in sweep {
        let mut row = vec![shards.to_string()];
        for (i, w) in workloads.iter().enumerate() {
            let r = run_p2(shards, w);
            if shards == 1 {
                base[i] = r.kops_per_sec;
            }
            row.push(format!("{:.1}", r.kops_per_sec));
            row.push(format!("{:.2}x", r.kops_per_sec / base[i].max(1e-9)));
        }
        for w in &workloads {
            row.push(format!("{:.1}", run_unsec(shards, w).kops_per_sec));
        }
        rows.push(row);
    }
    table.row(vec![
        "single(pre)".into(),
        format!("{:.1}", anchor[0]),
        format!("{:.2}x", anchor[0] / base[0].max(1e-9)),
        format!("{:.1}", anchor[1]),
        format!("{:.2}x", anchor[1] / base[1].max(1e-9)),
        "-".into(),
        "-".into(),
    ]);
    for row in rows {
        table.row(row);
    }
    table
}

/// Figure 12: aggregate **verified read** throughput of one replication
/// group as replicas are added, under a fixed 32-client offered load with
/// 4 enclave cores per node (the fig11 machine model, applied to the
/// replication axis: one store cannot scale reads past its own machine,
/// a group fans them out). The `fig12_prechange` anchor is the plain
/// unreplicated store — the pre-replication code path — under the same
/// scheduler; the unsecured replicated baseline is the no-verification
/// roofline, so the remaining gap is per-replica verification, not the
/// replication layer.
pub fn fig12(scale: &Scale, opts: FigOpts) -> Table {
    const CLIENTS: usize = 32;
    const CORES_PER_NODE: usize = 4;
    let records = scale.records_for_mb(if opts.quick { 256 } else { 1024 }).max(1_000);
    let ops = if opts.quick { 6_000 } else { 24_000 };
    let phase = ShardPhase {
        record_count: records,
        total_ops: ops,
        threads: CLIENTS,
        cores_per_shard: CORES_PER_NODE,
        seed: 0xf12,
    };
    let workload = Workload::c();

    // Pre-replication anchor: the plain single store, same machine model.
    crate::results::set_figure("fig12_prechange");
    let anchor = {
        let (store, _platform) = build_p2(scale, ReadMode::Mmap, 8);
        let driver = P2Driver(store);
        load_phase(&driver, records, VALUE_BYTES);
        driver.0.db().flush().expect("flush");
        let report = run_sharded_concurrent(&driver, &workload, &phase);
        crate::results::note_concurrent("single_store_C", &report);
        report.kops_per_sec
    };

    crate::results::set_figure("fig12_replica_scaling");
    let mut table = Table::new(
        "Figure 12: aggregate verified read throughput vs replicas, 32 clients, \
         4 cores/node (kops/s, simulated)",
        &["replicas", "p2_read_kops", "p2_vs_single", "unsec_read_kops", "unsec_vs_1r"],
    );
    table.row(vec![
        "single(pre)".into(),
        format!("{anchor:.1}"),
        "1.00x".into(),
        "-".into(),
        "-".into(),
    ]);
    let mut unsec_base = 0.0f64;
    for replicas in [1usize, 2, 4, 8] {
        let group = ReplicationGroup::open(
            Platform::new(scale.cost_model()),
            p2_options(scale, ReadMode::Mmap, 8),
            ReplicationOptions { replicas, ..Default::default() },
        )
        .expect("open replication group");
        let driver = ReplicatedP2Driver::new(group);
        load_phase(&driver, records, VALUE_BYTES);
        driver.group().flush().expect("flush");
        let report = run_sharded_concurrent(&driver, &workload, &phase);
        crate::results::note_concurrent(&format!("elsm_p2_{replicas}r_C"), &report);

        let unsec = ReplicatedUnsecured::open(
            Platform::new(scale.cost_model()),
            replicas,
            unsecured_options(scale, false, true, 8),
        )
        .expect("open replicated unsecured");
        let udriver = ReplicatedUnsecuredDriver(unsec);
        load_phase(&udriver, records, VALUE_BYTES);
        udriver.0.flush().expect("flush");
        let ureport = run_sharded_concurrent(&udriver, &workload, &phase);
        crate::results::note_concurrent(&format!("unsecured_{replicas}r_C"), &ureport);
        if replicas == 1 {
            unsec_base = ureport.kops_per_sec;
        }
        table.row(vec![
            replicas.to_string(),
            format!("{:.1}", report.kops_per_sec),
            format!("{:.2}x", report.kops_per_sec / anchor.max(1e-9)),
            format!("{:.1}", ureport.kops_per_sec),
            format!("{:.2}x", ureport.kops_per_sec / unsec_base.max(1e-9)),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// Figure 14 (extension): key-value separation + verified read cache
// ---------------------------------------------------------------------------

/// Figure 14 (ext): key-value separation and the epoch-aware verified
/// cache.
///
/// Two series. First, verified YCSB-A **write** throughput as the value
/// size sweeps 1 KB → 100 KB, with the store's values inline
/// (`fig14_prechange`, the code path before separation landed) vs.
/// separated into the authenticated value log (`fig14_separation`):
/// inline, every compaction rewrites every byte of every value it
/// touches; separated, compactions move 56-byte pointer records and the
/// payload is written to the log once, so the gap widens with the value
/// size. Each entry also records the store's `vlog_bytes` /
/// `vlog_garbage_bytes` gauges.
///
/// Second, verified **read** throughput on a zipfian read-only workload
/// as the verified-cache budget grows (`fig14_cache`): hot reads answer
/// from enclave-checked cached entries — no disk IO, no proof replay —
/// so throughput tracks the measured hit ratio (`hit_ratio_bp` gauge,
/// basis points).
pub fn fig14(scale: &Scale, opts: FigOpts) -> Table {
    let separated_options = |cache_bytes: usize| {
        let mut options = p2_options(scale, ReadMode::Mmap, 8);
        options.write_buffer_bytes = scale.mb(16) as usize;
        options.level1_max_bytes = scale.mb(64);
        options.vlog = Some(lsm_store::VlogConfig {
            value_threshold: 512,
            target_file_bytes: scale.mb(64),
            gc_garbage_ratio: 0.5,
            gc_enabled: true,
        });
        options.verified_cache_bytes = cache_bytes;
        options
    };
    let inline_options = || {
        let mut options = separated_options(0);
        options.vlog = None;
        options
    };

    // One write-path run: YCSB-A at the given value size, returning the
    // write-side throughput in kops/s and recording it with the store's
    // value-log gauges.
    let write_run = |options: P2Options, label: &str, value_len: usize, records: u64, ops: u64| {
        let platform = Platform::new(scale.cost_model());
        let store = ElsmP2::open(platform.clone(), options).expect("open");
        let driver = P2Driver(store);
        load_phase(&driver, records, value_len);
        driver.0.db().flush().expect("flush");
        let w = Workload::a().with_value_len(value_len);
        let report = run_phase_with_telemetry(
            &driver,
            &platform,
            &w,
            records,
            ops,
            0xf14,
            &crate::telemetry::current(),
        );
        let stats = driver.0.db().stats();
        let kops = if report.writes.mean_us > 0.0 { 1_000.0 / report.writes.mean_us } else { 0.0 };
        crate::results::note_run_gauges(
            &report,
            &[
                ("write_kops_x10", (kops * 10.0) as u64),
                ("value_bytes", value_len as u64),
                ("vlog_bytes", stats.vlog_bytes),
                ("vlog_garbage_bytes", stats.vlog_garbage_bytes),
            ],
        );
        let _ = label;
        kops
    };

    let sizes_kb: &[usize] = if opts.quick { &[1, 16, 64] } else { &[1, 4, 16, 64, 100] };
    let ops = if opts.quick { 400 } else { 1_200 };
    let budget = scale.mb(if opts.quick { 512 } else { 1024 });

    let mut table = Table::new(
        "Figure 14 (ext): key-value separation and verified caching — write kops/s vs value \
         size, then read kops/s vs cache budget (simulated)",
        &["series", "x", "kops", "vs_baseline", "cache_hit_pct"],
    );

    let records_for = |value_len: usize| (budget / value_len as u64).clamp(32, 512);
    // Pre-change anchor: every value inline in the LSM.
    crate::results::set_figure("fig14_prechange");
    let inline_kops: Vec<f64> = sizes_kb
        .iter()
        .map(|&kb| {
            let value_len = kb * 1024;
            write_run(inline_options(), "inline", value_len, records_for(value_len), ops)
        })
        .collect();
    crate::results::set_figure("fig14_separation");
    let separated_kops: Vec<f64> = sizes_kb
        .iter()
        .map(|&kb| {
            let value_len = kb * 1024;
            write_run(separated_options(0), "separated", value_len, records_for(value_len), ops)
        })
        .collect();

    for (i, &kb) in sizes_kb.iter().enumerate() {
        let (inline, separated) = (inline_kops[i], separated_kops[i]);
        table.row(vec![
            "write_inline(pre)".into(),
            format!("{kb}KB"),
            format!("{inline:.2}"),
            "1.00x".into(),
            "-".into(),
        ]);
        table.row(vec![
            "write_separated".into(),
            format!("{kb}KB"),
            format!("{separated:.2}"),
            format!("{:.2}x", separated / inline.max(1e-9)),
            "-".into(),
        ]);
    }

    // Cache series: read-only zipfian over 4 KB separated values, cache
    // budget swept from off to dataset-sized.
    crate::results::set_figure("fig14_cache");
    let value_len = 4 * 1024;
    let records = (budget / value_len as u64).clamp(64, 512);
    let read_ops = if opts.quick { 2_000 } else { 6_000 };
    let budgets_kb: &[usize] =
        if opts.quick { &[0, 64, 256, 1024] } else { &[0, 32, 64, 128, 256, 512, 1024] };
    let mut base_kops = 0.0f64;
    for &cache_kb in budgets_kb {
        let platform = Platform::new(scale.cost_model());
        let store =
            ElsmP2::open(platform.clone(), separated_options(cache_kb * 1024)).expect("open");
        let driver = P2Driver(store);
        // Every config's store shares the figure's registry, so per-store
        // cache accounting is the delta from this store's open.
        let cache0 = driver.0.cache_stats();
        load_phase(&driver, records, value_len);
        driver.0.db().flush().expect("flush");
        let w = Workload::c().with_value_len(value_len);
        let report = run_phase_with_telemetry(
            &driver,
            &platform,
            &w,
            records,
            read_ops,
            0xf14c,
            &crate::telemetry::current(),
        );
        let kops =
            if report.overall.mean_us > 0.0 { 1_000.0 / report.overall.mean_us } else { 0.0 };
        let stats = driver.0.cache_stats();
        let hits = stats.record_hits - cache0.record_hits;
        let misses = stats.record_misses - cache0.record_misses;
        let looked = hits + misses;
        let hit_ratio = if looked > 0 { hits as f64 / looked as f64 } else { 0.0 };
        crate::results::note_run_gauges(
            &report,
            &[
                ("read_kops_x10", (kops * 10.0) as u64),
                ("cache_budget_bytes", (cache_kb * 1024) as u64),
                ("cache_hits", hits),
                ("cache_misses", misses),
                ("hit_ratio_bp", (hit_ratio * 10_000.0) as u64),
            ],
        );
        if cache_kb == 0 {
            base_kops = kops;
        }
        table.row(vec![
            format!("read_cache_{cache_kb}KB"),
            format!("{}x4KB", records),
            format!("{kops:.2}"),
            format!("{:.2}x", kops / base_kops.max(1e-9)),
            format!("{:.1}", hit_ratio * 100.0),
        ]);
    }
    table
}
