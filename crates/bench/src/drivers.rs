//! [`ycsb::KvDriver`] adapters for every system under test.
//!
//! Every adapter forwards [`ycsb::KvDriver::put_batch`] to its store's
//! real batch entry point, so fig10's batch-size sweeps measure each
//! system's actual write pipeline (one ECall + one WAL frame per batch for
//! the eLSM designs; honest per-record loops for the update-in-place
//! baselines, which have nothing to amortize).

use std::sync::Arc;

use elsm::{AuthenticatedKv, ElsmP1, ElsmP2};
use elsm_baselines::{EleosStore, MbtStore, ReplicatedUnsecured, ShardedUnsecured, UnsecuredLsm};
use elsm_replica::ReplicationGroup;
use elsm_shard::ShardedKv;
use sgx_sim::Platform;
use ycsb::ShardedKvDriver;

fn as_refs(items: &[(Vec<u8>, Vec<u8>)]) -> Vec<(&[u8], &[u8])> {
    items.iter().map(|(k, v)| (k.as_slice(), v.as_slice())).collect()
}

/// Driver over eLSM-P2.
#[derive(Debug)]
pub struct P2Driver(pub ElsmP2);

impl ycsb::KvDriver for P2Driver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("p2 put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).expect("p2 get verifies").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).expect("p2 scan verifies").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items)).expect("p2 put_batch");
    }
}

/// A plain eLSM-P2 store presented as a one-shard cluster: the
/// pre-sharding anchor series of fig11 runs the unsharded code path
/// under the same per-machine scheduler as the sharded lines.
impl ShardedKvDriver for P2Driver {
    fn shard_count(&self) -> usize {
        1
    }
    fn shard_platform(&self, _shard: usize) -> &Arc<Platform> {
        self.0.platform()
    }
    fn router_platform(&self) -> &Arc<Platform> {
        self.0.platform()
    }
}

/// Driver over eLSM-P1.
#[derive(Debug)]
pub struct P1Driver(pub ElsmP1);

impl ycsb::KvDriver for P1Driver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("p1 put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).expect("p1 get").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).expect("p1 scan").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items)).expect("p1 put_batch");
    }
}

/// Driver over the unsecured LSM configurations.
#[derive(Debug)]
pub struct UnsecuredDriver(pub UnsecuredLsm);

impl ycsb::KvDriver for UnsecuredDriver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("unsecured put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).expect("unsecured get").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).expect("unsecured scan").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items)).expect("unsecured put_batch");
    }
}

/// Driver over the sharded authenticated cluster.
#[derive(Debug)]
pub struct ShardedP2Driver(pub ShardedKv);

impl ycsb::KvDriver for ShardedP2Driver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("sharded put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).expect("sharded get verifies").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).expect("sharded scan verifies").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items)).expect("sharded put_batch");
    }
}

impl ShardedKvDriver for ShardedP2Driver {
    fn shard_count(&self) -> usize {
        self.0.shard_count()
    }
    fn shard_platform(&self, shard: usize) -> &Arc<Platform> {
        self.0.shard_platform(shard)
    }
    fn router_platform(&self) -> &Arc<Platform> {
        self.0.router_platform()
    }
}

/// Driver over the sharded unsecured cluster.
#[derive(Debug)]
pub struct ShardedUnsecuredDriver(pub ShardedUnsecured);

impl ycsb::KvDriver for ShardedUnsecuredDriver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("sharded unsecured put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).expect("sharded unsecured get").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).expect("sharded unsecured scan").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items)).expect("sharded unsecured put_batch");
    }
}

impl ShardedKvDriver for ShardedUnsecuredDriver {
    fn shard_count(&self) -> usize {
        self.0.shard_count()
    }
    fn shard_platform(&self, shard: usize) -> &Arc<Platform> {
        self.0.shard_platform(shard)
    }
    fn router_platform(&self) -> &Arc<Platform> {
        self.0.router_platform()
    }
}

/// Driver over a replicated authenticated group: writes go to the
/// primary (which ships them before acknowledging), verified reads
/// round-robin across the replicas. For the scheduler, each **replica**
/// is one machine and the primary plays the router role — fig12's read
/// phase never touches it, so read scaling is purely the replicas'.
#[derive(Debug)]
pub struct ReplicatedP2Driver {
    group: ReplicationGroup,
    replicas: Vec<Arc<Platform>>,
    primary: Arc<Platform>,
}

impl ReplicatedP2Driver {
    /// Wraps a group, caching each node's platform for the scheduler.
    pub fn new(group: ReplicationGroup) -> Self {
        let replicas = (0..group.replica_count()).map(|i| group.replica_platform(i)).collect();
        let primary = group.primary_store().platform().clone();
        ReplicatedP2Driver { group, replicas, primary }
    }

    /// The wrapped group.
    pub fn group(&self) -> &ReplicationGroup {
        &self.group
    }
}

impl ycsb::KvDriver for ReplicatedP2Driver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.group.put(key, value).expect("replicated put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.group.get(key).expect("replica get verifies").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.group.scan(from, to).expect("replica scan verifies").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.group.put_batch(&as_refs(items)).expect("replicated put_batch");
    }
}

impl ShardedKvDriver for ReplicatedP2Driver {
    fn shard_count(&self) -> usize {
        self.replicas.len().max(1)
    }
    fn shard_platform(&self, shard: usize) -> &Arc<Platform> {
        self.replicas.get(shard).unwrap_or(&self.primary)
    }
    fn router_platform(&self) -> &Arc<Platform> {
        &self.primary
    }
}

/// Driver over the unsecured replicated baseline, machine-modelled the
/// same way as [`ReplicatedP2Driver`].
#[derive(Debug)]
pub struct ReplicatedUnsecuredDriver(pub ReplicatedUnsecured);

impl ycsb::KvDriver for ReplicatedUnsecuredDriver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key, value).expect("replicated unsecured put");
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).expect("replicated unsecured get").is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.scan(from, to).expect("replicated unsecured scan").len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items)).expect("replicated unsecured put_batch");
    }
}

impl ShardedKvDriver for ReplicatedUnsecuredDriver {
    fn shard_count(&self) -> usize {
        self.0.replica_count().max(1)
    }
    fn shard_platform(&self, shard: usize) -> &Arc<Platform> {
        if shard < self.0.replica_count() {
            self.0.replica_platform(shard)
        } else {
            self.0.primary_platform()
        }
    }
    fn router_platform(&self) -> &Arc<Platform> {
        self.0.primary_platform()
    }
}

/// Driver over the Eleos baseline. Puts beyond the capacity limit are
/// dropped (the paper stops Eleos' curves at 1 GB).
#[derive(Debug)]
pub struct EleosDriver(pub EleosStore);

impl ycsb::KvDriver for EleosDriver {
    fn put(&self, key: &[u8], value: &[u8]) {
        let _ = self.0.put(key.to_vec(), value.to_vec());
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.range(from, to).len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        let _ = self.0.put_batch(&as_refs(items));
    }
}

/// Driver over the update-in-place Merkle B-tree store.
#[derive(Debug)]
pub struct MbtDriver(pub MbtStore);

impl ycsb::KvDriver for MbtDriver {
    fn put(&self, key: &[u8], value: &[u8]) {
        self.0.put(key.to_vec(), value.to_vec());
    }
    fn get(&self, key: &[u8]) -> bool {
        self.0.get(key).is_some()
    }
    fn scan(&self, from: &[u8], to: &[u8]) -> usize {
        self.0.range(from, to).len()
    }
    fn put_batch(&self, items: &[(Vec<u8>, Vec<u8>)]) {
        self.0.put_batch(&as_refs(items));
    }
}
