//! Unit scaling between the paper's hardware and the simulation.
//!
//! Every effect in the paper's evaluation is a *ratio* (working set vs.
//! EPC, buffer vs. data size), so all sizes are scaled by one constant:
//! by default **1 paper-MB = 1 KiB simulated**. The 128 MB EPC becomes
//! 128 KiB (32 pages), a 3 GB dataset becomes 3 MiB (~27 k records of the
//! paper's 16 B keys + 100 B values), and every crossover lands at the
//! same paper-unit coordinate. Axes are always reported in paper units.

use sgx_sim::CostModel;

/// Paper record size: 16-byte key + 100-byte value (§6.1).
pub const KEY_BYTES: usize = 16;
/// Paper value size.
pub const VALUE_BYTES: usize = 100;

/// The scaling rule.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Simulated bytes per paper megabyte.
    pub bytes_per_paper_mb: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale { bytes_per_paper_mb: 1024 }
    }
}

impl Scale {
    /// Converts paper megabytes to simulated bytes.
    pub fn mb(&self, paper_mb: u64) -> u64 {
        paper_mb * self.bytes_per_paper_mb
    }

    /// Converts paper gigabytes to simulated bytes.
    pub fn gb(&self, paper_gb: f64) -> u64 {
        (paper_gb * 1024.0 * self.bytes_per_paper_mb as f64) as u64
    }

    /// Number of records representing `paper_gb` of data.
    pub fn records_for_gb(&self, paper_gb: f64) -> u64 {
        self.gb(paper_gb) / (KEY_BYTES + VALUE_BYTES) as u64
    }

    /// Number of records representing `paper_mb` of data.
    pub fn records_for_mb(&self, paper_mb: u64) -> u64 {
        self.mb(paper_mb) / (KEY_BYTES + VALUE_BYTES) as u64
    }

    /// The paper CPU's cost model with the EPC scaled to match
    /// (128 paper-MB).
    pub fn cost_model(&self) -> CostModel {
        CostModel::paper_defaults().with_epc_bytes(self.mb(128) as usize)
    }

    /// The paper's 4 MB write buffer, scaled.
    pub fn write_buffer_bytes(&self) -> usize {
        self.mb(4) as usize
    }

    /// The paper's LevelDB level-1 budget (10 MB), scaled.
    pub fn level1_bytes(&self) -> u64 {
        self.mb(10)
    }

    /// Target SSTable file size (2 MB in LevelDB), scaled.
    pub fn file_bytes(&self) -> u64 {
        self.mb(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_match_paper() {
        let s = Scale::default();
        // 128 MB EPC / 4 MB write buffer = 32, preserved.
        assert_eq!(s.cost_model().epc_bytes / s.write_buffer_bytes(), 32);
        // 3 GB ≈ 26-27k records at 116 B/record.
        let r = s.records_for_gb(3.0);
        assert!((26_000..28_000).contains(&r), "{r}");
    }

    #[test]
    fn epc_pages_scale() {
        let s = Scale::default();
        assert_eq!(s.cost_model().epc_pages(), 32);
    }
}
