//! The unsecured sharded counterpart of `elsm_shard::ShardedKv`.
//!
//! N vanilla LSM partitions behind the same deterministic partitioner,
//! with **no** enclaves, no verification and no stitching checks — the
//! honest roofline for the shard-scaling figure: it isolates what the
//! partitioned deployment itself buys from what authentication costs at
//! each shard.

use std::sync::Arc;

use elsm_shard::{PartitionSpec, Partitioner};
use lsm_store::Record;
use sgx_sim::Platform;
use sim_disk::FsError;

use crate::unsecured::{UnsecuredLsm, UnsecuredOptions};

/// A sharded, unsecured LSM cluster.
///
/// # Examples
///
/// ```
/// use elsm_baselines::{ShardedUnsecured, UnsecuredOptions};
/// use elsm_shard::PartitionSpec;
/// use sgx_sim::Platform;
///
/// # fn main() -> Result<(), sim_disk::FsError> {
/// let cluster = ShardedUnsecured::open(
///     Platform::with_defaults(),
///     PartitionSpec::Hash { shards: 2 },
///     UnsecuredOptions::default(),
/// )?;
/// cluster.put(b"k", b"v")?;
/// assert!(cluster.get(b"k")?.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedUnsecured {
    router: Arc<Platform>,
    partitioner: Partitioner,
    shards: Vec<UnsecuredLsm>,
}

impl ShardedUnsecured {
    /// Opens a fresh cluster: one platform and filesystem per shard.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn open(
        router: Arc<Platform>,
        partition: PartitionSpec,
        options: UnsecuredOptions,
    ) -> Result<Self, FsError> {
        let partitioner = Partitioner::new(partition);
        let shards = (0..partitioner.shards())
            .map(|_| UnsecuredLsm::open(Platform::new(router.cost().clone()), options.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedUnsecured { router, partitioner, shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.partitioner.shard_of(key)
    }

    /// The router's platform.
    pub fn router_platform(&self) -> &Arc<Platform> {
        &self.router
    }

    /// Shard `i`'s store.
    pub fn shard(&self, i: usize) -> &UnsecuredLsm {
        &self.shards[i]
    }

    /// Shard `i`'s platform.
    pub fn shard_platform(&self, i: usize) -> &Arc<Platform> {
        self.shards[i].platform()
    }

    /// Flushes every shard's memtable.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn flush(&self) -> Result<(), FsError> {
        for shard in &self.shards {
            shard.db().flush()?;
        }
        Ok(())
    }

    fn charge_route(&self, key: &[u8]) {
        // Same router work as the authenticated cluster: the comparison
        // must not hand the unsecured side a free partitioner.
        if !self.partitioner.is_range() {
            self.router.charge_hash(key.len());
        }
    }

    /// Writes a record to the owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64, FsError> {
        self.charge_route(key);
        self.shards[self.shard_of(key)].put(key, value)
    }

    /// Writes a whole batch, split per owning shard (one group commit per
    /// shard per batch); returns timestamps in the caller's order.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn put_batch(&self, items: &[(&[u8], &[u8])]) -> Result<Vec<u64>, FsError> {
        for (key, _) in items {
            self.charge_route(key);
        }
        let per_shard = self.partitioner.split_indices(items.iter().map(|(key, _)| *key));
        elsm_shard::stitch::run_sharded_batches(&per_shard, items.len(), |shard, indexes| {
            let sub: Vec<(&[u8], &[u8])> = indexes.iter().map(|&i| items[i]).collect();
            self.shards[shard].put_batch(&sub)
        })
    }

    /// Reads a record from the owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn get(&self, key: &[u8]) -> Result<Option<Record>, FsError> {
        self.charge_route(key);
        self.shards[self.shard_of(key)].get(key)
    }

    /// Deletes a key on the owning shard.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn delete(&self, key: &[u8]) -> Result<u64, FsError> {
        self.charge_route(key);
        self.shards[self.shard_of(key)].delete(key)
    }

    /// Range query stitched across shards into one key-ordered result
    /// (concatenation for range partitioning, k-way merge for hash).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] on IO failure.
    pub fn scan(&self, from: &[u8], to: &[u8]) -> Result<Vec<Record>, FsError> {
        let mut segments = Vec::new();
        for (id, shard) in self.shards.iter().enumerate() {
            if self.partitioner.is_range() && !self.partitioner.range_overlaps(id, from, to) {
                continue;
            }
            segments.push(shard.scan(self.partitioner.clamp_from(id, from), to)?);
        }
        let bytes: usize = segments.iter().flatten().map(|r| r.key.len() + r.value.len()).sum();
        self.router.dram_access(bytes);
        if self.partitioner.is_range() {
            return Ok(segments.into_iter().flatten().collect());
        }
        Ok(elsm_shard::stitch::merge_by_key(segments, |r| &r.key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_round_trip_and_ordered_scan() {
        let cluster = ShardedUnsecured::open(
            Platform::with_defaults(),
            PartitionSpec::Hash { shards: 3 },
            UnsecuredOptions::default(),
        )
        .unwrap();
        for i in 0..200u32 {
            cluster.put(format!("k{i:04}").as_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        cluster.flush().unwrap();
        for i in (0..200).step_by(13) {
            assert!(cluster.get(format!("k{i:04}").as_bytes()).unwrap().is_some());
        }
        let all = cluster.scan(b"k0000", b"k9999").unwrap();
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].key < w[1].key), "merged scan must be ordered");
        // Data actually spread across shards.
        let occupied =
            (0..3).filter(|&i| !cluster.shard(i).scan(b"k0000", b"k9999").unwrap().is_empty());
        assert_eq!(occupied.count(), 3);
    }
}
